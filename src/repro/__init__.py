"""repro — Multi-Time Simulation of Voltage-Controlled Oscillators.

A from-scratch reproduction of Narayan & Roychowdhury, *Multi-Time
Simulation of Voltage-Controlled Oscillators* (DAC 1999): the WaMPDE
(Warped Multirate Partial Differential Equation) formulation for forced
autonomous systems, together with every substrate it needs — an MNA
circuit simulator, transient/shooting/harmonic-balance engines, the
unwarped MPDE, and the paper's MEMS-varactor VCO test circuits.

Quickstart
----------
>>> from repro import (MemsVcoDae, VcoParams, T_NOMINAL,
...                    oscillator_initial_condition, solve_wampde_envelope)
>>> params = VcoParams.vacuum()
>>> unforced = MemsVcoDae(params, constant_control=True)
>>> samples, f0 = oscillator_initial_condition(
...     unforced, num_t1=25, period_guess=T_NOMINAL)
>>> forced = MemsVcoDae(params)
>>> env = solve_wampde_envelope(forced, samples, f0, 0.0, 60e-6, 600)
>>> env.omega.max() / env.omega.min() > 2.5   # paper Fig 7: ~3x FM swing
True

Simulation as a service
-----------------------
Every analysis is also describable as a serializable request
(:mod:`repro.api`) and runnable through the job layer
(:mod:`repro.service`), which adds a worker pool, streaming of partial
results, and a warm-start cache: resubmitting an identical request
replays the stored result bit-identically, and a *similar* request (same
oscillator, different window) skips the expensive DC → settle → HB
initialisation by seeding from the cached settled state.

>>> from repro import EnvelopeRequest, SimulationService
>>> request = EnvelopeRequest(dae=forced, unforced_dae=unforced,
...                           t2_stop=60e-6, num_steps=600,
...                           period_guess=T_NOMINAL)
>>> with SimulationService(workers=4) as service:   # doctest: +SKIP
...     job = service.submit(request)
...     env = service.result(job.job_id)
...     env2 = service.result(service.submit(request).job_id)  # cache hit

The same requests drive the CLI (``python -m repro vco --workers 4``)
and ``repro.api.run(request)`` for plain in-process execution.
"""

from repro._version import __version__

# Core contribution: the WaMPDE.
from repro.wampde import (
    BivariateWaveform,
    WarpingFunction,
    sawtooth_path,
    WampdeEnvelopeOptions,
    WampdeEnvelopeResult,
    solve_wampde_envelope,
    solve_wampde_envelope_adaptive,
    WampdeQuasiperiodicResult,
    solve_wampde_quasiperiodic,
    envelope_to_quasiperiodic_guess,
    oscillator_initial_condition,
    reconstruct_univariate,
)
from repro.phase_conditions import (
    PhaseCondition,
    ValueAnchor,
    DerivativeAnchor,
    FourierImagAnchor,
)

# Prior-art substrate: the unwarped MPDE.
from repro.mpde import (
    BivariateForcing,
    additive_two_tone_forcing,
    solve_mpde_quasiperiodic,
    solve_mpde_envelope,
)

# Circuit substrate.
from repro.circuits import Circuit, CircuitDAE
from repro.circuits.library import (
    VcoParams,
    MemsVcoDae,
    mems_vco_circuit,
    lc_oscillator_circuit,
    forced_lc_oscillator_circuit,
    rc_diode_mixer_circuit,
    F_NOMINAL,
    T_NOMINAL,
)

# Engines.
from repro.transient import TransientOptions, simulate_transient
from repro.steadystate import (
    dc_operating_point,
    shooting_periodic,
    shooting_autonomous,
    harmonic_balance_forced,
    harmonic_balance_autonomous,
)
from repro.dae import SemiExplicitDAE, FunctionDAE

# Unified request/result API and the simulation service (lazy: neither
# pulls extra weight into `import repro` until actually touched).
_LAZY = {
    "AnalysisRequest": "repro.api",
    "TransientRequest": "repro.api",
    "EnvelopeRequest": "repro.api",
    "HBRequest": "repro.api",
    "QuasiperiodicRequest": "repro.api",
    "EnsembleRequest": "repro.api",
    "SweepRequest": "repro.api",
    "run": "repro.api",
    "request_from_dict": "repro.api",
    "SimulationService": "repro.service",
    "WarmStart": "repro.service",
    "WarmStartCache": "repro.service",
}


def __getattr__(name):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "__version__",
    "BivariateWaveform",
    "WarpingFunction",
    "sawtooth_path",
    "WampdeEnvelopeOptions",
    "WampdeEnvelopeResult",
    "solve_wampde_envelope",
    "solve_wampde_envelope_adaptive",
    "WampdeQuasiperiodicResult",
    "solve_wampde_quasiperiodic",
    "envelope_to_quasiperiodic_guess",
    "oscillator_initial_condition",
    "reconstruct_univariate",
    "PhaseCondition",
    "ValueAnchor",
    "DerivativeAnchor",
    "FourierImagAnchor",
    "BivariateForcing",
    "additive_two_tone_forcing",
    "solve_mpde_quasiperiodic",
    "solve_mpde_envelope",
    "Circuit",
    "CircuitDAE",
    "VcoParams",
    "MemsVcoDae",
    "mems_vco_circuit",
    "lc_oscillator_circuit",
    "forced_lc_oscillator_circuit",
    "rc_diode_mixer_circuit",
    "F_NOMINAL",
    "T_NOMINAL",
    "TransientOptions",
    "simulate_transient",
    "dc_operating_point",
    "shooting_periodic",
    "shooting_autonomous",
    "harmonic_balance_forced",
    "harmonic_balance_autonomous",
    "SemiExplicitDAE",
    "FunctionDAE",
    # lazy request/service surface
    "AnalysisRequest",
    "TransientRequest",
    "EnvelopeRequest",
    "HBRequest",
    "QuasiperiodicRequest",
    "EnsembleRequest",
    "SweepRequest",
    "run",
    "request_from_dict",
    "SimulationService",
    "WarmStart",
    "WarmStartCache",
]
