"""repro — Multi-Time Simulation of Voltage-Controlled Oscillators.

A from-scratch reproduction of Narayan & Roychowdhury, *Multi-Time
Simulation of Voltage-Controlled Oscillators* (DAC 1999): the WaMPDE
(Warped Multirate Partial Differential Equation) formulation for forced
autonomous systems, together with every substrate it needs — an MNA
circuit simulator, transient/shooting/harmonic-balance engines, the
unwarped MPDE, and the paper's MEMS-varactor VCO test circuits.

Quickstart
----------
>>> from repro import (MemsVcoDae, VcoParams, T_NOMINAL,
...                    oscillator_initial_condition, solve_wampde_envelope)
>>> params = VcoParams.vacuum()
>>> unforced = MemsVcoDae(params, constant_control=True)
>>> samples, f0 = oscillator_initial_condition(
...     unforced, num_t1=25, period_guess=T_NOMINAL)
>>> forced = MemsVcoDae(params)
>>> env = solve_wampde_envelope(forced, samples, f0, 0.0, 60e-6, 600)
>>> env.omega.max() / env.omega.min() > 2.5   # paper Fig 7: ~3x FM swing
True
"""

from repro._version import __version__

# Core contribution: the WaMPDE.
from repro.wampde import (
    BivariateWaveform,
    WarpingFunction,
    sawtooth_path,
    WampdeEnvelopeOptions,
    WampdeEnvelopeResult,
    solve_wampde_envelope,
    solve_wampde_envelope_adaptive,
    WampdeQuasiperiodicResult,
    solve_wampde_quasiperiodic,
    envelope_to_quasiperiodic_guess,
    oscillator_initial_condition,
    reconstruct_univariate,
)
from repro.phase_conditions import (
    PhaseCondition,
    ValueAnchor,
    DerivativeAnchor,
    FourierImagAnchor,
)

# Prior-art substrate: the unwarped MPDE.
from repro.mpde import (
    BivariateForcing,
    additive_two_tone_forcing,
    solve_mpde_quasiperiodic,
    solve_mpde_envelope,
)

# Circuit substrate.
from repro.circuits import Circuit, CircuitDAE
from repro.circuits.library import (
    VcoParams,
    MemsVcoDae,
    mems_vco_circuit,
    lc_oscillator_circuit,
    forced_lc_oscillator_circuit,
    rc_diode_mixer_circuit,
    F_NOMINAL,
    T_NOMINAL,
)

# Engines.
from repro.transient import TransientOptions, simulate_transient
from repro.steadystate import (
    dc_operating_point,
    shooting_periodic,
    shooting_autonomous,
    harmonic_balance_forced,
    harmonic_balance_autonomous,
)
from repro.dae import SemiExplicitDAE, FunctionDAE

__all__ = [
    "__version__",
    "BivariateWaveform",
    "WarpingFunction",
    "sawtooth_path",
    "WampdeEnvelopeOptions",
    "WampdeEnvelopeResult",
    "solve_wampde_envelope",
    "solve_wampde_envelope_adaptive",
    "WampdeQuasiperiodicResult",
    "solve_wampde_quasiperiodic",
    "envelope_to_quasiperiodic_guess",
    "oscillator_initial_condition",
    "reconstruct_univariate",
    "PhaseCondition",
    "ValueAnchor",
    "DerivativeAnchor",
    "FourierImagAnchor",
    "BivariateForcing",
    "additive_two_tone_forcing",
    "solve_mpde_quasiperiodic",
    "solve_mpde_envelope",
    "Circuit",
    "CircuitDAE",
    "VcoParams",
    "MemsVcoDae",
    "mems_vco_circuit",
    "lc_oscillator_circuit",
    "forced_lc_oscillator_circuit",
    "rc_diode_mixer_circuit",
    "F_NOMINAL",
    "T_NOMINAL",
    "TransientOptions",
    "simulate_transient",
    "dc_operating_point",
    "shooting_periodic",
    "shooting_autonomous",
    "harmonic_balance_forced",
    "harmonic_balance_autonomous",
    "SemiExplicitDAE",
    "FunctionDAE",
]
