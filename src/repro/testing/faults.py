"""Deterministic fault injection for solvers, DAEs and linear solvers.

Robustness code is only trustworthy if its failure paths run in CI, and
real numerical failures are too fragile to reproduce on demand.  These
wrappers inject failures *deterministically*: every injection site is
keyed by a 0-based call index (or, for forcing terms, a time window), so
a test states exactly which evaluation goes bad and the same evaluation
goes bad on every run, platform and thread count.

:class:`FaultyDAE`
    Wraps a :class:`~repro.dae.base.SemiExplicitDAE`; injects NaN
    evaluations, singular Jacobians and NaN forcing windows at the DAE
    boundary (what the transient/envelope engines see).
:class:`FaultySystem`
    Wraps a :class:`~repro.linalg.solver_core.CollocationSystem`;
    injects at the nonlinear-system boundary (what ``SolverCore`` sees) —
    the right level for exercising individual recovery-ladder rungs.
:class:`FaultyLinearSolver`
    Wraps a ``(matrix, rhs) -> x`` callable; fails chosen linear solves
    by raising (singular-like) or returning NaN (breakdown-like).

No wrapper mutates its wrappee, and none consults a clock or RNG.
"""

from __future__ import annotations

import numpy as np


def _as_call_set(calls):
    """Normalise a call-index spec (int, iterable or None) to a set."""
    if calls is None:
        return frozenset()
    if isinstance(calls, (int, np.integer)):
        return frozenset({int(calls)})
    return frozenset(int(c) for c in calls)


class FaultyDAE:
    """DAE proxy injecting failures at chosen evaluation counts.

    Parameters
    ----------
    dae:
        The wrapped :class:`~repro.dae.base.SemiExplicitDAE`.
    nan_q_calls, nan_f_calls:
        0-based call indices of ``q``/``f`` whose first output entry is
        replaced by NaN.  ``qf`` shares both counters (one ``qf`` call
        advances the ``q`` and the ``f`` count by one), so injection is
        independent of whether the engine uses the fused evaluation.
    singular_df_calls:
        Call indices of ``df_dx`` returning an all-zero matrix (exactly
        singular) instead of the true Jacobian.
    nan_b_window:
        ``(t_lo, t_hi)`` — forcing evaluations with
        ``t_lo <= t <= t_hi`` return all-NaN vectors, in ``b`` and
        ``b_batch`` alike.  The deterministic way to poison a chosen
        *time region* of a transient run regardless of step count.

    Attributes
    ----------
    calls:
        Per-method evaluation counters (``{"q": ..., "f": ...,
        "b": ..., "df_dx": ...}``), for asserting how far an engine got.
    """

    def __init__(self, dae, nan_q_calls=None, nan_f_calls=None,
                 singular_df_calls=None, nan_b_window=None):
        self._dae = dae
        self.n = dae.n
        self.variable_names = dae.variable_names
        self.nan_q_calls = _as_call_set(nan_q_calls)
        self.nan_f_calls = _as_call_set(nan_f_calls)
        self.singular_df_calls = _as_call_set(singular_df_calls)
        self.nan_b_window = (
            (float(nan_b_window[0]), float(nan_b_window[1]))
            if nan_b_window is not None else None
        )
        self.calls = {"q": 0, "f": 0, "b": 0, "df_dx": 0}

    def __getattr__(self, name):
        return getattr(self._dae, name)

    def _maybe_nan(self, values, counter, inject_calls):
        index = self.calls[counter]
        self.calls[counter] = index + 1
        if index in inject_calls:
            values = np.array(values, dtype=float)
            values.flat[0] = np.nan
        return values

    def q(self, x):
        return self._maybe_nan(self._dae.q(x), "q", self.nan_q_calls)

    def f(self, x):
        return self._maybe_nan(self._dae.f(x), "f", self.nan_f_calls)

    def qf(self, x):
        q, f = self._dae.qf(x)
        return (
            self._maybe_nan(q, "q", self.nan_q_calls),
            self._maybe_nan(f, "f", self.nan_f_calls),
        )

    def df_dx(self, x):
        index = self.calls["df_dx"]
        self.calls["df_dx"] = index + 1
        jac = self._dae.df_dx(x)
        if index in self.singular_df_calls:
            return np.zeros_like(np.asarray(jac, dtype=float))
        return jac

    def _in_window(self, t):
        window = self.nan_b_window
        return window is not None and window[0] <= t <= window[1]

    def b(self, t):
        self.calls["b"] += 1
        values = self._dae.b(t)
        if self._in_window(float(t)):
            values = np.full_like(np.asarray(values, dtype=float), np.nan)
        return values

    def b_batch(self, times):
        values = np.array(self._dae.b_batch(times), dtype=float)
        window = self.nan_b_window
        if window is not None:
            times = np.asarray(times, dtype=float)
            mask = (times >= window[0]) & (times <= window[1])
            values[mask] = np.nan
        return values


class FaultySystem:
    """Nonlinear-system proxy injecting failures at chosen call counts.

    Parameters
    ----------
    system:
        The wrapped :class:`~repro.linalg.solver_core.CollocationSystem`.
    nan_residual_calls:
        0-based residual-call indices whose first output entry becomes
        NaN.
    singular_jacobian_calls:
        Jacobian-call indices returning an all-zero (exactly singular)
        matrix.
    scale_jacobian_calls:
        ``{call_index: factor}`` — Jacobian calls returning the true
        matrix times ``factor`` (a controlled way to make a chord factor
        arbitrarily stale or a Newton step arbitrarily short).

    Attributes
    ----------
    residual_calls, jacobian_calls:
        Evaluation counters, for asserting rung escalation.
    """

    #: Forwarded so SolverCore's thread wiring still reaches the base.
    assembler = None

    def __init__(self, system, nan_residual_calls=None,
                 singular_jacobian_calls=None, scale_jacobian_calls=None):
        self.system = system
        self.assembler = getattr(system, "assembler", None)
        self.nan_residual_calls = _as_call_set(nan_residual_calls)
        self.singular_jacobian_calls = _as_call_set(singular_jacobian_calls)
        self.scale_jacobian_calls = {
            int(k): float(v)
            for k, v in (scale_jacobian_calls or {}).items()
        }
        self.residual_calls = 0
        self.jacobian_calls = 0

    def residual(self, z):
        index = self.residual_calls
        self.residual_calls = index + 1
        values = self.system.residual(z)
        if index in self.nan_residual_calls:
            values = np.array(values, dtype=float)
            values.flat[0] = np.nan
        return values

    def jacobian(self, z):
        index = self.jacobian_calls
        self.jacobian_calls = index + 1
        jac = self.system.jacobian(z)
        if index in self.singular_jacobian_calls:
            dense = np.zeros(
                getattr(jac, "shape", (np.size(z), np.size(z)))
            )
            return dense
        factor = self.scale_jacobian_calls.get(index)
        if factor is not None:
            # Densify before scaling: assembler-owned sparse matrices must
            # not be mutated, and `factor * sparse` copies anyway.
            jac = factor * np.asarray(
                jac.toarray() if hasattr(jac, "toarray") else jac,
                dtype=float,
            )
        return jac

    def structure(self):
        return self.system.structure()


class FaultyLinearSolver:
    """Linear-solver proxy failing chosen solves deterministically.

    Parameters
    ----------
    inner:
        The wrapped ``(matrix, rhs) -> x`` callable (default: dense/
        sparse LU via numpy/scipy, matching the Newton default).
    fail_calls:
        0-based solve indices that fail.
    mode:
        ``"raise"`` — raise ``RuntimeError`` (what scipy does for a
        singular sparse LU, routed to ``SingularJacobianError`` by the
        Newton kernels); ``"nan"`` — return an all-NaN update (iterative
        breakdown, caught by the non-finite update checks).
    """

    def __init__(self, inner=None, fail_calls=None, mode="raise"):
        if mode not in ("raise", "nan"):
            raise ValueError(f"mode must be 'raise' or 'nan', got {mode!r}")
        if inner is None:
            from repro.linalg.newton import _default_linear_solve

            inner = _default_linear_solve
        self.inner = inner
        self.fail_calls = _as_call_set(fail_calls)
        self.mode = mode
        self.calls = 0

    def __call__(self, matrix, rhs):
        index = self.calls
        self.calls = index + 1
        if index in self.fail_calls:
            if self.mode == "raise":
                raise RuntimeError(
                    f"injected linear-solver failure at call {index}"
                )
            return np.full(np.shape(rhs), np.nan)
        return self.inner(matrix, rhs)

    def invalidate(self):
        invalidate = getattr(self.inner, "invalidate", None)
        if invalidate is not None:
            invalidate()
