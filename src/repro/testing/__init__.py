"""Deterministic test harnesses (fault injection) for the repro library."""

from repro.testing.faults import (
    FaultyDAE,
    FaultyLinearSolver,
    FaultySystem,
)

__all__ = [
    "FaultyDAE",
    "FaultyLinearSolver",
    "FaultySystem",
]
