"""Backend probing, compilation and caching for generated kernels.

Three execution modes share one generated algorithm
(:mod:`repro.kernels.codegen`):

``"numba"``
    The generated Python module with every function under
    ``numba.njit(cache=True)``.  Requires the optional ``jit`` extra.
``"c"``
    The generated C file compiled by the host toolchain
    (``$CC`` / ``cc`` / ``gcc`` / ``clang``) into a shared object and
    loaded through :mod:`ctypes`.  No extra dependencies.
``"python"``
    The same generated Python module, undecorated — slow, but always
    available; it is the oracle the compiled modes are tested against.

Builds are cached on disk under ``$REPRO_KERNEL_CACHE`` (default: a
``repro-kernels`` directory in the system temp dir), keyed by a content
hash of the generated source, and memoised in-process, so a long test
run compiles each distinct circuit topology once.
"""

from __future__ import annotations

import ctypes
import hashlib
import importlib.util
import os
import shutil
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.errors import ConfigurationError, ReproError

from . import codegen

#: Option values accepted by ``kernel=...``.
KERNEL_MODES = ("auto", "numba", "c", "python")


class KernelBuildError(ReproError):
    """Generating/compiling/loading a kernel backend failed."""


def probe_numba():
    """True when numba can actually be imported *right now*.

    Re-evaluated on every call (not just at import) so masking numba out
    of ``sys.modules`` — as the fallback tests do — is seen immediately.
    """
    if sys.modules.get("numba", "unset") is None:
        return False
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def _find_cc():
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def probe_cc():
    """True when a host C compiler is on PATH."""
    return _find_cc() is not None


#: Import-time snapshot of the numba probe (the documented capability flag).
HAVE_NUMBA = probe_numba()
HAVE_CC = probe_cc()


def resolve_mode(requested):
    """Map a ``kernel=`` option value to a concrete backend mode.

    ``"auto"`` prefers numba, then the C toolchain, then python.
    Explicitly requesting an unavailable backend raises
    :class:`~repro.errors.ConfigurationError` eagerly, before any march
    starts.  Returns ``(mode, reason)`` where ``reason`` explains a
    python resolution (``None`` otherwise).

    ``$REPRO_KERNEL`` rewrites ``"auto"`` requests (explicit option
    values always win) — how CI pins a whole suite run to one backend
    without touching any call site.
    """
    requested = "auto" if requested is None else str(requested)
    if requested == "auto":
        requested = os.environ.get("REPRO_KERNEL") or "auto"
    if requested not in KERNEL_MODES:
        raise ConfigurationError(
            f"kernel={requested!r} is not a valid mode; choose one of "
            f"{', '.join(repr(m) for m in KERNEL_MODES)}"
        )
    if requested == "python":
        return "python", "kernel='python' requested"
    if requested == "numba":
        if not probe_numba():
            raise ConfigurationError(
                "kernel='numba' requires the optional numba dependency; "
                "install the jit extra (pip install 'repro[jit]') or use "
                "kernel='auto'"
            )
        return "numba", None
    if requested == "c":
        if not probe_cc():
            raise ConfigurationError(
                "kernel='c' requires a host C compiler (cc/gcc/clang or "
                "$CC) on PATH; use kernel='auto' to fall back"
            )
        return "c", None
    # auto
    if probe_numba():
        return "numba", None
    if probe_cc():
        return "c", None
    return "python", "numba unavailable and no C compiler on PATH"


def _cache_dir():
    root = os.environ.get("REPRO_KERNEL_CACHE")
    if not root:
        root = os.path.join(tempfile.gettempdir(), "repro-kernels")
    os.makedirs(root, exist_ok=True)
    return root


def _source_sha(source):
    return hashlib.sha256(source.encode()).hexdigest()[:24]


class _PyKernel:
    """Adapter over the generated Python module (numba-jitted or plain)."""

    mode = "python"

    def __init__(self, module, mode):
        self.mode = mode
        self._mod = module
        self.eval_qf = module.eval_qf
        self.eval_jac = module.eval_jac
        self.sweep = module.sweep
        self.sweep_adaptive = module.sweep_adaptive

    def eval_qf_batch(self, X, P, Q, F):
        self._mod.eval_qf_batch(X, P, Q, F)

    def eval_jac_batch(self, X, P, DQ, DF):
        self._mod.eval_jac_batch(X, P, DQ, DF)

    def sweep_ens(self, t_grid, b_grid, gi_start, gi_end, batch, pstride,
                  *arrays):
        # The generated python function reads B/pstride off the arrays.
        return int(self._mod.sweep_ens(t_grid, b_grid, gi_start, gi_end,
                                       *arrays))


class _CKernel:
    """ctypes adapter over the compiled shared object."""

    mode = "c"

    def __init__(self, lib):
        self._lib = lib
        lib.sweep.restype = ctypes.c_longlong
        lib.sweep.argtypes = [ctypes.c_void_p] * 2 \
            + [ctypes.c_longlong] * 2 + [ctypes.c_void_p] * 25
        lib.sweep_adaptive.restype = ctypes.c_longlong
        lib.sweep_adaptive.argtypes = [ctypes.c_void_p, ctypes.c_longlong] \
            + [ctypes.c_void_p] * 26
        lib.sweep_ens.restype = ctypes.c_longlong
        lib.sweep_ens.argtypes = [ctypes.c_void_p] * 2 \
            + [ctypes.c_longlong] * 4 + [ctypes.c_void_p] * 28
        lib.eval_qf.restype = None
        lib.eval_jac.restype = None
        lib.eval_qf_batch.restype = None
        lib.eval_jac_batch.restype = None

    @staticmethod
    def _ptr(arr):
        return ctypes.c_void_p(arr.ctypes.data)

    def eval_qf(self, x, p, q, f):
        self._lib.eval_qf(self._ptr(x), self._ptr(p), self._ptr(q),
                          self._ptr(f))

    def eval_jac(self, x, p, dq, df):
        self._lib.eval_jac(self._ptr(x), self._ptr(p), self._ptr(dq),
                           self._ptr(df))

    def eval_qf_batch(self, X, P, Q, F):
        pstride = P.shape[1] if P.shape[0] > 1 else 0
        self._lib.eval_qf_batch(
            self._ptr(X), self._ptr(P), ctypes.c_longlong(X.shape[0]),
            ctypes.c_longlong(pstride), self._ptr(Q), self._ptr(F))

    def eval_jac_batch(self, X, P, DQ, DF):
        pstride = P.shape[1] if P.shape[0] > 1 else 0
        self._lib.eval_jac_batch(
            self._ptr(X), self._ptr(P), ctypes.c_longlong(X.shape[0]),
            ctypes.c_longlong(pstride), self._ptr(DQ), self._ptr(DF))

    def sweep(self, t_grid, b_grid, gi_start, gi_end, *arrays):
        args = [self._ptr(t_grid), self._ptr(b_grid),
                ctypes.c_longlong(gi_start), ctypes.c_longlong(gi_end)]
        args.extend(self._ptr(a) for a in arrays)
        return int(self._lib.sweep(*args))

    def sweep_adaptive(self, b_row, max_accept, *arrays):
        args = [self._ptr(b_row), ctypes.c_longlong(max_accept)]
        args.extend(self._ptr(a) for a in arrays)
        return int(self._lib.sweep_adaptive(*args))

    def sweep_ens(self, t_grid, b_grid, gi_start, gi_end, batch, pstride,
                  *arrays):
        args = [self._ptr(t_grid), self._ptr(b_grid),
                ctypes.c_longlong(gi_start), ctypes.c_longlong(gi_end),
                ctypes.c_longlong(batch), ctypes.c_longlong(pstride)]
        args.extend(self._ptr(a) for a in arrays)
        return int(self._lib.sweep_ens(*args))


def _load_python_module(source, sha):
    path = os.path.join(_cache_dir(), f"kernel_{sha}.py")
    if not os.path.exists(path):
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w") as handle:
            handle.write(source)
        os.replace(tmp, path)
    name = f"repro_kernel_{sha}"
    existing = sys.modules.get(name)
    if existing is not None:
        return existing
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except Exception:
        sys.modules.pop(name, None)
        raise
    return module


def _build_c_library(source, sha):
    cc = _find_cc()
    if cc is None:
        raise KernelBuildError("no C compiler on PATH")
    cache = _cache_dir()
    so_path = os.path.join(cache, f"kernel_{sha}.so")
    if not os.path.exists(so_path):
        c_path = os.path.join(cache, f"kernel_{sha}.c")
        with open(c_path, "w") as handle:
            handle.write(source)
        tmp_so = f"{so_path}.{os.getpid()}.tmp"
        cmd = [cc, "-O2", "-fPIC", "-shared", "-o", tmp_so, c_path, "-lm"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise KernelBuildError(
                f"C kernel compilation failed ({' '.join(cmd)}):\n"
                f"{proc.stderr}"
            )
        os.replace(tmp_so, so_path)
    return ctypes.CDLL(so_path)


#: In-process memo: (source sha, mode) -> built kernel adapter.
_KERNEL_MEMO = {}


class BuiltKernel:
    """A spec bound to a built backend (callables + parameter rows)."""

    def __init__(self, spec, impl, mode, compile_time_s):
        self.spec = spec
        self.impl = impl
        self.mode = mode
        self.compile_time_s = float(compile_time_s)


def build_kernel(spec, mode):
    """Build (or fetch from cache) the backend for ``spec`` in ``mode``.

    Raises :class:`KernelBuildError` on compilation/first-call failure;
    callers running under ``kernel="auto"`` degrade to the next backend.
    """
    start = time.perf_counter()
    if mode in ("numba", "python"):
        source = codegen.generate_python_source(spec)
        key = (_source_sha(source), mode)
        impl = _KERNEL_MEMO.get(key)
        if impl is None:
            module = _load_python_module(source, key[0])
            if mode == "numba" and not getattr(module, "HAVE_JIT", False):
                raise KernelBuildError(
                    "generated module loaded without numba jit"
                )
            impl = _PyKernel(module, mode)
            if mode == "numba":
                _trial_run(spec, impl)
            _KERNEL_MEMO[key] = impl
    elif mode == "c":
        source = codegen.generate_c_source(spec)
        key = (_source_sha(source), mode)
        impl = _KERNEL_MEMO.get(key)
        if impl is None:
            impl = _CKernel(_build_c_library(source, key[0]))
            _trial_run(spec, impl)
            _KERNEL_MEMO[key] = impl
    else:  # pragma: no cover - resolve_mode guards the values
        raise KernelBuildError(f"unknown kernel mode {mode!r}")
    return BuiltKernel(spec, impl, mode, time.perf_counter() - start)


def _trial_run(spec, impl):
    """Force compilation (numba) / catch broken builds with a tiny call."""
    n = spec.n
    x = np.zeros(n)
    p = np.ascontiguousarray(spec.params_rows[0])
    q = np.empty(n)
    f = np.empty(n)
    dq = np.empty(n * n)
    df = np.empty(n * n)
    try:
        impl.eval_qf(x, p, q, f)
        impl.eval_jac(x, p, dq, df)
    except Exception as exc:
        raise KernelBuildError(f"kernel trial evaluation failed: {exc}") \
            from exc
