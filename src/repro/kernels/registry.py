"""Lower supported DAEs into a language-neutral kernel IR.

A :class:`KernelSpec` describes one DAE as two straight-line statement
lists — ``qf`` (fill ``q[:]``/``f[:]`` from ``x``/``p``) and ``jac``
(fill flat ``dq[:]``/``df[:]`` of length ``n*n``) — over a parameter
vector ``p``.  The statements use a tiny expression language valid in
both Python and C (see :mod:`repro.kernels.codegen`): ``x[i]``/``p[i]``
array reads, float literals, ``+ - * /``, comparisons, and the math
calls ``exp``/``expm1``/``tanh``/``fabs``.

Statement forms (plain tuples)::

    ("let",   name, expr)          # first binding of a scalar temp
    ("set",   name, expr)          # re-binding (inside "if" branches)
    ("add",   array, index, expr)  # array[index] += expr
    ("store", array, index, expr)  # array[index] = expr
    ("if",    cond, then_stmts, else_stmts)

Lowering walks either a :class:`~repro.circuits.mna.CircuitDAE` (one
emitter per device class, scattering through the slot incidence maps
with ground columns reading ``0.0`` and ground rows dropped) or one of
the hand-written DAEs (``MemsVcoDae``, ``VanDerPolDae``).  Device
parameters land in ``p`` so that per-scenario stacked parameters become
per-row parameter vectors without re-generating code.

The emitted arithmetic mirrors the NumPy device methods operation for
operation wherever the order is observable (e.g. the diode's limited
linearisation), so compiled and python trajectories differ only by
float non-associativity inside sums — well inside Newton tolerance.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Diode limiting threshold multiple; must match repro.circuits.devices.diode.
_DIODE_LIMIT_MULTIPLE = 40.0


class KernelSpec:
    """IR + parameters for one DAE's ``q/f/dq/df`` evaluation."""

    def __init__(self, n, params_rows, stacked, qf_stmts, jac_stmts,
                 dae_label):
        self.n = int(n)
        #: (B, P) parameter rows; B == 1 for scalar-parameter DAEs.
        self.params_rows = params_rows
        #: True when any device parameter is per-scenario stacked.
        self.stacked = bool(stacked)
        self.qf_stmts = qf_stmts
        self.jac_stmts = jac_stmts
        self.dae_label = str(dae_label)

    @property
    def num_params(self):
        return self.params_rows.shape[1]

    def source_key(self):
        """Digest of the generated structure (not the parameter values)."""
        h = hashlib.sha256()
        h.update(repr((self.n, self.num_params, self.qf_stmts,
                       self.jac_stmts)).encode())
        return h.hexdigest()[:16]


class _SpecBuilder:
    def __init__(self, n):
        self.n = int(n)
        self.params = []
        self.qf = []
        self.jac = []
        self._tmp = 0

    def param(self, value):
        self.params.append(value)
        return f"p[{len(self.params) - 1}]"

    def tmp(self, base):
        self._tmp += 1
        return f"_{base}{self._tmp}"

    # -- scatter helpers (None index means ground: read 0, drop row) ----

    def addq(self, row, expr):
        if row is not None and row >= 0:
            self.qf.append(("add", "q", int(row), expr))

    def addf(self, row, expr):
        if row is not None and row >= 0:
            self.qf.append(("add", "f", int(row), expr))

    def adddq(self, row, col, expr):
        if row is not None and col is not None and row >= 0 and col >= 0:
            self.jac.append(("add", "dq", int(row) * self.n + int(col), expr))

    def adddf(self, row, col, expr):
        if row is not None and col is not None and row >= 0 and col >= 0:
            self.jac.append(("add", "df", int(row) * self.n + int(col), expr))

    def finalize(self, dae_label):
        stacked = any(np.ndim(v) > 0 for v in self.params)
        if stacked:
            sizes = {np.shape(v)[0] for v in self.params if np.ndim(v) > 0}
            if len(sizes) != 1:
                return None, "inconsistent per-scenario parameter stacks"
            batch = sizes.pop()
            rows = np.empty((batch, len(self.params)))
            for j, value in enumerate(self.params):
                rows[:, j] = np.asarray(value, dtype=float)
        else:
            rows = np.array([[float(v) for v in self.params]])
            if rows.size == 0:
                rows = rows.reshape(1, 0)
        return KernelSpec(self.n, rows, stacked, tuple(self.qf),
                          tuple(self.jac), dae_label), None


def _vnode(cols, k):
    c = int(cols[k])
    return "0.0" if c < 0 else f"x[{c}]"


def _xcol(cols, k):
    """Unknown read for a column that the slot guarantees is internal."""
    return f"x[{int(cols[k])}]"


# ---------------------------------------------------------------------------
# Per-device emitters.  Each receives (builder, device, columns, rows) from
# the slot and appends to builder.qf / builder.jac.
# ---------------------------------------------------------------------------


def _emit_resistor(b, dev, cols, rows):
    R = b.param(dev.resistance)
    v = b.tmp("v")
    b.qf.append(("let", v, f"{_vnode(cols, 0)} - {_vnode(cols, 1)}"))
    b.addf(rows[0], f"{v} / {R}")
    b.addf(rows[1], f"-({v} / {R})")
    g = f"1.0 / {R}"
    b.adddf(rows[0], cols[0], g)
    b.adddf(rows[0], cols[1], f"-({g})")
    b.adddf(rows[1], cols[0], f"-({g})")
    b.adddf(rows[1], cols[1], g)


def _emit_capacitor(b, dev, cols, rows):
    C = b.param(dev.capacitance)
    v = b.tmp("v")
    b.qf.append(("let", v, f"{_vnode(cols, 0)} - {_vnode(cols, 1)}"))
    b.addq(rows[0], f"{C} * {v}")
    b.addq(rows[1], f"-({C} * {v})")
    b.adddq(rows[0], cols[0], C)
    b.adddq(rows[0], cols[1], f"-{C}")
    b.adddq(rows[1], cols[0], f"-{C}")
    b.adddq(rows[1], cols[1], C)


def _emit_inductor(b, dev, cols, rows):
    L = b.param(dev.inductance)
    ib = _xcol(cols, 2)
    b.addq(rows[2], f"{L} * {ib}")
    b.addf(rows[0], ib)
    b.addf(rows[1], f"-{ib}")
    b.addf(rows[2], f"-({_vnode(cols, 0)} - {_vnode(cols, 1)})")
    b.adddq(rows[2], cols[2], L)
    b.adddf(rows[0], cols[2], "1.0")
    b.adddf(rows[1], cols[2], "-1.0")
    b.adddf(rows[2], cols[0], "-1.0")
    b.adddf(rows[2], cols[1], "1.0")


def _emit_diode(b, dev, cols, rows):
    # Same exponential-limiting law as Diode.current()/conductance():
    # beyond v_limit the diode continues as its tangent line.
    Is = float(dev.saturation_current)
    Vt = float(dev.thermal_voltage)
    exp_lim = float(np.exp(_DIODE_LIMIT_MULTIPLE))
    IS = b.param(Is)
    VT = b.param(Vt)
    VLIM = b.param(_DIODE_LIMIT_MULTIPLE * Vt)
    SLOPE = b.param(Is * exp_lim / Vt)
    ILIM = b.param(Is * (exp_lim - 1.0))
    v = b.tmp("v")
    i = b.tmp("i")
    b.qf.append(("let", v, f"{_vnode(cols, 0)} - {_vnode(cols, 1)}"))
    b.qf.append(("let", i, "0.0"))
    b.qf.append((
        "if", f"{v} > {VLIM}",
        (("set", i, f"{ILIM} + {SLOPE} * ({v} - {VLIM})"),),
        (("set", i, f"{IS} * expm1({v} / {VT})"),),
    ))
    b.addf(rows[0], i)
    b.addf(rows[1], f"-{i}")
    vj = b.tmp("v")
    g = b.tmp("g")
    b.jac.append(("let", vj, f"{_vnode(cols, 0)} - {_vnode(cols, 1)}"))
    b.jac.append(("let", g, "0.0"))
    b.jac.append((
        "if", f"{vj} > {VLIM}",
        (("set", g, SLOPE),),
        (("set", g, f"{IS} * exp({vj} / {VT}) / {VT}"),),
    ))
    b.adddf(rows[0], cols[0], g)
    b.adddf(rows[0], cols[1], f"-{g}")
    b.adddf(rows[1], cols[0], f"-{g}")
    b.adddf(rows[1], cols[1], g)


def _emit_cubic(b, dev, cols, rows):
    G1 = b.param(dev.g1)
    G3 = b.param(dev.g3)
    v = b.tmp("v")
    i = b.tmp("i")
    b.qf.append(("let", v, f"{_vnode(cols, 0)} - {_vnode(cols, 1)}"))
    b.qf.append(("let", i, f"-{G1} * {v} + {G3} * {v} * {v} * {v}"))
    b.addf(rows[0], i)
    b.addf(rows[1], f"-{i}")
    vj = b.tmp("v")
    g = b.tmp("g")
    b.jac.append(("let", vj, f"{_vnode(cols, 0)} - {_vnode(cols, 1)}"))
    b.jac.append(("let", g, f"-{G1} + 3.0 * {G3} * {vj} * {vj}"))
    b.adddf(rows[0], cols[0], g)
    b.adddf(rows[0], cols[1], f"-{g}")
    b.adddf(rows[1], cols[0], f"-{g}")
    b.adddf(rows[1], cols[1], g)


def _emit_tanh_negative(b, dev, cols, rows):
    GN = b.param(dev.gneg)
    GS = b.param(dev.gsat)
    IM = b.param(dev.imax)
    v = b.tmp("v")
    i = b.tmp("i")
    b.qf.append(("let", v, f"{_vnode(cols, 0)} - {_vnode(cols, 1)}"))
    b.qf.append(("let", i,
                 f"{GS} * {v} - {IM} * tanh({GN} * {v} / {IM})"))
    b.addf(rows[0], i)
    b.addf(rows[1], f"-{i}")
    vj = b.tmp("v")
    ch = b.tmp("ch")
    g = b.tmp("g")
    b.jac.append(("let", vj, f"{_vnode(cols, 0)} - {_vnode(cols, 1)}"))
    b.jac.append(("let", ch, f"cosh({GN} * {vj} / {IM})"))
    b.jac.append(("let", g, f"{GS} - {GN} * (1.0 / ({ch} * {ch}))"))
    b.adddf(rows[0], cols[0], g)
    b.adddf(rows[0], cols[1], f"-{g}")
    b.adddf(rows[1], cols[0], f"-{g}")
    b.adddf(rows[1], cols[1], g)


def _emit_tanh_transconductance(b, dev, cols, rows):
    GM = b.param(dev.gm)
    IM = b.param(dev.imax)
    v = b.tmp("v")
    i = b.tmp("i")
    b.qf.append(("let", v, f"{_vnode(cols, 2)} - {_vnode(cols, 3)}"))
    b.qf.append(("let", i, f"{IM} * tanh({GM} * {v} / {IM})"))
    b.addf(rows[0], i)
    b.addf(rows[1], f"-{i}")
    vj = b.tmp("v")
    ch = b.tmp("ch")
    g = b.tmp("g")
    b.jac.append(("let", vj, f"{_vnode(cols, 2)} - {_vnode(cols, 3)}"))
    b.jac.append(("let", ch, f"cosh({GM} * {vj} / {IM})"))
    b.jac.append(("let", g, f"{GM} * (1.0 / ({ch} * {ch}))"))
    b.adddf(rows[0], cols[2], g)
    b.adddf(rows[0], cols[3], f"-{g}")
    b.adddf(rows[1], cols[2], f"-{g}")
    b.adddf(rows[1], cols[3], g)


def _emit_vccs(b, dev, cols, rows):
    GM = b.param(dev.gm)
    v = b.tmp("v")
    b.qf.append(("let", v, f"{_vnode(cols, 2)} - {_vnode(cols, 3)}"))
    b.addf(rows[0], f"{GM} * {v}")
    b.addf(rows[1], f"-({GM} * {v})")
    b.adddf(rows[0], cols[2], GM)
    b.adddf(rows[0], cols[3], f"-{GM}")
    b.adddf(rows[1], cols[2], f"-{GM}")
    b.adddf(rows[1], cols[3], GM)


def _emit_vcvs(b, dev, cols, rows):
    MU = b.param(dev.mu)
    ib = _xcol(cols, 4)
    b.addf(rows[0], ib)
    b.addf(rows[1], f"-{ib}")
    b.addf(rows[4],
           f"({_vnode(cols, 0)} - {_vnode(cols, 1)})"
           f" - {MU} * ({_vnode(cols, 2)} - {_vnode(cols, 3)})")
    b.adddf(rows[0], cols[4], "1.0")
    b.adddf(rows[1], cols[4], "-1.0")
    b.adddf(rows[4], cols[0], "1.0")
    b.adddf(rows[4], cols[1], "-1.0")
    b.adddf(rows[4], cols[2], f"-{MU}")
    b.adddf(rows[4], cols[3], MU)


def _emit_voltage_source(b, dev, cols, rows):
    ib = _xcol(cols, 2)
    b.addf(rows[0], ib)
    b.addf(rows[1], f"-{ib}")
    b.addf(rows[2], f"{_vnode(cols, 0)} - {_vnode(cols, 1)}")
    b.adddf(rows[0], cols[2], "1.0")
    b.adddf(rows[1], cols[2], "-1.0")
    b.adddf(rows[2], cols[0], "1.0")
    b.adddf(rows[2], cols[1], "-1.0")


def _emit_current_source(b, dev, cols, rows):
    # Pure forcing: contributes only to b(t), which stays python-side.
    pass


def _emit_mems_varactor(b, dev, cols, rows):
    C0 = b.param(dev.c0)
    ZS = b.param(dev.z_scale)
    M = b.param(dev.mass)
    DAMP = b.param(dev.damping)
    K = b.param(dev.stiffness)
    z = _xcol(cols, 2)
    u = _xcol(cols, 3)
    v = b.tmp("v")
    s = b.tmp("s")
    o = b.tmp("o")
    cap = b.tmp("c")
    b.qf.append(("let", v, f"{_vnode(cols, 0)} - {_vnode(cols, 1)}"))
    b.qf.append(("let", s, f"{z} / {ZS}"))
    b.qf.append(("let", o, f"1.0 + {s} * {s}"))
    b.qf.append(("let", cap, f"{C0} / ({o} * {o})"))
    b.addq(rows[0], f"{cap} * {v}")
    b.addq(rows[1], f"-({cap} * {v})")
    b.addq(rows[2], z)
    b.addq(rows[3], f"{M} * {u}")
    b.addf(rows[2], f"-{u}")
    b.addf(rows[3], f"{DAMP} * {u} + {K} * {z}")
    vj = b.tmp("v")
    sj = b.tmp("s")
    oj = b.tmp("o")
    capj = b.tmp("c")
    dcv = b.tmp("dcv")
    b.jac.append(("let", vj, f"{_vnode(cols, 0)} - {_vnode(cols, 1)}"))
    b.jac.append(("let", sj, f"{z} / {ZS}"))
    b.jac.append(("let", oj, f"1.0 + {sj} * {sj}"))
    b.jac.append(("let", capj, f"{C0} / ({oj} * {oj})"))
    b.jac.append(("let", dcv,
                  f"-4.0 * {C0} * {sj} / ({ZS} * {oj} * {oj} * {oj})"
                  f" * {vj}"))
    b.adddq(rows[0], cols[0], capj)
    b.adddq(rows[0], cols[1], f"-{capj}")
    b.adddq(rows[0], cols[2], dcv)
    b.adddq(rows[1], cols[0], f"-{capj}")
    b.adddq(rows[1], cols[1], capj)
    b.adddq(rows[1], cols[2], f"-({dcv})")
    b.adddq(rows[2], cols[2], "1.0")
    b.adddq(rows[3], cols[3], M)
    b.adddf(rows[2], cols[3], "-1.0")
    b.adddf(rows[3], cols[2], K)
    b.adddf(rows[3], cols[3], DAMP)


def _device_emitters():
    from repro.circuits.devices.capacitor import Capacitor
    from repro.circuits.devices.controlled import VCCS, VCVS
    from repro.circuits.devices.diode import Diode
    from repro.circuits.devices.inductor import Inductor
    from repro.circuits.devices.mems_varactor import MemsVaractor
    from repro.circuits.devices.nonlinear_resistor import (
        CubicConductance,
        TanhNegativeConductance,
    )
    from repro.circuits.devices.resistor import Resistor
    from repro.circuits.devices.sources import CurrentSource, VoltageSource
    from repro.circuits.devices.transconductance import TanhTransconductance

    return {
        Resistor: _emit_resistor,
        Capacitor: _emit_capacitor,
        Inductor: _emit_inductor,
        Diode: _emit_diode,
        CubicConductance: _emit_cubic,
        TanhNegativeConductance: _emit_tanh_negative,
        TanhTransconductance: _emit_tanh_transconductance,
        VCCS: _emit_vccs,
        VCVS: _emit_vcvs,
        VoltageSource: _emit_voltage_source,
        CurrentSource: _emit_current_source,
        MemsVaractor: _emit_mems_varactor,
    }


# ---------------------------------------------------------------------------
# Hand-written DAEs.
# ---------------------------------------------------------------------------


def _build_circuit_spec(dae):
    emitters = _device_emitters()
    b = _SpecBuilder(dae.n)
    for slot in dae._slots:
        emit = emitters.get(type(slot.device))
        if emit is None:
            return None, (f"device {type(slot.device).__name__!r} has no "
                          "kernel emitter")
        emit(b, slot.device, slot.columns, slot.rows)
    label = getattr(dae.circuit, "title", None) or "circuit"
    return b.finalize(f"circuit:{label}")


def _build_vco_spec(dae):
    p = dae.params
    b = _SpecBuilder(4)
    C0 = b.param(p.c0)
    ZS = b.param(p.z_scale)
    L = b.param(p.inductance)
    M = b.param(p.mass)
    G1 = b.param(p.g1)
    G3 = b.param(p.g3)
    DAMP = b.param(p.damping)
    K = b.param(p.stiffness)
    s = b.tmp("s")
    o = b.tmp("o")
    b.qf.append(("let", s, f"x[2] / {ZS}"))
    b.qf.append(("let", o, f"1.0 + {s} * {s}"))
    b.qf.append(("add", "q", 0, f"{C0} / ({o} * {o}) * x[0]"))
    b.qf.append(("add", "q", 1, f"{L} * x[1]"))
    b.qf.append(("add", "q", 2, "x[2]"))
    b.qf.append(("add", "q", 3, f"{M} * x[3]"))
    b.qf.append(("add", "f", 0,
                 f"x[1] - {G1} * x[0] + {G3} * x[0] * x[0] * x[0]"))
    b.qf.append(("add", "f", 1, "-x[0]"))
    b.qf.append(("add", "f", 2, "-x[3]"))
    b.qf.append(("add", "f", 3, f"{DAMP} * x[3] + {K} * x[2]"))
    sj = b.tmp("s")
    oj = b.tmp("o")
    b.jac.append(("let", sj, f"x[2] / {ZS}"))
    b.jac.append(("let", oj, f"1.0 + {sj} * {sj}"))
    b.jac.append(("add", "dq", 0, f"{C0} / ({oj} * {oj})"))
    b.jac.append(("add", "dq", 2,
                  f"-4.0 * {C0} * {sj} / ({ZS} * {oj} * {oj} * {oj})"
                  f" * x[0]"))
    b.jac.append(("add", "dq", 5, L))
    b.jac.append(("add", "dq", 10, "1.0"))
    b.jac.append(("add", "dq", 15, M))
    b.jac.append(("add", "df", 0, f"-{G1} + 3.0 * {G3} * x[0] * x[0]"))
    b.jac.append(("add", "df", 1, "1.0"))
    b.jac.append(("add", "df", 4, "-1.0"))
    b.jac.append(("add", "df", 11, "-1.0"))
    b.jac.append(("add", "df", 14, K))
    b.jac.append(("add", "df", 15, DAMP))
    return b.finalize("mems-vco")


def _build_vdp_spec(dae):
    b = _SpecBuilder(2)
    MU = b.param(dae.mu)
    b.qf.append(("add", "q", 0, "x[0]"))
    b.qf.append(("add", "q", 1, "x[1]"))
    b.qf.append(("add", "f", 0, "-x[1]"))
    b.qf.append(("add", "f", 1,
                 f"-{MU} * (1.0 - x[0] * x[0]) * x[1] + x[0]"))
    b.jac.append(("add", "dq", 0, "1.0"))
    b.jac.append(("add", "dq", 3, "1.0"))
    b.jac.append(("add", "df", 1, "-1.0"))
    b.jac.append(("add", "df", 2, f"2.0 * {MU} * x[0] * x[1] + 1.0"))
    b.jac.append(("add", "df", 3, f"-{MU} * (1.0 - x[0] * x[0])"))
    return b.finalize("van-der-pol")


def spec_for_dae(dae):
    """Lower ``dae`` to a :class:`KernelSpec`.

    Returns ``(spec, None)`` on success or ``(None, reason)`` for DAEs
    outside the registry.  A fault-free :class:`repro.testing.faults.FaultyDAE`
    wrapper delegates to its wrapped DAE (its ``b`` poisoning stays
    python-side in the forcing grid); wrappers with q/f/Jacobian faults
    must run the python path so the injections are actually exercised.
    """
    from repro.circuits.library import MemsVcoDae
    from repro.circuits.mna import CircuitDAE
    from repro.dae.manufactured import VanDerPolDae

    cls = type(dae)
    if cls.__name__ == "FaultyDAE" and cls.__module__ == "repro.testing.faults":
        if dae.nan_q_calls or dae.nan_f_calls or dae.singular_df_calls:
            return None, "fault injection targets q/f/df"
        return spec_for_dae(dae._dae)
    if cls is CircuitDAE:
        return _build_circuit_spec(dae)
    if cls is MemsVcoDae:
        return _build_vco_spec(dae)
    if cls is VanDerPolDae:
        return _build_vdp_spec(dae)
    return None, f"no kernel lowering for {cls.__name__}"


def _waveform_is_constant(wave):
    from repro.circuits.waveforms import DC

    return isinstance(wave, DC) and np.ndim(wave.value) == 0


def constant_forcing_row(dae, t_ref=0.0):
    """Return ``b(t_ref)`` when ``b(t)`` is provably time-invariant.

    The adaptive compiled sweep picks its own step times inside the
    kernel, so it cannot use a precomputed forcing grid — it needs one
    constant forcing row instead.  This walks the same registry of DAE
    classes as :func:`spec_for_dae` and inspects their drive waveforms
    structurally (scalar :class:`~repro.circuits.waveforms.DC` only);
    anything it cannot prove constant returns ``None`` and stays on the
    python adaptive path.
    """
    from repro.circuits.library import MemsVcoDae
    from repro.circuits.mna import CircuitDAE
    from repro.dae.manufactured import VanDerPolDae

    cls = type(dae)
    if cls.__name__ == "FaultyDAE" and cls.__module__ == "repro.testing.faults":
        if dae.nan_b_window is not None:
            return None
        return constant_forcing_row(dae._dae, t_ref)
    if cls is MemsVcoDae:
        if _waveform_is_constant(dae.control):
            return np.asarray(dae.b(t_ref), dtype=float)
        return None
    if cls is VanDerPolDae:
        return np.asarray(dae.b(t_ref), dtype=float)
    if cls is CircuitDAE:
        for slot in dae._slots:
            wave = getattr(slot.device, "waveform", None)
            if wave is None:
                wave = getattr(slot.device, "control", None)
            if wave is not None and not _waveform_is_constant(wave):
                return None
        return np.asarray(dae.b(t_ref), dtype=float)
    return None
