"""Render a :class:`~repro.kernels.registry.KernelSpec` to source code.

One spec renders to two equivalent translation units:

* a **Python module** whose functions are decorated with ``KERNEL_JIT``
  (``numba.njit(cache=True)`` when numba imports, identity otherwise) —
  the numba backend and the pure-python reference oracle share this
  exact source, so "compiled vs python" can never drift algorithmically;
* a **C file** compiled with the host toolchain (``cc -O2 -shared``)
  and driven through ctypes — the fast path on boxes without numba.

Both carry the same seven entry points: ``eval_qf`` / ``eval_jac``
(single point), ``eval_qf_batch`` / ``eval_jac_batch`` (lock-step and
collocation batches), ``sweep`` — the fused fixed-step chord march
(integrator terms, polynomial predictor, residual, frozen-LU chord
Newton with refresh/line-search policy, history ring update) that runs
many grid steps per call with zero Python in between — plus its two
siblings: ``sweep_adaptive``, the same serial chord step wrapped in the
proportional local-error dt controller (constant forcing only), and
``sweep_ens``, the batched ``(B, n)`` lock-step ensemble march over a
``(B, n, n)`` frozen-LU factor stack with per-scenario convergence /
abandonment masks and a per-scenario damped line search.

``sweep`` transcribes :class:`repro.linalg.newton.StaleJacobianNewton`
and the :func:`repro.transient.engine.simulate_transient` fixed-grid
inner loop statement for statement; ``sweep_adaptive`` additionally
transcribes the engine's adaptive error-control block, and ``sweep_ens``
transcribes :class:`repro.transient.ensemble._EnsembleChord` /
``_EnsembleStepController``.  Any change there must be mirrored here
(the equivalence tests in ``tests/test_kernels.py`` will catch a
drift).  Status codes returned by the sweep entry points:

====  =========================================================
0     ran to ``gi_end`` / ``max_accept`` / ``t_stop``
1     chord Newton hit ``max_iterations`` (factors dropped; for
      ``sweep_ens``: not every scenario converged or was rescued)
2     non-finite initial residual (factors kept, like the python path;
      serial sweeps only — ensemble rows simply fail to converge)
3     singular/non-finite Jacobian factorisation (factors dropped)
4     adaptive local-error rejection would underflow ``dt_min``
      (``sweep_adaptive`` only; the shrink is *not* committed so the
      python replay reproduces the exact failure)
====  =========================================================
"""

from __future__ import annotations


def _render_py(stmts, indent):
    pad = "    " * indent
    lines = []
    for s in stmts:
        op = s[0]
        if op in ("let", "set"):
            lines.append(f"{pad}{s[1]} = {s[2]}")
        elif op == "store":
            lines.append(f"{pad}{s[1]}[{s[2]}] = {s[3]}")
        elif op == "add":
            lines.append(f"{pad}{s[1]}[{s[2]}] += {s[3]}")
        elif op == "if":
            lines.append(f"{pad}if {s[1]}:")
            lines.extend(_render_py(s[2], indent + 1) or [pad + "    pass"])
            if s[3]:
                lines.append(f"{pad}else:")
                lines.extend(_render_py(s[3], indent + 1))
        else:  # pragma: no cover - registry emits only the forms above
            raise ValueError(f"unknown statement {s[0]!r}")
    return lines


def _render_c(stmts, indent, declared=None):
    pad = "    " * indent
    declared = declared if declared is not None else set()
    lines = []
    for s in stmts:
        op = s[0]
        if op == "let":
            declared.add(s[1])
            lines.append(f"{pad}double {s[1]} = {s[2]};")
        elif op == "set":
            lines.append(f"{pad}{s[1]} = {s[2]};")
        elif op == "store":
            lines.append(f"{pad}{s[1]}[{s[2]}] = {s[3]};")
        elif op == "add":
            lines.append(f"{pad}{s[1]}[{s[2]}] += {s[3]};")
        elif op == "if":
            lines.append(f"{pad}if ({s[1]}) {{")
            lines.extend(_render_c(s[2], indent + 1, declared))
            if s[3]:
                lines.append(f"{pad}}} else {{")
                lines.extend(_render_c(s[3], indent + 1, declared))
            lines.append(f"{pad}}}")
        else:  # pragma: no cover
            raise ValueError(f"unknown statement {s[0]!r}")
    return lines


_PY_RUNTIME = '''

@KERNEL_JIT
def eval_qf_batch(X, P, Q, F):
    for b in range(X.shape[0]):
        pi = b if P.shape[0] > 1 else 0
        eval_qf(X[b], P[pi], Q[b], F[b])


@KERNEL_JIT
def eval_jac_batch(X, P, DQ, DF):
    for b in range(X.shape[0]):
        pi = b if P.shape[0] > 1 else 0
        eval_jac(X[b], P[pi], DQ[b], DF[b])


@KERNEL_JIT
def lu_factor(A, piv):
    for k in range(N):
        pmax = 0.0
        pidx = k
        for i in range(k, N):
            a = fabs(A[i, k])
            if a > pmax:
                pmax = a
                pidx = i
        if not (pmax > 0.0) or not isfinite(pmax):
            return False
        piv[k] = pidx
        if pidx != k:
            for j in range(N):
                tmp = A[k, j]
                A[k, j] = A[pidx, j]
                A[pidx, j] = tmp
        akk = A[k, k]
        for i in range(k + 1, N):
            lik = A[i, k] / akk
            A[i, k] = lik
            for j in range(k + 1, N):
                A[i, j] -= lik * A[k, j]
    return True


@KERNEL_JIT
def lu_solve(A, piv, b, out):
    for i in range(N):
        out[i] = b[i]
    for k in range(N):
        pidx = piv[k]
        if pidx != k:
            tmp = out[k]
            out[k] = out[pidx]
            out[pidx] = tmp
        for i in range(k + 1, N):
            out[i] -= A[i, k] * out[k]
    for i in range(N - 1, -1, -1):
        acc = out[i]
        for j in range(i + 1, N):
            acc -= A[i, j] * out[j]
        out[i] = acc / A[i, i]


@KERNEL_JIT
def _residual(x, p, b_row, alpha, beta, rhs, qv, fv, rc):
    # qv <- q(x); fv <- f(x) - b; rc <- alpha*q + rhs + beta*(f - b).
    # Returns the residual inf-norm (nan if any component is nan).
    eval_qf(x, p, qv, fv)
    norm = 0.0
    bad = False
    for i in range(N):
        fb = fv[i] - b_row[i]
        fv[i] = fb
        r = alpha * qv[i] + rhs[i] + beta * fb
        rc[i] = r
        a = fabs(r)
        if a != a:
            bad = True
        elif a > norm:
            norm = a
    if bad:
        return nan
    return norm


@KERNEL_JIT
def _refactor(x, p, alpha, beta, A, piv, dqs, dfs, jac_meta):
    eval_jac(x, p, dqs, dfs)
    for i in range(N):
        for j in range(N):
            A[i, j] = alpha * dqs[i * N + j] + beta * dfs[i * N + j]
    if not lu_factor(A, piv):
        return False
    jac_meta[0] = alpha
    jac_meta[1] = beta
    for i in range(N):
        jac_meta[2 + i] = x[i]
    return True


@KERNEL_JIT
def sweep(t_grid, b_grid, gi_start, gi_end, h_t, h_x, h_q, h_fb, hstate,
          flags, A, piv, jac_meta, reg, dopts, iopts, p, out_x, counters,
          xc, xn, dxs, rc, rn, qv, fv, rhs, dqs, dfs):
    atol = dopts[0]
    rtol = dopts[1]
    contraction = dopts[2]
    param_rtol = dopts[3]
    maxiter = iopts[0]
    halvings = iopts[1]
    integ = iopts[2]
    have = flags[0] != 0
    if have and flags[1] != 0:
        # Resume: rebuild the frozen LU from checkpointed (alpha, beta,
        # x) metadata — uncounted, like the python restore path.
        for i in range(N):
            xc[i] = jac_meta[2 + i]
        eval_jac(xc, p, dqs, dfs)
        for i in range(N):
            for j in range(N):
                A[i, j] = (jac_meta[0] * dqs[i * N + j]
                           + jac_meta[1] * dfs[i * N + j])
        if not lu_factor(A, piv):
            have = False
    flags[1] = 0
    status = 0
    for gi in range(gi_start, gi_end):
        hc = hstate[0]
        t_new = t_grid[gi]
        dt = t_new - h_t[hc - 1]
        if integ == 1:
            alpha = 1.0 / dt
            beta = 0.5
            for i in range(N):
                rhs[i] = -h_q[hc - 1, i] / dt + 0.5 * h_fb[hc - 1, i]
        elif integ == 2 and hc >= 2:
            t1 = h_t[hc - 1]
            t2 = h_t[hc - 2]
            alpha = (2.0 * t_new - t1 - t2) / ((t_new - t1) * (t_new - t2))
            beta = 1.0
            d1 = (t_new - t2) / ((t1 - t_new) * (t1 - t2))
            d2 = (t_new - t1) / ((t2 - t_new) * (t2 - t1))
            for i in range(N):
                rhs[i] = d1 * h_q[hc - 1, i] + d2 * h_q[hc - 2, i]
        else:
            alpha = 1.0 / dt
            beta = 1.0
            for i in range(N):
                rhs[i] = -h_q[hc - 1, i] / dt
        if alpha != reg[1]:
            old = reg[0]
            if old == old and fabs(alpha - old) > param_rtol * fabs(old):
                have = False
            reg[0] = alpha
            reg[1] = alpha
        if (hc >= 3 and h_t[0] != h_t[1] and h_t[1] != h_t[2]
                and h_t[0] != h_t[2]):
            ta = h_t[0]
            tb = h_t[1]
            tc = h_t[2]
            la = (t_new - tb) * (t_new - tc) / ((ta - tb) * (ta - tc))
            lb = (t_new - ta) * (t_new - tc) / ((tb - ta) * (tb - tc))
            lc = (t_new - ta) * (t_new - tb) / ((tc - ta) * (tc - tb))
            for i in range(N):
                xc[i] = la * h_x[0, i] + lb * h_x[1, i] + lc * h_x[2, i]
        elif hc >= 2 and h_t[hc - 1] != h_t[hc - 2]:
            frac = (t_new - h_t[hc - 1]) / (h_t[hc - 1] - h_t[hc - 2])
            for i in range(N):
                xc[i] = (h_x[hc - 1, i]
                         + (h_x[hc - 1, i] - h_x[hc - 2, i]) * frac)
        else:
            for i in range(N):
                xc[i] = h_x[hc - 1, i]
        counters[4] += 1
        norm = _residual(xc, p, b_grid[gi], alpha, beta, rhs, qv, fv, rc)
        counters[2] += 1
        itn = 0
        failed = 0
        converged = norm <= atol
        if not converged and not isfinite(norm):
            failed = 2
        fresh = False
        if not converged and failed == 0 and not have:
            if _refactor(xc, p, alpha, beta, A, piv, dqs, dfs, jac_meta):
                counters[3] += 1
                have = True
                fresh = True
            else:
                have = False
                failed = 3
        while failed == 0 and not converged and itn < maxiter:
            itn += 1
            counters[1] += 1
            lu_solve(A, piv, rc, dxs)
            ok = True
            for i in range(N):
                if not isfinite(dxs[i]):
                    ok = False
            if not ok:
                if fresh:
                    have = False
                    failed = 3
                    break
                if _refactor(xc, p, alpha, beta, A, piv, dqs, dfs,
                             jac_meta):
                    counters[3] += 1
                    fresh = True
                    continue
                have = False
                failed = 3
                break
            for i in range(N):
                xn[i] = xc[i] - dxs[i]
            norm_new = _residual(xn, p, b_grid[gi], alpha, beta, rhs,
                                 qv, fv, rn)
            counters[2] += 1
            if norm_new <= atol:
                for i in range(N):
                    xc[i] = xn[i]
                norm = norm_new
                converged = True
                break
            if not (norm_new < norm):
                if not fresh:
                    if _refactor(xc, p, alpha, beta, A, piv, dqs, dfs,
                                 jac_meta):
                        counters[3] += 1
                        fresh = True
                        continue
                    have = False
                    failed = 3
                    break
                step = 0.5
                for halving in range(halvings):
                    for i in range(N):
                        xn[i] = xc[i] - step * dxs[i]
                    norm_new = _residual(xn, p, b_grid[gi], alpha, beta,
                                         rhs, qv, fv, rn)
                    counters[2] += 1
                    if isfinite(norm_new) and norm_new < norm:
                        break
                    if halving < halvings - 1:
                        step = step * 0.5
            small = True
            for i in range(N):
                m = fabs(xn[i])
                if m < 1.0:
                    m = 1.0
                d = fabs(xn[i] - xc[i])
                if not (d <= rtol * m):
                    small = False
            slow = norm_new > contraction * norm
            for i in range(N):
                xc[i] = xn[i]
                rc[i] = rn[i]
            norm = norm_new
            if norm <= atol or (small and isfinite(norm)):
                converged = True
                break
            if slow and not fresh:
                if _refactor(xc, p, alpha, beta, A, piv, dqs, dfs,
                             jac_meta):
                    counters[3] += 1
                    fresh = True
                else:
                    have = False
                    failed = 3
                    break
        if not converged:
            if failed == 0:
                failed = 1
                have = False
            status = failed
            break
        if hc == 3:
            for j in range(2):
                h_t[j] = h_t[j + 1]
                for i in range(N):
                    h_x[j, i] = h_x[j + 1, i]
                    h_q[j, i] = h_q[j + 1, i]
                    h_fb[j, i] = h_fb[j + 1, i]
            hc = 2
        h_t[hc] = t_new
        for i in range(N):
            h_x[hc, i] = xc[i]
            h_q[hc, i] = qv[i]
            h_fb[hc, i] = fv[i]
        hstate[0] = hc + 1
        row = gi - gi_start
        for i in range(N):
            out_x[row, i] = xc[i]
        counters[0] += 1
    flags[0] = 1 if have else 0
    return status


@KERNEL_JIT
def sweep_adaptive(b_row, max_accept, h_t, h_x, h_q, h_fb, hstate, flags,
                   A, piv, jac_meta, reg, dopts, iopts, p, out_t, out_x,
                   counters, xc, xn, dxs, rc, rn, qv, fv, rhs, dqs, dfs):
    # Adaptive-step serial march for time-invariant forcing b(t) == b_row:
    # the sweep() chord step wrapped in the proportional local-error
    # controller of simulate_transient, transcribed statement for
    # statement.  dt lives in reg[2] across calls; counters[5] counts
    # rejected steps.  Statuses 1/2/3 as in sweep(); status 4 flags an
    # imminent dt_min underflow WITHOUT committing the shrink, so the
    # python replay of the attempt reproduces the exact failure.
    atol = dopts[0]
    rtol = dopts[1]
    contraction = dopts[2]
    param_rtol = dopts[3]
    err_atol = dopts[4]
    err_rtol = dopts[5]
    dt_min = dopts[6]
    dt_max = dopts[7]
    t_stop = dopts[8]
    maxiter = iopts[0]
    halvings = iopts[1]
    integ = iopts[2]
    order = iopts[3]
    have = flags[0] != 0
    if have and flags[1] != 0:
        # Resume: rebuild the frozen LU from checkpointed (alpha, beta,
        # x) metadata — uncounted, like the python restore path.
        for i in range(N):
            xc[i] = jac_meta[2 + i]
        eval_jac(xc, p, dqs, dfs)
        for i in range(N):
            for j in range(N):
                A[i, j] = (jac_meta[0] * dqs[i * N + j]
                           + jac_meta[1] * dfs[i * N + j])
        if not lu_factor(A, piv):
            have = False
    flags[1] = 0
    dt = reg[2]
    mx = fabs(t_stop)
    if 1.0 > mx:
        mx = 1.0
    eps_stop = 1e-15 * mx
    accepted = 0
    status = 0
    while accepted < max_accept:
        hc = hstate[0]
        t = h_t[hc - 1]
        if not (t < t_stop - eps_stop):
            break
        rem = t_stop - t
        if rem < dt:
            dt = rem
        t_new = t + dt
        dts = t_new - h_t[hc - 1]
        if integ == 1:
            alpha = 1.0 / dts
            beta = 0.5
            for i in range(N):
                rhs[i] = -h_q[hc - 1, i] / dts + 0.5 * h_fb[hc - 1, i]
        elif integ == 2 and hc >= 2:
            t1 = h_t[hc - 1]
            t2 = h_t[hc - 2]
            alpha = (2.0 * t_new - t1 - t2) / ((t_new - t1) * (t_new - t2))
            beta = 1.0
            d1 = (t_new - t2) / ((t1 - t_new) * (t1 - t2))
            d2 = (t_new - t1) / ((t2 - t_new) * (t2 - t1))
            for i in range(N):
                rhs[i] = d1 * h_q[hc - 1, i] + d2 * h_q[hc - 2, i]
        else:
            alpha = 1.0 / dts
            beta = 1.0
            for i in range(N):
                rhs[i] = -h_q[hc - 1, i] / dts
        if alpha != reg[1]:
            old = reg[0]
            if old == old and fabs(alpha - old) > param_rtol * fabs(old):
                have = False
            reg[0] = alpha
            reg[1] = alpha
        if (hc >= 3 and h_t[0] != h_t[1] and h_t[1] != h_t[2]
                and h_t[0] != h_t[2]):
            ta = h_t[0]
            tb = h_t[1]
            tc = h_t[2]
            la = (t_new - tb) * (t_new - tc) / ((ta - tb) * (ta - tc))
            lb = (t_new - ta) * (t_new - tc) / ((tb - ta) * (tb - tc))
            lc = (t_new - ta) * (t_new - tb) / ((tc - ta) * (tc - tb))
            for i in range(N):
                xc[i] = la * h_x[0, i] + lb * h_x[1, i] + lc * h_x[2, i]
        elif hc >= 2 and h_t[hc - 1] != h_t[hc - 2]:
            frac = (t_new - h_t[hc - 1]) / (h_t[hc - 1] - h_t[hc - 2])
            for i in range(N):
                xc[i] = (h_x[hc - 1, i]
                         + (h_x[hc - 1, i] - h_x[hc - 2, i]) * frac)
        else:
            for i in range(N):
                xc[i] = h_x[hc - 1, i]
        counters[4] += 1
        norm = _residual(xc, p, b_row, alpha, beta, rhs, qv, fv, rc)
        counters[2] += 1
        itn = 0
        failed = 0
        converged = norm <= atol
        if not converged and not isfinite(norm):
            failed = 2
        fresh = False
        if not converged and failed == 0 and not have:
            if _refactor(xc, p, alpha, beta, A, piv, dqs, dfs, jac_meta):
                counters[3] += 1
                have = True
                fresh = True
            else:
                have = False
                failed = 3
        while failed == 0 and not converged and itn < maxiter:
            itn += 1
            counters[1] += 1
            lu_solve(A, piv, rc, dxs)
            ok = True
            for i in range(N):
                if not isfinite(dxs[i]):
                    ok = False
            if not ok:
                if fresh:
                    have = False
                    failed = 3
                    break
                if _refactor(xc, p, alpha, beta, A, piv, dqs, dfs,
                             jac_meta):
                    counters[3] += 1
                    fresh = True
                    continue
                have = False
                failed = 3
                break
            for i in range(N):
                xn[i] = xc[i] - dxs[i]
            norm_new = _residual(xn, p, b_row, alpha, beta, rhs,
                                 qv, fv, rn)
            counters[2] += 1
            if norm_new <= atol:
                for i in range(N):
                    xc[i] = xn[i]
                norm = norm_new
                converged = True
                break
            if not (norm_new < norm):
                if not fresh:
                    if _refactor(xc, p, alpha, beta, A, piv, dqs, dfs,
                                 jac_meta):
                        counters[3] += 1
                        fresh = True
                        continue
                    have = False
                    failed = 3
                    break
                step = 0.5
                for halving in range(halvings):
                    for i in range(N):
                        xn[i] = xc[i] - step * dxs[i]
                    norm_new = _residual(xn, p, b_row, alpha, beta,
                                         rhs, qv, fv, rn)
                    counters[2] += 1
                    if isfinite(norm_new) and norm_new < norm:
                        break
                    if halving < halvings - 1:
                        step = step * 0.5
            small = True
            for i in range(N):
                m = fabs(xn[i])
                if m < 1.0:
                    m = 1.0
                d = fabs(xn[i] - xc[i])
                if not (d <= rtol * m):
                    small = False
            slow = norm_new > contraction * norm
            for i in range(N):
                xc[i] = xn[i]
                rc[i] = rn[i]
            norm = norm_new
            if norm <= atol or (small and isfinite(norm)):
                converged = True
                break
            if slow and not fresh:
                if _refactor(xc, p, alpha, beta, A, piv, dqs, dfs,
                             jac_meta):
                    counters[3] += 1
                    fresh = True
                else:
                    have = False
                    failed = 3
                    break
        if not converged:
            if failed == 0:
                failed = 1
                have = False
            status = failed
            break
        # Local-error control (simulate_transient's adaptive block).
        dt_next = dt
        if hc >= 2 and h_t[hc - 1] != h_t[hc - 2]:
            denom = h_t[hc - 1] - h_t[hc - 2]
            lead = t_new - h_t[hc - 1]
            acc = 0.0
            for i in range(N):
                slope = (h_x[hc - 1, i] - h_x[hc - 2, i]) / denom
                xp = h_x[hc - 1, i] + slope * lead
                ax_new = fabs(xc[i])
                ax_old = fabs(h_x[hc - 1, i])
                big = ax_new if ax_new > ax_old else ax_old
                scale = err_atol + err_rtol * big
                e = (xc[i] - xp) / scale
                acc += e * e
            err = sqrt(acc / N)
            if err > 1.0:
                counters[5] += 1
                fac = 0.9 * err ** (-1.0 / (order + 1))
                if not (fac > 0.2):
                    fac = 0.2
                dtn = dt * fac
                if not (dtn > dt_min):
                    dtn = dt_min
                if dtn <= dt_min:
                    status = 4
                    break
                dt = dtn
                continue
            if err > 0.0:
                growth = 0.9 * err ** (-1.0 / (order + 1))
            else:
                growth = 5.0
            if not (growth > 0.2):
                growth = 0.2
            if not (growth < 5.0):
                growth = 5.0
            dt_next = dt * growth
        if hc == 3:
            for j in range(2):
                h_t[j] = h_t[j + 1]
                for i in range(N):
                    h_x[j, i] = h_x[j + 1, i]
                    h_q[j, i] = h_q[j + 1, i]
                    h_fb[j, i] = h_fb[j + 1, i]
            hc = 2
        h_t[hc] = t_new
        for i in range(N):
            h_x[hc, i] = xc[i]
            h_q[hc, i] = qv[i]
            h_fb[hc, i] = fv[i]
        hstate[0] = hc + 1
        out_t[accepted] = t_new
        for i in range(N):
            out_x[accepted, i] = xc[i]
        accepted += 1
        counters[0] += 1
        dt = dt_next
        if dt_max < dt:
            dt = dt_max
    reg[2] = dt
    flags[0] = 1 if have else 0
    return status


@KERNEL_JIT
def _ens_residual(X, P, b_rows, alpha, beta, RHS, QV, FV, RC, norms):
    # One batched residual evaluation: every scenario row, like the
    # ensemble engine's residual(states) over the whole (B, n) stack.
    for b in range(X.shape[0]):
        pi = b if P.shape[0] > 1 else 0
        norms[b] = _residual(X[b], P[pi], b_rows[b], alpha, beta,
                             RHS[b], QV[b], FV[b], RC[b])


@KERNEL_JIT
def _ens_refactor(X, P, alpha, beta, A, piv, dqs, dfs, jac_meta):
    # Factor all B diagonal blocks; any singular block fails the whole
    # stack, mirroring BlockFactorization raising for the batch.
    B = X.shape[0]
    for b in range(B):
        pi = b if P.shape[0] > 1 else 0
        eval_jac(X[b], P[pi], dqs, dfs)
        for i in range(N):
            for j in range(N):
                A[b, i, j] = (alpha * dqs[i * N + j]
                              + beta * dfs[i * N + j])
        if not lu_factor(A[b], piv[b]):
            return False
    jac_meta[0] = alpha
    jac_meta[1] = beta
    for b in range(B):
        for i in range(N):
            jac_meta[2 + b * N + i] = X[b, i]
    return True


@KERNEL_JIT
def sweep_ens(t_grid, b_grid, gi_start, gi_end, h_t, h_x, h_q, h_fb,
              hstate, flags, A, piv, jac_meta, reg, dopts, iopts, P,
              out_x, counters, iters_b, XC, XN, UPD, RC, RN, QV, FV,
              RHS, dqs, dfs, masks, fwork):
    # Batched (B, n) lock-step march: _EnsembleChord.solve plus the
    # ensemble engine's per-step scaffolding, transcribed statement for
    # statement.  masks rows: 0 converged, 1 abandoned, 2 scratch
    # (finite / update_small+slow flags), 3 uphill, 4 line-search need,
    # 5 this step's per-scenario iteration deltas.  fwork rows: norms,
    # trial norms, line-search steps.  iters_b accumulates committed
    # per-scenario iterations (discarded on a singular refactorisation,
    # exactly like the python controller's early return).
    B = XC.shape[0]
    atol = dopts[0]
    rtol = dopts[1]
    contraction = dopts[2]
    param_rtol = dopts[3]
    maxiter = iopts[0]
    halvings = iopts[1]
    integ = iopts[2]
    conv = masks[0]
    aband = masks[1]
    scratch = masks[2]
    uph = masks[3]
    need = masks[4]
    dits = masks[5]
    norms = fwork[0]
    tnorms = fwork[1]
    stepv = fwork[2]
    have = flags[0] != 0
    if have and flags[1] != 0:
        # Resume/re-entry: rebuild every LU block from (alpha, beta,
        # states) metadata — uncounted, like the python restore path.
        for b in range(B):
            for i in range(N):
                XC[b, i] = jac_meta[2 + b * N + i]
        if not _ens_refactor(XC, P, jac_meta[0], jac_meta[1], A, piv,
                             dqs, dfs, jac_meta):
            have = False
    flags[1] = 0
    status = 0
    for gi in range(gi_start, gi_end):
        hc = hstate[0]
        t_new = t_grid[gi]
        dt = t_new - h_t[hc - 1]
        if integ == 1:
            alpha = 1.0 / dt
            beta = 0.5
            for b in range(B):
                for i in range(N):
                    RHS[b, i] = (-h_q[hc - 1, b, i] / dt
                                 + 0.5 * h_fb[hc - 1, b, i])
        elif integ == 2 and hc >= 2:
            t1 = h_t[hc - 1]
            t2 = h_t[hc - 2]
            alpha = (2.0 * t_new - t1 - t2) / ((t_new - t1) * (t_new - t2))
            beta = 1.0
            d1 = (t_new - t2) / ((t1 - t_new) * (t1 - t2))
            d2 = (t_new - t1) / ((t2 - t_new) * (t2 - t1))
            for b in range(B):
                for i in range(N):
                    RHS[b, i] = (d1 * h_q[hc - 1, b, i]
                                 + d2 * h_q[hc - 2, b, i])
        else:
            alpha = 1.0 / dt
            beta = 1.0
            for b in range(B):
                for i in range(N):
                    RHS[b, i] = -h_q[hc - 1, b, i] / dt
        # _EnsembleStepController._notify_alpha: one tracked alpha in
        # reg[0] (nan = unset); a >25% jump drops the factor stack.
        old = reg[0]
        if old == old and fabs(alpha - old) > param_rtol * fabs(old):
            have = False
        reg[0] = alpha
        if (hc >= 3 and h_t[0] != h_t[1] and h_t[1] != h_t[2]
                and h_t[0] != h_t[2]):
            ta = h_t[0]
            tb = h_t[1]
            tc = h_t[2]
            la = (t_new - tb) * (t_new - tc) / ((ta - tb) * (ta - tc))
            lb = (t_new - ta) * (t_new - tc) / ((tb - ta) * (tb - tc))
            lc = (t_new - ta) * (t_new - tb) / ((tc - ta) * (tc - tb))
            for b in range(B):
                for i in range(N):
                    XC[b, i] = (la * h_x[0, b, i] + lb * h_x[1, b, i]
                                + lc * h_x[2, b, i])
        elif hc >= 2 and h_t[hc - 1] != h_t[hc - 2]:
            frac = (t_new - h_t[hc - 1]) / (h_t[hc - 1] - h_t[hc - 2])
            for b in range(B):
                for i in range(N):
                    XC[b, i] = (h_x[hc - 1, b, i]
                                + (h_x[hc - 1, b, i] - h_x[hc - 2, b, i])
                                * frac)
        else:
            for b in range(B):
                for i in range(N):
                    XC[b, i] = h_x[hc - 1, b, i]
        counters[4] += 1
        _ens_residual(XC, P, b_grid[gi], alpha, beta, RHS, QV, FV, RC,
                      norms)
        counters[2] += 1
        num_left = 0
        for b in range(B):
            aband[b] = 0
            dits[b] = 0
            if norms[b] <= atol:
                conv[b] = 1
            else:
                conv[b] = 0
                num_left += 1
        failed = 0
        fresh = False
        if num_left > 0 and not have:
            if _ens_refactor(XC, P, alpha, beta, A, piv, dqs, dfs,
                             jac_meta):
                counters[3] += 1
                have = True
                fresh = True
            else:
                have = False
                failed = 3
        itn = 0
        while failed == 0 and num_left > 0 and itn < maxiter:
            itn += 1
            counters[1] += 1
            for b in range(B):
                if conv[b] == 0 and aband[b] == 0:
                    dits[b] += 1
            for b in range(B):
                lu_solve(A[b], piv[b], RC[b], UPD[b])
            anybad = False
            for b in range(B):
                fin = 1
                for i in range(N):
                    if not isfinite(UPD[b, i]):
                        fin = 0
                scratch[b] = fin
                if fin == 0 and conv[b] == 0 and aband[b] == 0:
                    anybad = True
            if anybad:
                if not fresh:
                    # Blame staleness first: refactorise at the current
                    # iterates and retry the iteration for everyone.
                    if _ens_refactor(XC, P, alpha, beta, A, piv, dqs,
                                     dfs, jac_meta):
                        counters[3] += 1
                        fresh = True
                        for b in range(B):
                            if conv[b] == 0 and aband[b] == 0:
                                dits[b] -= 1
                        counters[1] -= 1
                        itn -= 1
                        continue
                    have = False
                    failed = 3
                    break
                # Fresh factors and still non-finite: abandon those
                # scenarios to the python-side rescue, keep the rest.
                num_left = 0
                for b in range(B):
                    if (conv[b] == 0 and aband[b] == 0
                            and scratch[b] == 0):
                        aband[b] = 1
                    if conv[b] == 0 and aband[b] == 0:
                        num_left += 1
                if num_left == 0:
                    break
            for b in range(B):
                if conv[b] == 0 and aband[b] == 0:
                    for i in range(N):
                        XN[b, i] = XC[b, i] - UPD[b, i]
                else:
                    for i in range(N):
                        XN[b, i] = XC[b, i]
            _ens_residual(XN, P, b_grid[gi], alpha, beta, RHS, QV, FV,
                          RN, tnorms)
            counters[2] += 1
            anyup = False
            for b in range(B):
                imp = 1 if (tnorms[b] < norms[b]
                            or tnorms[b] <= atol) else 0
                up = 1 if (conv[b] == 0 and aband[b] == 0
                           and imp == 0) else 0
                uph[b] = up
                if up == 1:
                    anyup = True
            if anyup:
                if not fresh:
                    if _ens_refactor(XC, P, alpha, beta, A, piv, dqs,
                                     dfs, jac_meta):
                        counters[3] += 1
                        fresh = True
                        for b in range(B):
                            if conv[b] == 0 and aband[b] == 0:
                                dits[b] -= 1
                        counters[1] -= 1
                        itn -= 1
                        continue
                    have = False
                    failed = 3
                    break
                # Per-scenario damped line search, keeping the smallest
                # trial when the budget is exhausted.
                for b in range(B):
                    if conv[b] == 0 and aband[b] == 0:
                        stepv[b] = 1.0
                    else:
                        stepv[b] = 0.0
                    need[b] = uph[b]
                for halving in range(halvings):
                    for b in range(B):
                        if need[b] == 1:
                            stepv[b] = stepv[b] * 0.5
                    for b in range(B):
                        if conv[b] == 0 and aband[b] == 0:
                            for i in range(N):
                                XN[b, i] = XC[b, i] - stepv[b] * UPD[b, i]
                        else:
                            for i in range(N):
                                XN[b, i] = XC[b, i]
                    _ens_residual(XN, P, b_grid[gi], alpha, beta, RHS,
                                  QV, FV, RN, tnorms)
                    counters[2] += 1
                    anyneed = False
                    for b in range(B):
                        nd = 0
                        if uph[b] == 1 and not (isfinite(tnorms[b])
                                                and tnorms[b] < norms[b]):
                            nd = 1
                        need[b] = nd
                        if nd == 1:
                            anyneed = True
                    if not anyneed:
                        break
            # update_small & slow flags at the pre-commit states, then
            # commit trial -> states for every row (frozen rows carry
            # identical values), then per-scenario convergence checks.
            for b in range(B):
                small = 1
                for i in range(N):
                    m = fabs(XN[b, i])
                    if m < 1.0:
                        m = 1.0
                    d = fabs(XN[b, i] - XC[b, i])
                    if not (d <= rtol * m):
                        small = 0
                slow = 1 if tnorms[b] > contraction * norms[b] else 0
                scratch[b] = 2 * slow + small
            for b in range(B):
                for i in range(N):
                    XC[b, i] = XN[b, i]
                    RC[b, i] = RN[b, i]
                norms[b] = tnorms[b]
            for b in range(B):
                if conv[b] == 0 and aband[b] == 0:
                    small = scratch[b] % 2
                    if norms[b] <= atol or (small == 1
                                            and isfinite(norms[b])):
                        conv[b] = 1
            num_left = 0
            for b in range(B):
                if conv[b] == 0 and aband[b] == 0:
                    num_left += 1
            if num_left == 0:
                break
            if not fresh:
                anyslow = False
                for b in range(B):
                    if (scratch[b] >= 2 and conv[b] == 0
                            and aband[b] == 0):
                        anyslow = True
                if anyslow:
                    if _ens_refactor(XC, P, alpha, beta, A, piv, dqs,
                                     dfs, jac_meta):
                        counters[3] += 1
                        fresh = True
                    else:
                        have = False
                        failed = 3
                        break
        if failed == 3:
            # Singular stack: the python controller's SingularJacobian
            # path returns before committing per-scenario iterations.
            status = 3
            break
        for b in range(B):
            iters_b[b] += dits[b]
        all_conv = True
        for b in range(B):
            if conv[b] == 0:
                all_conv = False
        if not all_conv:
            # chord.invalidate() + hand the step back for the
            # per-scenario rescue / dt policy on the python side.
            have = False
            status = 1
            break
        if hc == 3:
            for j in range(2):
                h_t[j] = h_t[j + 1]
                for b in range(B):
                    for i in range(N):
                        h_x[j, b, i] = h_x[j + 1, b, i]
                        h_q[j, b, i] = h_q[j + 1, b, i]
                        h_fb[j, b, i] = h_fb[j + 1, b, i]
            hc = 2
        h_t[hc] = t_new
        for b in range(B):
            for i in range(N):
                h_x[hc, b, i] = XC[b, i]
                h_q[hc, b, i] = QV[b, i]
                h_fb[hc, b, i] = FV[b, i]
        hstate[0] = hc + 1
        row = gi - gi_start
        for b in range(B):
            for i in range(N):
                out_x[row, b, i] = XC[b, i]
        counters[0] += 1
    flags[0] = 1 if have else 0
    return status
'''


def generate_python_source(spec):
    qf_body = "\n".join(_render_py(spec.qf_stmts, 1)) or "    pass"
    jac_body = "\n".join(_render_py(spec.jac_stmts, 1)) or "    pass"
    return f'''"""Auto-generated kernels for {spec.dae_label} (repro.kernels).

Do not edit: regenerate via repro.kernels.codegen.generate_python_source.
"""
from math import cosh, exp, expm1, fabs, isfinite, nan, sqrt, tanh  # noqa: F401

try:
    from numba import njit as _njit

    def KERNEL_JIT(func):
        return _njit(cache=True)(func)

    HAVE_JIT = True
except Exception:  # pragma: no cover - numba is optional
    def KERNEL_JIT(func):
        return func

    HAVE_JIT = False

N = {spec.n}
NN = {spec.n * spec.n}


@KERNEL_JIT
def eval_qf(x, p, q, f):
    for _i in range(N):
        q[_i] = 0.0
        f[_i] = 0.0
{qf_body}


@KERNEL_JIT
def eval_jac(x, p, dq, df):
    for _i in range(NN):
        dq[_i] = 0.0
        df[_i] = 0.0
{jac_body}
{_PY_RUNTIME}'''


_C_RUNTIME = '''

void eval_qf_batch(const double* X, const double* P, long long B,
                   long long pstride, double* Q, double* F) {
    for (long long b = 0; b < B; ++b)
        eval_qf(X + b * N, P + b * pstride, Q + b * N, F + b * N);
}

void eval_jac_batch(const double* X, const double* P, long long B,
                    long long pstride, double* DQ, double* DF) {
    for (long long b = 0; b < B; ++b)
        eval_jac(X + b * N, P + b * pstride, DQ + b * NN, DF + b * NN);
}

static int lu_factor_(double* A, long long* piv) {
    for (int k = 0; k < N; ++k) {
        double pmax = 0.0;
        int pidx = k;
        for (int i = k; i < N; ++i) {
            double a = fabs(A[i * N + k]);
            if (a > pmax) { pmax = a; pidx = i; }
        }
        if (!(pmax > 0.0) || !isfinite(pmax)) return 0;
        piv[k] = pidx;
        if (pidx != k) {
            for (int j = 0; j < N; ++j) {
                double tmp = A[k * N + j];
                A[k * N + j] = A[pidx * N + j];
                A[pidx * N + j] = tmp;
            }
        }
        double akk = A[k * N + k];
        for (int i = k + 1; i < N; ++i) {
            double lik = A[i * N + k] / akk;
            A[i * N + k] = lik;
            for (int j = k + 1; j < N; ++j)
                A[i * N + j] -= lik * A[k * N + j];
        }
    }
    return 1;
}

static void lu_solve_(const double* A, const long long* piv,
                      const double* b, double* out) {
    for (int i = 0; i < N; ++i) out[i] = b[i];
    for (int k = 0; k < N; ++k) {
        long long pidx = piv[k];
        if (pidx != k) {
            double tmp = out[k];
            out[k] = out[pidx];
            out[pidx] = tmp;
        }
        for (int i = k + 1; i < N; ++i) out[i] -= A[i * N + k] * out[k];
    }
    for (int i = N - 1; i >= 0; --i) {
        double acc = out[i];
        for (int j = i + 1; j < N; ++j) acc -= A[i * N + j] * out[j];
        out[i] = acc / A[i * N + i];
    }
}

static double residual_(const double* x, const double* p,
                        const double* b_row, double alpha, double beta,
                        const double* rhs, double* qv, double* fv,
                        double* rc) {
    eval_qf(x, p, qv, fv);
    double norm = 0.0;
    int bad = 0;
    for (int i = 0; i < N; ++i) {
        double fb = fv[i] - b_row[i];
        fv[i] = fb;
        double r = alpha * qv[i] + rhs[i] + beta * fb;
        rc[i] = r;
        double a = fabs(r);
        if (a != a) bad = 1;
        else if (a > norm) norm = a;
    }
    if (bad) return NAN;
    return norm;
}

static int refactor_(const double* x, const double* p, double alpha,
                     double beta, double* A, long long* piv, double* dqs,
                     double* dfs, double* jac_meta) {
    eval_jac(x, p, dqs, dfs);
    for (int i = 0; i < N; ++i)
        for (int j = 0; j < N; ++j)
            A[i * N + j] = alpha * dqs[i * N + j] + beta * dfs[i * N + j];
    if (!lu_factor_(A, piv)) return 0;
    jac_meta[0] = alpha;
    jac_meta[1] = beta;
    for (int i = 0; i < N; ++i) jac_meta[2 + i] = x[i];
    return 1;
}

long long sweep(const double* t_grid, const double* b_grid,
                long long gi_start, long long gi_end,
                double* h_t, double* h_x, double* h_q, double* h_fb,
                long long* hstate, long long* flags,
                double* A, long long* piv, double* jac_meta, double* reg,
                const double* dopts, const long long* iopts,
                const double* p, double* out_x, long long* counters,
                double* xc, double* xn, double* dxs, double* rc, double* rn,
                double* qv, double* fv, double* rhs, double* dqs,
                double* dfs) {
    double atol = dopts[0];
    double rtol = dopts[1];
    double contraction = dopts[2];
    double param_rtol = dopts[3];
    long long maxiter = iopts[0];
    long long halvings = iopts[1];
    long long integ = iopts[2];
    int have = flags[0] != 0;
    if (have && flags[1] != 0) {
        /* Resume: rebuild the frozen LU from checkpoint metadata. */
        for (int i = 0; i < N; ++i) xc[i] = jac_meta[2 + i];
        eval_jac(xc, p, dqs, dfs);
        for (int i = 0; i < N; ++i)
            for (int j = 0; j < N; ++j)
                A[i * N + j] = jac_meta[0] * dqs[i * N + j]
                    + jac_meta[1] * dfs[i * N + j];
        if (!lu_factor_(A, piv)) have = 0;
    }
    flags[1] = 0;
    long long status = 0;
    for (long long gi = gi_start; gi < gi_end; ++gi) {
        long long hc = hstate[0];
        double t_new = t_grid[gi];
        double dt = t_new - h_t[hc - 1];
        double alpha, beta;
        if (integ == 1) {
            alpha = 1.0 / dt;
            beta = 0.5;
            for (int i = 0; i < N; ++i)
                rhs[i] = -h_q[(hc - 1) * N + i] / dt
                    + 0.5 * h_fb[(hc - 1) * N + i];
        } else if (integ == 2 && hc >= 2) {
            double t1 = h_t[hc - 1];
            double t2 = h_t[hc - 2];
            alpha = (2.0 * t_new - t1 - t2)
                / ((t_new - t1) * (t_new - t2));
            beta = 1.0;
            double d1 = (t_new - t2) / ((t1 - t_new) * (t1 - t2));
            double d2 = (t_new - t1) / ((t2 - t_new) * (t2 - t1));
            for (int i = 0; i < N; ++i)
                rhs[i] = d1 * h_q[(hc - 1) * N + i]
                    + d2 * h_q[(hc - 2) * N + i];
        } else {
            alpha = 1.0 / dt;
            beta = 1.0;
            for (int i = 0; i < N; ++i)
                rhs[i] = -h_q[(hc - 1) * N + i] / dt;
        }
        if (alpha != reg[1]) {
            double old = reg[0];
            if (old == old && fabs(alpha - old) > param_rtol * fabs(old))
                have = 0;
            reg[0] = alpha;
            reg[1] = alpha;
        }
        if (hc >= 3 && h_t[0] != h_t[1] && h_t[1] != h_t[2]
                && h_t[0] != h_t[2]) {
            double ta = h_t[0], tb = h_t[1], tc = h_t[2];
            double la = (t_new - tb) * (t_new - tc)
                / ((ta - tb) * (ta - tc));
            double lb = (t_new - ta) * (t_new - tc)
                / ((tb - ta) * (tb - tc));
            double lc = (t_new - ta) * (t_new - tb)
                / ((tc - ta) * (tc - tb));
            for (int i = 0; i < N; ++i)
                xc[i] = la * h_x[0 * N + i] + lb * h_x[1 * N + i]
                    + lc * h_x[2 * N + i];
        } else if (hc >= 2 && h_t[hc - 1] != h_t[hc - 2]) {
            double frac = (t_new - h_t[hc - 1])
                / (h_t[hc - 1] - h_t[hc - 2]);
            for (int i = 0; i < N; ++i)
                xc[i] = h_x[(hc - 1) * N + i]
                    + (h_x[(hc - 1) * N + i] - h_x[(hc - 2) * N + i])
                    * frac;
        } else {
            for (int i = 0; i < N; ++i) xc[i] = h_x[(hc - 1) * N + i];
        }
        counters[4] += 1;
        double norm = residual_(xc, p, b_grid + gi * N, alpha, beta, rhs,
                                qv, fv, rc);
        counters[2] += 1;
        long long itn = 0;
        long long failed = 0;
        int converged = norm <= atol;
        if (!converged && !isfinite(norm)) failed = 2;
        int fresh = 0;
        if (!converged && failed == 0 && !have) {
            if (refactor_(xc, p, alpha, beta, A, piv, dqs, dfs, jac_meta)) {
                counters[3] += 1;
                have = 1;
                fresh = 1;
            } else {
                have = 0;
                failed = 3;
            }
        }
        while (failed == 0 && !converged && itn < maxiter) {
            itn += 1;
            counters[1] += 1;
            lu_solve_(A, piv, rc, dxs);
            int ok = 1;
            for (int i = 0; i < N; ++i)
                if (!isfinite(dxs[i])) ok = 0;
            if (!ok) {
                if (fresh) { have = 0; failed = 3; break; }
                if (refactor_(xc, p, alpha, beta, A, piv, dqs, dfs,
                              jac_meta)) {
                    counters[3] += 1;
                    fresh = 1;
                    continue;
                }
                have = 0; failed = 3; break;
            }
            for (int i = 0; i < N; ++i) xn[i] = xc[i] - dxs[i];
            double norm_new = residual_(xn, p, b_grid + gi * N, alpha,
                                        beta, rhs, qv, fv, rn);
            counters[2] += 1;
            if (norm_new <= atol) {
                for (int i = 0; i < N; ++i) xc[i] = xn[i];
                norm = norm_new;
                converged = 1;
                break;
            }
            if (!(norm_new < norm)) {
                if (!fresh) {
                    if (refactor_(xc, p, alpha, beta, A, piv, dqs, dfs,
                                  jac_meta)) {
                        counters[3] += 1;
                        fresh = 1;
                        continue;
                    }
                    have = 0; failed = 3; break;
                }
                double step = 0.5;
                for (long long halving = 0; halving < halvings; ++halving) {
                    for (int i = 0; i < N; ++i)
                        xn[i] = xc[i] - step * dxs[i];
                    norm_new = residual_(xn, p, b_grid + gi * N, alpha,
                                         beta, rhs, qv, fv, rn);
                    counters[2] += 1;
                    if (isfinite(norm_new) && norm_new < norm) break;
                    if (halving < halvings - 1) step = step * 0.5;
                }
            }
            int small = 1;
            for (int i = 0; i < N; ++i) {
                double m = fabs(xn[i]);
                if (m < 1.0) m = 1.0;
                double d = fabs(xn[i] - xc[i]);
                if (!(d <= rtol * m)) small = 0;
            }
            int slow = norm_new > contraction * norm;
            for (int i = 0; i < N; ++i) { xc[i] = xn[i]; rc[i] = rn[i]; }
            norm = norm_new;
            if (norm <= atol || (small && isfinite(norm))) {
                converged = 1;
                break;
            }
            if (slow && !fresh) {
                if (refactor_(xc, p, alpha, beta, A, piv, dqs, dfs,
                              jac_meta)) {
                    counters[3] += 1;
                    fresh = 1;
                } else {
                    have = 0; failed = 3; break;
                }
            }
        }
        if (!converged) {
            if (failed == 0) { failed = 1; have = 0; }
            status = failed;
            break;
        }
        if (hc == 3) {
            for (int j = 0; j < 2; ++j) {
                h_t[j] = h_t[j + 1];
                for (int i = 0; i < N; ++i) {
                    h_x[j * N + i] = h_x[(j + 1) * N + i];
                    h_q[j * N + i] = h_q[(j + 1) * N + i];
                    h_fb[j * N + i] = h_fb[(j + 1) * N + i];
                }
            }
            hc = 2;
        }
        h_t[hc] = t_new;
        for (int i = 0; i < N; ++i) {
            h_x[hc * N + i] = xc[i];
            h_q[hc * N + i] = qv[i];
            h_fb[hc * N + i] = fv[i];
        }
        hstate[0] = hc + 1;
        long long row = gi - gi_start;
        for (int i = 0; i < N; ++i) out_x[row * N + i] = xc[i];
        counters[0] += 1;
    }
    flags[0] = have ? 1 : 0;
    return status;
}

long long sweep_adaptive(const double* b_row, long long max_accept,
                         double* h_t, double* h_x, double* h_q,
                         double* h_fb, long long* hstate, long long* flags,
                         double* A, long long* piv, double* jac_meta,
                         double* reg, const double* dopts,
                         const long long* iopts, const double* p,
                         double* out_t, double* out_x, long long* counters,
                         double* xc, double* xn, double* dxs, double* rc,
                         double* rn, double* qv, double* fv, double* rhs,
                         double* dqs, double* dfs) {
    double atol = dopts[0];
    double rtol = dopts[1];
    double contraction = dopts[2];
    double param_rtol = dopts[3];
    double err_atol = dopts[4];
    double err_rtol = dopts[5];
    double dt_min = dopts[6];
    double dt_max = dopts[7];
    double t_stop = dopts[8];
    long long maxiter = iopts[0];
    long long halvings = iopts[1];
    long long integ = iopts[2];
    long long order = iopts[3];
    int have = flags[0] != 0;
    if (have && flags[1] != 0) {
        /* Resume: rebuild the frozen LU from checkpoint metadata. */
        for (int i = 0; i < N; ++i) xc[i] = jac_meta[2 + i];
        eval_jac(xc, p, dqs, dfs);
        for (int i = 0; i < N; ++i)
            for (int j = 0; j < N; ++j)
                A[i * N + j] = jac_meta[0] * dqs[i * N + j]
                    + jac_meta[1] * dfs[i * N + j];
        if (!lu_factor_(A, piv)) have = 0;
    }
    flags[1] = 0;
    double dt = reg[2];
    double mx = fabs(t_stop);
    if (1.0 > mx) mx = 1.0;
    double eps_stop = 1e-15 * mx;
    long long accepted = 0;
    long long status = 0;
    while (accepted < max_accept) {
        long long hc = hstate[0];
        double t = h_t[hc - 1];
        if (!(t < t_stop - eps_stop)) break;
        double rem = t_stop - t;
        if (rem < dt) dt = rem;
        double t_new = t + dt;
        double dts = t_new - h_t[hc - 1];
        double alpha, beta;
        if (integ == 1) {
            alpha = 1.0 / dts;
            beta = 0.5;
            for (int i = 0; i < N; ++i)
                rhs[i] = -h_q[(hc - 1) * N + i] / dts
                    + 0.5 * h_fb[(hc - 1) * N + i];
        } else if (integ == 2 && hc >= 2) {
            double t1 = h_t[hc - 1];
            double t2 = h_t[hc - 2];
            alpha = (2.0 * t_new - t1 - t2)
                / ((t_new - t1) * (t_new - t2));
            beta = 1.0;
            double d1 = (t_new - t2) / ((t1 - t_new) * (t1 - t2));
            double d2 = (t_new - t1) / ((t2 - t_new) * (t2 - t1));
            for (int i = 0; i < N; ++i)
                rhs[i] = d1 * h_q[(hc - 1) * N + i]
                    + d2 * h_q[(hc - 2) * N + i];
        } else {
            alpha = 1.0 / dts;
            beta = 1.0;
            for (int i = 0; i < N; ++i)
                rhs[i] = -h_q[(hc - 1) * N + i] / dts;
        }
        if (alpha != reg[1]) {
            double old = reg[0];
            if (old == old && fabs(alpha - old) > param_rtol * fabs(old))
                have = 0;
            reg[0] = alpha;
            reg[1] = alpha;
        }
        if (hc >= 3 && h_t[0] != h_t[1] && h_t[1] != h_t[2]
                && h_t[0] != h_t[2]) {
            double ta = h_t[0], tb = h_t[1], tc = h_t[2];
            double la = (t_new - tb) * (t_new - tc)
                / ((ta - tb) * (ta - tc));
            double lb = (t_new - ta) * (t_new - tc)
                / ((tb - ta) * (tb - tc));
            double lc = (t_new - ta) * (t_new - tb)
                / ((tc - ta) * (tc - tb));
            for (int i = 0; i < N; ++i)
                xc[i] = la * h_x[0 * N + i] + lb * h_x[1 * N + i]
                    + lc * h_x[2 * N + i];
        } else if (hc >= 2 && h_t[hc - 1] != h_t[hc - 2]) {
            double frac = (t_new - h_t[hc - 1])
                / (h_t[hc - 1] - h_t[hc - 2]);
            for (int i = 0; i < N; ++i)
                xc[i] = h_x[(hc - 1) * N + i]
                    + (h_x[(hc - 1) * N + i] - h_x[(hc - 2) * N + i])
                    * frac;
        } else {
            for (int i = 0; i < N; ++i) xc[i] = h_x[(hc - 1) * N + i];
        }
        counters[4] += 1;
        double norm = residual_(xc, p, b_row, alpha, beta, rhs,
                                qv, fv, rc);
        counters[2] += 1;
        long long itn = 0;
        long long failed = 0;
        int converged = norm <= atol;
        if (!converged && !isfinite(norm)) failed = 2;
        int fresh = 0;
        if (!converged && failed == 0 && !have) {
            if (refactor_(xc, p, alpha, beta, A, piv, dqs, dfs, jac_meta)) {
                counters[3] += 1;
                have = 1;
                fresh = 1;
            } else {
                have = 0;
                failed = 3;
            }
        }
        while (failed == 0 && !converged && itn < maxiter) {
            itn += 1;
            counters[1] += 1;
            lu_solve_(A, piv, rc, dxs);
            int ok = 1;
            for (int i = 0; i < N; ++i)
                if (!isfinite(dxs[i])) ok = 0;
            if (!ok) {
                if (fresh) { have = 0; failed = 3; break; }
                if (refactor_(xc, p, alpha, beta, A, piv, dqs, dfs,
                              jac_meta)) {
                    counters[3] += 1;
                    fresh = 1;
                    continue;
                }
                have = 0; failed = 3; break;
            }
            for (int i = 0; i < N; ++i) xn[i] = xc[i] - dxs[i];
            double norm_new = residual_(xn, p, b_row, alpha, beta, rhs,
                                        qv, fv, rn);
            counters[2] += 1;
            if (norm_new <= atol) {
                for (int i = 0; i < N; ++i) xc[i] = xn[i];
                norm = norm_new;
                converged = 1;
                break;
            }
            if (!(norm_new < norm)) {
                if (!fresh) {
                    if (refactor_(xc, p, alpha, beta, A, piv, dqs, dfs,
                                  jac_meta)) {
                        counters[3] += 1;
                        fresh = 1;
                        continue;
                    }
                    have = 0; failed = 3; break;
                }
                double step = 0.5;
                for (long long halving = 0; halving < halvings; ++halving) {
                    for (int i = 0; i < N; ++i)
                        xn[i] = xc[i] - step * dxs[i];
                    norm_new = residual_(xn, p, b_row, alpha, beta, rhs,
                                         qv, fv, rn);
                    counters[2] += 1;
                    if (isfinite(norm_new) && norm_new < norm) break;
                    if (halving < halvings - 1) step = step * 0.5;
                }
            }
            int small = 1;
            for (int i = 0; i < N; ++i) {
                double m = fabs(xn[i]);
                if (m < 1.0) m = 1.0;
                double d = fabs(xn[i] - xc[i]);
                if (!(d <= rtol * m)) small = 0;
            }
            int slow = norm_new > contraction * norm;
            for (int i = 0; i < N; ++i) { xc[i] = xn[i]; rc[i] = rn[i]; }
            norm = norm_new;
            if (norm <= atol || (small && isfinite(norm))) {
                converged = 1;
                break;
            }
            if (slow && !fresh) {
                if (refactor_(xc, p, alpha, beta, A, piv, dqs, dfs,
                              jac_meta)) {
                    counters[3] += 1;
                    fresh = 1;
                } else {
                    have = 0; failed = 3; break;
                }
            }
        }
        if (!converged) {
            if (failed == 0) { failed = 1; have = 0; }
            status = failed;
            break;
        }
        /* Local-error control (simulate_transient's adaptive block). */
        double dt_next = dt;
        if (hc >= 2 && h_t[hc - 1] != h_t[hc - 2]) {
            double denom = h_t[hc - 1] - h_t[hc - 2];
            double lead = t_new - h_t[hc - 1];
            double acc = 0.0;
            for (int i = 0; i < N; ++i) {
                double slope = (h_x[(hc - 1) * N + i]
                                - h_x[(hc - 2) * N + i]) / denom;
                double xp = h_x[(hc - 1) * N + i] + slope * lead;
                double ax_new = fabs(xc[i]);
                double ax_old = fabs(h_x[(hc - 1) * N + i]);
                double big = ax_new > ax_old ? ax_new : ax_old;
                double scale = err_atol + err_rtol * big;
                double e = (xc[i] - xp) / scale;
                acc += e * e;
            }
            double err = sqrt(acc / N);
            if (err > 1.0) {
                counters[5] += 1;
                double fac = 0.9 * pow(err, -1.0 / (double)(order + 1));
                if (!(fac > 0.2)) fac = 0.2;
                double dtn = dt * fac;
                if (!(dtn > dt_min)) dtn = dt_min;
                if (dtn <= dt_min) {
                    status = 4;
                    break;
                }
                dt = dtn;
                continue;
            }
            double growth;
            if (err > 0.0)
                growth = 0.9 * pow(err, -1.0 / (double)(order + 1));
            else
                growth = 5.0;
            if (!(growth > 0.2)) growth = 0.2;
            if (!(growth < 5.0)) growth = 5.0;
            dt_next = dt * growth;
        }
        if (hc == 3) {
            for (int j = 0; j < 2; ++j) {
                h_t[j] = h_t[j + 1];
                for (int i = 0; i < N; ++i) {
                    h_x[j * N + i] = h_x[(j + 1) * N + i];
                    h_q[j * N + i] = h_q[(j + 1) * N + i];
                    h_fb[j * N + i] = h_fb[(j + 1) * N + i];
                }
            }
            hc = 2;
        }
        h_t[hc] = t_new;
        for (int i = 0; i < N; ++i) {
            h_x[hc * N + i] = xc[i];
            h_q[hc * N + i] = qv[i];
            h_fb[hc * N + i] = fv[i];
        }
        hstate[0] = hc + 1;
        out_t[accepted] = t_new;
        for (int i = 0; i < N; ++i) out_x[accepted * N + i] = xc[i];
        accepted += 1;
        counters[0] += 1;
        dt = dt_next;
        if (dt_max < dt) dt = dt_max;
    }
    reg[2] = dt;
    flags[0] = have ? 1 : 0;
    return status;
}

static void ens_residual_(const double* X, const double* P, long long B,
                          long long pstride, const double* b_rows,
                          double alpha, double beta, const double* RHS,
                          double* QV, double* FV, double* RC,
                          double* norms) {
    for (long long b = 0; b < B; ++b)
        norms[b] = residual_(X + b * N, P + b * pstride, b_rows + b * N,
                             alpha, beta, RHS + b * N, QV + b * N,
                             FV + b * N, RC + b * N);
}

static int ens_refactor_(const double* X, const double* P, long long B,
                         long long pstride, double alpha, double beta,
                         double* A, long long* piv, double* dqs,
                         double* dfs, double* jac_meta) {
    for (long long b = 0; b < B; ++b) {
        eval_jac(X + b * N, P + b * pstride, dqs, dfs);
        for (int i = 0; i < N; ++i)
            for (int j = 0; j < N; ++j)
                A[b * NN + i * N + j] = alpha * dqs[i * N + j]
                    + beta * dfs[i * N + j];
        if (!lu_factor_(A + b * NN, piv + b * N)) return 0;
    }
    jac_meta[0] = alpha;
    jac_meta[1] = beta;
    for (long long b = 0; b < B; ++b)
        for (int i = 0; i < N; ++i)
            jac_meta[2 + b * N + i] = X[b * N + i];
    return 1;
}

long long sweep_ens(const double* t_grid, const double* b_grid,
                    long long gi_start, long long gi_end, long long B,
                    long long pstride, double* h_t, double* h_x,
                    double* h_q, double* h_fb, long long* hstate,
                    long long* flags, double* A, long long* piv,
                    double* jac_meta, double* reg, const double* dopts,
                    const long long* iopts, const double* P,
                    double* out_x, long long* counters, long long* iters_b,
                    double* XC, double* XN, double* UPD, double* RC,
                    double* RN, double* QV, double* FV, double* RHS,
                    double* dqs, double* dfs, long long* masks,
                    double* fwork) {
    double atol = dopts[0];
    double rtol = dopts[1];
    double contraction = dopts[2];
    double param_rtol = dopts[3];
    long long maxiter = iopts[0];
    long long halvings = iopts[1];
    long long integ = iopts[2];
    long long* conv = masks + 0 * B;
    long long* aband = masks + 1 * B;
    long long* scratch = masks + 2 * B;
    long long* uph = masks + 3 * B;
    long long* need = masks + 4 * B;
    long long* dits = masks + 5 * B;
    double* norms = fwork + 0 * B;
    double* tnorms = fwork + 1 * B;
    double* stepv = fwork + 2 * B;
    int have = flags[0] != 0;
    if (have && flags[1] != 0) {
        /* Resume/re-entry: rebuild every LU block from metadata. */
        for (long long b = 0; b < B; ++b)
            for (int i = 0; i < N; ++i)
                XC[b * N + i] = jac_meta[2 + b * N + i];
        if (!ens_refactor_(XC, P, B, pstride, jac_meta[0], jac_meta[1],
                           A, piv, dqs, dfs, jac_meta))
            have = 0;
    }
    flags[1] = 0;
    long long status = 0;
    for (long long gi = gi_start; gi < gi_end; ++gi) {
        long long hc = hstate[0];
        double t_new = t_grid[gi];
        double dt = t_new - h_t[hc - 1];
        double alpha, beta;
        if (integ == 1) {
            alpha = 1.0 / dt;
            beta = 0.5;
            for (long long b = 0; b < B; ++b)
                for (int i = 0; i < N; ++i)
                    RHS[b * N + i] = -h_q[((hc - 1) * B + b) * N + i] / dt
                        + 0.5 * h_fb[((hc - 1) * B + b) * N + i];
        } else if (integ == 2 && hc >= 2) {
            double t1 = h_t[hc - 1];
            double t2 = h_t[hc - 2];
            alpha = (2.0 * t_new - t1 - t2)
                / ((t_new - t1) * (t_new - t2));
            beta = 1.0;
            double d1 = (t_new - t2) / ((t1 - t_new) * (t1 - t2));
            double d2 = (t_new - t1) / ((t2 - t_new) * (t2 - t1));
            for (long long b = 0; b < B; ++b)
                for (int i = 0; i < N; ++i)
                    RHS[b * N + i] =
                        d1 * h_q[((hc - 1) * B + b) * N + i]
                        + d2 * h_q[((hc - 2) * B + b) * N + i];
        } else {
            alpha = 1.0 / dt;
            beta = 1.0;
            for (long long b = 0; b < B; ++b)
                for (int i = 0; i < N; ++i)
                    RHS[b * N + i] =
                        -h_q[((hc - 1) * B + b) * N + i] / dt;
        }
        /* _notify_alpha: one tracked alpha in reg[0] (nan = unset). */
        double old = reg[0];
        if (old == old && fabs(alpha - old) > param_rtol * fabs(old))
            have = 0;
        reg[0] = alpha;
        if (hc >= 3 && h_t[0] != h_t[1] && h_t[1] != h_t[2]
                && h_t[0] != h_t[2]) {
            double ta = h_t[0], tb = h_t[1], tc = h_t[2];
            double la = (t_new - tb) * (t_new - tc)
                / ((ta - tb) * (ta - tc));
            double lb = (t_new - ta) * (t_new - tc)
                / ((tb - ta) * (tb - tc));
            double lc = (t_new - ta) * (t_new - tb)
                / ((tc - ta) * (tc - tb));
            for (long long b = 0; b < B; ++b)
                for (int i = 0; i < N; ++i)
                    XC[b * N + i] = la * h_x[(0 * B + b) * N + i]
                        + lb * h_x[(1 * B + b) * N + i]
                        + lc * h_x[(2 * B + b) * N + i];
        } else if (hc >= 2 && h_t[hc - 1] != h_t[hc - 2]) {
            double frac = (t_new - h_t[hc - 1])
                / (h_t[hc - 1] - h_t[hc - 2]);
            for (long long b = 0; b < B; ++b)
                for (int i = 0; i < N; ++i)
                    XC[b * N + i] = h_x[((hc - 1) * B + b) * N + i]
                        + (h_x[((hc - 1) * B + b) * N + i]
                           - h_x[((hc - 2) * B + b) * N + i]) * frac;
        } else {
            for (long long b = 0; b < B; ++b)
                for (int i = 0; i < N; ++i)
                    XC[b * N + i] = h_x[((hc - 1) * B + b) * N + i];
        }
        counters[4] += 1;
        ens_residual_(XC, P, B, pstride, b_grid + gi * B * N, alpha,
                      beta, RHS, QV, FV, RC, norms);
        counters[2] += 1;
        long long num_left = 0;
        for (long long b = 0; b < B; ++b) {
            aband[b] = 0;
            dits[b] = 0;
            if (norms[b] <= atol) {
                conv[b] = 1;
            } else {
                conv[b] = 0;
                num_left += 1;
            }
        }
        long long failed = 0;
        int fresh = 0;
        if (num_left > 0 && !have) {
            if (ens_refactor_(XC, P, B, pstride, alpha, beta, A, piv,
                              dqs, dfs, jac_meta)) {
                counters[3] += 1;
                have = 1;
                fresh = 1;
            } else {
                have = 0;
                failed = 3;
            }
        }
        long long itn = 0;
        while (failed == 0 && num_left > 0 && itn < maxiter) {
            itn += 1;
            counters[1] += 1;
            for (long long b = 0; b < B; ++b)
                if (conv[b] == 0 && aband[b] == 0) dits[b] += 1;
            for (long long b = 0; b < B; ++b)
                lu_solve_(A + b * NN, piv + b * N, RC + b * N,
                          UPD + b * N);
            int anybad = 0;
            for (long long b = 0; b < B; ++b) {
                long long fin = 1;
                for (int i = 0; i < N; ++i)
                    if (!isfinite(UPD[b * N + i])) fin = 0;
                scratch[b] = fin;
                if (fin == 0 && conv[b] == 0 && aband[b] == 0)
                    anybad = 1;
            }
            if (anybad) {
                if (!fresh) {
                    /* Blame staleness first: refactorise and retry. */
                    if (ens_refactor_(XC, P, B, pstride, alpha, beta, A,
                                      piv, dqs, dfs, jac_meta)) {
                        counters[3] += 1;
                        fresh = 1;
                        for (long long b = 0; b < B; ++b)
                            if (conv[b] == 0 && aband[b] == 0)
                                dits[b] -= 1;
                        counters[1] -= 1;
                        itn -= 1;
                        continue;
                    }
                    have = 0; failed = 3; break;
                }
                /* Fresh factors and still non-finite: abandon those
                 * scenarios to the python-side rescue. */
                num_left = 0;
                for (long long b = 0; b < B; ++b) {
                    if (conv[b] == 0 && aband[b] == 0 && scratch[b] == 0)
                        aband[b] = 1;
                    if (conv[b] == 0 && aband[b] == 0) num_left += 1;
                }
                if (num_left == 0) break;
            }
            for (long long b = 0; b < B; ++b) {
                if (conv[b] == 0 && aband[b] == 0) {
                    for (int i = 0; i < N; ++i)
                        XN[b * N + i] = XC[b * N + i] - UPD[b * N + i];
                } else {
                    for (int i = 0; i < N; ++i)
                        XN[b * N + i] = XC[b * N + i];
                }
            }
            ens_residual_(XN, P, B, pstride, b_grid + gi * B * N, alpha,
                          beta, RHS, QV, FV, RN, tnorms);
            counters[2] += 1;
            int anyup = 0;
            for (long long b = 0; b < B; ++b) {
                long long imp = (tnorms[b] < norms[b]
                                 || tnorms[b] <= atol) ? 1 : 0;
                long long up = (conv[b] == 0 && aband[b] == 0
                                && imp == 0) ? 1 : 0;
                uph[b] = up;
                if (up == 1) anyup = 1;
            }
            if (anyup) {
                if (!fresh) {
                    if (ens_refactor_(XC, P, B, pstride, alpha, beta, A,
                                      piv, dqs, dfs, jac_meta)) {
                        counters[3] += 1;
                        fresh = 1;
                        for (long long b = 0; b < B; ++b)
                            if (conv[b] == 0 && aband[b] == 0)
                                dits[b] -= 1;
                        counters[1] -= 1;
                        itn -= 1;
                        continue;
                    }
                    have = 0; failed = 3; break;
                }
                /* Per-scenario damped line search. */
                for (long long b = 0; b < B; ++b) {
                    stepv[b] = (conv[b] == 0 && aband[b] == 0)
                        ? 1.0 : 0.0;
                    need[b] = uph[b];
                }
                for (long long halving = 0; halving < halvings;
                        ++halving) {
                    for (long long b = 0; b < B; ++b)
                        if (need[b] == 1) stepv[b] = stepv[b] * 0.5;
                    for (long long b = 0; b < B; ++b) {
                        if (conv[b] == 0 && aband[b] == 0) {
                            for (int i = 0; i < N; ++i)
                                XN[b * N + i] = XC[b * N + i]
                                    - stepv[b] * UPD[b * N + i];
                        } else {
                            for (int i = 0; i < N; ++i)
                                XN[b * N + i] = XC[b * N + i];
                        }
                    }
                    ens_residual_(XN, P, B, pstride,
                                  b_grid + gi * B * N, alpha, beta,
                                  RHS, QV, FV, RN, tnorms);
                    counters[2] += 1;
                    int anyneed = 0;
                    for (long long b = 0; b < B; ++b) {
                        long long nd = 0;
                        if (uph[b] == 1 && !(isfinite(tnorms[b])
                                             && tnorms[b] < norms[b]))
                            nd = 1;
                        need[b] = nd;
                        if (nd == 1) anyneed = 1;
                    }
                    if (!anyneed) break;
                }
            }
            /* update_small & slow at pre-commit states, then commit. */
            for (long long b = 0; b < B; ++b) {
                long long small = 1;
                for (int i = 0; i < N; ++i) {
                    double m = fabs(XN[b * N + i]);
                    if (m < 1.0) m = 1.0;
                    double d = fabs(XN[b * N + i] - XC[b * N + i]);
                    if (!(d <= rtol * m)) small = 0;
                }
                long long slow =
                    (tnorms[b] > contraction * norms[b]) ? 1 : 0;
                scratch[b] = 2 * slow + small;
            }
            for (long long b = 0; b < B; ++b) {
                for (int i = 0; i < N; ++i) {
                    XC[b * N + i] = XN[b * N + i];
                    RC[b * N + i] = RN[b * N + i];
                }
                norms[b] = tnorms[b];
            }
            for (long long b = 0; b < B; ++b) {
                if (conv[b] == 0 && aband[b] == 0) {
                    long long small = scratch[b] % 2;
                    if (norms[b] <= atol
                            || (small == 1 && isfinite(norms[b])))
                        conv[b] = 1;
                }
            }
            num_left = 0;
            for (long long b = 0; b < B; ++b)
                if (conv[b] == 0 && aband[b] == 0) num_left += 1;
            if (num_left == 0) break;
            if (!fresh) {
                int anyslow = 0;
                for (long long b = 0; b < B; ++b)
                    if (scratch[b] >= 2 && conv[b] == 0 && aband[b] == 0)
                        anyslow = 1;
                if (anyslow) {
                    if (ens_refactor_(XC, P, B, pstride, alpha, beta, A,
                                      piv, dqs, dfs, jac_meta)) {
                        counters[3] += 1;
                        fresh = 1;
                    } else {
                        have = 0; failed = 3; break;
                    }
                }
            }
        }
        if (failed == 3) {
            /* Singular stack: per-scenario iterations are discarded,
             * like the python controller's early return. */
            status = 3;
            break;
        }
        for (long long b = 0; b < B; ++b) iters_b[b] += dits[b];
        int all_conv = 1;
        for (long long b = 0; b < B; ++b)
            if (conv[b] == 0) all_conv = 0;
        if (!all_conv) {
            have = 0;
            status = 1;
            break;
        }
        if (hc == 3) {
            for (int j = 0; j < 2; ++j) {
                h_t[j] = h_t[j + 1];
                for (long long b = 0; b < B; ++b)
                    for (int i = 0; i < N; ++i) {
                        h_x[(j * B + b) * N + i] =
                            h_x[((j + 1) * B + b) * N + i];
                        h_q[(j * B + b) * N + i] =
                            h_q[((j + 1) * B + b) * N + i];
                        h_fb[(j * B + b) * N + i] =
                            h_fb[((j + 1) * B + b) * N + i];
                    }
            }
            hc = 2;
        }
        h_t[hc] = t_new;
        for (long long b = 0; b < B; ++b)
            for (int i = 0; i < N; ++i) {
                h_x[(hc * B + b) * N + i] = XC[b * N + i];
                h_q[(hc * B + b) * N + i] = QV[b * N + i];
                h_fb[(hc * B + b) * N + i] = FV[b * N + i];
            }
        hstate[0] = hc + 1;
        long long row = gi - gi_start;
        for (long long b = 0; b < B; ++b)
            for (int i = 0; i < N; ++i)
                out_x[(row * B + b) * N + i] = XC[b * N + i];
        counters[0] += 1;
    }
    flags[0] = have ? 1 : 0;
    return status;
}
'''


def generate_c_source(spec):
    qf_body = "\n".join(_render_c(spec.qf_stmts, 1))
    jac_body = "\n".join(_render_c(spec.jac_stmts, 1))
    return f'''/* Auto-generated kernels for {spec.dae_label} (repro.kernels).
 * Do not edit: regenerate via repro.kernels.codegen.generate_c_source.
 */
#include <math.h>

#define N {spec.n}
#define NN {spec.n * spec.n}

void eval_qf(const double* x, const double* p, double* q, double* f) {{
    for (int _i = 0; _i < N; ++_i) {{ q[_i] = 0.0; f[_i] = 0.0; }}
{qf_body}
}}

void eval_jac(const double* x, const double* p, double* dq, double* df) {{
    for (int _i = 0; _i < NN; ++_i) {{ dq[_i] = 0.0; df[_i] = 0.0; }}
{jac_body}
}}
{_C_RUNTIME}'''
