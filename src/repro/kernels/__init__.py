"""Compiled per-DAE inner loops (ROADMAP item 1: the 10x transient lever).

Supported DAEs are lowered to a tiny statement IR
(:mod:`~repro.kernels.registry`), rendered to equivalent Python and C
translation units (:mod:`~repro.kernels.codegen`), built/cached by
backend (:mod:`~repro.kernels.backends`: numba > host C toolchain >
pure python), and driven by the engines through
:mod:`~repro.kernels.sweep` — fused fixed-step, adaptive-step and
batched lock-step ensemble chord marches, plus batched ``q/f/dq/df``
evaluations for the envelope/ensemble python paths.

Select with ``kernel="auto" | "numba" | "c" | "python"`` on any engine
options class (:class:`~repro.linalg.solver_core.SolverOptionsMixin`).
``HAVE_NUMBA`` is the import-time capability probe the ``jit`` optional
extra satisfies; without it, ``auto`` uses the C toolchain when one is
on PATH and otherwise degrades silently to the python reference path.
"""

from .backends import (
    HAVE_CC,
    HAVE_NUMBA,
    KERNEL_MODES,
    KernelBuildError,
    build_kernel,
    probe_cc,
    probe_numba,
    resolve_mode,
)
from .registry import KernelSpec, constant_forcing_row, spec_for_dae
from .sweep import (
    CompiledSweepRunner,
    EnsembleSweepRunner,
    KernelizedDAE,
    maybe_kernelize_batch,
    prepare_ensemble_runner,
    prepare_transient_runner,
)

__all__ = [
    "HAVE_CC",
    "HAVE_NUMBA",
    "KERNEL_MODES",
    "KernelBuildError",
    "KernelSpec",
    "CompiledSweepRunner",
    "EnsembleSweepRunner",
    "KernelizedDAE",
    "build_kernel",
    "constant_forcing_row",
    "maybe_kernelize_batch",
    "prepare_ensemble_runner",
    "prepare_transient_runner",
    "probe_cc",
    "probe_numba",
    "resolve_mode",
    "spec_for_dae",
]
