"""Drivers wiring built kernels into the engines.

:class:`CompiledSweepRunner`
    Owns the state arrays of one fixed-step transient march (history
    ring, frozen dense LU, chord bookkeeping registers, counters) and
    runs N grid steps per :meth:`run` call through the generated
    ``sweep`` entry point.  The transient engine chunks calls at
    checkpoint boundaries and hands any non-converged step back to the
    python slow path, so the recovery ladder, checkpointing and failure
    semantics are unchanged.
:class:`KernelizedDAE`
    A DAE proxy replacing the batched evaluations (``q_batch`` /
    ``f_batch`` / ``qf_batch`` / ``dq_dx_batch`` / ``df_dx_batch``) with
    compiled loops; everything else — forcing terms, structures, names —
    delegates to the wrapped DAE.  Used by the WaMPDE envelope and the
    ensemble lock-step engine.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ValidationError
from repro.linalg.lu_cache import FrozenFactorization
from repro.linalg.newton import NewtonOptions

from .backends import (
    KernelBuildError,
    build_kernel,
    probe_cc,
    resolve_mode,
)
from .registry import spec_for_dae

#: Kernels stay dense; beyond this many unknowns the O(n^3) in-kernel LU
#: loses to the sparse python path anyway.
MAX_KERNEL_UNKNOWNS = 64

#: counters layout: [steps, iterations, residual_evals, factorizations,
#: solves, reserved]
_N_COUNTERS = 6


def _new_info(requested):
    return {
        "requested": "auto" if requested is None else str(requested),
        "mode": "python",
        "compiled_steps": 0,
        "python_steps": 0,
        "compile_time_s": 0.0,
    }


def _build_with_fallback(spec, mode, requested, info):
    """Build ``spec`` in ``mode``, degrading auto requests on failure."""
    try:
        return build_kernel(spec, mode)
    except KernelBuildError as exc:
        if requested != "auto":
            raise
        if mode == "numba" and probe_cc():
            try:
                return build_kernel(spec, "c")
            except KernelBuildError as exc2:
                info["reason"] = f"kernel build failed: {exc2}"
                return None
        info["reason"] = f"kernel build failed: {exc}"
        return None


class CompiledSweepRunner:
    """State + dispatch for one compiled serial transient march.

    Drives two generated entry points over the same state arrays: the
    fixed-step ``sweep`` (grid forcing) and the adaptive-step
    ``sweep_adaptive`` (constant forcing row, in-kernel local-error dt
    controller; the live dt persists in ``reg[2]`` across calls).
    """

    def __init__(self, built, opts, integrator_id, order=1, adaptive=False):
        spec = built.spec
        n = spec.n
        self.impl = built.impl
        self.mode = built.mode
        self.n = n
        self.adaptive = bool(adaptive)
        newton = opts.newton or NewtonOptions()
        # History ring, oldest-first; hstate[0] = occupied rows.
        self.h_t = np.zeros(3)
        self.h_x = np.zeros((3, n))
        self.h_q = np.zeros((3, n))
        self.h_fb = np.zeros((3, n))
        self.hstate = np.zeros(1, dtype=np.int64)
        # flags = [have_factors, refactor_from_meta_on_entry]
        self.flags = np.zeros(2, dtype=np.int64)
        self.A = np.zeros((n, n))
        self.piv = np.zeros(n, dtype=np.int64)
        # [alpha, beta, x...] of the matrix the frozen LU was built from.
        self.jac_meta = np.zeros(2 + n)
        # [params_alpha, last_alpha, live_dt]; nan = unset (mirrors the
        # python controller's note_parameters bookkeeping).
        self.reg = np.full(3, np.nan)
        # [newton_atol, newton_rtol, contraction, param_rtol,
        #  err_atol, err_rtol, dt_min, dt_max, t_stop] — the serial
        # fixed-step sweep reads only the first four.
        self.dopts = np.array([
            newton.atol, newton.rtol,
            float(opts.refresh_contraction), 0.25,
            float(getattr(opts, "atol", 1e-9)),
            float(getattr(opts, "rtol", 1e-6)),
            float(getattr(opts, "dt_min", 1e-18)),
            float(getattr(opts, "dt_max", np.inf)),
            0.0,
        ])
        self.iopts = np.array([
            newton.max_iterations, newton.max_step_halvings, integrator_id,
            int(order),
        ], dtype=np.int64)
        self.p = np.ascontiguousarray(spec.params_rows[0])
        self.counters = np.zeros(_N_COUNTERS, dtype=np.int64)
        self.out_t = np.empty(0)
        self.out_x = np.empty((0, n))
        self.scratch = tuple(np.empty(n) for _ in range(8)) + (
            np.empty(n * n), np.empty(n * n),
        )
        self.last_wall = 0.0

    def warmup(self):
        """Zero-step call: forces jit compilation of the used entry point."""
        start = time.perf_counter()
        if self.adaptive:
            self.impl.sweep_adaptive(
                np.zeros(self.n), 0,
                self.h_t, self.h_x, self.h_q, self.h_fb, self.hstate,
                self.flags, self.A, self.piv, self.jac_meta, self.reg,
                self.dopts, self.iopts, self.p, self.out_t, self.out_x,
                self.counters, *self.scratch,
            )
        else:
            self.impl.sweep(
                np.zeros(1), np.zeros((1, self.n)), 0, 0,
                self.h_t, self.h_x, self.h_q, self.h_fb, self.hstate,
                self.flags, self.A, self.piv, self.jac_meta, self.reg,
                self.dopts, self.iopts, self.p, self.out_x, self.counters,
                *self.scratch,
            )
        return time.perf_counter() - start

    def load(self, history, controller):
        """Seed ring + chord state from the engine's live bookkeeping."""
        hc = min(len(history), 3)
        self.hstate[0] = hc
        for j, (ht, hx, hq, hfb) in enumerate(history[-hc:]):
            self.h_t[j] = ht
            self.h_x[j] = hx
            self.h_q[j] = hq
            self.h_fb[j] = hfb
        meta = controller.factor_metadata()
        if meta is not None:
            alpha, beta, xj = meta
            self.jac_meta[0] = alpha
            self.jac_meta[1] = beta
            self.jac_meta[2:] = xj
            self.flags[0] = 1
            self.flags[1] = 1  # rebuild the LU from meta on entry
        else:
            self.flags[0] = 0
            self.flags[1] = 0
        if controller._last_alpha is not None:
            self.reg[1] = float(controller._last_alpha)
        alpha_param = controller.core._params.get("alpha")
        if alpha_param is not None:
            self.reg[0] = float(alpha_param)

    def run(self, t_grid, b_grid, gi_start, gi_end):
        count = gi_end - gi_start
        if self.out_x.shape[0] < count:
            self.out_x = np.empty((count, self.n))
        start = time.perf_counter()
        status = self.impl.sweep(
            t_grid, b_grid, gi_start, gi_end,
            self.h_t, self.h_x, self.h_q, self.h_fb, self.hstate,
            self.flags, self.A, self.piv, self.jac_meta, self.reg,
            self.dopts, self.iopts, self.p, self.out_x, self.counters,
            *self.scratch,
        )
        self.last_wall = time.perf_counter() - start
        return int(status)

    def run_adaptive(self, b_row, t_stop, max_accept):
        """March up to ``max_accept`` accepted adaptive steps.

        ``reg[2]`` carries the live dt in and out, so chunked calls
        continue the dt sequence exactly where the previous chunk (or
        the python controller, via the caller seeding ``reg[2]``) left
        it.
        """
        if self.out_t.shape[0] < max_accept:
            self.out_t = np.empty(max_accept)
            self.out_x = np.empty((max_accept, self.n))
        self.dopts[8] = float(t_stop)
        start = time.perf_counter()
        status = self.impl.sweep_adaptive(
            b_row, max_accept,
            self.h_t, self.h_x, self.h_q, self.h_fb, self.hstate,
            self.flags, self.A, self.piv, self.jac_meta, self.reg,
            self.dopts, self.iopts, self.p, self.out_t, self.out_x,
            self.counters, *self.scratch,
        )
        self.last_wall = time.perf_counter() - start
        return int(status)

    def reset_counters(self):
        self.counters[:] = 0

    def export_history(self):
        hc = int(self.hstate[0])
        return [
            (float(self.h_t[j]), self.h_x[j].copy(), self.h_q[j].copy(),
             self.h_fb[j].copy())
            for j in range(hc)
        ]

    def sync_controller(self, controller, dae):
        """Push ring-side chord state back into the python controller.

        After this the controller's checkpoint/warm exports describe the
        same frozen matrix the kernel holds (refactorised python-side
        from the (alpha, beta, x) metadata — deterministic, so a resumed
        run reproduces the uninterrupted trajectory bit for bit).
        """
        chord = controller.core._chord
        if chord is not None:
            if self.flags[0]:
                alpha = float(self.jac_meta[0])
                beta = float(self.jac_meta[1])
                xj = self.jac_meta[2:].copy()
                matrix = controller.assembler.refresh(
                    alpha, dae.dq_dx(xj), beta, dae.df_dx(xj)
                )
                controller.core.adopt_factorization(
                    FrozenFactorization().factor(matrix)
                )
                controller._jac_meta = (alpha, beta, xj)
            else:
                controller.core.invalidate()
                controller._jac_meta = None
        if np.isfinite(self.reg[1]):
            controller._last_alpha = float(self.reg[1])
        if np.isfinite(self.reg[0]):
            controller.core._params["alpha"] = float(self.reg[0])


def prepare_transient_runner(dae, opts, integrator, blocked=None):
    """Resolve/compile the fixed-step sweep kernel for one transient run.

    Returns ``(runner, info)``; ``runner`` is ``None`` whenever the run
    stays on the python path, with ``info["reason"]`` saying why.  An
    explicitly requested unavailable backend raises
    :class:`~repro.errors.ConfigurationError` (from ``resolve_mode``)
    regardless of eligibility, so misconfiguration surfaces eagerly.
    """
    from repro.transient.integrators import (
        BackwardEuler,
        Bdf2,
        Trapezoidal,
    )

    requested = getattr(opts, "kernel", "auto")
    mode, reason = resolve_mode(requested)
    info = _new_info(requested)
    if mode == "python":
        info["reason"] = reason
        return None, info
    if blocked is not None:
        info["reason"] = blocked
        return None, info
    if not opts.stale_jacobian or opts.linear_solver is not None:
        info["reason"] = "compiled sweep requires the chord (frozen-LU) path"
        return None, info
    integrator_id = {BackwardEuler: 0, Trapezoidal: 1, Bdf2: 2}.get(
        type(integrator)
    )
    if integrator_id is None:
        info["reason"] = (
            f"no compiled sweep for integrator "
            f"{type(integrator).__name__}"
        )
        return None, info
    spec, why = spec_for_dae(dae)
    if spec is None:
        info["reason"] = why
        return None, info
    if spec.stacked:
        info["reason"] = (
            "per-scenario parameter stacks run through the batched "
            "ensemble path"
        )
        return None, info
    if spec.n > MAX_KERNEL_UNKNOWNS:
        info["reason"] = (
            f"{spec.n} unknowns exceed the dense-kernel limit "
            f"({MAX_KERNEL_UNKNOWNS})"
        )
        return None, info
    built = _build_with_fallback(spec, mode, info["requested"], info)
    if built is None:
        return None, info
    runner = CompiledSweepRunner(
        built, opts, integrator_id,
        order=getattr(integrator, "order", 1),
        adaptive=bool(getattr(opts, "adaptive", False)),
    )
    compile_time = built.compile_time_s + runner.warmup()
    info["mode"] = built.mode
    info["compile_time_s"] = round(compile_time, 6)
    return runner, info


class EnsembleSweepRunner:
    """State + dispatch for one compiled batched lock-step ensemble march.

    The generated ``sweep_ens`` advances all ``B`` scenarios through
    whole chunks of the shared fixed-step grid: one (3, B, n) history
    ring, a (B, n, n) frozen-LU factor stack, per-scenario convergence /
    abandonment masks and per-scenario iteration counters (``iters_b``).
    Scenarios the vectorised chord cannot converge hand the whole step
    back to the python engine, whose per-scenario ``SolverCore`` rescue
    path is unchanged.
    """

    def __init__(self, built, opts, integrator_id, batch):
        spec = built.spec
        n = spec.n
        self.impl = built.impl
        self.mode = built.mode
        self.n = n
        self.batch = int(batch)
        B = self.batch
        newton = opts.newton or NewtonOptions()
        self.h_t = np.zeros(3)
        self.h_x = np.zeros((3, B, n))
        self.h_q = np.zeros((3, B, n))
        self.h_fb = np.zeros((3, B, n))
        self.hstate = np.zeros(1, dtype=np.int64)
        # flags = [have_factors, refactor_stack_from_meta_on_entry]
        self.flags = np.zeros(2, dtype=np.int64)
        self.A = np.zeros((B, n, n))
        self.piv = np.zeros((B, n), dtype=np.int64)
        # [alpha, beta, x rows...] of the frozen factor stack.
        self.jac_meta = np.zeros(2 + B * n)
        # [tracked_alpha]; nan = unset (the ensemble controller's
        # _notify_alpha bookkeeping).
        self.reg = np.full(1, np.nan)
        self.dopts = np.array([
            newton.atol, newton.rtol,
            float(opts.refresh_contraction), 0.25,
        ])
        self.iopts = np.array([
            newton.max_iterations, newton.max_step_halvings, integrator_id,
        ], dtype=np.int64)
        P = np.ascontiguousarray(spec.params_rows)
        self.P = P
        self.pstride = P.shape[1] if P.shape[0] > 1 else 0
        self.counters = np.zeros(_N_COUNTERS, dtype=np.int64)
        self.iters_b = np.zeros(B, dtype=np.int64)
        self.out_x = np.empty((0, B, n))
        self.work = tuple(np.empty((B, n)) for _ in range(8)) + (
            np.empty(n * n), np.empty(n * n),
        )
        self.masks = np.zeros((6, B), dtype=np.int64)
        self.fwork = np.zeros((3, B))
        self.last_wall = 0.0

    def warmup(self):
        """Zero-step call: forces jit compilation up front."""
        start = time.perf_counter()
        self.impl.sweep_ens(
            np.zeros(1), np.zeros((1, self.batch, self.n)), 0, 0,
            self.batch, self.pstride,
            self.h_t, self.h_x, self.h_q, self.h_fb, self.hstate,
            self.flags, self.A, self.piv, self.jac_meta, self.reg,
            self.dopts, self.iopts, self.P, self.out_x, self.counters,
            self.iters_b, *self.work, self.masks, self.fwork,
        )
        return time.perf_counter() - start

    def load(self, history, controller):
        """Seed the ring from the engine's live history.

        The chord enters cold (``flags[0] = 0``): the engine only
        reloads after python-handled steps, and the python chord always
        invalidates its factor stack on the handback that caused them —
        so the kernel's first step refactorises exactly where the python
        march would.
        """
        hc = min(len(history), 3)
        self.hstate[0] = hc
        for j, (ht, hx, hq, hfb) in enumerate(history[-hc:]):
            self.h_t[j] = ht
            self.h_x[j] = hx
            self.h_q[j] = hq
            self.h_fb[j] = hfb
        self.flags[0] = 0
        self.flags[1] = 0
        alpha = controller._alpha
        self.reg[0] = np.nan if alpha is None else float(alpha)

    def run(self, t_grid, b_grid, gi_start, gi_end):
        count = gi_end - gi_start
        if self.out_x.shape[0] < count:
            self.out_x = np.empty((count, self.batch, self.n))
        start = time.perf_counter()
        status = self.impl.sweep_ens(
            t_grid, b_grid, gi_start, gi_end, self.batch, self.pstride,
            self.h_t, self.h_x, self.h_q, self.h_fb, self.hstate,
            self.flags, self.A, self.piv, self.jac_meta, self.reg,
            self.dopts, self.iopts, self.P, self.out_x, self.counters,
            self.iters_b, *self.work, self.masks, self.fwork,
        )
        self.last_wall = time.perf_counter() - start
        return int(status)

    def reset_counters(self):
        self.counters[:] = 0
        self.iters_b[:] = 0

    def export_history(self):
        hc = int(self.hstate[0])
        return [
            (float(self.h_t[j]), self.h_x[j].copy(), self.h_q[j].copy(),
             self.h_fb[j].copy())
            for j in range(hc)
        ]

    def sync_controller(self, controller):
        """Push the tracked integrator weight back into the controller.

        The factor stack itself never crosses back (the python chord
        re-enters cold after any handback, matching ``load``); only the
        ``_notify_alpha`` bookkeeping must stay continuous so a python
        step after a handback judges dt jumps against the kernel's last
        weight.
        """
        if np.isfinite(self.reg[0]):
            controller._alpha = float(self.reg[0])
        if not self.flags[0]:
            controller.chord.invalidate()


def prepare_ensemble_runner(ensemble, opts, integrator, blocked=None):
    """Resolve/compile the batched lock-step sweep for one ensemble run.

    Returns ``(runner, info)`` exactly like
    :func:`prepare_transient_runner`; ``runner`` is ``None`` whenever the
    march stays on the NumPy lock-step path, with ``info["reason"]``
    recording the machine-readable cause.
    """
    from repro.transient.integrators import (
        BackwardEuler,
        Bdf2,
        Trapezoidal,
    )

    requested = getattr(opts, "kernel", "auto")
    mode, reason = resolve_mode(requested)
    info = _new_info(requested)
    if mode == "python":
        info["reason"] = reason
        return None, info
    if blocked is not None:
        info["reason"] = blocked
        return None, info
    if not opts.stale_jacobian or opts.linear_solver is not None:
        info["reason"] = (
            "compiled ensemble sweep requires the chord (frozen-LU) path"
        )
        return None, info
    integrator_id = {BackwardEuler: 0, Trapezoidal: 1, Bdf2: 2}.get(
        type(integrator)
    )
    if integrator_id is None:
        info["reason"] = (
            f"no compiled sweep for integrator "
            f"{type(integrator).__name__}"
        )
        return None, info
    spec, why = ensemble.kernel_spec()
    if spec is None:
        info["reason"] = why
        return None, info
    if spec.n > MAX_KERNEL_UNKNOWNS:
        info["reason"] = (
            f"{spec.n} unknowns exceed the dense-kernel limit "
            f"({MAX_KERNEL_UNKNOWNS})"
        )
        return None, info
    built = _build_with_fallback(spec, mode, info["requested"], info)
    if built is None:
        return None, info
    runner = EnsembleSweepRunner(
        built, opts, integrator_id, ensemble.batch_size
    )
    compile_time = built.compile_time_s + runner.warmup()
    info["mode"] = built.mode
    info["compile_time_s"] = round(compile_time, 6)
    return runner, info


class KernelizedDAE:
    """DAE proxy with compiled batched evaluations.

    Scalar evaluations, forcing terms, structures and names delegate to
    the wrapped DAE, so engines see an interchangeable object; only the
    hot batched loops change implementation.
    """

    def __init__(self, dae, built):
        self._dae = dae
        self._impl = built.impl
        self._spec = built.spec
        self._params = np.ascontiguousarray(built.spec.params_rows)
        self.n = dae.n
        self.variable_names = dae.variable_names

    def __getattr__(self, name):
        return getattr(self._dae, name)

    def _states(self, states):
        X = np.ascontiguousarray(np.asarray(states, dtype=float))
        if self._params.shape[0] > 1 and X.shape[0] != self._params.shape[0]:
            raise ValidationError(
                f"stacked-parameter kernel expects batches of "
                f"{self._params.shape[0]} states, got {X.shape[0]}"
            )
        return X

    def qf_batch(self, states):
        X = self._states(states)
        batch = X.shape[0]
        Q = np.empty((batch, self.n))
        F = np.empty((batch, self.n))
        self._impl.eval_qf_batch(X, self._params, Q, F)
        return Q, F

    def q_batch(self, states):
        return self.qf_batch(states)[0]

    def f_batch(self, states):
        return self.qf_batch(states)[1]

    def dq_dx_batch(self, states):
        return self._jac_batch(states)[0]

    def df_dx_batch(self, states):
        return self._jac_batch(states)[1]

    def _jac_batch(self, states):
        X = self._states(states)
        batch = X.shape[0]
        DQ = np.empty((batch, self.n * self.n))
        DF = np.empty((batch, self.n * self.n))
        self._impl.eval_jac_batch(X, self._params, DQ, DF)
        return (DQ.reshape(batch, self.n, self.n),
                DF.reshape(batch, self.n, self.n))


def maybe_kernelize_batch(dae, kernel_option, expected_batch=None):
    """Wrap ``dae`` in a :class:`KernelizedDAE` when possible.

    Returns ``(dae_or_proxy, info)``.  ``"auto"`` kernelises whenever a
    compiled backend is available — the envelope engines and the
    ensemble engine (for its python-handled steps) all default on;
    ``kernel="python"`` is the escape hatch back to the NumPy batch
    path.
    """
    requested = "auto" if kernel_option is None else str(kernel_option)
    mode, reason = resolve_mode(requested)
    info = _new_info(requested)
    del info["compiled_steps"], info["python_steps"]
    if mode == "python":
        info["reason"] = reason
        return dae, info
    spec, why = spec_for_dae(dae)
    if spec is None:
        info["reason"] = why
        return dae, info
    if spec.stacked and (expected_batch is None
                         or spec.params_rows.shape[0] != expected_batch):
        info["reason"] = (
            "per-scenario parameter stacks do not match this batch layout"
        )
        return dae, info
    if spec.n > MAX_KERNEL_UNKNOWNS:
        info["reason"] = (
            f"{spec.n} unknowns exceed the dense-kernel limit "
            f"({MAX_KERNEL_UNKNOWNS})"
        )
        return dae, info
    built = _build_with_fallback(spec, mode, requested, info)
    if built is None:
        return dae, info
    info["mode"] = built.mode
    info["compile_time_s"] = round(built.compile_time_s, 6)
    return KernelizedDAE(dae, built), info
