"""Entrainment (mode-locking) detection via forced harmonic balance.

Paper §4.1: a mode-locked (entrained) oscillator's response "has the same
period as the external forcing" — i.e. it *is* a stable periodic solution
of the forced system.  Period multiplication (frequency division) is the
same phenomenon with the response period a multiple of the forcing's.

:func:`find_locked_orbit` searches for such a solution: forced HB seeded
from a free-running cycle (retried over initial phase shifts, since the
locked phase offset relative to the injection is unknown a priori),
filtered by amplitude (to discard the small non-oscillating response
branch) and verified for *stability* by stroboscopic transient sampling.
The retry search batches those independent verification transients —
every surviving candidate orbit is probed in one lock-step ensemble run
(:func:`repro.transient.ensemble.simulate_transient_ensemble`) instead of
one serial transient per candidate.
"""

from __future__ import annotations

import numpy as np

from repro.dae.ensemble import EnsembleDAE
from repro.errors import ConvergenceError, SimulationError
from repro.linalg.newton import NewtonOptions
from repro.steadystate.harmonic_balance import harmonic_balance_forced
from repro.transient.engine import TransientOptions, simulate_transient
from repro.transient.ensemble import simulate_transient_ensemble
from repro.utils.validation import check_positive


def stretch_cycle(base_cycle, num_samples):
    """Resample one oscillation cycle onto a different odd-length grid.

    Used to seed period-multiplied solves: one free-running cycle
    stretched across the longer response period reshapes well under
    Newton (seeding with repeated cycles tends to fall onto the
    unentrained branch).
    """
    base_cycle = np.asarray(base_cycle, dtype=float)
    num = base_cycle.shape[0]
    return np.array(
        [base_cycle[int(i * num / num_samples) % num]
         for i in range(num_samples)]
    )


def find_locked_orbit(dae, period, base_cycle, min_peak_to_peak=2.0,
                      variable=0, phase_step=3, num_samples=None,
                      stability_periods=40, stability_tolerance=0.1,
                      newton_options=None):
    """Search for a stable ``period``-periodic large-amplitude orbit.

    Parameters
    ----------
    dae:
        The forced system (its ``b`` must be ``period``-periodic — for a
        divide-by-N search pass ``period = N / f_injection``).
    period:
        Target response period.
    base_cycle:
        ``(N, n)`` free-running cycle used (phase-rolled and, if
        ``num_samples`` differs, stretched) as the initial guess.
    min_peak_to_peak:
        Amplitude threshold separating the entrained oscillation from the
        small forced response of the off state.
    variable:
        Variable used for the amplitude/stability tests.
    phase_step:
        Granularity of the initial-phase retry loop (1 = try every shift).
    num_samples:
        Collocation size for the HB solve; defaults to the guess's length.
    stability_periods:
        Length of the verification transient, in response periods.
    stability_tolerance:
        Allowed stroboscopic drift of the verification transient.

    Returns
    -------
    HBResult or None
        The locked solution, or ``None`` when no stable entrained orbit
        was found (the oscillator is not locked at this period).
    """
    check_positive(period, "period")
    base_cycle = np.asarray(base_cycle, dtype=float)
    num = base_cycle.shape[0]
    if num_samples is None:
        num_samples = num
    options = newton_options or NewtonOptions(
        atol=1e-9, max_iterations=30, raise_on_failure=False
    )

    # Phase-retry HB attempts: collect the distinct large-amplitude
    # candidate orbits (different initial phases usually converge onto the
    # same forced solution, so the candidate list is short).
    candidates = []
    for shift in range(0, num, max(int(phase_step), 1)):
        rolled = np.roll(base_cycle, shift, axis=0)
        guess = (
            rolled if num_samples == num
            else stretch_cycle(rolled, num_samples)
        )
        try:
            solution = harmonic_balance_forced(
                dae, period, num_samples=num_samples, initial=guess,
                newton_options=options,
            )
        except ConvergenceError:
            continue
        trace = solution.samples[:, variable]
        if trace.max() - trace.min() < min_peak_to_peak:
            continue
        scale = float(np.max(np.abs(solution.samples))) or 1.0
        if any(
            np.allclose(solution.samples, seen.samples,
                        rtol=1e-6, atol=1e-6 * scale)
            for seen in candidates
        ):
            continue
        candidates.append(solution)
    if not candidates:
        return None

    # One lock-step ensemble transient verifies every candidate's
    # stability at once (same DAE, different initial states: a trivially
    # stacked ensemble — scalar parameters broadcast over the batch).
    probe_options = TransientOptions(integrator="trap", dt=period / 300)
    probe_horizon = stability_periods * period
    strobe_times = (
        np.arange(stability_periods - 6, stability_periods) * period
    )

    def is_stable(trace_result, solution, index):
        strobe = trace_result.member(index).sample(strobe_times, variable)
        return np.max(
            np.abs(strobe - solution.samples[0, variable])
        ) < stability_tolerance

    ensemble = EnsembleDAE.from_stacked(
        dae, len(candidates), members=[dae] * len(candidates)
    )
    try:
        probe = simulate_transient_ensemble(
            ensemble,
            np.stack([sol.samples[0] for sol in candidates]),
            0.0, probe_horizon, probe_options,
        )
    except SimulationError:
        # One diverging candidate's probe must not abort the search (the
        # lock-step grid couples otherwise independent transients): retry
        # serially, disqualifying only the candidates that diverge.
        for solution in candidates:
            try:
                single = simulate_transient(
                    dae, solution.samples[0], 0.0, probe_horizon,
                    probe_options,
                )
            except SimulationError:
                continue
            strobe = single.sample(strobe_times, variable)
            if np.max(
                np.abs(strobe - solution.samples[0, variable])
            ) < stability_tolerance:
                return solution
        return None
    for index, solution in enumerate(candidates):
        if is_stable(probe, solution, index):
            return solution
    return None
