"""Oscillator frequency sweeps: tuning curves over a circuit parameter.

Computes free-running frequency (and amplitude) versus a swept parameter —
e.g. the VCO's control voltage, the paper's Figs 7/10 tuning curves — by
solving the autonomous HB problem at each value.  Two strategies:

``method="ensemble"`` (the fast path)
    All ``B`` scenarios advance through one lock-step batched settle
    transient (:func:`repro.transient.ensemble.simulate_transient_ensemble`
    over an :class:`repro.dae.ensemble.EnsembleDAE`), each scenario's
    period is estimated from its own zero crossings, and the per-scenario
    HB refinements run from those well-converged seeds.  The settle
    transient — the dominant cost of initialising a tuning curve from
    nothing — is paid once for the whole family instead of once per point.

``method="continuation"`` (the classic path)
    Solve point by point in sweep order, each HB solve seeded from the
    previous solution (natural continuation, with step bisection on
    failure).  Only the first point pays for the full
    DC→transient→HB initialisation pipeline.  Best when the values are
    ordered and closely spaced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.serialize import SerializableMixin
from repro.errors import ConvergenceError
from repro.steadystate.harmonic_balance import harmonic_balance_autonomous


@dataclass
class FrequencySweepResult(SerializableMixin):
    """Tuning curve from :func:`oscillator_frequency_sweep`.

    Attributes
    ----------
    values:
        Parameter values actually solved (in sweep order).  On a
        truncated sweep (``on_failure="truncate"``) this is the solved
        prefix only — always consistent with the other arrays.
    frequencies:
        Free-running frequency at each value [Hz].
    amplitudes:
        Peak-to-peak amplitude of the observed variable at each value.
    solver_stats:
        Per-scenario solver counters (one
        :class:`repro.linalg.solver_core.SolverStats` dict per solved
        value) when the sweep collects them; empty otherwise.
    """

    values: np.ndarray
    frequencies: np.ndarray
    amplitudes: np.ndarray
    solver_stats: list = field(default_factory=list)

    @property
    def stats(self):
        """Uniform ``.stats`` view (points solved + per-point counters)."""
        return {
            "points": int(np.asarray(self.values).size),
            "solver_per_point": list(self.solver_stats),
        }


def oscillator_frequency_sweep(dae_factory, values, period_guess,
                               num_t1=25, variable=0,
                               phase_condition="fourier",
                               method="continuation", on_failure="raise",
                               stacked_factory=None, backend=None):
    """Free-running frequency versus a swept parameter.

    Parameters
    ----------
    dae_factory:
        Callable ``value -> SemiExplicitDAE`` building the *unforced*
        oscillator at one parameter value (e.g.
        ``lambda vc: MemsVcoDae(replace(params, control_offset=vc),
        constant_control=True)``).
    values:
        Parameter values; swept in the given order, each HB solve seeded
        from the previous solution.
    period_guess:
        Rough oscillation period at ``values[0]`` (for the initial
        settle-transient).
    num_t1:
        Odd collocation count.
    variable:
        Variable used for the phase condition and amplitude report.
    method:
        ``"continuation"`` (point-by-point, seeded from the previous
        solution) or ``"ensemble"`` (one batched lock-step settle, then
        independent per-scenario HB refinements — see
        :func:`ensemble_frequency_sweep`).
    on_failure:
        ``"raise"`` — a failed point raises :class:`ConvergenceError`
        (with the truncated-but-consistent partial curve attached as
        ``exc.partial_result``); ``"truncate"`` — return the solved
        prefix as a consistent :class:`FrequencySweepResult`.
    stacked_factory:
        Optional ``values_array -> SemiExplicitDAE`` enabling the
        vectorised stacked-parameter fast path of the ensemble method.
    backend:
        Array backend for the ensemble method's lock-step settle
        transient (see
        :attr:`repro.linalg.solver_core.SolverOptionsMixin.backend`);
        ignored by continuation, whose point solves are host-only.

    Returns
    -------
    FrequencySweepResult

    Raises
    ------
    ConvergenceError
        If continuation fails at some value and ``on_failure="raise"``
        (message names the value).
    """
    if method not in ("continuation", "ensemble"):
        raise ValueError(
            f"method must be 'continuation' or 'ensemble', got {method!r}"
        )
    if on_failure not in ("raise", "truncate"):
        raise ValueError(
            f"on_failure must be 'raise' or 'truncate', got {on_failure!r}"
        )
    if method == "ensemble":
        return ensemble_frequency_sweep(
            dae_factory, values, period_guess, num_t1=num_t1,
            variable=variable, phase_condition=phase_condition,
            on_failure=on_failure, stacked_factory=stacked_factory,
            backend=backend,
        )

    # Imported here: the initial-condition pipeline lives in repro.wampde,
    # which itself imports repro.steadystate (module-level import would be
    # circular).
    from repro.wampde.initial_condition import oscillator_initial_condition

    values = np.asarray(values, dtype=float)
    if values.size < 1:
        raise ValueError("sweep needs at least one parameter value")

    frequencies = np.empty(values.size)
    amplitudes = np.empty(values.size)
    solver_stats = []

    samples, frequency = oscillator_initial_condition(
        dae_factory(float(values[0])),
        num_t1=num_t1,
        period_guess=period_guess,
        phase_condition=phase_condition,
        phase_variable=variable,
    )

    def solve_at(value, seed_samples, seed_frequency, depth=0,
                 from_value=None):
        """HB at one value; on failure, bisect the continuation step."""
        dae = dae_factory(float(value))
        try:
            return harmonic_balance_autonomous(
                dae,
                frequency_guess=seed_frequency,
                initial=seed_samples,
                phase_condition=phase_condition,
                phase_variable=variable,
                num_samples=num_t1,
            )
        except ConvergenceError as exc:
            if depth >= 6 or from_value is None or from_value == value:
                raise ConvergenceError(
                    f"frequency sweep failed at parameter value "
                    f"{value!r}: {exc}"
                ) from exc
            midpoint = 0.5 * (from_value + value)
            mid = solve_at(midpoint, seed_samples, seed_frequency,
                           depth + 1, from_value)
            return solve_at(value, mid.samples, mid.frequency,
                            depth + 1, midpoint)

    previous_value = None
    for i, value in enumerate(values):
        try:
            hb = solve_at(float(value), samples, frequency,
                          from_value=previous_value)
        except ConvergenceError as exc:
            partial = FrequencySweepResult(
                values[:i].copy(), frequencies[:i].copy(),
                amplitudes[:i].copy(), solver_stats,
            )
            if on_failure == "truncate":
                return partial
            exc.partial_result = partial
            raise
        samples, frequency = hb.samples, hb.frequency
        previous_value = float(value)
        frequencies[i] = frequency
        trace = samples[:, variable]
        amplitudes[i] = float(trace.max() - trace.min())
        solver_stats.append(dict(hb.stats))

    return FrequencySweepResult(
        values.copy(), frequencies, amplitudes, solver_stats
    )


def ensemble_frequency_sweep(dae_factory, values, period_guess, num_t1=25,
                             variable=0, phase_condition="fourier",
                             on_failure="raise", stacked_factory=None,
                             settle_cycles=40, steps_per_cycle=60,
                             perturbation=0.1, backend=None):
    """Tuning curve with every parameter value settled in lock-step.

    The batched analogue of running
    :func:`repro.wampde.initial_condition.oscillator_initial_condition`
    at every value: per-scenario DC points are kicked and settled onto
    their limit cycles by **one** ensemble transient on a shared grid,
    each scenario's period comes from its own zero crossings, and the
    final autonomous HB refinements run independently from those seeds
    (each converging in a handful of iterations).  The scenarios never
    talk to each other — unlike continuation there is no ordering
    requirement on ``values`` and no failure coupling between points.

    Parameters mirror :func:`oscillator_frequency_sweep`; additionally:

    Parameters
    ----------
    settle_cycles, steps_per_cycle:
        Length and resolution (in ``period_guess`` units) of the shared
        settling transient.
    perturbation:
        Kick added to ``variable`` of each scenario's DC point to start
        the oscillation.
    backend:
        Array backend for the shared settle transient — the sweep's
        dominant cost.  ``None`` resolves the default (``$REPRO_XP`` or
        NumPy); the per-scenario HB refinements stay host-side either
        way.

    Returns
    -------
    FrequencySweepResult
        With one ``solver_stats`` entry per value (the scenario's HB
        counters).
    """
    from repro.dae.ensemble import ensemble_from_factory
    from repro.steadystate.dc import dc_operating_point
    from repro.steadystate.shooting import estimate_period_from_transient
    from repro.transient.engine import TransientOptions
    from repro.transient.ensemble import simulate_transient_ensemble

    values = np.asarray(values, dtype=float)
    if values.size < 1:
        raise ValueError("sweep needs at least one parameter value")
    if on_failure not in ("raise", "truncate"):
        raise ValueError(
            f"on_failure must be 'raise' or 'truncate', got {on_failure!r}"
        )

    ensemble = ensemble_from_factory(dae_factory, values, stacked_factory)
    batch = ensemble.batch_size

    # Per-scenario DC points.  A scenario whose DC point fails would
    # poison the shared lock-step settle, so the sweep is trimmed to the
    # prefix before the first failure *up front* (the already-converged
    # prefix then runs through the pipeline exactly once) and the
    # failure surfaces per ``on_failure`` at the end.
    dc_failure = None
    x0 = np.empty((batch, ensemble.n))
    for index in range(batch):
        try:
            x0[index] = dc_operating_point(ensemble.member(index))
        except ConvergenceError as exc:
            dc_failure = (index, exc)
            batch = index
            if batch:
                ensemble = ensemble_from_factory(
                    dae_factory, values[:batch], stacked_factory
                )
                x0 = x0[:batch]
            break
        x0[index, variable] += perturbation

    frequencies = np.empty(batch)
    amplitudes = np.empty(batch)
    solver_stats = []

    if batch:
        settle = simulate_transient_ensemble(
            ensemble, x0, 0.0, settle_cycles * period_guess,
            TransientOptions(
                integrator="trap", dt=period_guess / steps_per_cycle,
                backend=backend,
            ),
        )
        solved = 0
        for index in range(batch):
            try:
                member = settle.member(index)
                period = estimate_period_from_transient(member, key=variable)
                tail_start = member.t[-1] - period
                times = tail_start + period * np.arange(num_t1) / num_t1
                rough_cycle = member.sample(times)
                hb = harmonic_balance_autonomous(
                    ensemble.member(index),
                    frequency_guess=1.0 / period,
                    initial=rough_cycle,
                    phase_condition=phase_condition,
                    phase_variable=variable,
                    num_samples=num_t1,
                )
            except ConvergenceError as exc:
                partial = FrequencySweepResult(
                    values[:solved].copy(), frequencies[:solved].copy(),
                    amplitudes[:solved].copy(), solver_stats,
                )
                if on_failure == "truncate":
                    return partial
                wrapped = ConvergenceError(
                    f"ensemble frequency sweep failed at parameter value "
                    f"{values[index]!r}: {exc}"
                )
                wrapped.partial_result = partial
                raise wrapped from exc
            frequencies[index] = hb.frequency
            trace = hb.samples[:, variable]
            amplitudes[index] = float(trace.max() - trace.min())
            solver_stats.append(dict(hb.stats))
            solved = index + 1

    result = FrequencySweepResult(
        values[:batch].copy(), frequencies, amplitudes, solver_stats
    )
    if dc_failure is not None and on_failure == "raise":
        index, exc = dc_failure
        wrapped = ConvergenceError(
            f"ensemble frequency sweep failed at parameter value "
            f"{values[index]!r}: DC operating point did not converge: {exc}"
        )
        wrapped.partial_result = result
        raise wrapped from exc
    return result
