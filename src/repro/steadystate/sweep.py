"""Oscillator frequency sweeps by harmonic-balance continuation.

Computes tuning curves — free-running frequency (and amplitude) versus a
circuit parameter, e.g. the VCO's control voltage — by solving the
autonomous HB problem at each parameter value, *seeded from the previous
solution* (natural continuation).  Only the first point pays for the
full DC→transient→HB initialisation pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError
from repro.steadystate.harmonic_balance import harmonic_balance_autonomous


@dataclass
class FrequencySweepResult:
    """Tuning curve from :func:`oscillator_frequency_sweep`.

    Attributes
    ----------
    values:
        Parameter values actually solved (in sweep order).
    frequencies:
        Free-running frequency at each value [Hz].
    amplitudes:
        Peak-to-peak amplitude of the observed variable at each value.
    """

    values: np.ndarray
    frequencies: np.ndarray
    amplitudes: np.ndarray


def oscillator_frequency_sweep(dae_factory, values, period_guess,
                               num_t1=25, variable=0,
                               phase_condition="fourier"):
    """Free-running frequency versus a swept parameter.

    Parameters
    ----------
    dae_factory:
        Callable ``value -> SemiExplicitDAE`` building the *unforced*
        oscillator at one parameter value (e.g.
        ``lambda vc: MemsVcoDae(replace(params, control_offset=vc),
        constant_control=True)``).
    values:
        Parameter values; swept in the given order, each HB solve seeded
        from the previous solution.
    period_guess:
        Rough oscillation period at ``values[0]`` (for the initial
        settle-transient).
    num_t1:
        Odd collocation count.
    variable:
        Variable used for the phase condition and amplitude report.

    Returns
    -------
    FrequencySweepResult

    Raises
    ------
    ConvergenceError
        If continuation fails at some value (message names the value).
    """
    # Imported here: the initial-condition pipeline lives in repro.wampde,
    # which itself imports repro.steadystate (module-level import would be
    # circular).
    from repro.wampde.initial_condition import oscillator_initial_condition

    values = np.asarray(values, dtype=float)
    if values.size < 1:
        raise ValueError("sweep needs at least one parameter value")

    frequencies = np.empty(values.size)
    amplitudes = np.empty(values.size)

    samples, frequency = oscillator_initial_condition(
        dae_factory(float(values[0])),
        num_t1=num_t1,
        period_guess=period_guess,
        phase_condition=phase_condition,
        phase_variable=variable,
    )
    def solve_at(value, seed_samples, seed_frequency, depth=0,
                 from_value=None):
        """HB at one value; on failure, bisect the continuation step."""
        dae = dae_factory(float(value))
        try:
            return harmonic_balance_autonomous(
                dae,
                frequency_guess=seed_frequency,
                initial=seed_samples,
                phase_condition=phase_condition,
                phase_variable=variable,
                num_samples=num_t1,
            )
        except ConvergenceError as exc:
            if depth >= 6 or from_value is None or from_value == value:
                raise ConvergenceError(
                    f"frequency sweep failed at parameter value "
                    f"{value!r}: {exc}"
                ) from exc
            midpoint = 0.5 * (from_value + value)
            mid = solve_at(midpoint, seed_samples, seed_frequency,
                           depth + 1, from_value)
            return solve_at(value, mid.samples, mid.frequency,
                            depth + 1, midpoint)

    previous_value = None
    for i, value in enumerate(values):
        hb = solve_at(float(value), samples, frequency,
                      from_value=previous_value)
        samples, frequency = hb.samples, hb.frequency
        previous_value = float(value)
        frequencies[i] = frequency
        trace = samples[:, variable]
        amplitudes[i] = float(trace.max() - trace.min())

    return FrequencySweepResult(values.copy(), frequencies, amplitudes)
