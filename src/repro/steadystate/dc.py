"""DC operating point: solve ``f(x) = b(t0)`` with all dynamics frozen."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError
from repro.linalg.newton import NewtonOptions
from repro.linalg.solver_core import FunctionSystem, core_from_options


@dataclass
class DcOptions:
    """Configuration for :func:`dc_operating_point`.

    Attributes
    ----------
    newton:
        Newton options for the direct attempt.
    newton_mode:
        Newton policy of the shared
        :class:`repro.linalg.solver_core.SolverCore` (``"full"`` is right
        for the continuation ladder: every stage reshapes the system).
    gmin_steps:
        Number of gmin-stepping continuation stages tried if the direct
        solve fails (0 disables).
    gmin_start:
        Initial shunt conductance for gmin stepping.
    source_steps:
        Number of source-stepping stages tried if gmin stepping also fails.
    """

    newton: NewtonOptions = field(
        default_factory=lambda: NewtonOptions(raise_on_failure=False)
    )
    newton_mode: str = "full"
    gmin_steps: int = 8
    gmin_start: float = 1e-2
    source_steps: int = 8


def _solve_once(core, dae, x0, t0, gmin, source_scale):
    """One Newton attempt with shunt gmin and scaled sources."""
    b0 = source_scale * dae.b(t0)

    def residual(x):
        return dae.f(x) + gmin * x - b0

    def jacobian(x):
        jac = np.asarray(dae.df_dx(x), dtype=float)
        if gmin:
            jac = jac + gmin * np.eye(dae.n)
        return jac

    # The continuation parameters reshape the system between attempts;
    # registering them drops any chord factors carried across stages.
    core.note_parameters(gmin=gmin, source_scale=source_scale)
    system = FunctionSystem(
        residual, jacobian, structure={"size": dae.n, "dense": True}
    )
    return core.solve(system, x0)


def dc_operating_point(dae, t0=0.0, x0=None, options=None):
    """Find ``x`` with ``f(x) = b(t0)`` (the quiescent point of the DAE).

    Tries a direct Newton solve first, then gmin stepping, then source
    stepping — the standard SPICE escalation ladder.

    Returns
    -------
    numpy.ndarray
        The operating point.

    Raises
    ------
    ConvergenceError
        If every strategy fails.
    """
    opts = options or DcOptions()
    x = np.zeros(dae.n) if x0 is None else np.array(x0, dtype=float).ravel()
    core = core_from_options(opts)

    result = _solve_once(core, dae, x, t0, 0.0, 1.0)
    if result.converged:
        return result.x

    # gmin stepping: solve with a large shunt conductance, then relax it.
    if opts.gmin_steps > 0:
        x_cont = x.copy()
        gmins = np.geomspace(opts.gmin_start, 1e-12, opts.gmin_steps)
        ok = True
        for gmin in gmins:
            result = _solve_once(core, dae, x_cont, t0, float(gmin), 1.0)
            if not result.converged:
                ok = False
                break
            x_cont = result.x
        if ok:
            result = _solve_once(core, dae, x_cont, t0, 0.0, 1.0)
            if result.converged:
                return result.x

    # Source stepping: ramp b from 0 to full strength.
    if opts.source_steps > 0:
        x_cont = np.zeros(dae.n)
        ok = True
        for scale in np.linspace(0.0, 1.0, opts.source_steps + 1)[1:]:
            result = _solve_once(core, dae, x_cont, t0, 0.0, float(scale))
            if not result.converged:
                ok = False
                break
            x_cont = result.x
        if ok:
            return x_cont

    raise ConvergenceError(
        "DC operating point failed: direct Newton, gmin stepping and source "
        "stepping all diverged"
    )
