"""DC operating point: solve ``f(x) = b(t0)`` with all dynamics frozen."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError
from repro.linalg.newton import NewtonOptions
from repro.linalg.solver_core import SolverOptionsMixin, core_from_options
from repro.resilience.continuation import (
    GminShiftedSystem,
    SourceScaledSystem,
)
from repro.resilience.recovery import RecoveryAttempt, RecoveryLog


@dataclass
class DcOptions(SolverOptionsMixin):
    """Configuration for :func:`dc_operating_point`.

    The ``newton``/``linear_solver``/``threads``/``ladder`` fields come
    from the shared
    :class:`~repro.linalg.solver_core.SolverOptionsMixin` (the DC solve
    keeps its own gmin/source escalation in addition to the core ladder).

    Attributes
    ----------
    newton:
        Newton options for the direct attempt.
    newton_mode:
        Newton policy of the shared
        :class:`repro.linalg.solver_core.SolverCore` (``"full"`` is right
        for the continuation ladder: every stage reshapes the system).
    gmin_steps:
        Number of gmin-stepping continuation stages tried if the direct
        solve fails (0 disables).
    gmin_start:
        Initial shunt conductance for gmin stepping.
    source_steps:
        Number of source-stepping stages tried if gmin stepping also fails.
    """

    newton: NewtonOptions = field(
        default_factory=lambda: NewtonOptions(raise_on_failure=False)
    )
    newton_mode: str = "full"
    gmin_steps: int = 8
    gmin_start: float = 1e-2
    source_steps: int = 8


class _DcSystem:
    """The plain DC system ``f(x) - b(t0) = 0`` (dense Jacobian).

    The continuation stages are :class:`GminShiftedSystem` /
    :class:`SourceScaledSystem` wrappers around this one object — the
    SPICE gmin/source ladders expressed as system embeddings rather than
    bespoke residual closures.
    """

    assembler = None

    def __init__(self, dae, b0):
        self.dae = dae
        self.b0 = b0

    def residual(self, x):
        return self.dae.f(x) - self.b0

    def jacobian(self, x):
        return np.asarray(self.dae.df_dx(x), dtype=float)

    def structure(self):
        return {"size": self.dae.n, "dense": True}


def _record(log, stage, rung, result, detail):
    log.extend([RecoveryAttempt(
        solve=stage,
        rung=rung,
        converged=result.converged,
        iterations=result.iterations,
        residual_norm=result.residual_norm,
        detail=detail,
    )])


def dc_operating_point(dae, t0=0.0, x0=None, options=None):
    """Find ``x`` with ``f(x) = b(t0)`` (the quiescent point of the DAE).

    Tries a direct Newton solve first, then gmin stepping, then source
    stepping — the standard SPICE escalation ladder, with each
    continuation stage expressed as a
    :mod:`repro.resilience.continuation` system wrapper.  On total
    failure the raised :class:`~repro.errors.ConvergenceError` carries
    the final iteration count, residual norm and the
    :class:`~repro.resilience.recovery.RecoveryLog` of every stage tried
    (as ``exc.recovery``).

    Returns
    -------
    numpy.ndarray
        The operating point.

    Raises
    ------
    ConvergenceError
        If every strategy fails.
    """
    opts = options or DcOptions()
    x = np.zeros(dae.n) if x0 is None else np.array(x0, dtype=float).ravel()
    core = core_from_options(opts)
    base = _DcSystem(dae, dae.b(t0))
    log = RecoveryLog()

    def attempt(system, start, gmin, scale):
        # The continuation parameters reshape the system between attempts;
        # registering them drops any chord factors carried across stages.
        core.note_parameters(gmin=gmin, source_scale=scale)
        return core.solve(system, start)

    result = attempt(base, x, 0.0, 1.0)
    if result.converged:
        return result.x
    _record(log, 0, "newton", result, "direct Newton")

    # gmin stepping: solve with a large shunt conductance, then relax it.
    if opts.gmin_steps > 0:
        x_cont = x.copy()
        gmins = np.geomspace(opts.gmin_start, 1e-12, opts.gmin_steps)
        ok = True
        for stage, gmin in enumerate(gmins, start=1):
            result = attempt(
                GminShiftedSystem(base, float(gmin)), x_cont, float(gmin), 1.0
            )
            _record(log, stage, "continuation", result, f"gmin={gmin:.3e}")
            if not result.converged:
                ok = False
                break
            x_cont = result.x
        if ok:
            result = attempt(base, x_cont, 0.0, 1.0)
            _record(log, opts.gmin_steps + 1, "continuation", result,
                    "gmin ladder final plain solve")
            if result.converged:
                return result.x

    # Source stepping: ramp b from 0 to full strength.
    if opts.source_steps > 0:
        x_cont = np.zeros(dae.n)
        ok = True
        scales = np.linspace(0.0, 1.0, opts.source_steps + 1)[1:]
        for stage, scale in enumerate(scales, start=1):
            result = attempt(
                SourceScaledSystem(base, base.b0, float(scale)), x_cont,
                0.0, float(scale),
            )
            _record(log, stage, "continuation", result,
                    f"source_scale={scale:.3f}")
            if not result.converged:
                ok = False
                break
            x_cont = result.x
        if ok:
            return x_cont

    raise ConvergenceError(
        "DC operating point failed: direct Newton, gmin stepping and source "
        "stepping all diverged",
        iterations=result.iterations,
        residual_norm=result.residual_norm,
        recovery=log,
    )
