"""Periodic steady state by shooting.

Shooting finds a fixed point of the period map ``Phi_T(x0) = x(T; x0)``:

* forced systems (period ``T`` known from the input): solve
  ``Phi_T(x0) - x0 = 0`` in ``x0``;
* autonomous oscillators (period unknown — paper §2's [AT72, Ske80, TKW95]
  setting): solve the bordered system in ``(x0, T)`` with a Poincaré
  anchor ``x0[k] = const`` removing the phase ambiguity.

The monodromy matrix ``d Phi / d x0`` is obtained by **forward sensitivity
propagation in a single transient sweep**
(:func:`repro.transient.engine.simulate_transient_with_sensitivity`): the
sensitivities ride along with the state, reusing each step's already-
factored Jacobian for all ``n`` (+1 for the period) right-hand sides.  One
shooting-Newton iteration therefore costs **one** transient sweep, versus
the ``n + 1`` forward-difference sweeps of the legacy scheme (still
available as ``monodromy="fd"`` and used by the test suite as an
independent cross-check).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError
from repro.linalg.newton import NewtonOptions, newton_solve
from repro.transient.engine import (
    TransientOptions,
    simulate_transient,
    simulate_transient_with_sensitivity,
)
from repro.transient.events import zero_crossings
from repro.utils.validation import check_positive

#: Recognised monodromy computation schemes.
_MONODROMY_METHODS = ("sensitivity", "fd")


@dataclass
class ShootingResult:
    """Outcome of a shooting solve.

    Attributes
    ----------
    x0:
        Point on the periodic orbit (the solution at phase 0).
    period:
        Oscillation period (input value for forced problems).
    monodromy:
        Final ``(n, n)`` period-map Jacobian ``d Phi / d x0`` — its
        eigenvalues are the Floquet multipliers.
    newton_iterations:
        Outer Newton iterations performed.
    transient_sweeps:
        Full transient sweeps spent (state + sensitivity sweeps count
        once; every finite-difference probe of the legacy scheme counts
        separately).  With ``monodromy="sensitivity"`` this is exactly
        ``newton_iterations + 1`` when the line search accepts every full
        step.
    """

    x0: np.ndarray
    period: float
    monodromy: np.ndarray
    newton_iterations: int
    transient_sweeps: int = 0

    def floquet_multipliers(self):
        """Eigenvalues of the monodromy matrix."""
        return np.linalg.eigvals(self.monodromy)

    def sample_orbit(self, dae, num_samples, steps_per_period=400,
                     integrator="trap"):
        """Integrate one period and return states on a uniform phase grid.

        Returns
        -------
        numpy.ndarray
            Shape ``(num_samples, n)``; row ``j`` is the state at
            ``t = j * period / num_samples``.
        """
        options = TransientOptions(
            integrator=integrator, dt=self.period / steps_per_period
        )
        result = simulate_transient(dae, self.x0, 0.0, self.period, options)
        times = self.period * np.arange(num_samples) / num_samples
        return result.sample(times)


def _flow(dae, x0, t0, period, steps_per_period, integrator):
    """State after integrating one period from ``x0``."""
    options = TransientOptions(
        integrator=integrator, dt=period / steps_per_period, store_every=10**9
    )
    result = simulate_transient(dae, x0, t0, t0 + period, options)
    return result.final_state()


def _sensitivity_sweep(dae, x0, t0, period, steps_per_period, integrator,
                       period_derivative=False):
    """One transient sweep carrying state + monodromy (+ period column).

    Returns ``(phi, monodromy, dphi_dT)`` where ``dphi_dT`` is ``None``
    unless requested.
    """
    options = TransientOptions(
        integrator=integrator, dt=period / steps_per_period, store_every=10**9
    )
    sens = simulate_transient_with_sensitivity(
        dae, x0, t0, t0 + period, options,
        period_sensitivity=period_derivative,
    )
    return (
        sens.result.final_state(),
        sens.sensitivity,
        sens.period_sensitivity,
    )


def monodromy_finite_difference(dae, x0, t0, period, steps_per_period=400,
                                integrator="trap", rel_step=1e-7):
    """Monodromy matrix by forward differences on the flow.

    The legacy scheme (``n + 1`` transient sweeps); retained as an
    independent cross-check of the sensitivity propagation and for DAEs
    whose Jacobians are unreliable.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        ``(phi, monodromy)``: the base flow and the ``(n, n)`` forward-
        difference Jacobian ``d Phi / d x0``.
    """
    x0 = np.asarray(x0, dtype=float).ravel()
    n = x0.size
    base = _flow(dae, x0, t0, period, steps_per_period, integrator)
    mono = np.empty((n, n))
    for j in range(n):
        step = rel_step * max(1.0, abs(x0[j]))
        x_pert = x0.copy()
        x_pert[j] += step
        mono[:, j] = (
            _flow(dae, x_pert, t0, period, steps_per_period, integrator)
            - base
        ) / step
    return base, mono


def _check_monodromy_method(monodromy):
    if monodromy not in _MONODROMY_METHODS:
        raise ValueError(
            f"monodromy must be one of {_MONODROMY_METHODS}, "
            f"got {monodromy!r}"
        )


def estimate_period_from_transient(result, key=0, skip_fraction=0.5):
    """Estimate an oscillation period from rising zero crossings.

    Parameters
    ----------
    result:
        A :class:`~repro.transient.results.TransientResult` that has reached
        steady oscillation.
    key:
        Variable whose zero crossings define the period.
    skip_fraction:
        Fraction of the record discarded as startup transient.

    Returns
    -------
    float
        Median spacing between consecutive rising crossings.
    """
    y = result.column(key)
    t = result.t
    start = t[0] + skip_fraction * (t[-1] - t[0])
    mask = t >= start
    crossings = zero_crossings(t[mask], y[mask] - np.mean(y[mask]), direction=+1)
    if crossings.size < 3:
        raise ConvergenceError(
            "not enough zero crossings to estimate a period; "
            "simulate longer or pick another variable"
        )
    return float(np.median(np.diff(crossings)))


def shooting_periodic(dae, x0_guess, period, t0=0.0, steps_per_period=400,
                      integrator="trap", newton_options=None,
                      monodromy="sensitivity"):
    """Periodic steady state of a *forced* system with known period.

    Parameters
    ----------
    monodromy:
        ``"sensitivity"`` (default): single-sweep forward-sensitivity
        monodromy — residual and Jacobian of each Newton iterate come from
        the *same* sweep.  ``"fd"``: legacy forward differences (``n + 1``
        sweeps per iteration).

    Returns
    -------
    ShootingResult
    """
    check_positive(period, "period")
    _check_monodromy_method(monodromy)
    x0_guess = np.array(x0_guess, dtype=float).ravel()
    n = dae.n
    cache = {"key": None, "mono": None, "mono_last": None}
    sweeps = [0]

    def evaluate(x0, need_jacobian):
        # In sensitivity mode the monodromy rides along with every state
        # sweep (that is the single-sweep design).  In fd mode a residual
        # probe costs one sweep and only a Jacobian request pays the n
        # column sweeps — line-search trials stay cheap.
        key = x0.tobytes()
        if cache["key"] != key:
            if monodromy == "sensitivity":
                phi, mono, _ = _sensitivity_sweep(
                    dae, x0, t0, period, steps_per_period, integrator
                )
                cache["mono_last"] = mono
            else:
                phi = _flow(dae, x0, t0, period, steps_per_period, integrator)
                mono = None
            sweeps[0] += 1
            cache.update(key=key, phi=phi, mono=mono)
        if need_jacobian and cache["mono"] is None:
            _phi, mono = monodromy_finite_difference(
                dae, x0, t0, period, steps_per_period, integrator
            )
            sweeps[0] += n + 1
            cache["mono"] = mono
            cache["mono_last"] = mono
        return cache

    def residual(x0):
        return evaluate(x0, False)["phi"] - x0

    def jacobian(x0):
        return evaluate(x0, True)["mono"] - np.eye(n)

    opts = newton_options or NewtonOptions(atol=1e-10, max_iterations=30)
    result = newton_solve(residual, jacobian, x0_guess, options=opts)
    # The cache holds the sweep of the last residual evaluation — the
    # accepted iterate — so the reported monodromy is at the solution
    # (sensitivity mode; fd mode reports the last Jacobian computed, as
    # the legacy scheme did).
    mono = cache["mono_last"] if cache["mono_last"] is not None else np.eye(n)
    return ShootingResult(
        result.x,
        float(period),
        mono,
        result.iterations,
        sweeps[0],
    )


def shooting_autonomous(dae, x0_guess, period_guess, anchor_index=0,
                        anchor_value=None, t0=0.0, steps_per_period=400,
                        integrator="trap", newton_options=None,
                        monodromy="sensitivity"):
    """Limit cycle and period of an *autonomous* oscillator.

    Unknowns are ``(x0, T)``; the extra equation is the Poincaré anchor
    ``x0[anchor_index] = anchor_value`` (default: the guess's value), which
    removes the time-shift ambiguity exactly as the paper's phase condition
    does for the WaMPDE.  With ``monodromy="sensitivity"`` the period
    column ``d Phi / d T`` is propagated in the same single sweep as the
    monodromy.

    Returns
    -------
    ShootingResult
    """
    check_positive(period_guess, "period_guess")
    _check_monodromy_method(monodromy)
    x0_guess = np.array(x0_guess, dtype=float).ravel()
    n = dae.n
    anchor = (
        float(x0_guess[anchor_index]) if anchor_value is None else float(anchor_value)
    )
    cache = {"key": None, "mono": None, "mono_last": None}
    sweeps = [0]

    def evaluate(z, need_jacobian):
        # Same laziness split as shooting_periodic: fd-mode residual
        # probes pay one sweep, only Jacobian requests pay the n + 1
        # finite-difference sweeps.
        key = z.tobytes()
        x0, period = z[:n], abs(z[n])
        if cache["key"] != key:
            if monodromy == "sensitivity":
                phi, mono, dphi_dt = _sensitivity_sweep(
                    dae, x0, t0, period, steps_per_period, integrator,
                    period_derivative=True,
                )
                cache["mono_last"] = mono
            else:
                phi = _flow(dae, x0, t0, period, steps_per_period, integrator)
                mono = dphi_dt = None
            sweeps[0] += 1
            cache.update(key=key, phi=phi, mono=mono, dphi_dt=dphi_dt)
        if need_jacobian and cache["mono"] is None:
            _phi, mono = monodromy_finite_difference(
                dae, x0, t0, period, steps_per_period, integrator
            )
            dt_step = 1e-7 * period
            dphi_dt = (
                _flow(dae, x0, t0, period + dt_step, steps_per_period,
                      integrator)
                - cache["phi"]
            ) / dt_step
            sweeps[0] += n + 2
            cache.update(mono=mono, dphi_dt=dphi_dt, mono_last=mono)
        return cache

    def residual(z):
        x0 = z[:n]
        gap = evaluate(z, False)["phi"] - x0
        return np.concatenate([gap, [x0[anchor_index] - anchor]])

    def jacobian(z):
        data = evaluate(z, True)
        jac = np.zeros((n + 1, n + 1))
        jac[:n, :n] = data["mono"] - np.eye(n)
        sign = 1.0 if z[n] >= 0 else -1.0  # residual uses |z[n]| as period
        jac[:n, n] = sign * data["dphi_dt"]
        jac[n, anchor_index] = 1.0
        return jac

    opts = newton_options or NewtonOptions(atol=1e-9, max_iterations=30)
    z0 = np.concatenate([x0_guess, [period_guess]])
    result = newton_solve(residual, jacobian, z0, options=opts)
    x0 = result.x[:n]
    period = float(abs(result.x[n]))
    return ShootingResult(
        x0,
        period,
        cache["mono_last"] if cache["mono_last"] is not None else np.eye(n),
        result.iterations,
        sweeps[0],
    )
