"""Periodic steady state by shooting.

Shooting finds a fixed point of the period map ``Phi_T(x0) = x(T; x0)``:

* forced systems (period ``T`` known from the input): solve
  ``Phi_T(x0) - x0 = 0`` in ``x0``;
* autonomous oscillators (period unknown — paper §2's [AT72, Ske80, TKW95]
  setting): solve the bordered system in ``(x0, T)`` with a Poincaré
  anchor ``x0[k] = const`` removing the phase ambiguity.

Sensitivities are obtained by forward finite differences on the flow; for
the small systems in this library that is both simple and robust.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError
from repro.linalg.newton import NewtonOptions, newton_solve
from repro.transient.engine import TransientOptions, simulate_transient
from repro.transient.events import zero_crossings
from repro.utils.validation import check_positive


@dataclass
class ShootingResult:
    """Outcome of a shooting solve.

    Attributes
    ----------
    x0:
        Point on the periodic orbit (the solution at phase 0).
    period:
        Oscillation period (input value for forced problems).
    monodromy:
        Final ``(n, n)`` period-map Jacobian ``d Phi / d x0`` — its
        eigenvalues are the Floquet multipliers.
    newton_iterations:
        Outer Newton iterations performed.
    """

    x0: np.ndarray
    period: float
    monodromy: np.ndarray
    newton_iterations: int

    def floquet_multipliers(self):
        """Eigenvalues of the monodromy matrix."""
        return np.linalg.eigvals(self.monodromy)

    def sample_orbit(self, dae, num_samples, steps_per_period=400,
                     integrator="trap"):
        """Integrate one period and return states on a uniform phase grid.

        Returns
        -------
        numpy.ndarray
            Shape ``(num_samples, n)``; row ``j`` is the state at
            ``t = j * period / num_samples``.
        """
        options = TransientOptions(
            integrator=integrator, dt=self.period / steps_per_period
        )
        result = simulate_transient(dae, self.x0, 0.0, self.period, options)
        times = self.period * np.arange(num_samples) / num_samples
        return result.sample(times)


def _flow(dae, x0, t0, period, steps_per_period, integrator):
    """State after integrating one period from ``x0``."""
    options = TransientOptions(
        integrator=integrator, dt=period / steps_per_period, store_every=10**9
    )
    result = simulate_transient(dae, x0, t0, t0 + period, options)
    return result.final_state()


def estimate_period_from_transient(result, key=0, skip_fraction=0.5):
    """Estimate an oscillation period from rising zero crossings.

    Parameters
    ----------
    result:
        A :class:`~repro.transient.results.TransientResult` that has reached
        steady oscillation.
    key:
        Variable whose zero crossings define the period.
    skip_fraction:
        Fraction of the record discarded as startup transient.

    Returns
    -------
    float
        Median spacing between consecutive rising crossings.
    """
    y = result.column(key)
    t = result.t
    start = t[0] + skip_fraction * (t[-1] - t[0])
    mask = t >= start
    crossings = zero_crossings(t[mask], y[mask] - np.mean(y[mask]), direction=+1)
    if crossings.size < 3:
        raise ConvergenceError(
            "not enough zero crossings to estimate a period; "
            "simulate longer or pick another variable"
        )
    return float(np.median(np.diff(crossings)))


def shooting_periodic(dae, x0_guess, period, t0=0.0, steps_per_period=400,
                      integrator="trap", newton_options=None):
    """Periodic steady state of a *forced* system with known period.

    Returns
    -------
    ShootingResult
    """
    check_positive(period, "period")
    x0_guess = np.array(x0_guess, dtype=float).ravel()
    n = dae.n
    monodromy_holder = {}

    def residual(x0):
        return _flow(dae, x0, t0, period, steps_per_period, integrator) - x0

    def jacobian(x0):
        base = _flow(dae, x0, t0, period, steps_per_period, integrator)
        mono = np.empty((n, n))
        for j in range(n):
            step = 1e-7 * max(1.0, abs(x0[j]))
            x_pert = x0.copy()
            x_pert[j] += step
            mono[:, j] = (
                _flow(dae, x_pert, t0, period, steps_per_period, integrator)
                - base
            ) / step
        monodromy_holder["m"] = mono
        return mono - np.eye(n)

    opts = newton_options or NewtonOptions(atol=1e-10, max_iterations=30)
    result = newton_solve(residual, jacobian, x0_guess, options=opts)
    return ShootingResult(
        result.x,
        float(period),
        monodromy_holder.get("m", np.eye(n)),
        result.iterations,
    )


def shooting_autonomous(dae, x0_guess, period_guess, anchor_index=0,
                        anchor_value=None, t0=0.0, steps_per_period=400,
                        integrator="trap", newton_options=None):
    """Limit cycle and period of an *autonomous* oscillator.

    Unknowns are ``(x0, T)``; the extra equation is the Poincaré anchor
    ``x0[anchor_index] = anchor_value`` (default: the guess's value), which
    removes the time-shift ambiguity exactly as the paper's phase condition
    does for the WaMPDE.

    Returns
    -------
    ShootingResult
    """
    check_positive(period_guess, "period_guess")
    x0_guess = np.array(x0_guess, dtype=float).ravel()
    n = dae.n
    anchor = (
        float(x0_guess[anchor_index]) if anchor_value is None else float(anchor_value)
    )
    monodromy_holder = {}

    def residual(z):
        x0, period = z[:n], abs(z[n])
        gap = _flow(dae, x0, t0, period, steps_per_period, integrator) - x0
        return np.concatenate([gap, [x0[anchor_index] - anchor]])

    def jacobian(z):
        x0, period = z[:n], abs(z[n])
        base = _flow(dae, x0, t0, period, steps_per_period, integrator)
        jac = np.zeros((n + 1, n + 1))
        mono = np.empty((n, n))
        for j in range(n):
            step = 1e-7 * max(1.0, abs(x0[j]))
            x_pert = x0.copy()
            x_pert[j] += step
            mono[:, j] = (
                _flow(dae, x_pert, t0, period, steps_per_period, integrator)
                - base
            ) / step
        monodromy_holder["m"] = mono
        jac[:n, :n] = mono - np.eye(n)
        dt_step = 1e-7 * period
        jac[:n, n] = (
            _flow(dae, x0, t0, period + dt_step, steps_per_period, integrator)
            - base
        ) / dt_step
        jac[n, anchor_index] = 1.0
        return jac

    opts = newton_options or NewtonOptions(atol=1e-9, max_iterations=30)
    z0 = np.concatenate([x0_guess, [period_guess]])
    result = newton_solve(residual, jacobian, z0, options=opts)
    x0 = result.x[:n]
    period = float(abs(result.x[n]))
    return ShootingResult(
        x0, period, monodromy_holder.get("m", np.eye(n)), result.iterations
    )
