"""Harmonic balance by pseudo-spectral time collocation.

Instead of the classical frequency-domain bookkeeping, we solve the periodic
problem on an odd uniform time grid with the spectral differentiation matrix
— mathematically identical to harmonic balance with the same number of
harmonics (the discrete Fourier transform is a bijection between the two
representations), but every device evaluation stays in the time domain where
nonlinearities are cheap.  This is the standard "mixed frequency-time"
trick the paper alludes to in §4.1.

* :func:`harmonic_balance_forced` — period known (driven circuits).
* :func:`harmonic_balance_autonomous` — period unknown; adds the frequency
  unknown and a :mod:`repro.phase_conditions` anchor, i.e. exactly the
  ``N1 = 1`` special case of the WaMPDE quasiperiodic system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError
from repro.linalg.collocation import CollocationJacobianAssembler
from repro.linalg.lu_cache import ReusableLUSolver
from repro.linalg.newton import NewtonOptions, newton_solve
from repro.linalg.sparse_tools import kron_diffmat
from repro.phase_conditions import as_phase_condition
from repro.spectral.diffmat import fourier_differentiation_matrix
from repro.spectral.grid import collocation_grid
from repro.spectral.interpolation import TrigInterpolant
from repro.utils.validation import check_odd, check_positive


@dataclass
class HBResult:
    """Solution of a harmonic-balance problem.

    Attributes
    ----------
    samples:
        Steady-state waveform samples, shape ``(N, n)``; row ``j`` is the
        state at phase ``j/N`` of the period.
    period:
        Oscillation period (the forcing period for forced problems).
    frequency:
        ``1 / period`` [Hz].
    newton_iterations:
        Newton iterations used.
    """

    samples: np.ndarray
    period: float
    newton_iterations: int

    @property
    def frequency(self):
        return 1.0 / self.period

    @property
    def num_samples(self):
        return self.samples.shape[0]

    def interpolant(self, variable):
        """Trigonometric interpolant of one variable over the period."""
        return TrigInterpolant(self.samples[:, variable], period=self.period)

    def evaluate(self, times):
        """All variables evaluated at arbitrary ``times`` (trig interp)."""
        times = np.asarray(times, dtype=float)
        columns = [
            self.interpolant(k)(times) for k in range(self.samples.shape[1])
        ]
        return np.stack(columns, axis=-1)


def _stack(samples):
    """(N, n) grid -> point-major stacked vector."""
    return np.asarray(samples, dtype=float).ravel()


def _unstack(vector, num_samples, n_vars):
    return np.asarray(vector, dtype=float).reshape(num_samples, n_vars)


def harmonic_balance_forced(dae, period, num_samples=31, initial=None,
                            newton_options=None):
    """Periodic steady state of a forced system via time collocation.

    Parameters
    ----------
    dae:
        The system; its ``b(t)`` must be ``period``-periodic for the result
        to be meaningful.
    period:
        Forcing period.
    num_samples:
        Odd collocation count (2M+1 → M harmonics).
    initial:
        Optional ``(N, n)`` starting waveform (e.g. transient samples).

    Returns
    -------
    HBResult
    """
    check_positive(period, "period")
    num = check_odd(num_samples, "num_samples")
    n = dae.n
    grid = collocation_grid(num, period)
    b_grid = dae.b_batch(grid)
    diffmat = fourier_differentiation_matrix(num, period)
    d_big = kron_diffmat(diffmat, n, ordering="point")
    assembler = CollocationJacobianAssembler(
        num, n, dq_mask=dae.dq_structure(), df_mask=dae.df_structure()
    )

    def residual(vec):
        states = _unstack(vec, num, n)
        q_flat = _stack(dae.q_batch(states))
        f_flat = _stack(dae.f_batch(states))
        return d_big @ q_flat + f_flat - b_grid.ravel()

    def jacobian(vec):
        states = _unstack(vec, num, n)
        dq = dae.dq_dx_batch(states)
        df = dae.df_dx_batch(states)
        return assembler.refresh(diffmat, dq, diag_inner=df)

    if initial is None:
        x0 = np.zeros((num, n))
    else:
        x0 = np.asarray(initial, dtype=float)
        if x0.shape != (num, n):
            raise ValueError(
                f"initial must have shape {(num, n)}, got {x0.shape}"
            )
    opts = newton_options or NewtonOptions(atol=1e-9, max_iterations=60)
    result = newton_solve(
        residual,
        jacobian,
        _stack(x0),
        options=opts,
        linear_solver=ReusableLUSolver(),
    )
    return HBResult(_unstack(result.x, num, n), float(period), result.iterations)


def harmonic_balance_autonomous(dae, frequency_guess, initial,
                                phase_condition="fourier",
                                phase_variable=0, num_samples=31,
                                newton_options=None, forcing_time=0.0):
    """Limit cycle *and* frequency of an autonomous oscillator.

    Works in normalised time ``t1 in [0, 1)`` where the waveform has period
    1; the physical problem is ``nu * d/dt1 q(xhat) + f(xhat) = b`` with the
    frequency ``nu`` unknown.  One phase-condition row (see
    :mod:`repro.phase_conditions`) closes the system; the bordered Jacobian
    (collocation core + frequency column + phase row) is assembled with the
    pattern-reuse
    :class:`~repro.linalg.collocation.CollocationJacobianAssembler`.

    Parameters
    ----------
    dae:
        Autonomous system; ``b`` is evaluated at ``forcing_time`` and held
        constant (pass the unforced variant of a forced circuit).
    frequency_guess:
        Starting frequency [Hz].
    initial:
        ``(N, n)`` starting waveform on the normalised grid — autonomous HB
        has no useful zero initial guess (zero is the unstable equilibrium),
        so this argument is required; transient samples work well.
    phase_condition:
        Spec accepted by :func:`repro.phase_conditions.as_phase_condition`.
    phase_variable:
        Variable the default phase condition applies to.

    Returns
    -------
    HBResult
        With ``period = 1 / nu`` and samples on the normalised grid.
    """
    check_positive(frequency_guess, "frequency_guess")
    num = check_odd(num_samples, "num_samples")
    n = dae.n
    condition = as_phase_condition(phase_condition, variable=phase_variable)
    phase_row = condition.gradient(num, n)

    b_const = np.tile(dae.b(forcing_time), num)
    diffmat = fourier_differentiation_matrix(num, period=1.0)
    d_big = kron_diffmat(diffmat, n, ordering="point")
    assembler = CollocationJacobianAssembler(
        num,
        n,
        dq_mask=dae.dq_structure(),
        df_mask=dae.df_structure(),
        num_border=1,
    )

    initial = np.asarray(initial, dtype=float)
    if initial.shape != (num, n):
        raise ValueError(f"initial must have shape {(num, n)}, got {initial.shape}")

    def residual(vec):
        states = _unstack(vec[:-1], num, n)
        nu = vec[-1]
        q_flat = _stack(dae.q_batch(states))
        f_flat = _stack(dae.f_batch(states))
        core = nu * (d_big @ q_flat) + f_flat - b_const
        return np.concatenate([core, [condition.residual(states)]])

    def jacobian(vec):
        states = _unstack(vec[:-1], num, n)
        nu = vec[-1]
        dq = dae.dq_dx_batch(states)
        df = dae.df_dx_batch(states)
        q_flat = _stack(dae.q_batch(states))
        freq_column = d_big @ q_flat
        # nu * (d_big @ dq) + df, bordered by frequency column + phase row.
        return assembler.refresh(
            diffmat,
            dq,
            diag_inner=df,
            coupling_scale=nu,
            border_columns=freq_column[:, None],
            border_rows=phase_row[None, :],
        )

    z0 = np.concatenate([_stack(initial), [float(frequency_guess)]])
    opts = newton_options or NewtonOptions(atol=1e-9, max_iterations=80)
    result = newton_solve(
        residual, jacobian, z0, options=opts, linear_solver=ReusableLUSolver()
    )
    nu = float(result.x[-1])
    if nu <= 0:
        raise ConvergenceError(
            f"autonomous HB converged to non-positive frequency {nu:g}; "
            "the initial waveform probably collapsed to the DC equilibrium"
        )
    samples = _unstack(result.x[:-1], num, n)
    return HBResult(samples, 1.0 / nu, result.iterations)
