"""Harmonic balance by pseudo-spectral time collocation.

Instead of the classical frequency-domain bookkeeping, we solve the periodic
problem on an odd uniform time grid with the spectral differentiation matrix
— mathematically identical to harmonic balance with the same number of
harmonics (the discrete Fourier transform is a bijection between the two
representations), but every device evaluation stays in the time domain where
nonlinearities are cheap.  This is the standard "mixed frequency-time"
trick the paper alludes to in §4.1.

* :func:`harmonic_balance_forced` — period known (driven circuits).
* :func:`harmonic_balance_autonomous` — period unknown; adds the frequency
  unknown and a :mod:`repro.phase_conditions` anchor, i.e. exactly the
  ``N1 = 1`` special case of the WaMPDE quasiperiodic system.

Both solvers are thin :class:`~repro.linalg.solver_core.CollocationSystem`
implementations driven by the shared
:class:`~repro.linalg.solver_core.SolverCore` (pass ``solver_options`` to
pick the chord policy, a GMRES linear solver or a threaded Jacobian
refresh); the per-solve :class:`~repro.linalg.solver_core.SolverStats` are
reported on :attr:`HBResult.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.api.serialize import SerializableMixin
from repro.errors import ConvergenceError
from repro.grids import stack_states as _stack, unstack_states as _unstack
from repro.linalg.collocation import CollocationJacobianAssembler
from repro.linalg.newton import NewtonOptions
from repro.linalg.solver_core import (
    CollocationSystem,
    SolverCore,
    SolverCoreOptions,
)
from repro.linalg.sparse_tools import kron_diffmat
from repro.phase_conditions import as_phase_condition
from repro.spectral.diffmat import fourier_differentiation_matrix
from repro.spectral.grid import collocation_grid
from repro.spectral.interpolation import TrigInterpolant
from repro.utils.validation import check_odd, check_positive


@dataclass
class HBResult(SerializableMixin):
    """Solution of a harmonic-balance problem.

    Attributes
    ----------
    samples:
        Steady-state waveform samples, shape ``(N, n)``; row ``j`` is the
        state at phase ``j/N`` of the period.
    period:
        Oscillation period (the forcing period for forced problems).
    frequency:
        ``1 / period`` [Hz].
    newton_iterations:
        Newton iterations used.
    stats:
        Uniform solver counters (see
        :class:`repro.linalg.solver_core.SolverStats`).
    """

    samples: np.ndarray
    period: float
    newton_iterations: int
    stats: dict = field(default_factory=dict)

    @property
    def frequency(self):
        return 1.0 / self.period

    @property
    def num_samples(self):
        return self.samples.shape[0]

    def interpolant(self, variable):
        """Trigonometric interpolant of one variable over the period."""
        return TrigInterpolant(self.samples[:, variable], period=self.period)

    def evaluate(self, times):
        """All variables evaluated at arbitrary ``times`` (trig interp)."""
        times = np.asarray(times, dtype=float)
        columns = [
            self.interpolant(k)(times) for k in range(self.samples.shape[1])
        ]
        return np.stack(columns, axis=-1)


def _make_core(solver_options, newton_options, default_newton):
    """Build the SolverCore for one HB solve from the two option channels.

    Newton tolerances resolve in precedence order: an explicit
    ``newton_options`` (the historical knob), then an explicitly set
    ``solver_options.newton`` (the field defaults to ``None``, so any
    instance — stock included — counts as explicit), then the engine
    default.  All other ``solver_options`` fields pass through unchanged.
    """
    opts = solver_options or SolverCoreOptions()
    newton = newton_options or opts.newton or default_newton
    return SolverCore(replace(opts, newton=newton))


class _ForcedHBSystem(CollocationSystem):
    """Collocation system ``D q(x) + f(x) - b = 0`` on a known period."""

    def __init__(self, dae, num, period):
        self.dae = dae
        self.num = num
        self.n = dae.n
        grid = collocation_grid(num, period)
        self.b_flat = dae.b_batch(grid).ravel()
        self.diffmat = fourier_differentiation_matrix(num, period)
        self.d_big = kron_diffmat(self.diffmat, self.n, ordering="point")
        self.assembler = CollocationJacobianAssembler(
            num, self.n, dq_mask=dae.dq_structure(),
            df_mask=dae.df_structure(),
        )

    def residual(self, vec):
        states = _unstack(vec, self.num, self.n)
        q_flat = _stack(self.dae.q_batch(states))
        f_flat = _stack(self.dae.f_batch(states))
        return self.d_big @ q_flat + f_flat - self.b_flat

    def jacobian(self, vec):
        states = _unstack(vec, self.num, self.n)
        dq = self.dae.dq_dx_batch(states)
        df = self.dae.df_dx_batch(states)
        return self.assembler.refresh(self.diffmat, dq, diag_inner=df)

    def structure(self):
        return {"num_points": self.num, "n_vars": self.n,
                "num_border": 0, "size": self.num * self.n}


def _warm_hb_samples(warm_start, num, n):
    """Warm-start waveform resampled onto the ``(num, n)`` HB grid.

    Accepts any object with a ``samples`` attribute (typically
    :class:`repro.service.cache.WarmStart`); a sample count mismatch is
    bridged by periodic linear resampling along the phase axis, so a seed
    settled at one collocation count still shortens Newton at another.
    """
    samples = getattr(warm_start, "samples", None) if warm_start else None
    if samples is None:
        return None
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2 or samples.shape[1] != n:
        return None
    if samples.shape[0] == num:
        return samples
    m = samples.shape[0]
    phase_old = np.arange(m + 1) / m
    phase_new = np.arange(num) / num
    wrapped = np.vstack([samples, samples[:1]])
    return np.stack(
        [np.interp(phase_new, phase_old, wrapped[:, k]) for k in range(n)],
        axis=1,
    )


def harmonic_balance_forced(dae, period, num_samples=31, initial=None,
                            newton_options=None, solver_options=None,
                            warm_start=None):
    """Periodic steady state of a forced system via time collocation.

    Parameters
    ----------
    dae:
        The system; its ``b(t)`` must be ``period``-periodic for the result
        to be meaningful.
    period:
        Forcing period.
    num_samples:
        Odd collocation count (2M+1 → M harmonics).
    initial:
        Optional ``(N, n)`` starting waveform (e.g. transient samples).
    newton_options:
        Newton tolerances/budgets (historical knob).
    solver_options:
        :class:`repro.linalg.solver_core.SolverCoreOptions` — Newton
        policy, linear solver and refresh threads.
    warm_start:
        Optional warm-start seed (duck-typed; ``samples`` supplies the
        starting waveform when ``initial`` is ``None``).

    Returns
    -------
    HBResult
    """
    check_positive(period, "period")
    num = check_odd(num_samples, "num_samples")
    n = dae.n
    system = _ForcedHBSystem(dae, num, period)

    if initial is None:
        initial = _warm_hb_samples(warm_start, num, n)
    if initial is None:
        x0 = np.zeros((num, n))
    else:
        x0 = np.asarray(initial, dtype=float)
        if x0.shape != (num, n):
            raise ValueError(
                f"initial must have shape {(num, n)}, got {x0.shape}"
            )
    core = _make_core(
        solver_options, newton_options,
        NewtonOptions(atol=1e-9, max_iterations=60),
    )
    result = core.solve(system, _stack(x0))
    return HBResult(
        _unstack(result.x, num, n), float(period), result.iterations,
        core.stats.as_dict(),
    )


class _AutonomousHBSystem(CollocationSystem):
    """Bordered system: ``nu * D1 q + f - b = 0`` plus a phase anchor."""

    def __init__(self, dae, num, condition, forcing_time):
        self.dae = dae
        self.num = num
        self.n = dae.n
        self.condition = condition
        self.phase_row = condition.gradient(num, self.n)
        self.b_const = np.tile(dae.b(forcing_time), num)
        self.diffmat = fourier_differentiation_matrix(num, period=1.0)
        self.d_big = kron_diffmat(self.diffmat, self.n, ordering="point")
        self.assembler = CollocationJacobianAssembler(
            num,
            self.n,
            dq_mask=dae.dq_structure(),
            df_mask=dae.df_structure(),
            num_border=1,
        )

    def residual(self, vec):
        states = _unstack(vec[:-1], self.num, self.n)
        nu = vec[-1]
        q_flat = _stack(self.dae.q_batch(states))
        f_flat = _stack(self.dae.f_batch(states))
        core = nu * (self.d_big @ q_flat) + f_flat - self.b_const
        return np.concatenate([core, [self.condition.residual(states)]])

    def jacobian(self, vec):
        states = _unstack(vec[:-1], self.num, self.n)
        nu = vec[-1]
        dq = self.dae.dq_dx_batch(states)
        df = self.dae.df_dx_batch(states)
        q_flat = _stack(self.dae.q_batch(states))
        freq_column = self.d_big @ q_flat
        # nu * (d_big @ dq) + df, bordered by frequency column + phase row.
        return self.assembler.refresh(
            self.diffmat,
            dq,
            diag_inner=df,
            coupling_scale=nu,
            border_columns=freq_column[:, None],
            border_rows=self.phase_row[None, :],
        )

    def structure(self):
        return {"num_points": self.num, "n_vars": self.n,
                "num_border": 1, "size": self.num * self.n + 1}


def harmonic_balance_autonomous(dae, frequency_guess, initial=None,
                                phase_condition="fourier",
                                phase_variable=0, num_samples=31,
                                newton_options=None, forcing_time=0.0,
                                solver_options=None, warm_start=None):
    """Limit cycle *and* frequency of an autonomous oscillator.

    Works in normalised time ``t1 in [0, 1)`` where the waveform has period
    1; the physical problem is ``nu * d/dt1 q(xhat) + f(xhat) = b`` with the
    frequency ``nu`` unknown.  One phase-condition row (see
    :mod:`repro.phase_conditions`) closes the system; the bordered Jacobian
    (collocation core + frequency column + phase row) is assembled with the
    pattern-reuse
    :class:`~repro.linalg.collocation.CollocationJacobianAssembler`.

    Parameters
    ----------
    dae:
        Autonomous system; ``b`` is evaluated at ``forcing_time`` and held
        constant (pass the unforced variant of a forced circuit).
    frequency_guess:
        Starting frequency [Hz].
    initial:
        ``(N, n)`` starting waveform on the normalised grid — autonomous HB
        has no useful zero initial guess (zero is the unstable equilibrium),
        so a starting waveform is required, either here or via
        ``warm_start``; transient samples work well.
    phase_condition:
        Spec accepted by :func:`repro.phase_conditions.as_phase_condition`.
    phase_variable:
        Variable the default phase condition applies to.
    solver_options:
        :class:`repro.linalg.solver_core.SolverCoreOptions` — Newton
        policy, linear solver and refresh threads.
    warm_start:
        Optional warm-start seed (duck-typed): ``samples`` supplies the
        waveform when ``initial`` is ``None``, and ``omega0`` overrides a
        missing ``frequency_guess`` (pass ``frequency_guess=None``).

    Returns
    -------
    HBResult
        With ``period = 1 / nu`` and samples on the normalised grid.
    """
    if frequency_guess is None and warm_start is not None:
        frequency_guess = getattr(warm_start, "omega0", None)
    check_positive(frequency_guess, "frequency_guess")
    num = check_odd(num_samples, "num_samples")
    n = dae.n
    condition = as_phase_condition(phase_condition, variable=phase_variable)
    system = _AutonomousHBSystem(dae, num, condition, forcing_time)

    if initial is None:
        initial = _warm_hb_samples(warm_start, num, n)
    if initial is None:
        raise ValueError(
            "autonomous HB needs a starting waveform: pass initial= or a "
            "warm_start carrying samples"
        )
    initial = np.asarray(initial, dtype=float)
    if initial.shape != (num, n):
        raise ValueError(f"initial must have shape {(num, n)}, got {initial.shape}")

    z0 = np.concatenate([_stack(initial), [float(frequency_guess)]])
    core = _make_core(
        solver_options, newton_options,
        NewtonOptions(atol=1e-9, max_iterations=80),
    )
    result = core.solve(system, z0)
    nu = float(result.x[-1])
    if nu <= 0:
        raise ConvergenceError(
            f"autonomous HB converged to non-positive frequency {nu:g}; "
            "the initial waveform probably collapsed to the DC equilibrium"
        )
    samples = _unstack(result.x[:-1], num, n)
    return HBResult(samples, 1.0 / nu, result.iterations,
                    core.stats.as_dict())
