"""Steady-state analyses: DC, periodic shooting, harmonic balance.

These are the boundary-value baselines the paper reviews in §2: fine for
*unforced* oscillators in periodic steady state, but unable to represent
FM-quasiperiodic responses (they would need impractically many time points
or harmonics — see the Fig 5 discussion).  Here they serve two roles:

* baselines for the comparison benches, and
* initialisers for the WaMPDE envelope (paper §4.1: "a natural initial
  condition is the solution of (12) with no forcing").
"""

from repro.steadystate.dc import dc_operating_point, DcOptions
from repro.steadystate.shooting import (
    ShootingResult,
    shooting_periodic,
    shooting_autonomous,
    estimate_period_from_transient,
    monodromy_finite_difference,
)
from repro.steadystate.harmonic_balance import (
    HBResult,
    harmonic_balance_forced,
    harmonic_balance_autonomous,
)
from repro.steadystate.entrainment import find_locked_orbit, stretch_cycle
from repro.steadystate.sweep import (
    FrequencySweepResult,
    ensemble_frequency_sweep,
    oscillator_frequency_sweep,
)

__all__ = [
    "dc_operating_point",
    "DcOptions",
    "ShootingResult",
    "shooting_periodic",
    "shooting_autonomous",
    "estimate_period_from_transient",
    "monodromy_finite_difference",
    "HBResult",
    "harmonic_balance_forced",
    "harmonic_balance_autonomous",
    "find_locked_orbit",
    "stretch_cycle",
    "FrequencySweepResult",
    "ensemble_frequency_sweep",
    "oscillator_frequency_sweep",
]
