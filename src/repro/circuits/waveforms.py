"""Time-dependent source waveforms.

Waveforms are callables ``t -> value`` with a few extras (period metadata
where meaningful) so sources can be inspected by the multi-time engines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.constants import TWO_PI
from repro.errors import ValidationError
from repro.utils.validation import as_1d_array, check_positive


class Waveform(ABC):
    """A scalar function of time; vectorised over numpy arrays."""

    #: Period of the waveform, or ``None`` when aperiodic.
    period = None

    @abstractmethod
    def __call__(self, t):
        """Value at time(s) ``t``."""


def _scalar_or_stack(value, name):
    """Coerce a waveform parameter to ``float`` or a 1-D scenario stack.

    A leading scenario axis lets one waveform carry ``B`` per-scenario
    values (an ensemble of control voltages, say); it broadcasts against a
    matching ``(B,)`` time vector in ``__call__``.  See
    :mod:`repro.dae.ensemble`.
    """
    if np.ndim(value) == 0:
        return float(value)
    stack = np.asarray(value, dtype=float)
    if stack.ndim != 1:
        raise ValidationError(
            f"{name} must be a scalar or a 1-D per-scenario stack, got "
            f"shape {stack.shape}"
        )
    return stack


class DC(Waveform):
    """Constant value (scalar, or a per-scenario stack — see ensembles)."""

    def __init__(self, value):
        self.value = _scalar_or_stack(value, "value")

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        value = self.value + np.zeros_like(t) if np.ndim(self.value) == 0 \
            else self.value + 0.0 * t
        return value if np.ndim(value) else float(self.value)

    def __repr__(self):
        return f"DC({self.value!r})"


class Sine(Waveform):
    """Sinusoid ``offset + amplitude * sin(2*pi*frequency*(t - delay) + phase)``.

    ``amplitude``/``offset``/``phase``/``delay`` may be per-scenario stacks
    (1-D arrays) that broadcast against a matching time vector; the
    frequency stays scalar (ensembles advance in lock-step on one grid).
    """

    def __init__(self, amplitude=1.0, frequency=1.0, offset=0.0, phase=0.0,
                 delay=0.0):
        check_positive(frequency, "frequency")
        self.amplitude = _scalar_or_stack(amplitude, "amplitude")
        self.frequency = float(frequency)
        self.offset = _scalar_or_stack(offset, "offset")
        self.phase = _scalar_or_stack(phase, "phase")
        self.delay = _scalar_or_stack(delay, "delay")
        self.period = 1.0 / self.frequency

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        value = self.offset + self.amplitude * np.sin(
            TWO_PI * self.frequency * (t - self.delay) + self.phase
        )
        return value if value.ndim else float(value)

    def __repr__(self):
        return (
            f"Sine(amplitude={self.amplitude!r}, frequency={self.frequency!r}, "
            f"offset={self.offset!r}, phase={self.phase!r}, delay={self.delay!r})"
        )


class Cosine(Sine):
    """Cosine convenience: ``Sine`` with a +pi/2 phase."""

    def __init__(self, amplitude=1.0, frequency=1.0, offset=0.0, delay=0.0):
        super().__init__(
            amplitude=amplitude,
            frequency=frequency,
            offset=offset,
            phase=np.pi / 2.0,
            delay=delay,
        )


class PiecewiseLinear(Waveform):
    """Piecewise-linear interpolation through ``(times, values)`` breakpoints.

    Values are held constant outside the breakpoint range.
    """

    def __init__(self, times, values):
        self.times = as_1d_array(times, "times")
        self.values = as_1d_array(values, "values")
        if self.times.size != self.values.size:
            raise ValidationError(
                f"times and values must have equal length, got "
                f"{self.times.size} vs {self.values.size}"
            )
        if self.times.size < 2:
            raise ValidationError("PiecewiseLinear needs at least two breakpoints")
        if np.any(np.diff(self.times) <= 0):
            raise ValidationError("times must be strictly increasing")

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        value = np.interp(t, self.times, self.values)
        return value if value.ndim else float(value)


class Pulse(Waveform):
    """Periodic trapezoidal pulse (SPICE-style ``PULSE``).

    Parameters
    ----------
    low, high:
        Levels outside and inside the pulse.
    delay:
        Time of the first rising edge.
    rise, fall:
        Edge durations (must be positive).
    width:
        Time spent at ``high``.
    period:
        Repetition period; must cover rise + width + fall.
    """

    def __init__(self, low=0.0, high=1.0, delay=0.0, rise=1e-9, fall=1e-9,
                 width=1e-6, period=2e-6):
        check_positive(rise, "rise")
        check_positive(fall, "fall")
        check_positive(width, "width")
        check_positive(period, "period")
        if rise + width + fall > period:
            raise ValidationError(
                "pulse period must cover rise + width + fall "
                f"({rise + width + fall:g} > {period:g})"
            )
        self.low = float(low)
        self.high = float(high)
        self.delay = float(delay)
        self.rise = float(rise)
        self.fall = float(fall)
        self.width = float(width)
        self.period = float(period)

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        local = np.mod(t - self.delay, self.period)
        value = np.select(
            [
                local < self.rise,
                local < self.rise + self.width,
                local < self.rise + self.width + self.fall,
            ],
            [
                self.low + (self.high - self.low) * local / self.rise,
                self.high,
                self.high
                - (self.high - self.low)
                * (local - self.rise - self.width)
                / self.fall,
            ],
            default=self.low,
        )
        return value if value.ndim else float(value)


class CallableWaveform(Waveform):
    """Adapter wrapping an arbitrary function of time."""

    def __init__(self, func, period=None):
        if not callable(func):
            raise ValidationError("CallableWaveform needs a callable")
        self._func = func
        self.period = period

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        if t.ndim:
            return np.asarray([self._func(float(ti)) for ti in t.ravel()]).reshape(
                t.shape
            )
        return float(self._func(float(t)))


def as_waveform(value):
    """Coerce numbers and callables into :class:`Waveform` instances."""
    if isinstance(value, Waveform):
        return value
    if callable(value):
        return CallableWaveform(value)
    return DC(float(value))
