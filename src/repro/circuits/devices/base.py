"""Device stamping contract.

A device connects to ``ports`` (node names) and may own internal unknowns
(branch currents, mechanical states).  Its *local unknown vector* is::

    u = [v(port_0), ..., v(port_{p-1}), internal_0, ..., internal_{m-1}]

and it contributes one equation row per local unknown:

* one KCL row per port — the charge (``q``) and current (``f``) flowing
  *out of that node into the device*, and any source term (``b``) on the
  right-hand side;
* one constitutive row per internal unknown (e.g. an inductor's flux
  equation, a voltage source's KVL row, a varactor's mechanical equations).

The global system built by :class:`repro.circuits.mna.CircuitDAE` is then
``d/dt q(x) + f(x) = b(t)`` with each local row scatter-added into the
matching global row (ground rows are dropped).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.backend import array_namespace
from repro.errors import DeviceError


def per_scenario_parameter(value, name, device_name, positive=True):
    """Coerce a component value to ``float`` or a 1-D per-scenario stack.

    Devices that accept a ``(B,)`` array here become *stacked* devices:
    row ``b`` of every batched stamp is evaluated with the ``b``-th
    parameter value, which is how :class:`repro.circuits.mna.CircuitDAE`
    carries an ensemble of component spreads through one evaluation (see
    :mod:`repro.dae.ensemble`).  A stacked device must only be evaluated
    through the ``*_local_batch`` methods with batches matching ``B``.
    """
    if np.ndim(value) == 0:
        value = float(value)
        if positive and not value > 0:
            raise DeviceError(
                f"{device_name!r} needs positive {name}, got {value!r}"
            )
        return value
    stack = np.asarray(value, dtype=float)
    if stack.ndim != 1:
        raise DeviceError(
            f"{device_name!r} {name} must be a scalar or 1-D per-scenario "
            f"stack, got shape {stack.shape}"
        )
    if positive and not np.all(stack > 0):
        raise DeviceError(
            f"{device_name!r} needs positive {name}, got {stack!r}"
        )
    return stack


def slice_per_scenario(value, indices):
    """Slice a per-scenario stack to ``indices``; scalars pass through.

    The companion of :func:`per_scenario_parameter` for chunked ensemble
    marches: ``Device.subset_scenarios`` implementations apply it to every
    stackable parameter.
    """
    if np.ndim(value) == 0:
        return value
    return np.asarray(value, dtype=float)[np.asarray(indices, dtype=int)]


class Device(ABC):
    """Base class for all circuit devices.

    Parameters
    ----------
    name:
        Unique device identifier within a circuit.
    ports:
        Node names this device connects to, in device-defined order.
    """

    #: Labels of internal unknowns; override in subclasses that have any.
    internal_names: tuple = ()

    def __init__(self, name, ports):
        if not name:
            raise DeviceError("device name must be a non-empty string")
        self.name = str(name)
        self.ports = tuple(str(p) for p in ports)
        if len(self.ports) == 0:
            raise DeviceError(f"device {self.name!r} must have at least one port")

    # -- sizes ---------------------------------------------------------------

    @property
    def n_ports(self):
        """Number of terminals."""
        return len(self.ports)

    @property
    def n_internal(self):
        """Number of internal unknowns."""
        return len(self.internal_names)

    @property
    def n_local(self):
        """Length of the local unknown vector (and of the local rows)."""
        return self.n_ports + self.n_internal

    # -- ensembles -----------------------------------------------------------

    def subset_scenarios(self, indices):
        """Copy with per-scenario stacks sliced to ``indices``.

        Devices that accept stacked parameters
        (:func:`per_scenario_parameter`) override this so chunked ensemble
        marches can carve a ``(B,)`` stacked circuit into backend-sized
        blocks; parameterless devices are shared as-is.
        """
        return self

    # -- stamping ------------------------------------------------------------

    def q_local(self, u):
        """Local charge/flux contributions (length ``n_local``); default 0."""
        return np.zeros(self.n_local)

    @abstractmethod
    def f_local(self, u):
        """Local static contributions (length ``n_local``)."""

    def b_local(self, t):
        """Local source contributions at time ``t``; default 0."""
        return np.zeros(self.n_local)

    def dq_local(self, u):
        """Jacobian of :meth:`q_local` w.r.t. ``u``; default 0."""
        return np.zeros((self.n_local, self.n_local))

    @abstractmethod
    def df_local(self, u):
        """Jacobian of :meth:`f_local` w.r.t. ``u``."""

    # -- batched stamping ------------------------------------------------------
    #
    # ``U`` is an ``(m, n_local)`` stack of local unknown vectors; the batch
    # methods return the row-wise application of the single-point stamps
    # (``(m, n_local)`` for vectors, ``(m, n_local, n_local)`` for
    # Jacobians).  The generic fallbacks loop; concrete devices override
    # them with true NumPy-vectorised versions, which is what lets
    # :class:`repro.circuits.mna.CircuitDAE` evaluate a whole collocation
    # grid with one call per device.

    def q_local_batch(self, U):
        """Row-wise :meth:`q_local`; zeros fast path for static devices."""
        xp = array_namespace(U)
        if type(self).q_local is Device.q_local:
            return xp.zeros((U.shape[0], self.n_local))
        # The generic loop evaluates the scalar stamp pointwise and is
        # host-only; devices that should run on array backends override
        # with a vectorised version.
        U = np.asarray(U, dtype=float)
        return np.stack([self.q_local(u) for u in U])

    def f_local_batch(self, U):
        """Row-wise :meth:`f_local` (host loop fallback)."""
        U = np.asarray(U, dtype=float)
        return np.stack([self.f_local(u) for u in U])

    def b_local_batch(self, times):
        """:meth:`b_local` at each time; zeros fast path for unforced."""
        times = np.asarray(times, dtype=float).ravel()
        if type(self).b_local is Device.b_local:
            return np.zeros((times.size, self.n_local))
        return np.stack([self.b_local(t) for t in times])

    def dq_local_batch(self, U):
        """Row-wise :meth:`dq_local`; zeros fast path for static devices."""
        xp = array_namespace(U)
        if type(self).dq_local is Device.dq_local:
            return xp.zeros((U.shape[0], self.n_local, self.n_local))
        U = np.asarray(U, dtype=float)
        return np.stack([self.dq_local(u) for u in U])

    def df_local_batch(self, U):
        """Row-wise :meth:`df_local` (host loop fallback)."""
        U = np.asarray(U, dtype=float)
        return np.stack([self.df_local(u) for u in U])

    def __repr__(self):
        ports = ", ".join(self.ports)
        return f"{type(self).__name__}({self.name!r}, ports=({ports}))"


class TwoTerminalStatic(Device):
    """Helper base for memoryless two-terminal elements.

    Subclasses provide the branch current ``i(v)`` and its derivative for
    the branch voltage ``v = v(port_0) - v(port_1)``; the KCL rows follow
    the passive sign convention (current flows in at port 0, out at port 1).
    """

    def __init__(self, name, node_a, node_b):
        super().__init__(name, (node_a, node_b))

    @abstractmethod
    def current(self, v):
        """Branch current as a function of branch voltage.

        Must be vectorised over NumPy arrays of ``v`` (elementwise) — the
        batched stamps below evaluate one whole collocation grid per call.
        """

    @abstractmethod
    def conductance(self, v):
        """Derivative ``di/dv`` of :meth:`current`; vectorised like it."""

    def f_local(self, u):
        i = self.current(u[0] - u[1])
        return np.array([i, -i])

    def df_local(self, u):
        g = self.conductance(u[0] - u[1])
        return np.array([[g, -g], [-g, g]])

    def f_local_batch(self, U):
        xp = array_namespace(U)
        U = xp.asarray(U, dtype=float)
        i = xp.asarray(self.current(U[:, 0] - U[:, 1]), dtype=float)
        return xp.stack([i, -i], axis=1)

    def df_local_batch(self, U):
        xp = array_namespace(U)
        U = xp.asarray(U, dtype=float)
        g = xp.asarray(self.conductance(U[:, 0] - U[:, 1]), dtype=float)
        out = xp.empty((U.shape[0], 2, 2))
        out[:, 0, 0] = g
        out[:, 0, 1] = -g
        out[:, 1, 0] = -g
        out[:, 1, 1] = g
        return out
