"""Linear inductor (adds a branch-current unknown)."""

from __future__ import annotations

import numpy as np

from repro.backend import array_namespace
from repro.circuits.devices.base import (
    Device,
    per_scenario_parameter,
    slice_per_scenario,
)


class Inductor(Device):
    """Linear inductor between ``node_a`` and ``node_b``.

    The branch current ``i`` (flowing from ``node_a`` to ``node_b``) is an
    internal unknown; its constitutive row is ``d/dt (L i) - (v_a - v_b) = 0``.
    """

    internal_names = ("i",)

    def __init__(self, name, node_a, node_b, inductance):
        super().__init__(name, (node_a, node_b))
        self.inductance = per_scenario_parameter(
            inductance, "inductance", name
        )

    def subset_scenarios(self, indices):
        return Inductor(
            self.name, self.ports[0], self.ports[1],
            slice_per_scenario(self.inductance, indices),
        )

    def q_local(self, u):
        # Rows: [kcl_a, kcl_b, branch]; only the branch row carries flux.
        return np.array([0.0, 0.0, self.inductance * u[2]])

    def dq_local(self, u):
        jac = np.zeros((3, 3))
        jac[2, 2] = self.inductance
        return jac

    def f_local(self, u):
        return np.array([u[2], -u[2], -(u[0] - u[1])])

    def df_local(self, u):
        return np.array(
            [
                [0.0, 0.0, 1.0],
                [0.0, 0.0, -1.0],
                [-1.0, 1.0, 0.0],
            ]
        )

    def q_local_batch(self, U):
        xp = array_namespace(U)
        U = xp.asarray(U, dtype=float)
        out = xp.zeros((U.shape[0], 3))
        out[:, 2] = self.inductance * U[:, 2]
        return out

    def dq_local_batch(self, U):
        xp = array_namespace(U)
        out = xp.zeros((xp.asarray(U).shape[0], 3, 3))
        out[:, 2, 2] = self.inductance
        return out

    def f_local_batch(self, U):
        xp = array_namespace(U)
        U = xp.asarray(U, dtype=float)
        return xp.stack(
            [U[:, 2], -U[:, 2], -(U[:, 0] - U[:, 1])], axis=1
        )

    def df_local_batch(self, U):
        xp = array_namespace(U)
        out = xp.zeros((xp.asarray(U).shape[0], 3, 3))
        out[:, 0, 2] = 1.0
        out[:, 1, 2] = -1.0
        out[:, 2, 0] = -1.0
        out[:, 2, 1] = 1.0
        return out
