"""Independent sources."""

from __future__ import annotations

import numpy as np

from repro.backend import array_namespace
from repro.circuits.devices.base import (
    Device,
    per_scenario_parameter,
    slice_per_scenario,
)
from repro.circuits.waveforms import as_waveform


class CurrentSource(Device):
    """Independent current source driving ``scale * waveform(t)`` a -> b.

    The source current leaves ``node_a`` and enters ``node_b``; with the
    library's form ``d/dt q + f = b`` it appears purely in the right-hand
    side: ``b[a] = -J(t)``, ``b[b] = +J(t)``.

    ``scale`` may be a ``(B,)`` per-scenario stack
    (:func:`~repro.circuits.devices.base.per_scenario_parameter`): the
    device then stamps row ``b`` of an ensemble with ``scale[b]`` times the
    shared waveform — a drive-amplitude spread in one stacked evaluation.
    """

    def __init__(self, name, node_a, node_b, waveform, scale=1.0):
        super().__init__(name, (node_a, node_b))
        self.waveform = as_waveform(waveform)
        self.scale = per_scenario_parameter(
            scale, "scale", name, positive=False
        )

    def subset_scenarios(self, indices):
        return CurrentSource(
            self.name, self.ports[0], self.ports[1], self.waveform,
            scale=slice_per_scenario(self.scale, indices),
        )

    def f_local(self, u):
        return np.zeros(2)

    def df_local(self, u):
        return np.zeros((2, 2))

    def b_local(self, t):
        value = self.scale * float(self.waveform(t))
        return np.array([-value, value])

    def f_local_batch(self, U):
        xp = array_namespace(U)
        return xp.zeros((xp.asarray(U).shape[0], 2))

    def df_local_batch(self, U):
        xp = array_namespace(U)
        return xp.zeros((xp.asarray(U).shape[0], 2, 2))

    def b_local_batch(self, times):
        times = np.asarray(times, dtype=float).ravel()
        value = self.scale * np.asarray(self.waveform(times), dtype=float)
        return np.stack([-value, value], axis=1)


class VoltageSource(Device):
    """Independent voltage source enforcing ``v_a - v_b = scale * E(t)``.

    Adds a branch-current unknown ``i`` (flowing from ``node_a`` through the
    source to ``node_b``); rows are the two KCL stamps plus the KVL row
    ``v_a - v_b = scale * E(t)``.  ``scale`` accepts a ``(B,)``
    per-scenario stack exactly like :class:`CurrentSource`.
    """

    internal_names = ("i",)

    def __init__(self, name, node_a, node_b, waveform, scale=1.0):
        super().__init__(name, (node_a, node_b))
        self.waveform = as_waveform(waveform)
        self.scale = per_scenario_parameter(
            scale, "scale", name, positive=False
        )

    def subset_scenarios(self, indices):
        return VoltageSource(
            self.name, self.ports[0], self.ports[1], self.waveform,
            scale=slice_per_scenario(self.scale, indices),
        )

    def f_local(self, u):
        return np.array([u[2], -u[2], u[0] - u[1]])

    def df_local(self, u):
        return np.array(
            [
                [0.0, 0.0, 1.0],
                [0.0, 0.0, -1.0],
                [1.0, -1.0, 0.0],
            ]
        )

    def b_local(self, t):
        return np.array([0.0, 0.0, self.scale * float(self.waveform(t))])

    def f_local_batch(self, U):
        xp = array_namespace(U)
        U = xp.asarray(U, dtype=float)
        return xp.stack([U[:, 2], -U[:, 2], U[:, 0] - U[:, 1]], axis=1)

    def df_local_batch(self, U):
        xp = array_namespace(U)
        out = xp.zeros((xp.asarray(U).shape[0], 3, 3))
        out[:, 0, 2] = 1.0
        out[:, 1, 2] = -1.0
        out[:, 2, 0] = 1.0
        out[:, 2, 1] = -1.0
        return out

    def b_local_batch(self, times):
        times = np.asarray(times, dtype=float).ravel()
        out = np.zeros((times.size, 3))
        out[:, 2] = self.scale * np.asarray(self.waveform(times), dtype=float)
        return out
