"""Independent sources."""

from __future__ import annotations

import numpy as np

from repro.circuits.devices.base import Device
from repro.circuits.waveforms import as_waveform


class CurrentSource(Device):
    """Independent current source driving ``waveform(t)`` from node_a to node_b.

    The source current leaves ``node_a`` and enters ``node_b``; with the
    library's form ``d/dt q + f = b`` it appears purely in the right-hand
    side: ``b[a] = -J(t)``, ``b[b] = +J(t)``.
    """

    def __init__(self, name, node_a, node_b, waveform):
        super().__init__(name, (node_a, node_b))
        self.waveform = as_waveform(waveform)

    def f_local(self, u):
        return np.zeros(2)

    def df_local(self, u):
        return np.zeros((2, 2))

    def b_local(self, t):
        value = float(self.waveform(t))
        return np.array([-value, value])

    def f_local_batch(self, U):
        return np.zeros((np.asarray(U).shape[0], 2))

    def df_local_batch(self, U):
        return np.zeros((np.asarray(U).shape[0], 2, 2))

    def b_local_batch(self, times):
        times = np.asarray(times, dtype=float).ravel()
        value = np.asarray(self.waveform(times), dtype=float)
        return np.stack([-value, value], axis=1)


class VoltageSource(Device):
    """Independent voltage source enforcing ``v_a - v_b = E(t)``.

    Adds a branch-current unknown ``i`` (flowing from ``node_a`` through the
    source to ``node_b``); rows are the two KCL stamps plus the KVL row
    ``v_a - v_b = E(t)``.
    """

    internal_names = ("i",)

    def __init__(self, name, node_a, node_b, waveform):
        super().__init__(name, (node_a, node_b))
        self.waveform = as_waveform(waveform)

    def f_local(self, u):
        return np.array([u[2], -u[2], u[0] - u[1]])

    def df_local(self, u):
        return np.array(
            [
                [0.0, 0.0, 1.0],
                [0.0, 0.0, -1.0],
                [1.0, -1.0, 0.0],
            ]
        )

    def b_local(self, t):
        return np.array([0.0, 0.0, float(self.waveform(t))])

    def f_local_batch(self, U):
        U = np.asarray(U, dtype=float)
        return np.stack([U[:, 2], -U[:, 2], U[:, 0] - U[:, 1]], axis=1)

    def df_local_batch(self, U):
        return np.broadcast_to(
            np.array([[0.0, 0.0, 1.0], [0.0, 0.0, -1.0], [1.0, -1.0, 0.0]]),
            (np.asarray(U).shape[0], 3, 3),
        ).copy()

    def b_local_batch(self, times):
        times = np.asarray(times, dtype=float).ravel()
        out = np.zeros((times.size, 3))
        out[:, 2] = np.asarray(self.waveform(times), dtype=float)
        return out
