"""Saturating (tanh) transconductance — the ring-oscillator stage element."""

from __future__ import annotations

import numpy as np

from repro.backend import array_namespace
from repro.circuits.devices.base import Device
from repro.errors import DeviceError


class TanhTransconductance(Device):
    """Current ``imax * tanh(gm * v_ctrl / imax)`` from ``out_p`` to ``out_n``.

    A voltage-controlled current source with soft saturation at ``imax`` —
    the classic behavioural model of an inverter/differential-pair stage.
    Small-signal transconductance at the origin is ``gm``; with an RC load
    from ``out_p`` to ground the stage *inverts* (positive input raises
    the current pulled out of the output node).

    Ports: ``(out_p, out_n, ctrl_p, ctrl_n)``.
    """

    def __init__(self, name, out_p, out_n, ctrl_p, ctrl_n, gm, imax):
        super().__init__(name, (out_p, out_n, ctrl_p, ctrl_n))
        gm = float(gm)
        imax = float(imax)
        if gm <= 0 or imax <= 0:
            raise DeviceError(
                f"transconductance {name!r} needs gm > 0 and imax > 0, "
                f"got gm={gm!r}, imax={imax!r}"
            )
        self.gm = gm
        self.imax = imax

    def output_current(self, v_ctrl):
        """Saturating output current for a control voltage."""
        xp = array_namespace(v_ctrl)
        return self.imax * xp.tanh(self.gm * v_ctrl / self.imax)

    def transconductance(self, v_ctrl):
        """Derivative of :meth:`output_current`."""
        xp = array_namespace(v_ctrl)
        sech2 = 1.0 / xp.cosh(self.gm * v_ctrl / self.imax) ** 2
        return self.gm * sech2

    def f_local(self, u):
        i = self.output_current(u[2] - u[3])
        return np.array([i, -i, 0.0, 0.0])

    def df_local(self, u):
        g = self.transconductance(u[2] - u[3])
        jac = np.zeros((4, 4))
        jac[0, 2] = g
        jac[0, 3] = -g
        jac[1, 2] = -g
        jac[1, 3] = g
        return jac

    def f_local_batch(self, U):
        xp = array_namespace(U)
        U = xp.asarray(U, dtype=float)
        i = self.output_current(U[:, 2] - U[:, 3])
        out = xp.zeros((U.shape[0], 4))
        out[:, 0] = i
        out[:, 1] = -i
        return out

    def df_local_batch(self, U):
        xp = array_namespace(U)
        U = xp.asarray(U, dtype=float)
        g = self.transconductance(U[:, 2] - U[:, 3])
        out = xp.zeros((U.shape[0], 4, 4))
        out[:, 0, 2] = g
        out[:, 0, 3] = -g
        out[:, 1, 2] = -g
        out[:, 1, 3] = g
        return out
