"""Exponential junction diode with overflow-safe limiting."""

from __future__ import annotations

import numpy as np

from repro.backend import array_namespace
from repro.circuits.devices.base import TwoTerminalStatic
from repro.constants import THERMAL_VOLTAGE_300K
from repro.errors import DeviceError

#: Junction voltage (in units of the thermal voltage) beyond which the
#: exponential is continued linearly to keep Newton iterates finite.
_LIMIT_MULTIPLE = 40.0


class Diode(TwoTerminalStatic):
    """Shockley diode ``i = Is (exp(v/Vt) - 1)`` from anode to cathode.

    Beyond ``v = 40 Vt`` the i-v law continues with the tangent line
    (standard SPICE-style junction limiting) so that wildly wrong Newton
    iterates produce large-but-finite currents instead of overflow.
    """

    def __init__(self, name, anode, cathode, saturation_current=1e-14,
                 thermal_voltage=THERMAL_VOLTAGE_300K):
        super().__init__(name, anode, cathode)
        saturation_current = float(saturation_current)
        thermal_voltage = float(thermal_voltage)
        if saturation_current <= 0 or thermal_voltage <= 0:
            raise DeviceError(
                f"diode {name!r} needs positive saturation current and "
                f"thermal voltage"
            )
        self.saturation_current = saturation_current
        self.thermal_voltage = thermal_voltage

    def _split(self, v):
        """Return (is_limited, v_limit) for the limiting region test."""
        v_limit = _LIMIT_MULTIPLE * self.thermal_voltage
        return v > v_limit, v_limit

    def current(self, v):
        """Branch current; vectorised over arrays of junction voltages."""
        xp = array_namespace(v)
        v = xp.asarray(v, dtype=float)
        limited, v_limit = self._split(v)
        exp_lim = np.exp(_LIMIT_MULTIPLE)
        slope = self.saturation_current * exp_lim / self.thermal_voltage
        i_lim = self.saturation_current * (exp_lim - 1.0)
        value = xp.where(
            limited,
            i_lim + slope * (v - v_limit),
            self.saturation_current
            * xp.expm1(xp.minimum(v, v_limit) / self.thermal_voltage),
        )
        return value if value.ndim else float(value)

    def conductance(self, v):
        """Derivative ``di/dv``; vectorised over arrays."""
        xp = array_namespace(v)
        v = xp.asarray(v, dtype=float)
        limited, v_limit = self._split(v)
        value = (
            self.saturation_current
            * xp.exp(xp.where(limited, v_limit, v) / self.thermal_voltage)
            / self.thermal_voltage
        )
        return value if value.ndim else float(value)
