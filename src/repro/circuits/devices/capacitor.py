"""Linear capacitor."""

from __future__ import annotations

import numpy as np

from repro.backend import array_namespace
from repro.circuits.devices.base import (
    Device,
    per_scenario_parameter,
    slice_per_scenario,
)


class Capacitor(Device):
    """Linear capacitor between ``node_a`` and ``node_b``.

    Contributes charge ``C * (v_a - v_b)`` to the KCL rows of its terminals.

    Parameters
    ----------
    capacitance:
        Capacitance in farads; must be positive.  May be a ``(B,)``
        per-scenario stack (see
        :func:`repro.circuits.devices.base.per_scenario_parameter`).
    """

    def __init__(self, name, node_a, node_b, capacitance):
        super().__init__(name, (node_a, node_b))
        self.capacitance = per_scenario_parameter(
            capacitance, "capacitance", name
        )

    def q_local(self, u):
        charge = self.capacitance * (u[0] - u[1])
        return np.array([charge, -charge])

    def dq_local(self, u):
        c = self.capacitance
        return np.array([[c, -c], [-c, c]])

    def f_local(self, u):
        return np.zeros(2)

    def df_local(self, u):
        return np.zeros((2, 2))

    def subset_scenarios(self, indices):
        return Capacitor(
            self.name, self.ports[0], self.ports[1],
            slice_per_scenario(self.capacitance, indices),
        )

    def q_local_batch(self, U):
        xp = array_namespace(U)
        U = xp.asarray(U, dtype=float)
        charge = self.capacitance * (U[:, 0] - U[:, 1])
        return xp.stack([charge, -charge], axis=1)

    def dq_local_batch(self, U):
        xp = array_namespace(U)
        U = xp.asarray(U, dtype=float)
        out = xp.empty((U.shape[0], 2, 2))
        out[:, 0, 0] = self.capacitance
        out[:, 0, 1] = -out[:, 0, 0]
        out[:, 1, 0] = -out[:, 0, 0]
        out[:, 1, 1] = out[:, 0, 0]
        return out

    def f_local_batch(self, U):
        xp = array_namespace(U)
        return xp.zeros((xp.asarray(U).shape[0], 2))

    def df_local_batch(self, U):
        xp = array_namespace(U)
        return xp.zeros((xp.asarray(U).shape[0], 2, 2))
