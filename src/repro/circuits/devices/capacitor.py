"""Linear capacitor."""

from __future__ import annotations

import numpy as np

from repro.circuits.devices.base import Device
from repro.errors import DeviceError


class Capacitor(Device):
    """Linear capacitor between ``node_a`` and ``node_b``.

    Contributes charge ``C * (v_a - v_b)`` to the KCL rows of its terminals.
    """

    def __init__(self, name, node_a, node_b, capacitance):
        super().__init__(name, (node_a, node_b))
        capacitance = float(capacitance)
        if not capacitance > 0:
            raise DeviceError(
                f"capacitor {name!r} needs positive capacitance, got {capacitance!r}"
            )
        self.capacitance = capacitance

    def q_local(self, u):
        charge = self.capacitance * (u[0] - u[1])
        return np.array([charge, -charge])

    def dq_local(self, u):
        c = self.capacitance
        return np.array([[c, -c], [-c, c]])

    def f_local(self, u):
        return np.zeros(2)

    def df_local(self, u):
        return np.zeros((2, 2))
