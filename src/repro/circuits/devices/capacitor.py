"""Linear capacitor."""

from __future__ import annotations

import numpy as np

from repro.circuits.devices.base import Device
from repro.errors import DeviceError


class Capacitor(Device):
    """Linear capacitor between ``node_a`` and ``node_b``.

    Contributes charge ``C * (v_a - v_b)`` to the KCL rows of its terminals.
    """

    def __init__(self, name, node_a, node_b, capacitance):
        super().__init__(name, (node_a, node_b))
        capacitance = float(capacitance)
        if not capacitance > 0:
            raise DeviceError(
                f"capacitor {name!r} needs positive capacitance, got {capacitance!r}"
            )
        self.capacitance = capacitance

    def q_local(self, u):
        charge = self.capacitance * (u[0] - u[1])
        return np.array([charge, -charge])

    def dq_local(self, u):
        c = self.capacitance
        return np.array([[c, -c], [-c, c]])

    def f_local(self, u):
        return np.zeros(2)

    def df_local(self, u):
        return np.zeros((2, 2))

    def q_local_batch(self, U):
        U = np.asarray(U, dtype=float)
        charge = self.capacitance * (U[:, 0] - U[:, 1])
        return np.stack([charge, -charge], axis=1)

    def dq_local_batch(self, U):
        U = np.asarray(U, dtype=float)
        c = self.capacitance
        return np.broadcast_to(
            np.array([[c, -c], [-c, c]]), (U.shape[0], 2, 2)
        ).copy()

    def f_local_batch(self, U):
        return np.zeros((np.asarray(U).shape[0], 2))

    def df_local_batch(self, U):
        return np.zeros((np.asarray(U).shape[0], 2, 2))
