"""MEMS varactor: a voltage-controlled capacitor with mechanical dynamics.

The paper's VCO tunes its tank capacitance "by adjusting the physical plate
separation of a novel MEMS varactor with a separate control voltage"; the
mechanical damping distinguishes the two experiments (near-vacuum for
Figs 7-9, air-filled for Figs 10-12).

Model
-----
The moving plate has displacement ``z`` and velocity ``u`` obeying

    m z'' + c z' + k z = kappa * Vc(t)**2

i.e. a comb-drive-style actuator: electrostatic force quadratic in the
control voltage ``Vc`` and independent of ``z`` (no pull-in singularity,
so the model is globally well-posed — a deliberate, documented substitution
for the paper's unspecified parallel-plate device).  The RF capacitance
seen by the tank is

    C(z) = C0 / (1 + (z/zs)**2)**2

chosen so the tank's local frequency ``f = 1/(2 pi sqrt(L C))``
is *linear* in ``(z/zs)**2`` — convenient for calibrating the paper's
frequency anchors (0.75 MHz at 1.5 V control, ~3x swing in Fig 7).

Because the control voltage is a known waveform, the electrostatic force
appears purely in the source vector ``b(t)``, consistent with the WaMPDE's
slow-time-only forcing ``b(t2)``.

Rows (local unknowns ``u = [v_a, v_b, z, u_vel]``):

* KCL at ``a``:  ``d/dt [C(z) (v_a - v_b)]``
* KCL at ``b``:  the negative of the above
* ``z`` row:     ``d/dt z - u_vel = 0``
* ``u`` row:     ``d/dt (m u_vel) + c u_vel + k z = kappa Vc(t)^2``
"""

from __future__ import annotations

import numpy as np

from repro.backend import array_namespace
from repro.circuits.devices.base import (
    Device,
    per_scenario_parameter,
    slice_per_scenario,
)
from repro.circuits.waveforms import as_waveform
from repro.errors import DeviceError


class MemsVaractor(Device):
    """Electromechanical varactor between ``node_a`` and ``node_b``.

    Parameters
    ----------
    name:
        Device identifier.
    node_a, node_b:
        RF terminals (the tank capacitor plates).
    control:
        Control-voltage waveform ``Vc(t)`` (number, callable or
        :class:`~repro.circuits.waveforms.Waveform`).
    c0:
        Capacitance at zero displacement [F].
    z_scale:
        Displacement scale ``zs`` in the capacitance law [m].
    mass:
        Plate mass ``m`` [kg].
    damping:
        Viscous damping ``c`` [N s/m] — small for vacuum, large for air.
    stiffness:
        Spring constant ``k`` [N/m].
    force_gain:
        Actuation gain ``kappa`` [N/V^2].
    """

    internal_names = ("z", "u")

    def __init__(self, name, node_a, node_b, control, c0, z_scale, mass,
                 damping, stiffness, force_gain):
        super().__init__(name, (node_a, node_b))
        # Every mechanical/electrical parameter accepts a (B,) per-scenario
        # stack, which is how an ensemble sweeps e.g. the damping spread
        # between the paper's vacuum and air experiments with one device.
        self.control = as_waveform(control)
        self.c0 = per_scenario_parameter(c0, "c0", name)
        self.z_scale = per_scenario_parameter(z_scale, "z_scale", name)
        self.mass = per_scenario_parameter(mass, "mass", name)
        self.damping = per_scenario_parameter(
            damping, "damping", name, positive=False
        )
        if np.any(np.asarray(self.damping) < 0):
            raise DeviceError(
                f"varactor {name!r} needs non-negative damping, got {damping!r}"
            )
        self.stiffness = per_scenario_parameter(stiffness, "stiffness", name)
        self.force_gain = per_scenario_parameter(
            force_gain, "force_gain", name, positive=False
        )

    # -- capacitance law -------------------------------------------------------

    def capacitance(self, z):
        """RF capacitance at displacement ``z``."""
        ratio = (z / self.z_scale) ** 2
        return self.c0 / (1.0 + ratio) ** 2

    def dcapacitance_dz(self, z):
        """Derivative ``dC/dz``."""
        s = z / self.z_scale
        return -4.0 * self.c0 * s / (self.z_scale * (1.0 + s**2) ** 3)

    def static_displacement(self, vc):
        """Equilibrium displacement for a constant control voltage."""
        return self.force_gain * float(vc) ** 2 / self.stiffness

    def subset_scenarios(self, indices):
        """Copy of this device with per-scenario stacks sliced to ``indices``."""
        return MemsVaractor(
            self.name, self.ports[0], self.ports[1], self.control,
            c0=slice_per_scenario(self.c0, indices),
            z_scale=slice_per_scenario(self.z_scale, indices),
            mass=slice_per_scenario(self.mass, indices),
            damping=slice_per_scenario(self.damping, indices),
            stiffness=slice_per_scenario(self.stiffness, indices),
            force_gain=slice_per_scenario(self.force_gain, indices),
        )

    def static_capacitance(self, vc):
        """Equilibrium capacitance for a constant control voltage."""
        return self.capacitance(self.static_displacement(vc))

    def force(self, t):
        """Electrostatic actuation force ``kappa * Vc(t)^2``."""
        vc = self.control(t)
        return self.force_gain * np.square(vc)

    # -- stamping ----------------------------------------------------------------

    def q_local(self, u):
        v = u[0] - u[1]
        z = u[2]
        charge = self.capacitance(z) * v
        return np.array([charge, -charge, z, self.mass * u[3]])

    def dq_local(self, u):
        v = u[0] - u[1]
        z = u[2]
        cap = self.capacitance(z)
        dcap = self.dcapacitance_dz(z)
        jac = np.zeros((4, 4))
        jac[0, 0] = cap
        jac[0, 1] = -cap
        jac[0, 2] = dcap * v
        jac[1, 0] = -cap
        jac[1, 1] = cap
        jac[1, 2] = -dcap * v
        jac[2, 2] = 1.0
        jac[3, 3] = self.mass
        return jac

    def f_local(self, u):
        return np.array(
            [
                0.0,
                0.0,
                -u[3],
                self.damping * u[3] + self.stiffness * u[2],
            ]
        )

    def df_local(self, u):
        jac = np.zeros((4, 4))
        jac[2, 3] = -1.0
        jac[3, 2] = self.stiffness
        jac[3, 3] = self.damping
        return jac

    def b_local(self, t):
        return np.array([0.0, 0.0, 0.0, float(self.force(t))])

    # -- batched stamping --------------------------------------------------------

    def q_local_batch(self, U):
        xp = array_namespace(U)
        U = xp.asarray(U, dtype=float)
        v = U[:, 0] - U[:, 1]
        z = U[:, 2]
        charge = self.capacitance(z) * v
        return xp.stack([charge, -charge, z, self.mass * U[:, 3]], axis=1)

    def dq_local_batch(self, U):
        xp = array_namespace(U)
        U = xp.asarray(U, dtype=float)
        v = U[:, 0] - U[:, 1]
        z = U[:, 2]
        cap = self.capacitance(z)
        dcap = self.dcapacitance_dz(z)
        out = xp.zeros((U.shape[0], 4, 4))
        out[:, 0, 0] = cap
        out[:, 0, 1] = -cap
        out[:, 0, 2] = dcap * v
        out[:, 1, 0] = -cap
        out[:, 1, 1] = cap
        out[:, 1, 2] = -dcap * v
        out[:, 2, 2] = 1.0
        out[:, 3, 3] = self.mass
        return out

    def f_local_batch(self, U):
        xp = array_namespace(U)
        U = xp.asarray(U, dtype=float)
        out = xp.zeros((U.shape[0], 4))
        out[:, 2] = -U[:, 3]
        out[:, 3] = self.damping * U[:, 3] + self.stiffness * U[:, 2]
        return out

    def df_local_batch(self, U):
        xp = array_namespace(U)
        out = xp.zeros((xp.asarray(U).shape[0], 4, 4))
        out[:, 2, 3] = -1.0
        out[:, 3, 2] = self.stiffness
        out[:, 3, 3] = self.damping
        return out

    def b_local_batch(self, times):
        times = np.asarray(times, dtype=float).ravel()
        out = np.zeros((times.size, 4))
        out[:, 3] = np.asarray(self.force(times), dtype=float)
        return out
