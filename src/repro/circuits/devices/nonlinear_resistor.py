"""Nonlinear resistors, including the paper's negative-resistance element.

The paper's VCO uses "an LC tank in parallel with a nonlinear resistor,
whose resistance was negative in a region about zero and positive
elsewhere", which makes the origin unstable and yields a stable limit
cycle.  :class:`CubicConductance` is the classical van der Pol cubic;
:class:`TanhNegativeConductance` is a saturating alternative often used for
cross-coupled CMOS oscillator models.
"""

from __future__ import annotations

import numpy as np

from repro.backend import array_namespace
from repro.circuits.devices.base import TwoTerminalStatic
from repro.errors import DeviceError


class CubicConductance(TwoTerminalStatic):
    """Cubic i-v law ``i(v) = -g1 * v + g3 * v**3``.

    Negative differential conductance for ``|v| < sqrt(g1 / (3 g3))`` and
    positive beyond — exactly the region structure the paper requires.  For
    a parallel-LC tank the resulting limit-cycle amplitude is approximately
    ``2 * sqrt(g1 / (3 g3))`` when the nonlinearity is weak.
    """

    def __init__(self, name, node_a, node_b, g1, g3):
        super().__init__(name, node_a, node_b)
        g1 = float(g1)
        g3 = float(g3)
        if g1 <= 0 or g3 <= 0:
            raise DeviceError(
                f"cubic conductance {name!r} needs g1 > 0 and g3 > 0, "
                f"got g1={g1!r}, g3={g3!r}"
            )
        self.g1 = g1
        self.g3 = g3

    def current(self, v):
        return -self.g1 * v + self.g3 * v**3

    def conductance(self, v):
        return -self.g1 + 3.0 * self.g3 * v**2

    def limit_cycle_amplitude_estimate(self):
        """First-order describing-function amplitude ``2 sqrt(g1/(3 g3))``."""
        return 2.0 * np.sqrt(self.g1 / (3.0 * self.g3))


class TanhNegativeConductance(TwoTerminalStatic):
    """Saturating negative resistance ``i(v) = gsat*v - imax*tanh(gneg*v/imax)``.

    Near zero the slope is ``gsat - gneg`` (negative when ``gneg > gsat``);
    for large ``|v|`` the tanh saturates and the slope tends to ``gsat > 0``.
    """

    def __init__(self, name, node_a, node_b, gneg, gsat, imax):
        super().__init__(name, node_a, node_b)
        gneg = float(gneg)
        gsat = float(gsat)
        imax = float(imax)
        if gneg <= gsat:
            raise DeviceError(
                f"tanh conductance {name!r} needs gneg > gsat for a negative "
                f"region, got gneg={gneg!r}, gsat={gsat!r}"
            )
        if gsat <= 0 or imax <= 0:
            raise DeviceError(
                f"tanh conductance {name!r} needs gsat > 0 and imax > 0"
            )
        self.gneg = gneg
        self.gsat = gsat
        self.imax = imax

    def current(self, v):
        xp = array_namespace(v)
        return self.gsat * v - self.imax * xp.tanh(self.gneg * v / self.imax)

    def conductance(self, v):
        xp = array_namespace(v)
        sech2 = 1.0 / xp.cosh(self.gneg * v / self.imax) ** 2
        return self.gsat - self.gneg * sech2
