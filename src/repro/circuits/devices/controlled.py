"""Linear controlled sources (VCCS, VCVS)."""

from __future__ import annotations

import numpy as np

from repro.backend import array_namespace
from repro.circuits.devices.base import Device


class VCCS(Device):
    """Voltage-controlled current source.

    Drives current ``gm * (v_cp - v_cn)`` from ``out_p`` to ``out_n``.
    Ports: ``(out_p, out_n, ctrl_p, ctrl_n)``.
    """

    def __init__(self, name, out_p, out_n, ctrl_p, ctrl_n, gm):
        super().__init__(name, (out_p, out_n, ctrl_p, ctrl_n))
        self.gm = float(gm)

    def f_local(self, u):
        i = self.gm * (u[2] - u[3])
        return np.array([i, -i, 0.0, 0.0])

    def df_local(self, u):
        gm = self.gm
        return np.array(
            [
                [0.0, 0.0, gm, -gm],
                [0.0, 0.0, -gm, gm],
                [0.0, 0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0, 0.0],
            ]
        )

    def f_local_batch(self, U):
        xp = array_namespace(U)
        U = xp.asarray(U, dtype=float)
        i = self.gm * (U[:, 2] - U[:, 3])
        out = xp.zeros((U.shape[0], 4))
        out[:, 0] = i
        out[:, 1] = -i
        return out

    def df_local_batch(self, U):
        xp = array_namespace(U)
        out = xp.zeros((xp.asarray(U).shape[0], 4, 4))
        out[:, 0, 2] = self.gm
        out[:, 0, 3] = -self.gm
        out[:, 1, 2] = -self.gm
        out[:, 1, 3] = self.gm
        return out


class VCVS(Device):
    """Voltage-controlled voltage source ``v(out_p) - v(out_n) = mu * v_ctrl``.

    Adds a branch-current unknown like an independent voltage source.
    Ports: ``(out_p, out_n, ctrl_p, ctrl_n)``.
    """

    internal_names = ("i",)

    def __init__(self, name, out_p, out_n, ctrl_p, ctrl_n, mu):
        super().__init__(name, (out_p, out_n, ctrl_p, ctrl_n))
        self.mu = float(mu)

    def f_local(self, u):
        i = u[4]
        kvl = (u[0] - u[1]) - self.mu * (u[2] - u[3])
        return np.array([i, -i, 0.0, 0.0, kvl])

    def df_local(self, u):
        mu = self.mu
        return np.array(
            [
                [0.0, 0.0, 0.0, 0.0, 1.0],
                [0.0, 0.0, 0.0, 0.0, -1.0],
                [0.0, 0.0, 0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0, 0.0, 0.0],
                [1.0, -1.0, -mu, mu, 0.0],
            ]
        )

    def f_local_batch(self, U):
        xp = array_namespace(U)
        U = xp.asarray(U, dtype=float)
        out = xp.zeros((U.shape[0], 5))
        out[:, 0] = U[:, 4]
        out[:, 1] = -U[:, 4]
        out[:, 4] = (U[:, 0] - U[:, 1]) - self.mu * (U[:, 2] - U[:, 3])
        return out

    def df_local_batch(self, U):
        xp = array_namespace(U)
        out = xp.zeros((xp.asarray(U).shape[0], 5, 5))
        out[:, 0, 4] = 1.0
        out[:, 1, 4] = -1.0
        out[:, 4, 0] = 1.0
        out[:, 4, 1] = -1.0
        out[:, 4, 2] = -self.mu
        out[:, 4, 3] = self.mu
        return out
