"""Linear resistor."""

from __future__ import annotations

from repro.circuits.devices.base import TwoTerminalStatic
from repro.errors import DeviceError


class Resistor(TwoTerminalStatic):
    """Ohmic resistor between ``node_a`` and ``node_b``.

    Parameters
    ----------
    resistance:
        Resistance in ohms; must be positive and finite.
    """

    def __init__(self, name, node_a, node_b, resistance):
        super().__init__(name, node_a, node_b)
        resistance = float(resistance)
        if not resistance > 0:
            raise DeviceError(
                f"resistor {name!r} needs positive resistance, got {resistance!r}"
            )
        self.resistance = resistance

    def current(self, v):
        return v / self.resistance

    def conductance(self, v):
        return 1.0 / self.resistance
