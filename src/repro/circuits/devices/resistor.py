"""Linear resistor."""

from __future__ import annotations

from repro.circuits.devices.base import (
    TwoTerminalStatic,
    per_scenario_parameter,
    slice_per_scenario,
)


class Resistor(TwoTerminalStatic):
    """Ohmic resistor between ``node_a`` and ``node_b``.

    Parameters
    ----------
    resistance:
        Resistance in ohms; must be positive.  May be a ``(B,)``
        per-scenario stack (see
        :func:`repro.circuits.devices.base.per_scenario_parameter`).
    """

    def __init__(self, name, node_a, node_b, resistance):
        super().__init__(name, node_a, node_b)
        self.resistance = per_scenario_parameter(
            resistance, "resistance", name
        )

    def subset_scenarios(self, indices):
        return Resistor(
            self.name, self.ports[0], self.ports[1],
            slice_per_scenario(self.resistance, indices),
        )

    def current(self, v):
        return v / self.resistance

    def conductance(self, v):
        return 1.0 / self.resistance
