"""Circuit device library.

Each device contributes local charge/flux (``q``), static (``f``) and source
(``b``) terms plus analytic local Jacobians; the netlist assembles them into
the global MNA system.  See :class:`repro.circuits.devices.base.Device` for
the stamping contract.
"""

from repro.circuits.devices.base import Device, TwoTerminalStatic
from repro.circuits.devices.resistor import Resistor
from repro.circuits.devices.capacitor import Capacitor
from repro.circuits.devices.inductor import Inductor
from repro.circuits.devices.sources import CurrentSource, VoltageSource
from repro.circuits.devices.nonlinear_resistor import (
    CubicConductance,
    TanhNegativeConductance,
)
from repro.circuits.devices.diode import Diode
from repro.circuits.devices.controlled import VCCS, VCVS
from repro.circuits.devices.mems_varactor import MemsVaractor
from repro.circuits.devices.transconductance import TanhTransconductance

__all__ = [
    "Device",
    "TwoTerminalStatic",
    "Resistor",
    "Capacitor",
    "Inductor",
    "CurrentSource",
    "VoltageSource",
    "CubicConductance",
    "TanhNegativeConductance",
    "Diode",
    "VCCS",
    "VCVS",
    "MemsVaractor",
    "TanhTransconductance",
]
