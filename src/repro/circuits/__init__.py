"""Modified-nodal-analysis (MNA) circuit substrate.

This package is the "circuit simulator" the paper assumes: a netlist of
devices compiles to the charge-oriented DAE ``d/dt q(x) + f(x) = b(t)``
(paper eq. 12) consumed by every engine in the library.

Quick tour
----------
>>> from repro.circuits import Circuit, Resistor, Capacitor, CurrentSource
>>> from repro.circuits.waveforms import Sine
>>> ckt = Circuit("rc lowpass")
>>> ckt.add(CurrentSource("I1", "0", "out", Sine(amplitude=1e-3, frequency=1e3)))
>>> ckt.add(Resistor("R1", "out", "0", 1e3))
>>> ckt.add(Capacitor("C1", "out", "0", 1e-6))
>>> dae = ckt.to_dae()
>>> dae.variable_names
('v(out)',)
"""

from repro.circuits.netlist import Circuit
from repro.circuits.mna import CircuitDAE
from repro.circuits.devices import (
    Device,
    Resistor,
    Capacitor,
    Inductor,
    CurrentSource,
    VoltageSource,
    CubicConductance,
    TanhNegativeConductance,
    Diode,
    VCCS,
    VCVS,
    MemsVaractor,
    TanhTransconductance,
)
from repro.circuits import waveforms
from repro.circuits import library

__all__ = [
    "Circuit",
    "CircuitDAE",
    "Device",
    "Resistor",
    "Capacitor",
    "Inductor",
    "CurrentSource",
    "VoltageSource",
    "CubicConductance",
    "TanhNegativeConductance",
    "Diode",
    "VCCS",
    "VCVS",
    "MemsVaractor",
    "TanhTransconductance",
    "waveforms",
    "library",
]
