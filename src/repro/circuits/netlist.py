"""Netlist container and node bookkeeping."""

from __future__ import annotations

from repro.circuits.devices.base import Device
from repro.errors import NetlistError

#: Node names treated as the ground reference (voltage fixed to 0).
GROUND_NAMES = frozenset({"0", "gnd", "GND", "ground"})


class Circuit:
    """An ordered collection of devices sharing named nodes.

    Nodes are created implicitly by the devices that reference them; the
    ground node (any name in :data:`GROUND_NAMES`) is the voltage reference
    and carries no unknown or KCL row.

    Parameters
    ----------
    title:
        Optional human-readable description.
    """

    def __init__(self, title=""):
        self.title = str(title)
        self._devices = []
        self._names = set()

    # -- construction ------------------------------------------------------

    def add(self, device):
        """Add a device; returns the circuit for chaining.

        Raises
        ------
        NetlistError
            On duplicate device names or non-:class:`Device` arguments.
        """
        if not isinstance(device, Device):
            raise NetlistError(
                f"Circuit.add expects a Device, got {type(device).__name__}"
            )
        if device.name in self._names:
            raise NetlistError(f"duplicate device name {device.name!r}")
        self._names.add(device.name)
        self._devices.append(device)
        return self

    # -- inspection ------------------------------------------------------------

    @property
    def devices(self):
        """Devices in insertion order (read-only view)."""
        return tuple(self._devices)

    def device(self, name):
        """Look up a device by name."""
        for dev in self._devices:
            if dev.name == name:
                return dev
        raise NetlistError(f"no device named {name!r}")

    def node_names(self):
        """Non-ground node names in order of first appearance."""
        seen = []
        for dev in self._devices:
            for port in dev.ports:
                if port not in GROUND_NAMES and port not in seen:
                    seen.append(port)
        return tuple(seen)

    def has_ground(self):
        """Whether any device references the ground node."""
        return any(
            port in GROUND_NAMES for dev in self._devices for port in dev.ports
        )

    def validate(self):
        """Check structural well-formedness.

        Raises
        ------
        NetlistError
            If the circuit is empty or floats with no ground reference.
        """
        if not self._devices:
            raise NetlistError("circuit has no devices")
        if not self.has_ground():
            raise NetlistError(
                "circuit has no ground node; name one terminal '0' or 'gnd'"
            )

    def to_dae(self):
        """Compile to a :class:`repro.circuits.mna.CircuitDAE`."""
        from repro.circuits.mna import CircuitDAE

        self.validate()
        return CircuitDAE(self)

    def __len__(self):
        return len(self._devices)

    def __repr__(self):
        return (
            f"Circuit({self.title!r}, devices={len(self._devices)}, "
            f"nodes={len(self.node_names())})"
        )
