"""MNA assembly: compile a :class:`~repro.circuits.netlist.Circuit` to a DAE.

Unknown ordering: node voltages in order of first appearance, then each
device's internal unknowns in device insertion order.  Equation rows match
the unknowns one-for-one (KCL per node, constitutive row per internal
unknown), so the assembled system is square by construction.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.netlist import GROUND_NAMES
from repro.dae.base import SemiExplicitDAE


class _DeviceSlot:
    """Precomputed scatter/gather maps for one device."""

    __slots__ = ("device", "columns", "rows")

    def __init__(self, device, columns, rows):
        self.device = device
        # Global unknown index per local unknown; -1 means ground (v = 0).
        self.columns = columns
        # Global equation row per local row; -1 means the dropped ground row.
        self.rows = rows


class CircuitDAE(SemiExplicitDAE):
    """The compiled ``d/dt q(x) + f(x) = b(t)`` system of a circuit.

    Build with :meth:`repro.circuits.netlist.Circuit.to_dae`.
    """

    def __init__(self, circuit):
        self.circuit = circuit
        node_names = circuit.node_names()
        node_index = {name: i for i, name in enumerate(node_names)}

        names = [f"v({name})" for name in node_names]
        slots = []
        next_index = len(node_names)
        for device in circuit.devices:
            columns = []
            rows = []
            for port in device.ports:
                if port in GROUND_NAMES:
                    columns.append(-1)
                    rows.append(-1)
                else:
                    columns.append(node_index[port])
                    rows.append(node_index[port])
            for label in device.internal_names:
                columns.append(next_index)
                rows.append(next_index)
                names.append(f"{device.name}.{label}")
                next_index += 1
            slots.append(
                _DeviceSlot(
                    device,
                    np.asarray(columns, dtype=int),
                    np.asarray(rows, dtype=int),
                )
            )

        self._slots = slots
        self.n = next_index
        self.variable_names = tuple(names)

    # -- gather/scatter helpers --------------------------------------------------

    @staticmethod
    def _gather(x, columns):
        """Local unknown vector for a device; ground columns read 0."""
        local = np.zeros(columns.size)
        mask = columns >= 0
        local[mask] = x[columns[mask]]
        return local

    def _accumulate_vector(self, evaluate):
        out = np.zeros(self.n)
        for slot in self._slots:
            local = evaluate(slot)
            mask = slot.rows >= 0
            np.add.at(out, slot.rows[mask], local[mask])
        return out

    def _accumulate_matrix(self, evaluate, x):
        out = np.zeros((self.n, self.n))
        for slot in self._slots:
            local = evaluate(slot.device, self._gather(x, slot.columns))
            row_mask = slot.rows >= 0
            col_mask = slot.columns >= 0
            rows = slot.rows[row_mask]
            cols = slot.columns[col_mask]
            block = local[np.ix_(row_mask, col_mask)]
            out[np.ix_(rows, cols)] += block
        return out

    # -- DAE interface -----------------------------------------------------------

    def q(self, x):
        x = np.asarray(x, dtype=float)
        return self._accumulate_vector(
            lambda slot: slot.device.q_local(self._gather(x, slot.columns))
        )

    def f(self, x):
        x = np.asarray(x, dtype=float)
        return self._accumulate_vector(
            lambda slot: slot.device.f_local(self._gather(x, slot.columns))
        )

    def b(self, t):
        t = float(t)
        return self._accumulate_vector(lambda slot: slot.device.b_local(t))

    def dq_dx(self, x):
        x = np.asarray(x, dtype=float)
        return self._accumulate_matrix(lambda dev, u: dev.dq_local(u), x)

    def df_dx(self, x):
        x = np.asarray(x, dtype=float)
        return self._accumulate_matrix(lambda dev, u: dev.df_local(u), x)
