"""MNA assembly: compile a :class:`~repro.circuits.netlist.Circuit` to a DAE.

Unknown ordering: node voltages in order of first appearance, then each
device's internal unknowns in device insertion order.  Equation rows match
the unknowns one-for-one (KCL per node, constitutive row per internal
unknown), so the assembled system is square by construction.
"""

from __future__ import annotations

import numpy as np

from repro.backend import array_namespace
from repro.circuits.netlist import GROUND_NAMES
from repro.dae.base import SemiExplicitDAE


class _DeviceSlot:
    """Precomputed scatter/gather maps for one device."""

    __slots__ = (
        "device",
        "columns",
        "rows",
        "gather_cols",
        "gather_scale",
        "row_sel",
        "row_targets",
        "col_sel",
        "col_targets",
        "jac_flat",
    )

    def __init__(self, device, columns, rows):
        self.device = device
        # Global unknown index per local unknown; -1 means ground (v = 0).
        self.columns = columns
        # Global equation row per local row; -1 means the dropped ground row.
        self.rows = rows
        # Batched gather: read ground columns from index 0 and zero them out.
        self.gather_cols = np.where(columns >= 0, columns, 0)
        self.gather_scale = (columns >= 0).astype(float)
        # Batched scatter: local positions kept and their global targets.
        self.row_sel = np.nonzero(rows >= 0)[0]
        self.row_targets = rows[self.row_sel]
        self.col_sel = np.nonzero(columns >= 0)[0]
        self.col_targets = columns[self.col_sel]
        # Flat (row, col) offsets of the surviving Jacobian block entries
        # within one dense (n, n) system Jacobian; filled by CircuitDAE once
        # the system size is known.
        self.jac_flat = None


class CircuitDAE(SemiExplicitDAE):
    """The compiled ``d/dt q(x) + f(x) = b(t)`` system of a circuit.

    Build with :meth:`repro.circuits.netlist.Circuit.to_dae`.
    """

    def __init__(self, circuit):
        self.circuit = circuit
        node_names = circuit.node_names()
        node_index = {name: i for i, name in enumerate(node_names)}

        names = [f"v({name})" for name in node_names]
        slots = []
        next_index = len(node_names)
        for device in circuit.devices:
            columns = []
            rows = []
            for port in device.ports:
                if port in GROUND_NAMES:
                    columns.append(-1)
                    rows.append(-1)
                else:
                    columns.append(node_index[port])
                    rows.append(node_index[port])
            for label in device.internal_names:
                columns.append(next_index)
                rows.append(next_index)
                names.append(f"{device.name}.{label}")
                next_index += 1
            slots.append(
                _DeviceSlot(
                    device,
                    np.asarray(columns, dtype=int),
                    np.asarray(rows, dtype=int),
                )
            )

        self._slots = slots
        self.n = next_index
        self.variable_names = tuple(names)
        for slot in slots:
            slot.jac_flat = (
                slot.row_targets[:, None] * self.n + slot.col_targets[None, :]
            ).ravel()

    def subset_scenarios(self, indices):
        """Stacked-circuit slice: every device's ``(B,)`` parameter stacks
        restricted to ``indices`` (see
        :meth:`repro.circuits.devices.base.Device.subset_scenarios`).  Lets
        chunked ensemble marches carve one stacked circuit into
        backend-sized blocks."""
        from repro.circuits.netlist import Circuit

        circuit = Circuit(self.circuit.title)
        for device in self.circuit.devices:
            circuit.add(device.subset_scenarios(indices))
        return CircuitDAE(circuit)

    # -- gather/scatter helpers --------------------------------------------------

    @staticmethod
    def _gather(x, columns):
        """Local unknown vector for a device; ground columns read 0."""
        local = np.zeros(columns.size)
        mask = columns >= 0
        local[mask] = x[columns[mask]]
        return local

    def _accumulate_vector(self, evaluate):
        out = np.zeros(self.n)
        for slot in self._slots:
            local = evaluate(slot)
            mask = slot.rows >= 0
            np.add.at(out, slot.rows[mask], local[mask])
        return out

    def _accumulate_matrix(self, evaluate, x):
        out = np.zeros((self.n, self.n))
        for slot in self._slots:
            local = evaluate(slot.device, self._gather(x, slot.columns))
            row_mask = slot.rows >= 0
            col_mask = slot.columns >= 0
            rows = slot.rows[row_mask]
            cols = slot.columns[col_mask]
            block = local[np.ix_(row_mask, col_mask)]
            out[np.ix_(rows, cols)] += block
        return out

    # -- DAE interface -----------------------------------------------------------

    def q(self, x):
        x = np.asarray(x, dtype=float)
        return self._accumulate_vector(
            lambda slot: slot.device.q_local(self._gather(x, slot.columns))
        )

    def f(self, x):
        x = np.asarray(x, dtype=float)
        return self._accumulate_vector(
            lambda slot: slot.device.f_local(self._gather(x, slot.columns))
        )

    def b(self, t):
        t = float(t)
        return self._accumulate_vector(lambda slot: slot.device.b_local(t))

    def dq_dx(self, x):
        x = np.asarray(x, dtype=float)
        return self._accumulate_matrix(lambda dev, u: dev.dq_local(u), x)

    def df_dx(self, x):
        x = np.asarray(x, dtype=float)
        return self._accumulate_matrix(lambda dev, u: dev.df_local(u), x)

    # -- batched DAE interface ---------------------------------------------------
    #
    # The multi-time engines evaluate the system at every collocation point
    # of a grid on each Newton iteration; these overrides gather all local
    # states with one fancy-index per device, evaluate each device *once*
    # over the whole batch, and scatter-add with precomputed flat index maps
    # and a single ``np.bincount`` — no per-point Python loop.

    def _gather_batch(self, states, slot):
        """Local state stack ``(m, n_local)``; ground columns read 0."""
        return states[:, slot.gather_cols] * slot.gather_scale

    def _accumulate_vector_batch(self, m, contributions, xp=np):
        """Sum per-device ``(m, n_valid)`` stacks into an ``(m, n)`` array.

        ``contributions`` yields ``(slot, values)`` pairs where ``values``
        holds the surviving local rows (``slot.row_sel``) of the device's
        batched evaluation.  The scatter indices are host integer math;
        only the value payloads live on ``xp``.
        """
        offsets = self.n * np.arange(m)
        idx_parts = []
        val_parts = []
        for slot, values in contributions:
            idx = offsets[:, None] + slot.row_targets[None, :]
            idx_parts.append(idx.ravel())
            val_parts.append(xp.ascontiguousarray(values).ravel())
        if not idx_parts:
            return xp.zeros((m, self.n))
        flat = xp.bincount(
            xp.asarray(np.concatenate(idx_parts)),
            weights=xp.concatenate(val_parts),
            minlength=m * self.n,
        )
        return flat.reshape(m, self.n)

    def _accumulate_matrix_batch(self, states, evaluate):
        xp = array_namespace(states)
        states = xp.asarray(states, dtype=float)
        m = states.shape[0]
        offsets = self.n * self.n * np.arange(m)
        idx_parts = []
        val_parts = []
        for slot in self._slots:
            local = evaluate(slot.device, self._gather_batch(states, slot))
            block = local[:, slot.row_sel][:, :, slot.col_sel]
            idx = offsets[:, None] + slot.jac_flat[None, :]
            idx_parts.append(idx.ravel())
            val_parts.append(block.reshape(m, -1).ravel())
        if not idx_parts:
            return xp.zeros((m, self.n, self.n))
        flat = xp.bincount(
            xp.asarray(np.concatenate(idx_parts)),
            weights=xp.concatenate(val_parts),
            minlength=m * self.n * self.n,
        )
        return flat.reshape(m, self.n, self.n)

    def q_batch(self, states):
        xp = array_namespace(states)
        states = xp.asarray(states, dtype=float)
        return self._accumulate_vector_batch(
            states.shape[0],
            (
                (
                    slot,
                    slot.device.q_local_batch(
                        self._gather_batch(states, slot)
                    )[:, slot.row_sel],
                )
                for slot in self._slots
            ),
            xp=xp,
        )

    def f_batch(self, states):
        xp = array_namespace(states)
        states = xp.asarray(states, dtype=float)
        return self._accumulate_vector_batch(
            states.shape[0],
            (
                (
                    slot,
                    slot.device.f_local_batch(
                        self._gather_batch(states, slot)
                    )[:, slot.row_sel],
                )
                for slot in self._slots
            ),
            xp=xp,
        )

    def qf_batch(self, states):
        # One gather per device serves both stamps (the ensemble engine
        # calls this at every Newton iterate).
        xp = array_namespace(states)
        states = xp.asarray(states, dtype=float)
        m = states.shape[0]
        q_parts = []
        f_parts = []
        for slot in self._slots:
            local = self._gather_batch(states, slot)
            q_parts.append(
                (slot, slot.device.q_local_batch(local)[:, slot.row_sel])
            )
            f_parts.append(
                (slot, slot.device.f_local_batch(local)[:, slot.row_sel])
            )
        return (
            self._accumulate_vector_batch(m, q_parts, xp=xp),
            self._accumulate_vector_batch(m, f_parts, xp=xp),
        )

    def b_batch(self, times):
        # Waveform evaluation is host-only by design: the ensemble engine
        # transfers the (m, n) result to the device when needed.
        times = np.asarray(times, dtype=float).ravel()
        return self._accumulate_vector_batch(
            times.size,
            (
                (slot, slot.device.b_local_batch(times)[:, slot.row_sel])
                for slot in self._slots
            ),
        )

    def dq_dx_batch(self, states):
        return self._accumulate_matrix_batch(
            states, lambda dev, U: dev.dq_local_batch(U)
        )

    def df_dx_batch(self, states):
        return self._accumulate_matrix_batch(
            states, lambda dev, U: dev.df_local_batch(U)
        )

    # -- structural sparsity ------------------------------------------------------

    def _device_block_structure(self):
        """Union of every device's dense local block — a safe superset."""
        mask = np.zeros((self.n, self.n), dtype=bool)
        for slot in self._slots:
            mask[np.ix_(slot.row_targets, slot.col_targets)] = True
        return mask

    def dq_structure(self):
        return self._device_block_structure()

    def df_structure(self):
        return self._device_block_structure()
