"""Ready-made circuits, including the paper's MEMS-varactor VCO.

Calibration
-----------
The paper gives no component values, only behavioural anchors.  The
parameters below are solved so that the *static* tuning law

    f(Vc) = f_base * (1 + gamma**2 * Vc**4),   gamma = kappa / (k * zs)

hits the anchors ``f(1.5 V) = 0.75 MHz`` (paper: "initial control voltage of
1.5V resulted in an initial frequency of about 0.75MHz") and
``f(2.7 V) = 2.0 MHz`` (top of Fig 7's ~3x swing), giving

    beta = gamma**2 = 0.0420407...,   f_base = 618.39 kHz

The control waveform is ``Vc(t) = 1.5 + 1.2 sin(2 pi t / T_force)`` with
``T_force = 30 * T_nominal = 40 us`` for the vacuum variant (Figs 7-9) and
``T_force = 1 ms`` for the air variant (Figs 10-12), exactly as §5 states.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

import numpy as np

from repro.backend import array_namespace
from repro.circuits.devices import (
    CubicConductance,
    CurrentSource,
    Inductor,
    MemsVaractor,
)
from repro.circuits.netlist import Circuit
from repro.circuits.waveforms import DC, Sine, as_waveform
from repro.constants import TWO_PI
from repro.dae.base import SemiExplicitDAE

#: Tuning-law curvature solved from the two frequency anchors.
_BETA = 5.0 / 118.932187
#: gamma = kappa / (k * zs) [1/V^2].
_GAMMA = float(np.sqrt(_BETA))
#: Base (zero-displacement) oscillation frequency [Hz].
_F_BASE = 0.75e6 / (1.0 + _BETA * 1.5**4)
#: Nominal oscillation frequency at Vc = 1.5 V [Hz].
F_NOMINAL = 0.75e6
#: Nominal oscillation period [s].
T_NOMINAL = 1.0 / F_NOMINAL


@dataclass(frozen=True)
class VcoParams:
    """Component values of the MEMS-varactor VCO.

    Defaults are the vacuum (Figs 7-9) calibration; use :meth:`air` for the
    modified VCO of Figs 10-12.
    """

    #: Tank inductance [H]; sets f_base together with ``c0``.  The factor
    #: 0.9557 compensates the van der Pol frequency pulling of the cubic
    #: resistor so the *oscillating* circuit (not just the linear tank)
    #: free-runs at 0.75 MHz with a 1.5 V control.
    inductance: float = 0.9557 / ((TWO_PI * _F_BASE) ** 2 * 100e-12)
    #: Varactor capacitance at zero displacement [F].
    c0: float = 100e-12
    #: Negative-conductance magnitude g1 [S] of the cubic resistor.
    g1: float = 1.9427e-4
    #: Cubic coefficient g3 [S/V^2]; g1/(3*g3) = 1 → ~2 V limit cycle.
    g3: float = 1.9427e-4 / 3.0
    #: Displacement scale zs [m] in the capacitance law.
    z_scale: float = 1e-6
    #: Plate mass [kg].
    mass: float = 1e-9
    #: Spring constant [N/m]; mech. resonance ~75 kHz.
    stiffness: float = 221.0
    #: Viscous damping [N s/m]; default = near vacuum (Q ≈ 5).
    damping: float = 9.4e-5
    #: Actuation gain kappa = gamma * k * zs [N/V^2].
    force_gain: float = _GAMMA * 221.0 * 1e-6
    #: Control offset [V].
    control_offset: float = 1.5
    #: Control sinusoid amplitude [V].
    control_amplitude: float = 1.1
    #: Control sinusoid period [s]; vacuum default = 30 nominal cycles.
    control_period: float = 30.0 * T_NOMINAL

    @staticmethod
    def vacuum():
        """Paper §5 first experiment: near-vacuum damping, 40 us forcing."""
        return VcoParams()

    @staticmethod
    def air():
        """Paper §5 modified VCO: air damping, 1 ms forcing period.

        The damping gives a mechanical relaxation time ``c/k = 0.25 ms``,
        strongly overdamped — the source of Fig 10's settling behaviour.
        """
        return replace(VcoParams(), damping=0.0553, control_period=1e-3)

    @property
    def gamma(self):
        """Tuning coefficient kappa/(k*zs) [1/V^2]."""
        return self.force_gain / (self.stiffness * self.z_scale)

    @property
    def f_base(self):
        """Zero-displacement oscillation frequency [Hz]."""
        return 1.0 / (TWO_PI * np.sqrt(self.inductance * self.c0))

    def control_waveform(self, constant=False):
        """The control voltage Vc(t); ``constant=True`` freezes it at t=0."""
        if constant:
            return DC(self.control_offset)
        return Sine(
            amplitude=self.control_amplitude,
            frequency=1.0 / self.control_period,
            offset=self.control_offset,
        )

    def static_frequency(self, vc):
        """Static tuning law ``f_base * (1 + (gamma * Vc^2)^2)`` [Hz]."""
        vc = np.asarray(vc, dtype=float)
        return self.f_base * (1.0 + (self.gamma * vc**2) ** 2)

    def static_displacement(self, vc):
        """Equilibrium plate displacement at constant control voltage [m]."""
        vc = np.asarray(vc, dtype=float)
        return self.force_gain * vc**2 / self.stiffness


def mems_vco_circuit(params=None, constant_control=False):
    """Netlist of the paper's VCO: LC tank ∥ cubic resistor ∥ MEMS varactor.

    Parameters
    ----------
    params:
        :class:`VcoParams`; defaults to the vacuum calibration.
    constant_control:
        Freeze the control voltage at its offset (the unforced oscillator
        used to initialise envelope runs).
    """
    p = params or VcoParams()
    circuit = Circuit("MEMS-varactor VCO (Narayan & Roychowdhury, DAC 1999)")
    circuit.add(CubicConductance("Rneg", "tank", "0", p.g1, p.g3))
    circuit.add(Inductor("L1", "tank", "0", p.inductance))
    circuit.add(
        MemsVaractor(
            "Cmems",
            "tank",
            "0",
            p.control_waveform(constant=constant_control),
            c0=p.c0,
            z_scale=p.z_scale,
            mass=p.mass,
            damping=p.damping,
            stiffness=p.stiffness,
            force_gain=p.force_gain,
        )
    )
    return circuit


class MemsVcoDae(SemiExplicitDAE):
    """Hand-vectorised DAE of the MEMS VCO (same equations as the netlist).

    Unknowns (matching ``mems_vco_circuit(...).to_dae()`` ordering)::

        x = [v, il, z, u]
        d/dt [C(z) v]  + il - g1 v + g3 v^3 = 0
        d/dt [L il]    - v                  = 0
        d/dt  z        - u                  = 0
        d/dt [m u]     + c u + k z          = kappa * Vc(t)^2

    The batch methods are vectorised; the multi-time engines rely on them
    for speed.  Equivalence with the netlist build is asserted in the tests.

    Every :class:`VcoParams` field may also be a ``(B,)`` per-scenario
    stack (the dataclass performs no coercion): the batch methods then
    evaluate row ``b`` with the ``b``-th parameter value, which is how
    :class:`repro.dae.ensemble.EnsembleDAE.from_stacked` carries a whole
    control-voltage sweep through one vectorised evaluation.  A stacked
    instance must only be used through the ``*_batch`` methods with
    batches of exactly ``B`` rows.
    """

    def __init__(self, params=None, constant_control=False):
        self.params = params or VcoParams()
        self._constant_control = bool(constant_control)
        self.control = self.params.control_waveform(constant=constant_control)
        self.n = 4
        self.variable_names = ("v(tank)", "L1.i", "Cmems.z", "Cmems.u")

    def subset_scenarios(self, indices):
        """A new DAE over the selected scenario rows of every ``(B,)`` stack.

        The hook behind :meth:`repro.dae.ensemble.EnsembleDAE.subset` —
        scalar parameters are shared by every scenario and pass through;
        stacked parameters are sliced.
        """
        indices = np.asarray(indices, dtype=int).ravel()

        def pick(value):
            arr = np.asarray(value, dtype=float)
            return value if arr.ndim == 0 else arr[indices]

        params = replace(self.params, **{
            field.name: pick(getattr(self.params, field.name))
            for field in fields(self.params)
        })
        return MemsVcoDae(params, constant_control=self._constant_control)

    # -- capacitance law (shared with MemsVaractor) ---------------------------

    def capacitance(self, z):
        """RF capacitance at displacement ``z`` (vectorised)."""
        xp = array_namespace(z)
        s2 = (xp.asarray(z) / self.params.z_scale) ** 2
        return self.params.c0 / (1.0 + s2) ** 2

    def dcapacitance_dz(self, z):
        """Derivative dC/dz (vectorised)."""
        xp = array_namespace(z)
        zs = self.params.z_scale
        s = xp.asarray(z) / zs
        return -4.0 * self.params.c0 * s / (zs * (1.0 + s**2) ** 3)

    # -- single-point interface ------------------------------------------------

    def q(self, x):
        return self.q_batch(np.asarray(x, dtype=float)[None, :])[0]

    def f(self, x):
        return self.f_batch(np.asarray(x, dtype=float)[None, :])[0]

    def b(self, t):
        return self.b_batch(np.array([t]))[0]

    def dq_dx(self, x):
        return self.dq_dx_batch(np.asarray(x, dtype=float)[None, :])[0]

    def df_dx(self, x):
        return self.df_dx_batch(np.asarray(x, dtype=float)[None, :])[0]

    def qf(self, x):
        # Transient hot path: one unpack and one capacitance evaluation for
        # both vectors (the per-step Newton loop calls this 2-3 times per
        # accepted step).
        p = self.params
        v, il, z, u = x
        q = np.empty(4)
        s2 = (z / p.z_scale) ** 2
        q[0] = p.c0 / (1.0 + s2) ** 2 * v
        q[1] = p.inductance * il
        q[2] = z
        q[3] = p.mass * u
        f = np.empty(4)
        f[0] = il - p.g1 * v + p.g3 * v**3
        f[1] = -v
        f[2] = -u
        f[3] = p.damping * u + p.stiffness * z
        return q, f

    # -- vectorised batch interface ---------------------------------------------

    def q_batch(self, states):
        xp = array_namespace(states)
        states = xp.asarray(states, dtype=float)
        p = self.params
        v, il, z, u = states.T
        out = xp.empty_like(states)
        out[:, 0] = self.capacitance(z) * v
        out[:, 1] = p.inductance * il
        out[:, 2] = z
        out[:, 3] = p.mass * u
        return out

    def f_batch(self, states):
        xp = array_namespace(states)
        states = xp.asarray(states, dtype=float)
        p = self.params
        v, il, z, u = states.T
        out = xp.empty_like(states)
        out[:, 0] = il - p.g1 * v + p.g3 * v**3
        out[:, 1] = -v
        out[:, 2] = -u
        out[:, 3] = p.damping * u + p.stiffness * z
        return out

    def qf_batch(self, states):
        # Ensemble hot path: one unpack and one capacitance evaluation for
        # both stacks (mirrors the single-point qf fast path).
        xp = array_namespace(states)
        states = xp.asarray(states, dtype=float)
        p = self.params
        v, il, z, u = states.T
        q = xp.empty_like(states)
        q[:, 0] = self.capacitance(z) * v
        q[:, 1] = p.inductance * il
        q[:, 2] = z
        q[:, 3] = p.mass * u
        f = xp.empty_like(states)
        f[:, 0] = il - p.g1 * v + p.g3 * v**3
        f[:, 1] = -v
        f[:, 2] = -u
        f[:, 3] = p.damping * u + p.stiffness * z
        return q, f

    def b_batch(self, times):
        times = np.asarray(times, dtype=float).ravel()
        out = np.zeros((times.size, 4))
        vc = np.asarray(self.control(times), dtype=float)
        out[:, 3] = self.params.force_gain * vc**2
        return out

    def dq_dx_batch(self, states):
        xp = array_namespace(states)
        states = xp.asarray(states, dtype=float)
        p = self.params
        v, il, z, u = states.T
        out = xp.zeros((states.shape[0], 4, 4))
        out[:, 0, 0] = self.capacitance(z)
        out[:, 0, 2] = self.dcapacitance_dz(z) * v
        out[:, 1, 1] = p.inductance
        out[:, 2, 2] = 1.0
        out[:, 3, 3] = p.mass
        return out

    def df_dx_batch(self, states):
        xp = array_namespace(states)
        states = xp.asarray(states, dtype=float)
        p = self.params
        v = states[:, 0]
        out = xp.zeros((states.shape[0], 4, 4))
        out[:, 0, 0] = -p.g1 + 3.0 * p.g3 * v**2
        out[:, 0, 1] = 1.0
        out[:, 1, 0] = -1.0
        out[:, 2, 3] = -1.0
        out[:, 3, 2] = p.stiffness
        out[:, 3, 3] = p.damping
        return out

    # -- structural sparsity (exact; see the batch Jacobians above) -----------

    def dq_structure(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = mask[0, 2] = True
        mask[1, 1] = mask[2, 2] = mask[3, 3] = True
        return mask

    def df_structure(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = mask[0, 1] = mask[1, 0] = True
        mask[2, 3] = mask[3, 2] = mask[3, 3] = True
        return mask


def lc_oscillator_circuit(inductance=1.0, capacitance=1.0, g1=0.5,
                          g3=0.5 / 3.0):
    """Van der Pol-style LC oscillator: tank ∥ cubic negative resistor.

    With the defaults this oscillates near ``1/(2 pi sqrt(LC))`` Hz with a
    ~2-unit amplitude — the small autonomous test vehicle used throughout
    the test suite.
    """
    circuit = Circuit("LC oscillator with cubic negative resistance")
    circuit.add(CubicConductance("Rneg", "tank", "0", g1, g3))
    circuit.add(Inductor("L1", "tank", "0", inductance))
    from repro.circuits.devices import Capacitor

    circuit.add(Capacitor("C1", "tank", "0", capacitance))
    return circuit


def forced_lc_oscillator_circuit(inductance=1.0, capacitance=1.0, g1=0.5,
                                 g3=0.5 / 3.0, injection_amplitude=0.05,
                                 injection_frequency=0.17):
    """LC oscillator with a sinusoidal injection current into the tank.

    Used by the entrainment/mode-locking example: when the injection
    frequency is close to the free-running frequency and strong enough, the
    oscillator locks (the WaMPDE's omega converges to the injection
    frequency).
    """
    circuit = lc_oscillator_circuit(inductance, capacitance, g1, g3)
    circuit.add(
        CurrentSource(
            "Iinj",
            "tank",
            "0",
            Sine(amplitude=injection_amplitude, frequency=injection_frequency),
        )
    )
    return circuit


def ring_oscillator_circuit(stages=3, resistance=1e3, capacitance=1e-9,
                            gm=4e-3, imax=1e-3, bias=None):
    """Odd-stage RC ring oscillator built from saturating transconductors.

    Each stage is an inverting ``TanhTransconductance`` driving an RC load;
    with ``gm * R > 2`` (three stages) the DC point is unstable and the
    ring oscillates near ``sqrt(3) / (2 pi R C)``, with saturation at
    ``imax * R`` setting the swing.  A second, structurally different
    autonomous circuit for exercising the WaMPDE beyond the paper's LC VCO.

    Parameters
    ----------
    stages:
        Odd number of inverting stages (>= 3).
    bias:
        Optional waveform injected as a current into node ``n1`` — a
        crude "control input" that detunes the ring (current-starved-VCO
        style); useful for envelope experiments.
    """
    from repro.circuits.devices import Capacitor, Resistor, TanhTransconductance

    if stages < 3 or stages % 2 == 0:
        raise ValueError(f"ring oscillator needs an odd stage count >= 3, got {stages}")
    circuit = Circuit(f"{stages}-stage tanh ring oscillator")
    for k in range(stages):
        node = f"n{k + 1}"
        prev = f"n{k if k else stages}"
        circuit.add(Resistor(f"R{k + 1}", node, "0", resistance))
        circuit.add(Capacitor(f"C{k + 1}", node, "0", capacitance))
        circuit.add(
            TanhTransconductance(
                f"G{k + 1}", node, "0", prev, "0", gm=gm, imax=imax
            )
        )
    if bias is not None:
        circuit.add(CurrentSource("Ibias", "0", "n1", bias))
    return circuit


def rc_diode_mixer_circuit(resistance=1e3, capacitance=1e-7,
                           bias=0.6, rf_amplitude=0.05, rf_frequency=1e5,
                           lo_amplitude=0.4, lo_frequency=1e3):
    """Two-tone driven RC-diode mixer — the classic MPDE (non-autonomous) demo.

    A diode feeding an RC load, driven by the sum of a fast RF tone and a
    slow LO tone (widely separated rates).  The response is
    AM-quasiperiodic: exactly the Fig 1/Fig 2 situation of the paper.
    """
    from repro.circuits.devices import Capacitor, Diode, Resistor, VoltageSource

    def drive(t):
        return (
            bias
            + rf_amplitude * np.sin(TWO_PI * rf_frequency * t)
            + lo_amplitude * np.sin(TWO_PI * lo_frequency * t)
        )

    circuit = Circuit("RC diode mixer (two-tone drive)")
    circuit.add(VoltageSource("Vin", "in", "0", as_waveform(drive)))
    circuit.add(Diode("D1", "in", "out"))
    circuit.add(Resistor("RL", "out", "0", resistance))
    circuit.add(Capacitor("CL", "out", "0", capacitance))
    return circuit
