"""Damped Newton–Raphson for square nonlinear systems.

The solver is deliberately simple and predictable: full Newton steps with a
residual-monotonicity line search (step halving).  Every engine in this
library — DC operating point, transient time steps, shooting, harmonic
balance, MPDE and WaMPDE collocation — funnels through this one kernel, so
its convergence reporting is uniform everywhere.

For step-sequenced solves (transient time stepping), where consecutive
Newton systems are nearly identical, :class:`StaleJacobianNewton` provides
the classic chord/modified-Newton alternative: one factorised Jacobian is
reused across iterations *and* across accepted steps, refactorising only
when convergence slows or the caller invalidates it (e.g. on a step-size
change).  For the smooth, small-step systems of circuit transient analysis
this removes nearly all Jacobian evaluations and factorisations from the
hot loop at the cost of an occasional extra residual evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.constants import (
    DEFAULT_NEWTON_ATOL,
    DEFAULT_NEWTON_MAXITER,
    DEFAULT_NEWTON_RTOL,
)
from repro.errors import ConvergenceError, SingularJacobianError
from repro.linalg.lu_cache import FrozenFactorization


@dataclass
class NewtonOptions:
    """Tuning knobs for :func:`newton_solve`.

    Attributes
    ----------
    atol:
        Absolute tolerance on the residual infinity-norm.
    rtol:
        Relative tolerance on the Newton update (per component, relative to
        the iterate).
    max_iterations:
        Iteration budget before raising/reporting failure.
    max_step_halvings:
        Line-search depth; 0 disables damping.
    raise_on_failure:
        When True (default) a non-convergent solve raises
        :class:`repro.errors.ConvergenceError`; when False the best iterate
        is returned with ``converged=False``.
    """

    atol: float = DEFAULT_NEWTON_ATOL
    rtol: float = DEFAULT_NEWTON_RTOL
    max_iterations: int = DEFAULT_NEWTON_MAXITER
    max_step_halvings: int = 12
    raise_on_failure: bool = True


@dataclass
class NewtonResult:
    """Outcome of a Newton solve.

    Attributes
    ----------
    x:
        Final iterate.
    converged:
        Whether both residual and update tests passed.
    iterations:
        Newton iterations performed.
    residual_norm:
        Infinity-norm of the final residual.
    residual_history:
        Residual norm per iteration (including the initial guess).
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    residual_history: list = field(default_factory=list)


def _default_linear_solve(jacobian, rhs):
    """Solve ``jacobian @ dx = rhs`` by dense or sparse LU."""
    if sp.issparse(jacobian):
        return spla.spsolve(sp.csc_matrix(jacobian), rhs)
    return np.linalg.solve(np.asarray(jacobian, dtype=float), rhs)


def newton_solve(residual, jacobian, x0, options=None, linear_solver=None):
    """Solve ``residual(x) = 0`` starting from ``x0``.

    Parameters
    ----------
    residual:
        Callable ``x -> F(x)`` returning a 1-D array.
    jacobian:
        Callable ``x -> dF/dx`` returning a dense array or scipy sparse
        matrix of shape ``(n, n)``.
    x0:
        Initial guess (1-D, length n).
    options:
        :class:`NewtonOptions`; defaults are suitable for circuit residuals.
    linear_solver:
        Optional callable ``(J, rhs) -> dx`` replacing the default LU solve
        (e.g. :class:`repro.linalg.gmres.GmresLinearSolver`).

    Returns
    -------
    NewtonResult

    Raises
    ------
    ConvergenceError
        If the iteration stalls and ``options.raise_on_failure`` is True.
    SingularJacobianError
        If the linear solve produces non-finite updates.
    """
    opts = options or NewtonOptions()
    solve = linear_solver or _default_linear_solve

    x = np.array(x0, dtype=float).ravel()
    f = np.asarray(residual(x), dtype=float).ravel()
    if f.size != x.size:
        raise ValueError(
            f"residual returned length {f.size} for iterate of length {x.size}"
        )
    norm = float(np.linalg.norm(f, ord=np.inf))
    history = [norm]
    if not np.isfinite(norm):
        # A non-finite starting residual cannot contract (NaN comparisons
        # are all False): fail immediately instead of burning the whole
        # iteration budget on doomed factorisations and line searches.
        if opts.raise_on_failure:
            raise ConvergenceError(
                f"non-finite initial residual (norm {norm}) — "
                f"evaluation produced NaN/Inf at the starting point",
                iterations=0,
                residual_norm=norm,
            )
        return NewtonResult(x, False, 0, norm, history)

    for iteration in range(1, opts.max_iterations + 1):
        if norm <= opts.atol:
            return NewtonResult(x, True, iteration - 1, norm, history)

        jac = jacobian(x)
        try:
            dx = np.asarray(solve(jac, -f), dtype=float).ravel()
        except (RuntimeError, np.linalg.LinAlgError) as exc:
            # scipy raises RuntimeError on singular sparse LU; numpy raises
            # LinAlgError on singular dense solves.
            raise SingularJacobianError(
                f"linear solve failed at Newton iteration {iteration}: {exc}",
                iterations=iteration,
                residual_norm=norm,
            ) from exc
        if not np.all(np.isfinite(dx)):
            raise SingularJacobianError(
                f"non-finite Newton update at iteration {iteration} "
                f"(residual norm {norm:.3e})",
                iterations=iteration,
                residual_norm=norm,
            )

        # Line search: halve the step until the residual norm decreases
        # (or accept the full step if damping is disabled).  When the search
        # exhausts its budget, the smallest trial already evaluated is kept —
        # Newton may still escape a locally non-monotone region — rather than
        # spending another residual evaluation on a further-halved step.
        step = 1.0
        for halving in range(opts.max_step_halvings + 1):
            x_trial = x + step * dx
            f_trial = np.asarray(residual(x_trial), dtype=float).ravel()
            norm_trial = float(np.linalg.norm(f_trial, ord=np.inf))
            if np.isfinite(norm_trial) and (norm_trial < norm or norm <= opts.atol):
                break
            if halving < opts.max_step_halvings:
                step *= 0.5

        update_small = np.all(
            np.abs(step * dx) <= opts.rtol * np.maximum(np.abs(x_trial), 1.0)
        )
        x, f, norm = x_trial, f_trial, norm_trial
        history.append(norm)

        if norm <= opts.atol or (update_small and np.isfinite(norm)):
            converged = norm <= max(opts.atol, history[0] * 1e-6) or update_small
            if converged:
                return NewtonResult(x, True, iteration, norm, history)

    if opts.raise_on_failure:
        raise ConvergenceError(
            f"Newton failed to converge in {opts.max_iterations} iterations "
            f"(residual norm {norm:.3e})",
            iterations=opts.max_iterations,
            residual_norm=norm,
        )
    return NewtonResult(x, False, opts.max_iterations, norm, history)


class StaleJacobianNewton:
    """Chord (modified-Newton) driver reusing one factorised Jacobian.

    One instance lives for a whole step sequence (e.g. a transient run).
    Each :meth:`solve` iterates with the *current* factorisation — possibly
    computed several accepted steps ago — and refactorises at the current
    iterate only when

    * no factorisation exists yet (first step, or after :meth:`invalidate`);
    * the residual fails to contract by at least ``contraction`` per
      iteration (the stale Jacobian has drifted too far); or
    * an iteration goes uphill / produces a non-finite update.

    Callers must :meth:`invalidate` when the system itself changes shape or
    scaling discontinuously (the transient engine does so on significant
    ``dt`` changes).  Convergence criteria match :func:`newton_solve`:
    residual infinity-norm below ``options.atol``, or a relative update
    below ``options.rtol``.

    Parameters
    ----------
    options:
        :class:`NewtonOptions` (``raise_on_failure`` is honoured).
    contraction:
        Target per-iteration residual reduction factor; a stale
        factorisation achieving worse than this is refreshed.  The default
        0.1 keeps typical transient steps at two chord iterations.
    """

    def __init__(self, options=None, contraction=0.1):
        self.options = options or NewtonOptions()
        self.contraction = float(contraction)
        self._factor = FrozenFactorization()
        self._have = False
        self.stats = {
            "factorizations": 0,
            "iterations": 0,
            "residual_evaluations": 0,
        }

    def invalidate(self):
        """Drop the stored factorisation; the next solve refactorises."""
        self._have = False

    def adopt(self, factorization):
        """Adopt an externally factorised Jacobian (e.g. the exact step
        Jacobian a sensitivity sweep computes at every accepted point)."""
        self._factor = factorization
        self._have = True

    def _refactor(self, jacobian, x, iterations=0,
                  residual_norm=float("nan")):
        try:
            self._factor.factor(jacobian(x))
        except (RuntimeError, np.linalg.LinAlgError) as exc:
            self._have = False
            raise SingularJacobianError(
                f"chord-Newton refactorisation failed: {exc}",
                iterations=iterations,
                residual_norm=residual_norm,
            ) from exc
        self._have = True
        self.stats["factorizations"] += 1

    def solve(self, residual, jacobian, x0):
        """Solve ``residual(x) = 0`` from ``x0`` with the chord policy.

        ``jacobian`` is only called when the policy decides to refactorise.
        Returns a :class:`NewtonResult`; on failure the factorisation is
        dropped so the next attempt starts fresh.
        """
        opts = self.options
        stats = self.stats
        atol = opts.atol
        x = np.asarray(x0, dtype=float).ravel()
        f = np.asarray(residual(x), dtype=float).ravel()
        stats["residual_evaluations"] += 1
        norm = float(np.abs(f).max()) if f.size else 0.0
        history = [norm]
        if norm <= atol:
            return NewtonResult(x, True, 0, norm, history)
        if not np.isfinite(norm):
            # Mirrors newton_solve: a NaN/Inf starting residual is a dead
            # end for the chord iteration too.  The stored factorisation
            # is kept — the factors are not to blame for a bad evaluation.
            if opts.raise_on_failure:
                raise ConvergenceError(
                    f"non-finite initial residual (norm {norm}) — "
                    f"evaluation produced NaN/Inf at the starting point",
                    iterations=0,
                    residual_norm=norm,
                )
            return NewtonResult(x, False, 0, norm, history)

        fresh = False
        if not self._have:
            self._refactor(jacobian, x, residual_norm=norm)
            fresh = True

        iteration = 0
        while iteration < opts.max_iterations:
            iteration += 1
            stats["iterations"] += 1
            dx = self._factor.solve(f)
            if not np.isfinite(dx).all():
                if fresh:
                    self._have = False
                    raise SingularJacobianError(
                        f"non-finite chord-Newton update at iteration "
                        f"{iteration} (residual norm {norm:.3e})",
                        iterations=iteration,
                        residual_norm=norm,
                    )
                self._refactor(jacobian, x, iterations=iteration,
                               residual_norm=norm)
                fresh = True
                continue
            x_new = x - dx
            f_new = np.asarray(residual(x_new), dtype=float).ravel()
            stats["residual_evaluations"] += 1
            norm_new = float(np.abs(f_new).max())

            if norm_new <= atol:
                history.append(norm_new)
                return NewtonResult(x_new, True, iteration, norm_new, history)

            if not (norm_new < norm):  # uphill, stalled, or non-finite
                if not fresh:
                    # Blame staleness first: refactorise at the current
                    # iterate and retry the iteration.
                    self._refactor(jacobian, x, iterations=iteration,
                                   residual_norm=norm)
                    fresh = True
                    continue
                # Fresh Jacobian and still no descent: damped line search,
                # keeping the smallest trial if the budget is exhausted
                # (mirrors newton_solve).
                step = 0.5
                for halving in range(opts.max_step_halvings):
                    x_new = x - step * dx
                    f_new = np.asarray(residual(x_new), dtype=float).ravel()
                    stats["residual_evaluations"] += 1
                    norm_new = float(np.abs(f_new).max())
                    if np.isfinite(norm_new) and norm_new < norm:
                        break
                    if halving < opts.max_step_halvings - 1:
                        step *= 0.5

            update_small = bool(
                (
                    np.abs(x_new - x)
                    <= opts.rtol * np.maximum(np.abs(x_new), 1.0)
                ).all()
            )
            slow = norm_new > self.contraction * norm
            x, f, norm = x_new, f_new, norm_new
            history.append(norm)
            if norm <= atol or (update_small and np.isfinite(norm)):
                return NewtonResult(x, True, iteration, norm, history)
            if slow and not fresh:
                self._refactor(jacobian, x, iterations=iteration,
                               residual_norm=norm)
                fresh = True

        self.invalidate()
        if opts.raise_on_failure:
            raise ConvergenceError(
                f"chord Newton failed to converge in {opts.max_iterations} "
                f"iterations (residual norm {norm:.3e})",
                iterations=opts.max_iterations,
                residual_norm=norm,
            )
        return NewtonResult(x, False, opts.max_iterations, norm, history)
