"""Damped Newton–Raphson for square nonlinear systems.

The solver is deliberately simple and predictable: full Newton steps with a
residual-monotonicity line search (step halving).  Every engine in this
library — DC operating point, transient time steps, shooting, harmonic
balance, MPDE and WaMPDE collocation — funnels through this one kernel, so
its convergence reporting is uniform everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.constants import (
    DEFAULT_NEWTON_ATOL,
    DEFAULT_NEWTON_MAXITER,
    DEFAULT_NEWTON_RTOL,
)
from repro.errors import ConvergenceError, SingularJacobianError


@dataclass
class NewtonOptions:
    """Tuning knobs for :func:`newton_solve`.

    Attributes
    ----------
    atol:
        Absolute tolerance on the residual infinity-norm.
    rtol:
        Relative tolerance on the Newton update (per component, relative to
        the iterate).
    max_iterations:
        Iteration budget before raising/reporting failure.
    max_step_halvings:
        Line-search depth; 0 disables damping.
    raise_on_failure:
        When True (default) a non-convergent solve raises
        :class:`repro.errors.ConvergenceError`; when False the best iterate
        is returned with ``converged=False``.
    """

    atol: float = DEFAULT_NEWTON_ATOL
    rtol: float = DEFAULT_NEWTON_RTOL
    max_iterations: int = DEFAULT_NEWTON_MAXITER
    max_step_halvings: int = 12
    raise_on_failure: bool = True


@dataclass
class NewtonResult:
    """Outcome of a Newton solve.

    Attributes
    ----------
    x:
        Final iterate.
    converged:
        Whether both residual and update tests passed.
    iterations:
        Newton iterations performed.
    residual_norm:
        Infinity-norm of the final residual.
    residual_history:
        Residual norm per iteration (including the initial guess).
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    residual_history: list = field(default_factory=list)


def _default_linear_solve(jacobian, rhs):
    """Solve ``jacobian @ dx = rhs`` by dense or sparse LU."""
    if sp.issparse(jacobian):
        return spla.spsolve(sp.csc_matrix(jacobian), rhs)
    return np.linalg.solve(np.asarray(jacobian, dtype=float), rhs)


def newton_solve(residual, jacobian, x0, options=None, linear_solver=None):
    """Solve ``residual(x) = 0`` starting from ``x0``.

    Parameters
    ----------
    residual:
        Callable ``x -> F(x)`` returning a 1-D array.
    jacobian:
        Callable ``x -> dF/dx`` returning a dense array or scipy sparse
        matrix of shape ``(n, n)``.
    x0:
        Initial guess (1-D, length n).
    options:
        :class:`NewtonOptions`; defaults are suitable for circuit residuals.
    linear_solver:
        Optional callable ``(J, rhs) -> dx`` replacing the default LU solve
        (e.g. :class:`repro.linalg.gmres.GmresLinearSolver`).

    Returns
    -------
    NewtonResult

    Raises
    ------
    ConvergenceError
        If the iteration stalls and ``options.raise_on_failure`` is True.
    SingularJacobianError
        If the linear solve produces non-finite updates.
    """
    opts = options or NewtonOptions()
    solve = linear_solver or _default_linear_solve

    x = np.array(x0, dtype=float).ravel()
    f = np.asarray(residual(x), dtype=float).ravel()
    if f.size != x.size:
        raise ValueError(
            f"residual returned length {f.size} for iterate of length {x.size}"
        )
    norm = float(np.linalg.norm(f, ord=np.inf))
    history = [norm]

    for iteration in range(1, opts.max_iterations + 1):
        if norm <= opts.atol:
            return NewtonResult(x, True, iteration - 1, norm, history)

        jac = jacobian(x)
        try:
            dx = np.asarray(solve(jac, -f), dtype=float).ravel()
        except (RuntimeError, np.linalg.LinAlgError) as exc:
            # scipy raises RuntimeError on singular sparse LU; numpy raises
            # LinAlgError on singular dense solves.
            raise SingularJacobianError(
                f"linear solve failed at Newton iteration {iteration}: {exc}",
                iterations=iteration,
                residual_norm=norm,
            ) from exc
        if not np.all(np.isfinite(dx)):
            raise SingularJacobianError(
                f"non-finite Newton update at iteration {iteration} "
                f"(residual norm {norm:.3e})",
                iterations=iteration,
                residual_norm=norm,
            )

        # Line search: halve the step until the residual norm decreases
        # (or accept the full step if damping is disabled).  When the search
        # exhausts its budget, the smallest trial already evaluated is kept —
        # Newton may still escape a locally non-monotone region — rather than
        # spending another residual evaluation on a further-halved step.
        step = 1.0
        for halving in range(opts.max_step_halvings + 1):
            x_trial = x + step * dx
            f_trial = np.asarray(residual(x_trial), dtype=float).ravel()
            norm_trial = float(np.linalg.norm(f_trial, ord=np.inf))
            if np.isfinite(norm_trial) and (norm_trial < norm or norm <= opts.atol):
                break
            if halving < opts.max_step_halvings:
                step *= 0.5

        update_small = np.all(
            np.abs(step * dx) <= opts.rtol * np.maximum(np.abs(x_trial), 1.0)
        )
        x, f, norm = x_trial, f_trial, norm_trial
        history.append(norm)

        if norm <= opts.atol or (update_small and np.isfinite(norm)):
            converged = norm <= max(opts.atol, history[0] * 1e-6) or update_small
            if converged:
                return NewtonResult(x, True, iteration, norm, history)

    if opts.raise_on_failure:
        raise ConvergenceError(
            f"Newton failed to converge in {opts.max_iterations} iterations "
            f"(residual norm {norm:.3e})",
            iterations=opts.max_iterations,
            residual_norm=norm,
        )
    return NewtonResult(x, False, opts.max_iterations, norm, history)
