"""Pattern-reuse assembly of transient step Jacobians.

Every implicit integrator in :mod:`repro.transient` reduces one time step to
a Newton solve whose matrix has the fixed shape::

    J(x) = alpha * dQ(x) + beta * dF(x)

where ``alpha`` / ``beta`` are scalar integration weights and ``dQ`` / ``dF``
are the pointwise system Jacobians.  The sparsity pattern of ``J`` is fully
determined by the DAE's structural masks
(:meth:`repro.dae.base.SemiExplicitDAE.dq_structure` /
:meth:`~repro.dae.base.SemiExplicitDAE.df_structure`), which never change
during a run — so, exactly as :class:`repro.linalg.collocation.\
CollocationJacobianAssembler` does for the multi-time engines, the CSC
structure can be computed once and only the ``data`` array refreshed per
Newton iteration.

Small systems stay dense: below :attr:`TransientStepAssembler.DENSE_LIMIT`
unknowns the CSC bookkeeping costs more than it saves, so ``refresh``
returns a preallocated dense buffer instead (the downstream
:class:`repro.linalg.lu_cache.FrozenFactorization` handles both).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


class TransientStepAssembler:
    """Reusable structure for the step Jacobian ``alpha * dQ + beta * dF``.

    Parameters
    ----------
    dq_mask, df_mask:
        Boolean ``(n, n)`` supersets of the nonzero patterns of ``dq_dx`` /
        ``df_dx`` (see :meth:`repro.dae.base.SemiExplicitDAE.dq_structure`).
    dense_limit:
        Systems with ``n <= dense_limit`` (or with a nearly full union
        pattern) are assembled densely; ``None`` uses :attr:`DENSE_LIMIT`.
    """

    #: Below this size (or above ~50% fill) dense assembly + LAPACK wins
    #: over CSC bookkeeping + SuperLU.
    DENSE_LIMIT = 64

    def __init__(self, dq_mask, df_mask, dense_limit=None):
        dq_mask = np.asarray(dq_mask, dtype=bool)
        df_mask = np.asarray(df_mask, dtype=bool)
        if dq_mask.shape != df_mask.shape or dq_mask.ndim != 2 \
                or dq_mask.shape[0] != dq_mask.shape[1]:
            raise ValueError(
                f"masks must be equal square (n, n) arrays, got "
                f"{dq_mask.shape} and {df_mask.shape}"
            )
        n = dq_mask.shape[0]
        union = dq_mask | df_mask
        limit = self.DENSE_LIMIT if dense_limit is None else int(dense_limit)

        self.n = n
        self.dq_mask = dq_mask
        self.df_mask = df_mask
        self.dense = bool(n <= limit or union.mean() > 0.5)

        if self.dense:
            self._buffer = np.zeros((n, n))
            self._scratch = np.empty((n, n))
            return

        # Structural entries of the union pattern, and the gather map from
        # the natural (row-major candidate) value order into CSC data order.
        rows, cols = np.nonzero(union)
        coo = sp.coo_matrix(
            (np.arange(1, rows.size + 1, dtype=float), (rows, cols)),
            shape=(n, n),
        )
        csc = coo.tocsc()
        self._perm = csc.data.astype(np.intp) - 1
        csc.data = np.zeros(rows.size)
        self._rows = rows
        self._cols = cols
        self._matrix = csc
        # Entries of the union set where each operand is structurally zero
        # contribute nothing; mask the gathered values instead of branching.
        self._dq_sel = dq_mask[rows, cols]
        self._df_sel = df_mask[rows, cols]
        self._values = np.empty(rows.size)

    def refresh(self, alpha, dq, beta, df):
        """Recompute ``alpha * dq + beta * df`` and return the matrix.

        The returned matrix (dense array or CSC) is **owned by the
        assembler and overwritten in place** on every call — consume it
        (factorise/solve) before calling :meth:`refresh` again.

        Parameters
        ----------
        alpha, beta:
            Scalar integration weights.
        dq, df:
            Dense ``(n, n)`` pointwise Jacobians.
        """
        dq = np.asarray(dq, dtype=float)
        df = np.asarray(df, dtype=float)
        if self.dense:
            buf = self._buffer
            np.multiply(dq, alpha, out=buf)
            np.multiply(df, beta, out=self._scratch)
            buf += self._scratch
            return buf
        values = self._values
        np.multiply(dq[self._rows, self._cols], alpha, out=values)
        values[~self._dq_sel] = 0.0
        dfv = df[self._rows, self._cols]
        dfv[~self._df_sel] = 0.0
        values += beta * dfv
        np.take(values, self._perm, out=self._matrix.data)
        return self._matrix


def step_assembler_for(dae, dense_limit=None):
    """Build a :class:`TransientStepAssembler` from a DAE's structural masks."""
    return TransientStepAssembler(
        dae.dq_structure(), dae.df_structure(), dense_limit=dense_limit
    )
