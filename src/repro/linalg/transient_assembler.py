"""Pattern-reuse assembly of transient step Jacobians.

Every implicit integrator in :mod:`repro.transient` reduces one time step to
a Newton solve whose matrix has the fixed shape::

    J(x) = alpha * dQ(x) + beta * dF(x)

where ``alpha`` / ``beta`` are scalar integration weights and ``dQ`` / ``dF``
are the pointwise system Jacobians.  The sparsity pattern of ``J`` is fully
determined by the DAE's structural masks
(:meth:`repro.dae.base.SemiExplicitDAE.dq_structure` /
:meth:`~repro.dae.base.SemiExplicitDAE.df_structure`), which never change
during a run — so, exactly as :class:`repro.linalg.collocation.\
CollocationJacobianAssembler` does for the multi-time engines, the CSC
structure can be computed once and only the ``data`` array refreshed per
Newton iteration.

Small systems stay dense: below :attr:`TransientStepAssembler.DENSE_LIMIT`
unknowns the CSC bookkeeping costs more than it saves, so ``refresh``
returns a preallocated dense buffer instead (the downstream
:class:`repro.linalg.lu_cache.FrozenFactorization` handles both).

Ensembles
---------

With ``batch=B`` the assembler describes the block-diagonal step matrix of
``B`` lock-step scenarios (:mod:`repro.dae.ensemble`): ``refresh`` then
takes ``(B, n, n)`` Jacobian stacks and returns either a ``(B, n, n)``
dense stack (small members — consumed by the batched
:class:`repro.linalg.lu_cache.BlockFactorization`) or one sparse
block-diagonal CSC whose pattern — ``B`` copies of the member union —
is computed once and value-refreshed per iteration, exactly like the
single-scenario path.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


class TransientStepAssembler:
    """Reusable structure for the step Jacobian ``alpha * dQ + beta * dF``.

    Parameters
    ----------
    dq_mask, df_mask:
        Boolean ``(n, n)`` supersets of the nonzero patterns of ``dq_dx`` /
        ``df_dx`` (see :meth:`repro.dae.base.SemiExplicitDAE.dq_structure`).
    dense_limit:
        Systems with ``n <= dense_limit`` (or with a nearly full union
        pattern) are assembled densely; ``None`` uses :attr:`DENSE_LIMIT`.
    batch:
        ``None`` (the default) for a single system — ``refresh`` takes
        and returns 2-D ``(n, n)`` shapes exactly as before.  An integer
        ``B >= 1`` selects ensemble mode: ``refresh`` takes ``(B, n, n)``
        stacks and assembles the block diagonal of the per-scenario steps
        (see the module docstring).
    backend:
        Optional :class:`repro.backend.ArrayBackend`.  The dense path
        then allocates its buffers through ``backend.xp`` and accepts
        device Jacobian stacks; the sparse path is host-only (a device
        backend with a sparse pattern raises
        :class:`~repro.errors.ConfigurationError` — the ensemble engine
        routes such systems back to the host).
    """

    #: Below this size (or above ~50% fill) dense assembly + LAPACK wins
    #: over CSC bookkeeping + SuperLU.
    DENSE_LIMIT = 64

    def __init__(self, dq_mask, df_mask, dense_limit=None, batch=None,
                 backend=None):
        dq_mask = np.asarray(dq_mask, dtype=bool)
        df_mask = np.asarray(df_mask, dtype=bool)
        if dq_mask.shape != df_mask.shape or dq_mask.ndim != 2 \
                or dq_mask.shape[0] != dq_mask.shape[1]:
            raise ValueError(
                f"masks must be equal square (n, n) arrays, got "
                f"{dq_mask.shape} and {df_mask.shape}"
            )
        if batch is not None:
            batch = int(batch)
            if batch < 1:
                raise ValueError(f"batch must be >= 1, got {batch}")
        n = dq_mask.shape[0]
        union = dq_mask | df_mask
        limit = self.DENSE_LIMIT if dense_limit is None else int(dense_limit)

        self.n = n
        self.batch = batch
        self.dq_mask = dq_mask
        self.df_mask = df_mask
        self.backend = backend
        self._xp = np if backend is None else backend.xp
        # The dense/sparse decision is made at *member* level: ensembles of
        # small systems keep the (B, n, n) stack that the batched
        # factorisation of BlockFactorization consumes directly.
        self.dense = bool(n <= limit or union.mean() > 0.5)

        block_shape = (n, n) if batch is None else (batch, n, n)
        if self.dense:
            self._buffer = self._xp.zeros(block_shape)
            self._scratch = self._xp.empty(block_shape)
            return
        if backend is not None and getattr(backend, "is_device", False):
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "sparse step assembly is host-only; device backends "
                "require a dense (or near-dense) member pattern"
            )

        # Structural entries of the union pattern (one block), and the
        # gather map from the natural block-major value order into the CSC
        # data order of the (possibly block-diagonal) assembled matrix.
        rows, cols = np.nonzero(union)
        nnz = rows.size
        blocks = 1 if batch is None else batch
        offsets = n * np.arange(blocks)
        all_rows = (offsets[:, None] + rows[None, :]).ravel()
        all_cols = (offsets[:, None] + cols[None, :]).ravel()
        coo = sp.coo_matrix(
            (
                np.arange(1, blocks * nnz + 1, dtype=float),
                (all_rows, all_cols),
            ),
            shape=(blocks * n, blocks * n),
        )
        csc = coo.tocsc()
        self._perm = csc.data.astype(np.intp) - 1
        csc.data = np.zeros(blocks * nnz)
        self._rows = rows
        self._cols = cols
        self._matrix = csc
        # Entries of the union set where each operand is structurally zero
        # contribute nothing; mask the gathered values instead of branching.
        self._dq_sel = dq_mask[rows, cols]
        self._df_sel = df_mask[rows, cols]
        self._values = np.empty(nnz if batch is None else (batch, nnz))

    def refresh(self, alpha, dq, beta, df):
        """Recompute ``alpha * dq + beta * df`` and return the matrix.

        The returned matrix (dense array or CSC) is **owned by the
        assembler and overwritten in place** on every call — consume it
        (factorise/solve) before calling :meth:`refresh` again.

        Parameters
        ----------
        alpha, beta:
            Scalar integration weights (shared by every scenario of an
            ensemble — the lock-step grid has one dt).
        dq, df:
            Dense ``(n, n)`` pointwise Jacobians, or ``(batch, n, n)``
            stacks when the assembler was built in ensemble mode.
        """
        if self.dense:
            xp = self._xp
            dq = xp.asarray(dq, dtype=float)
            df = xp.asarray(df, dtype=float)
            buf = self._buffer
            xp.multiply(dq, alpha, out=buf)
            xp.multiply(df, beta, out=self._scratch)
            buf += self._scratch
            return buf
        dq = np.asarray(dq, dtype=float)
        df = np.asarray(df, dtype=float)
        values = self._values
        np.multiply(dq[..., self._rows, self._cols], alpha, out=values)
        values[..., ~self._dq_sel] = 0.0
        dfv = df[..., self._rows, self._cols]
        dfv[..., ~self._df_sel] = 0.0
        values += beta * dfv
        np.take(values.reshape(-1), self._perm, out=self._matrix.data)
        return self._matrix


def step_assembler_for(dae, dense_limit=None, batch=None, backend=None):
    """Build a :class:`TransientStepAssembler` from a DAE's structural masks."""
    return TransientStepAssembler(
        dae.dq_structure(), dae.df_structure(), dense_limit=dense_limit,
        batch=batch, backend=backend,
    )
