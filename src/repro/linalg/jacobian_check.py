"""Finite-difference Jacobian verification.

Every analytic Jacobian in the library (device stamps, transient step
residuals, WaMPDE collocation blocks) is validated against these helpers in
the test suite.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def finite_difference_jacobian(func, x, eps=None):
    """Central-difference Jacobian of ``func`` at ``x``.

    Parameters
    ----------
    func:
        Callable ``x -> F(x)`` returning a 1-D array.
    x:
        Evaluation point (1-D array).
    eps:
        Step size; defaults to ``sqrt(machine eps) * max(1, |x_i|)`` per
        component.

    Returns
    -------
    numpy.ndarray
        Dense ``(m, n)`` Jacobian estimate.
    """
    x = np.asarray(x, dtype=float).ravel()
    f0 = np.asarray(func(x), dtype=float).ravel()
    jac = np.empty((f0.size, x.size))
    base_eps = np.sqrt(np.finfo(float).eps)
    for i in range(x.size):
        step = eps if eps is not None else base_eps * max(1.0, abs(x[i]))
        x_plus = x.copy()
        x_minus = x.copy()
        x_plus[i] += step
        x_minus[i] -= step
        f_plus = np.asarray(func(x_plus), dtype=float).ravel()
        f_minus = np.asarray(func(x_minus), dtype=float).ravel()
        jac[:, i] = (f_plus - f_minus) / (2.0 * step)
    return jac


def jacobian_error(analytic, numeric):
    """Relative infinity-norm discrepancy between two Jacobians.

    Accepts sparse or dense inputs; the scale is the larger of the two
    matrices' norms (or 1 for all-zero Jacobians).
    """
    if sp.issparse(analytic):
        analytic = analytic.toarray()
    if sp.issparse(numeric):
        numeric = numeric.toarray()
    analytic = np.asarray(analytic, dtype=float)
    numeric = np.asarray(numeric, dtype=float)
    if analytic.shape != numeric.shape:
        raise ValueError(
            f"shape mismatch: analytic {analytic.shape} vs numeric {numeric.shape}"
        )
    scale = max(
        np.linalg.norm(analytic, ord=np.inf),
        np.linalg.norm(numeric, ord=np.inf),
        1.0,
    )
    return np.linalg.norm(analytic - numeric, ord=np.inf) / scale
