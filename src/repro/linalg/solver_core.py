"""Unified Newton driver for collocation nonlinear systems.

Every multi-time workload in this library — the WaMPDE/MPDE envelopes,
harmonic balance (forced and autonomous), both quasiperiodic boundary-value
solvers and the DC operating point — reduces to the same shape: a nonlinear
system ``F(z) = 0`` whose Jacobian has a fixed sparsity pattern that a
:class:`repro.linalg.collocation.CollocationJacobianAssembler` refreshes in
place per iteration.  Historically each engine hand-rolled its own closure
plumbing, linear-solver selection and stats around ``newton_solve``; this
module centralises that machinery so a new solver is a small
:class:`CollocationSystem` implementation, not a new module of duplicated
plumbing.

The pieces
----------

:class:`CollocationSystem`
    The problem contract: ``residual(z)``, ``jacobian(z)`` (expected to
    refresh assembler data in place and return the matrix), and an optional
    ``structure()`` report.  Engine steppers implement it directly;
    closure-based call sites use :class:`FunctionSystem`.

:class:`SolverCore`
    The driver.  Owns the Newton policy (``mode="full"`` via
    :func:`repro.linalg.newton.newton_solve`, ``mode="chord"`` via
    :class:`repro.linalg.newton.StaleJacobianNewton` with
    refresh-on-slow-contraction and a damped full-Newton fallback), the
    linear-solver selection (:class:`repro.linalg.lu_cache.ReusableLUSolver`
    by default, frozen-LU GMRES via ``linear_solver="gmres"`` for large
    systems, or any ``(matrix, rhs) -> x`` callable), and the uniform
    :class:`SolverStats`.  One instance lives for a whole step sequence:
    in chord mode the factorisation is carried **across** solves (envelope
    steps) exactly the way the transient engine carries it across time
    steps, and :meth:`SolverCore.note_parameters` drops it when a step
    parameter (``h``, ``omega``) moves beyond a relative threshold.

:class:`SolverStats`
    Uniform counters — solves, iterations, residual evaluations, Jacobian
    (assembler) refreshes, factorisations, fallbacks, wall time — reported
    identically by every engine and printed by the CLI.

Adding a new solver in ~50 lines
--------------------------------

Implement the contract and hand it to a core::

    from repro.linalg.collocation import CollocationJacobianAssembler
    from repro.linalg.solver_core import (
        CollocationSystem, SolverCore, SolverCoreOptions,
    )

    class MySystem(CollocationSystem):
        '''Collocation discretisation of my new analysis.'''

        def __init__(self, dae, num_points, coupling):
            self.dae = dae
            self.coupling = coupling          # (M, M) point coupling
            self.assembler = CollocationJacobianAssembler(
                num_points, dae.n,
                dq_mask=dae.dq_structure(), df_mask=dae.df_structure(),
            )

        def residual(self, z):
            states = z.reshape(-1, self.dae.n)
            q = self.dae.q_batch(states).ravel()
            f = self.dae.f_batch(states).ravel()
            return self.d_big @ q + f - self.rhs   # your discretisation

        def jacobian(self, z):
            states = z.reshape(-1, self.dae.n)
            return self.assembler.refresh(        # data-only, fixed pattern
                self.coupling,
                self.dae.dq_dx_batch(states),
                diag_inner=self.dae.df_dx_batch(states),
            )

    core = SolverCore(SolverCoreOptions(mode="chord"))
    result = core.solve(MySystem(dae, m, coupling), z0)
    print(core.stats.summary())

That is the *entire* integration surface: damping, chord refresh policy,
factorisation reuse, GMRES fallback and stats all come from the core.  For
a stepped analysis, keep one core for the whole run, call
``core.note_parameters(h=h, omega=omega)`` before each step's solve, and
the chord factorisation survives smooth steps and is dropped on jumps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields, replace

from repro.errors import ConvergenceError
from repro.linalg.lu_cache import ReusableLUSolver
from repro.linalg.newton import (
    NewtonOptions,
    StaleJacobianNewton,
    newton_solve,
)
from repro.resilience.recovery import (
    LADDER_RUNGS,
    RecoveryAttempt,
    RecoveryLog,
    RecoveryPolicy,
    default_ladder,
    extended_ladder,
)

#: Accepted Newton policies.
SOLVER_MODES = ("full", "chord")

#: Accepted named linear solvers (besides an explicit callable).
LINEAR_SOLVERS = ("lu", "gmres")


@dataclass
class SolverStats:
    """Uniform counters every :class:`SolverCore`-based engine reports.

    Attributes
    ----------
    solves:
        Nonlinear solves attempted, successful or not (1 for a
        boundary-value problem, one per attempted step for an envelope
        march).
    iterations:
        Newton/chord iterations across all solves.
    residual_evaluations:
        Calls into ``system.residual`` (includes line-search trials).
    jacobian_refreshes:
        Calls into ``system.jacobian`` — i.e. assembler data refreshes.
    factorizations:
        Matrix factorisations performed by the linear-solver backend
        (SuperLU/LAPACK; the dominant envelope cost).
    fallbacks:
        Chord solves that fell back to damped full Newton.
    wall_time_s:
        Wall-clock seconds spent inside :meth:`SolverCore.solve`.
    """

    solves: int = 0
    iterations: int = 0
    residual_evaluations: int = 0
    jacobian_refreshes: int = 0
    factorizations: int = 0
    fallbacks: int = 0
    wall_time_s: float = 0.0

    def as_dict(self):
        """Plain-dict view (stable keys, for result ``stats`` payloads)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self):
        """One-line human-readable summary (printed by the CLI)."""
        return (
            f"{self.solves} solve(s): {self.iterations} Newton iterations, "
            f"{self.residual_evaluations} residual evals, "
            f"{self.jacobian_refreshes} Jacobian refreshes, "
            f"{self.factorizations} factorizations, "
            f"{self.fallbacks} fallbacks, {self.wall_time_s:.3f} s"
        )


@dataclass
class SolverOptionsMixin:
    """Solver knobs shared by every engine options class.

    The six engine options classes (transient, both envelopes, both
    quasiperiodic solvers, DC) historically each declared their own copy
    of these fields and drifted apart (the MPDE classes lagged the WaMPDE
    ones).  They now inherit this mixin, so the shared surface is defined
    once; engines that need a different *default* (e.g. the transient
    engine's non-raising Newton) redeclare the field, which overrides the
    default while keeping the inherited position.

    Attributes
    ----------
    newton:
        Per-solve Newton tolerances/budgets; ``None`` means the engine's
        own default (engines redeclare the field with a
        ``default_factory`` when the stock default is wrong for them).
    linear_solver:
        ``None``/"lu" — direct sparse LU with factorisation reuse;
        ``"gmres"`` — frozen-LU-preconditioned GMRES for large systems;
        or any ``(matrix, rhs) -> x`` callable.  Non-default values imply
        full-Newton iterations.
    threads:
        Worker threads for the collocation Jacobian block refresh.
        ``None`` (default) lets the assembler thread large refreshes
        automatically; ``1`` forces a serial refresh (explicit opt-out).
    ladder:
        Recovery-ladder spec forwarded to the shared
        :class:`SolverCore` (``None``/``"default"``, ``"extended"``, or
        an explicit rung tuple — see :mod:`repro.resilience.recovery`).
    kernel:
        Compiled-kernel policy for engines with a generated fast path
        (see :mod:`repro.kernels`): ``"auto"`` — numba if importable,
        else the host C toolchain, else the python reference path;
        ``"numba"``/``"c"`` — require that backend
        (:class:`~repro.errors.ConfigurationError` when unavailable);
        ``"python"`` — force the reference path.  Engines without a
        kernelised loop accept and ignore the option.
    backend:
        Array backend for batched/ensemble hot paths (see
        :mod:`repro.backend`): ``None``/``"auto"`` — ``$REPRO_XP`` or the
        NumPy default; ``"numpy"``/``"cupy"``/``"strict"`` — require that
        backend (:class:`~repro.errors.ConfigurationError` when
        unavailable); or an :class:`repro.backend.ArrayBackend` instance.
        Engines without a batched path accept and ignore the option.
    """

    newton: NewtonOptions = None
    linear_solver: object = None
    threads: int | None = None
    ladder: object = None
    kernel: object = "auto"
    backend: object = None


@dataclass
class SolverCoreOptions:
    """Configuration for :class:`SolverCore`.

    Attributes
    ----------
    mode:
        ``"full"`` — a fresh Jacobian per Newton iteration (via
        :func:`repro.linalg.newton.newton_solve`); ``"chord"`` — one
        factorised Jacobian reused across iterations *and* across solves
        (via :class:`repro.linalg.newton.StaleJacobianNewton`),
        refactorising on slow contraction, divergence or
        :meth:`SolverCore.note_parameters` jumps.  A chord failure falls
        back to damped full Newton before surfacing an error.
    newton:
        Shared Newton tolerances/budgets; ``None`` (the default) means
        the stock :class:`~repro.linalg.newton.NewtonOptions` — keeping
        the default distinguishable from an explicitly passed stock
        instance lets engines substitute their own defaults only when
        the field was genuinely left unset.
    linear_solver:
        ``None``/"lu" — direct sparse/dense LU with factorisation reuse
        (:class:`repro.linalg.lu_cache.ReusableLUSolver`); ``"gmres"`` —
        frozen-complete-LU-preconditioned GMRES
        (:class:`repro.linalg.gmres.GmresLinearSolver`) for large systems;
        or any ``(matrix, rhs) -> x`` callable.  A non-default linear
        solver implies full-Newton iterations (the chord policy owns its
        own factorisation).
    contraction:
        Chord policy knob: refactorise when the residual contracts slower
        than this factor per iteration.
    invalidate_rtol:
        Relative change in any parameter registered through
        :meth:`SolverCore.note_parameters` (e.g. the envelope step ``h``
        or the local frequency ``omega``) that drops the chord
        factorisation.
    threads:
        Worker threads for the assembler block refresh.  ``None`` (the
        default) leaves the assembler's own choice in place — large
        refreshes thread automatically, see
        :class:`~repro.linalg.collocation.CollocationJacobianAssembler` —
        while an explicit integer overrides it (``1`` forces the refresh
        serial).  The core pushes the value into ``system.assembler``
        (when the system exposes its assembler under that attribute, as
        every built-in system does) at solve time.
    ladder:
        Recovery-ladder escalation policy walked when a solve fails:
        ``None``/``"default"`` — the mode's historical policy (chord with
        a damped full-Newton fallback, or full Newton with an optional
        restart); ``"extended"`` — every strategy in
        :data:`repro.resilience.recovery.LADDER_RUNGS` order (Jacobian
        refresh, GMRES retry and pseudo-transient continuation appended);
        or an explicit tuple of rung names.  Rungs that do not apply
        (chord rungs on a full-mode core, a fallback restart with no
        restart point) are skipped at run time.  Every escalation is
        recorded in :attr:`SolverCore.recovery`.
    rung_budgets:
        Optional ``{rung: attempts}`` retry budgets (default 1 each);
        a chord retry beyond the first drops the frozen factors.
    continuation_stages:
        Pseudo-transient stages marched by the ``"continuation"`` rung.
    continuation_dtau:
        Initial pseudo-time step of the ``"continuation"`` rung.
    """

    mode: str = "full"
    newton: NewtonOptions = None
    linear_solver: object = None
    contraction: float = 0.1
    invalidate_rtol: float = 0.25
    threads: int | None = None
    ladder: object = None
    rung_budgets: dict | None = None
    continuation_stages: int = 5
    continuation_dtau: float = 1e-2


class CollocationSystem:
    """Contract between a collocation nonlinear problem and the core.

    Implementations provide the residual and a Jacobian whose sparsity
    pattern is fixed across iterations (refreshed in place, typically via
    :class:`~repro.linalg.collocation.CollocationJacobianAssembler`).  The
    matrix returned by :meth:`jacobian` may be owned and mutated by the
    assembler — the core consumes (factorises) it before the next refresh.

    Systems that use an assembler should expose it as :attr:`assembler`
    so the core can wire ``options.threads`` through to the block refresh.
    """

    #: The system's CollocationJacobianAssembler, if it has one.
    assembler = None

    def residual(self, z):
        """``F(z)`` as a 1-D float array."""
        raise NotImplementedError

    def jacobian(self, z):
        """``dF/dz`` at ``z`` (dense array or scipy sparse matrix)."""
        raise NotImplementedError

    def structure(self):
        """Optional structure report (sizes, borders) for diagnostics."""
        return {}


class FunctionSystem(CollocationSystem):
    """Adapter wrapping plain ``residual``/``jacobian`` callables."""

    def __init__(self, residual, jacobian, structure=None):
        # The callables are exposed directly: SolverCore reads
        # ``system.residual`` / ``system.jacobian`` as attributes, so the
        # adapter adds no per-call frame (the transient engine builds one
        # of these per time step).
        self.residual = residual
        self.jacobian = jacobian
        self._structure = structure

    def structure(self):
        return dict(self._structure or {})


def core_from_options(options):
    """Build a :class:`SolverCore` from an engine options dataclass.

    Every engine options class (envelope, quasiperiodic, DC, ...) exposes
    some subset of ``newton``, ``newton_mode``, ``linear_solver``,
    ``threads``, ``contraction`` and ``invalidate_rtol``; missing fields
    fall back to the :class:`SolverCoreOptions` defaults.  This is the one
    place engine knobs map onto core knobs — an options class that later
    grows ``contraction``/``invalidate_rtol`` fields gets them honoured
    with no further plumbing.
    """
    defaults = SolverCoreOptions()
    return SolverCore(SolverCoreOptions(
        mode=getattr(options, "newton_mode", defaults.mode),
        newton=getattr(options, "newton", defaults.newton),
        linear_solver=getattr(options, "linear_solver",
                              defaults.linear_solver),
        contraction=getattr(options, "contraction", defaults.contraction),
        invalidate_rtol=getattr(options, "invalidate_rtol",
                                defaults.invalidate_rtol),
        threads=getattr(options, "threads", defaults.threads),
        ladder=getattr(options, "ladder", defaults.ladder),
        rung_budgets=getattr(options, "rung_budgets", defaults.rung_budgets),
        continuation_stages=getattr(options, "continuation_stages",
                                    defaults.continuation_stages),
        continuation_dtau=getattr(options, "continuation_dtau",
                                  defaults.continuation_dtau),
    ))


def _resolve_linear_solver(spec):
    """Materialise an options ``linear_solver`` spec into a callable."""
    if spec is None or spec == "lu":
        return ReusableLUSolver()
    if spec == "gmres":
        from repro.linalg.gmres import GmresLinearSolver

        return GmresLinearSolver(preconditioner="lu", freeze=True)
    if callable(spec):
        return spec
    raise ValueError(
        f"linear_solver must be None, 'lu', 'gmres' or a callable, "
        f"got {spec!r}"
    )


class SolverCore:
    """Newton driver shared by every collocation engine.

    One instance lives for a whole analysis (a single boundary-value solve,
    or a whole envelope march).  See the module docstring for the policy
    description and :class:`SolverCoreOptions` for the knobs.

    Attributes
    ----------
    stats:
        Accumulated :class:`SolverStats` across all :meth:`solve` calls.
    """

    def __init__(self, options=None):
        opts = options or SolverCoreOptions()
        if opts.mode not in SOLVER_MODES:
            raise ValueError(
                f"mode must be one of {SOLVER_MODES}, got {opts.mode!r}"
            )
        self.options = opts
        self.stats = SolverStats()
        self._params = {}
        self._counters = {"residual": 0, "jacobian": 0}
        # A custom/iterative linear solver implies full Newton: the chord
        # policy owns its own (direct) factorisation.
        custom_linear = opts.linear_solver not in (None, "lu")
        self._chord = (
            StaleJacobianNewton(
                options=opts.newton, contraction=opts.contraction
            )
            if opts.mode == "chord" and not custom_linear
            else None
        )
        self._linear_solver = _resolve_linear_solver(opts.linear_solver)
        # The damped full-Newton fallback always wants robust direct
        # factors: reuse the primary solver when it is already a direct
        # ReusableLUSolver, otherwise keep a dedicated one (e.g. when the
        # primary is GMRES or a custom callable).
        self._fallback_solver = (
            self._linear_solver
            if isinstance(self._linear_solver, ReusableLUSolver)
            else ReusableLUSolver()
        )
        # Stats dicts that carry factorisation counts, resolved once — the
        # per-solve accounting reads them on the hot path.
        sources = []
        if self._chord is not None:
            sources.append(self._chord.stats)
        solver_stats = getattr(self._linear_solver, "stats", None)
        if isinstance(solver_stats, dict):
            sources.append(solver_stats)
        if self._fallback_solver is not self._linear_solver:
            sources.append(self._fallback_solver.stats)
        self._fact_sources = tuple(sources)
        # Recovery ladder: the escalation policy solve() walks on failure,
        # plus the structured log of every escalation.  The log rides on
        # the stats object as a plain attribute (not a dataclass field),
        # so SolverStats.as_dict() payloads keep their historical keys.
        self._ladder = self._resolve_ladder(opts.ladder)
        self._policy = RecoveryPolicy(
            rungs=self._ladder,
            budgets=dict(opts.rung_budgets or {}),
            continuation_stages=opts.continuation_stages,
            continuation_dtau=opts.continuation_dtau,
        )
        self.recovery = RecoveryLog()
        self.stats.recovery = self.recovery

    def _resolve_ladder(self, spec):
        """Materialise the options ``ladder`` spec into a rung tuple."""
        if spec is None or spec == "default":
            return default_ladder(self.mode)
        if spec == "extended":
            return extended_ladder(self.mode)
        if isinstance(spec, str):
            raise ValueError(
                f"ladder must be None, 'default', 'extended' or a tuple of "
                f"rung names, got {spec!r}"
            )
        rungs = tuple(spec)
        for rung in rungs:
            if rung not in LADDER_RUNGS:
                raise ValueError(
                    f"unknown ladder rung {rung!r}; valid rungs are "
                    f"{LADDER_RUNGS}"
                )
        if not rungs:
            raise ValueError("ladder must contain at least one rung")
        return rungs

    @property
    def mode(self):
        """Effective Newton policy (``"chord"`` or ``"full"``)."""
        return "chord" if self._chord is not None else "full"

    @property
    def ladder(self):
        """The resolved recovery-ladder rung tuple."""
        return self._ladder

    def invalidate(self):
        """Drop any frozen factors; the next solve starts fresh."""
        if self._chord is not None:
            self._chord.invalidate()
        invalidate = getattr(self._linear_solver, "invalidate", None)
        if invalidate is not None:
            invalidate()

    def note_parameters(self, **params):
        """Register step parameters; invalidate frozen factors on jumps.

        Call before each step's :meth:`solve` with whatever scalars shape
        the Newton matrix discontinuously (the envelope step ``h``, the
        local frequency ``omega``).  A relative change beyond
        ``options.invalidate_rtol`` in any of them drops the chord
        factorisation, mirroring the transient engine's dt policy.
        """
        rtol = self.options.invalidate_rtol
        for key, value in params.items():
            value = float(value)
            old = self._params.get(key)
            if old is not None and abs(value - old) > rtol * abs(old):
                self.invalidate()
            self._params[key] = value

    def adopt_factorization(self, factorization):
        """Adopt an externally factorised Jacobian as the chord factor.

        Used by the sensitivity sweep, which factorises the exact step
        Jacobian at every accepted point anyway — the next step's chord
        Newton gets a perfectly fresh matrix for free.  A no-op in full
        mode (full Newton never reuses factors).
        """
        if self._chord is not None:
            self._chord.adopt(factorization)

    def export_warm_state(self):
        """Picklable warm-start state for a future core on the same problem.

        Returns the registered step parameters (``h``, ``omega``, ...) —
        the context a fresh core needs so that, after adopting a cached
        factorisation (see the engines' ``warm_start`` seams), its first
        :meth:`note_parameters` call compares against the *prior run's*
        values and keeps the adopted factors only when the new step really
        is nearby.  Plain floats only; safe to cache and ship across
        processes.
        """
        return {"params": dict(self._params)}

    def adopt_warm_state(self, state):
        """Seed registered parameters from a prior run's export.

        The inverse of :meth:`export_warm_state`: parameters land exactly
        as if this core had already stepped at them, so the jump-detection
        logic of :meth:`note_parameters` — not the caller — decides
        whether any adopted factorisation survives the first step.
        """
        self._params.update(state.get("params", {}))

    def _apply_threads(self, system):
        """Wire ``options.threads`` into the system's assembler, if any.

        ``None`` keeps the assembler's own (auto) choice; an explicit
        integer overrides it in either direction — ``threads=1`` is the
        opt-out that forces a serial refresh.
        """
        threads = self.options.threads
        if threads is None:
            return
        assembler = getattr(system, "assembler", None)
        if assembler is not None:
            assembler.threads = max(int(threads), 1)

    def solve(self, system, z0, fallback_z0=None):
        """Solve ``system.residual(z) = 0`` from ``z0``.

        Returns the :class:`repro.linalg.newton.NewtonResult`; failure
        semantics follow ``options.newton.raise_on_failure``.  All
        activity is accumulated into :attr:`stats`.

        Parameters
        ----------
        fallback_z0:
            Optional start point for the damped full-Newton fallback —
            e.g. the last accepted state of a step sequence, which is
            more robust than a failed predictor.  In chord mode the
            fallback defaults to ``z0``; in full mode a fallback runs
            *only* when ``fallback_z0`` is given (single boundary-value
            solves have no more robust point to restart from).
        """
        stats = self.stats
        chord = self._chord
        counters = self._counters
        counters["residual"] = 0
        counters["jacobian"] = 0
        if chord is not None:
            # The chord policy counts its own residual evaluations, and it
            # calls ``jacobian`` exactly once per refactorisation — so the
            # raw callables go in uninstrumented and the counts come from
            # stats deltas below.  This keeps Python-frame overhead out of
            # the per-step hot path (the transient engine solves here a
            # few hundred thousand times per run); only the rare fallback
            # pays for counting wrappers (see :meth:`_fallback`).
            residual = system.residual
            jacobian = system.jacobian
            chord_stats = chord.stats
            chord_resid_before = chord_stats["residual_evaluations"]
            chord_fact_before = chord_stats["factorizations"]
            chord_before = chord_stats["iterations"]
        else:

            def residual(z):
                counters["residual"] += 1
                return system.residual(z)

            def jacobian(z):
                counters["jacobian"] += 1
                return system.jacobian(z)

        if self.options.threads is not None:
            self._apply_threads(system)
        fact_before = 0
        for source in self._fact_sources:
            fact_before += source["factorizations"]
        fallbacks_before = stats.fallbacks
        result = None
        raised_iterations = 0
        start = time.perf_counter()
        try:
            result = self._run_ladder(residual, jacobian, z0, fallback_z0)
        except ConvergenceError as exc:
            raised_iterations = exc.iterations or 0
            raise
        finally:
            # Account even for a raising solve, so the counters stay
            # mutually consistent (every residual eval / factorisation is
            # attributed to an attempted solve and its iterations).
            stats.wall_time_s += time.perf_counter() - start
            stats.residual_evaluations += counters["residual"]
            stats.jacobian_refreshes += counters["jacobian"]
            fact_after = 0
            for source in self._fact_sources:
                fact_after += source["factorizations"]
            stats.factorizations += fact_after - fact_before
            stats.solves += 1
            newton_iterations = (
                result.iterations if result is not None else raised_iterations
            )
            if chord is not None:
                stats.residual_evaluations += (
                    chord_stats["residual_evaluations"] - chord_resid_before
                )
                stats.jacobian_refreshes += (
                    chord_stats["factorizations"] - chord_fact_before
                )
                # Count every chord iteration burned, including the ones a
                # failed attempt spent before the full-Newton fallback
                # (whose own iterations are newton_iterations; without a
                # fallback result.iterations IS the chord count, so don't
                # double-add).
                stats.iterations += (
                    chord_stats["iterations"] - chord_before
                )
                if stats.fallbacks > fallbacks_before:
                    stats.iterations += newton_iterations
            else:
                stats.iterations += newton_iterations
        return result

    def _run_ladder(self, residual, jacobian, z0, fallback_z0):
        """Walk the recovery ladder until a rung converges.

        The default ladders reproduce the historical escalation exactly
        (chord → damped full-Newton fallback; full Newton → optional
        restart from ``fallback_z0``), including the failure semantics: a
        rung that raises :class:`~repro.errors.ConvergenceError` with no
        rung left to try re-raises it (with the :class:`RecoveryLog`
        attached as ``exc.recovery``), and a final non-converged result
        under ``raise_on_failure=False`` is returned as-is.  Solves that
        converge on their first rung record nothing — the log only fills
        on escalation, keeping the hot path allocation-free.
        """
        chord = self._chord
        policy = self._policy
        attempts = []
        solve_index = self.stats.solves
        result = None
        last_exc = None
        counted = None

        def counting():
            # Chord rungs hand the raw callables around (the chord policy
            # self-counts); every full-Newton-style rung needs counting
            # wrappers in chord mode.  Full-mode callables arrive from
            # solve() pre-wrapped.
            nonlocal counted
            if counted is None:
                if chord is None:
                    counted = (residual, jacobian)
                else:
                    counters = self._counters

                    def counting_residual(z):
                        counters["residual"] += 1
                        return residual(z)

                    def counting_jacobian(z):
                        counters["jacobian"] += 1
                        return jacobian(z)

                    counted = (counting_residual, counting_jacobian)
            return counted

        # The restart point for the expensive rungs: the caller-provided
        # last-good state when there is one; in chord mode z0 doubles as
        # the restart (the historical fallback default); in full mode the
        # "full_newton" rung is skipped without an explicit restart point
        # (a single boundary-value solve has nowhere better to start).
        restart = fallback_z0
        if restart is None and chord is not None:
            restart = z0

        converged = False
        for rung in self._ladder:
            if rung in ("chord", "refresh") and chord is None:
                continue
            if rung == "full_newton" and restart is None:
                continue
            for retry in range(policy.budget(rung)):
                result, last_exc, detail = self._attempt_rung(
                    rung, retry, residual, jacobian, counting, z0,
                    restart if restart is not None else z0,
                )
                converged = result is not None and result.converged
                if attempts or not converged:
                    # A solve that succeeds on its very first attempt is
                    # not an escalation: record nothing (hot path).
                    if last_exc is not None:
                        iterations = last_exc.iterations or 0
                        residual_norm = (
                            float("nan") if last_exc.residual_norm is None
                            else last_exc.residual_norm
                        )
                    else:
                        iterations = result.iterations
                        residual_norm = result.residual_norm
                    attempts.append(RecoveryAttempt(
                        solve=solve_index,
                        rung=rung,
                        converged=converged,
                        iterations=iterations,
                        residual_norm=residual_norm,
                        detail=detail,
                    ))
                if converged:
                    break
            if converged:
                break

        if attempts:
            self.recovery.extend(attempts)
        if converged or (result is not None and last_exc is None):
            return result
        if last_exc is not None:
            last_exc.recovery = self.recovery
            raise last_exc
        raise ConvergenceError(
            f"no applicable recovery rung for this solve "
            f"(ladder {self._ladder}, mode {self.mode!r})",
            iterations=0,
            residual_norm=float("nan"),
            recovery=self.recovery,
        )

    def _attempt_rung(self, rung, retry, residual, jacobian, counting, z0,
                      restart):
        """Run one rung attempt; returns ``(result, exception, detail)``."""
        try:
            if rung == "chord":
                if retry:
                    # A retry of the chord rung implies the factors were
                    # part of the problem: drop them first.
                    self.invalidate()
                return self._chord.solve(residual, jacobian, z0), None, ""
            if rung == "refresh":
                self.invalidate()
                return (
                    self._chord.solve(residual, jacobian, z0),
                    None,
                    "chord retry with fresh factorisation",
                )
            if rung == "newton":
                result = newton_solve(
                    residual,
                    jacobian,
                    z0,
                    options=self.options.newton,
                    linear_solver=self._linear_solver,
                )
                return result, None, ""
            if rung == "full_newton":
                return self._rung_full_newton(counting, restart)
            if rung == "gmres":
                return self._rung_gmres(counting, restart)
            if rung == "continuation":
                return self._rung_continuation(counting, restart)
        except ConvergenceError as exc:
            return None, exc, str(exc)
        raise ValueError(f"unknown ladder rung {rung!r}")

    def _rung_full_newton(self, counting, z0):
        """Damped full Newton with fresh direct factorisations.

        A converged fallback's last factorisation is *adopted* as the
        chord factor instead of being discarded: the fallback paid for a
        Jacobian at (nearly) the converged state, which is exactly what
        the chord policy would refactorise next solve.  (Adoption needs
        the backend to hold reusable factors — see
        :meth:`repro.linalg.lu_cache.ReusableLUSolver.export_frozen`;
        small dense systems solve directly and skip it.)
        """
        self.stats.fallbacks += 1
        self.invalidate()
        residual, jacobian = counting()
        result = newton_solve(
            residual,
            jacobian,
            z0,
            options=self.options.newton,
            linear_solver=self._fallback_solver,
        )
        self._maybe_adopt(self._fallback_solver, result)
        return result, None, "damped full Newton from restart point"

    def _rung_gmres(self, counting, z0):
        """Full Newton through a fresh LU-preconditioned GMRES solver.

        A different linear-algebra route around a badly conditioned
        direct factorisation: the complete-LU preconditioner is rebuilt
        per call (``freeze=False``), and GMRES solves the current matrix
        to its own tolerance rather than trusting one factorisation.
        """
        from repro.linalg.gmres import GmresLinearSolver

        self.invalidate()
        residual, jacobian = counting()
        result = newton_solve(
            residual,
            jacobian,
            z0,
            options=self.options.newton,
            linear_solver=GmresLinearSolver(
                preconditioner="lu", freeze=False
            ),
        )
        return result, None, "GMRES retry with per-iteration LU preconditioner"

    def _rung_continuation(self, counting, z0):
        """Pseudo-transient continuation: the ladder's last resort.

        Embeds ``F(z) = 0`` in the artificial flow ``dz/dtau = -F(z)``
        and marches implicit-Euler steps of growing ``dtau`` from the
        restart point (see
        :func:`repro.resilience.continuation.pseudo_transient_march`);
        the stages run through plain ``newton_solve`` with the direct
        fallback solver, so the rung never recurses into the ladder.
        """
        from repro.resilience.continuation import pseudo_transient_march

        self.invalidate()
        residual, jacobian = counting()
        stage_options = replace(
            self.options.newton or NewtonOptions(), raise_on_failure=False
        )
        solver = self._fallback_solver

        def stage_solve(system, start):
            return newton_solve(
                system.residual,
                system.jacobian,
                start,
                options=stage_options,
                linear_solver=solver,
            )

        policy = self._policy
        result, trail = pseudo_transient_march(
            stage_solve,
            FunctionSystem(residual, jacobian),
            z0,
            stages=policy.continuation_stages,
            dtau=policy.continuation_dtau,
        )
        self._maybe_adopt(solver, result)
        stage_iterations = sum(r.iterations for _, r in trail)
        return result, None, (
            f"pseudo-transient continuation: {len(trail)} stage(s), "
            f"{stage_iterations} stage iteration(s), "
            f"dtau0={policy.continuation_dtau:g}"
        )

    def _maybe_adopt(self, solver, result):
        """Adopt a converged rung's last factorisation as the chord factor."""
        if result.converged and self._chord is not None:
            export = getattr(solver, "export_frozen", None)
            frozen = export() if export is not None else None
            if frozen is not None:
                self._chord.adopt(frozen)
