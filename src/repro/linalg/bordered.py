"""Bordered sparse systems.

The WaMPDE introduces one scalar unknown (the local frequency ``omega``) and
one scalar equation (the phase condition) on top of the circuit collocation
block.  The resulting Jacobian is a *bordered* matrix::

        [ A   b ] [ u     ]   [ r ]
        [ c^T d ] [ alpha ] = [ s ]

``BorderedSystem`` assembles this once per Newton iteration and solves it as
a single sparse LU; for the problem sizes in this library (a few hundred to
a few thousand unknowns) that is both robust and fast.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import SingularJacobianError


class BorderedSystem:
    """A square sparse core bordered by extra columns and rows.

    Parameters
    ----------
    core:
        Sparse or dense ``(n, n)`` matrix ``A``.
    columns:
        ``(n, k)`` array of border columns ``b``.
    rows:
        ``(k, n)`` array of border rows ``c^T``.
    corner:
        ``(k, k)`` array ``d`` coupling the border unknowns.
    """

    def __init__(self, core, columns, rows, corner):
        core = sp.csr_matrix(core)
        columns = np.atleast_2d(np.asarray(columns, dtype=float))
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        corner = np.atleast_2d(np.asarray(corner, dtype=float))
        if columns.shape[0] != core.shape[0]:
            columns = columns.T
        if rows.shape[1] != core.shape[1]:
            rows = rows.T
        n = core.shape[0]
        k = columns.shape[1]
        if core.shape != (n, n):
            raise ValueError(f"core must be square, got {core.shape}")
        if columns.shape != (n, k) or rows.shape != (k, n) or corner.shape != (k, k):
            raise ValueError(
                "inconsistent border shapes: "
                f"core {core.shape}, columns {columns.shape}, "
                f"rows {rows.shape}, corner {corner.shape}"
            )
        self.core = core
        self.columns = columns
        self.rows = rows
        self.corner = corner
        self.size = n + k
        self.border_size = k

    def assemble(self):
        """Return the full ``(n+k, n+k)`` sparse matrix in CSC form."""
        return sp.bmat(
            [
                [self.core, sp.csr_matrix(self.columns)],
                [sp.csr_matrix(self.rows), sp.csr_matrix(self.corner)],
            ],
            format="csc",
        )

    def solve(self, rhs):
        """Solve the bordered system for the stacked right-hand side."""
        rhs = np.asarray(rhs, dtype=float).ravel()
        if rhs.size != self.size:
            raise ValueError(
                f"rhs has length {rhs.size}, expected {self.size}"
            )
        matrix = self.assemble()
        solution = spla.spsolve(matrix, rhs)
        if not np.all(np.isfinite(solution)):
            raise SingularJacobianError(
                "bordered solve produced non-finite values "
                f"(matrix size {self.size})"
            )
        return solution
