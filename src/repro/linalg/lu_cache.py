"""Factorisation-reuse linear solver for fixed-pattern Newton systems.

The collocation engines hand :func:`repro.linalg.newton.newton_solve` a
Jacobian whose sparsity pattern never changes — only the numeric values do
(see :mod:`repro.linalg.collocation`).  The stock path
(``spsolve(csc_matrix(J), rhs)``) rebuilds a CSC matrix and runs a fresh
SuperLU factorisation on every iteration, and even when two consecutive
solves see the *same* matrix (predictor/corrector re-solves, memoised
Jacobians) nothing is reused.

:class:`ReusableLUSolver` implements the ``(matrix, rhs) -> x`` protocol of
``newton_solve``'s ``linear_solver`` hook and keeps, across calls:

* the CSR→CSC conversion (the structural permutation is computed once per
  pattern and replayed as a single fancy-index on the data array);
* the LU factorisation itself, reused whenever the matrix values are
  unchanged since the previous call (refactorising only on value changes);
* for dense matrices, the LAPACK LU factors under the same reuse rule.

One instance should live for the duration of one nonlinear solve — or a
whole envelope run, since the pattern is shared across steps.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import ConfigurationError


class FrozenFactorization:
    """Factor once, solve many — the kernel behind stale-Jacobian Newton.

    Unlike :class:`ReusableLUSolver` (which re-checks the matrix values on
    every call), this object factorises only when :meth:`factor` is invoked
    and then answers :meth:`solve` from the stored factors with no
    comparisons at all — the caller (e.g.
    :class:`repro.linalg.newton.StaleJacobianNewton`) owns the staleness
    policy.  Three regimes:

    * sparse input — SuperLU factors (``splu``);
    * small dense (``n <= INVERSE_LIMIT``) — the explicit inverse, making
      each solve a single tiny mat-vec (LAPACK wrapper overhead dominates
      an actual triangular solve at these sizes, and chord-Newton tolerates
      the inverse's slightly larger rounding because convergence is judged
      on the residual, not the update);
    * larger dense — cached LAPACK LU factors.

    ``solve`` accepts 1-D or 2-D right-hand sides (the sensitivity sweep
    solves all ``n`` monodromy columns against one factorisation).
    """

    #: Largest dense size for which the explicit inverse is used.
    INVERSE_LIMIT = 16

    def __init__(self):
        self._mode = None
        self._inv = None
        self._lu = None
        self._splu = None

    @property
    def ready(self):
        """Whether :meth:`factor` has been called."""
        return self._mode is not None

    def factor(self, matrix):
        """Factorise ``matrix``; snapshots everything it needs.

        Failure is atomic: a singular/unfactorisable matrix leaves the
        object *unready* (previous factors dropped) rather than silently
        answering subsequent solves with the factors of an older, entirely
        different matrix.
        """
        try:
            if sp.issparse(matrix):
                csc = matrix if sp.isspmatrix_csc(matrix) else matrix.tocsc()
                splu = spla.splu(csc)
                self._inv = self._lu = None
                self._splu = splu
                self._mode = "sparse"
                return self
            a = np.asarray(matrix, dtype=float)
            if a.shape[0] <= self.INVERSE_LIMIT:
                inv = np.linalg.inv(a)
                self._lu = self._splu = None
                self._inv = inv
                self._mode = "inverse"
            else:
                lu = sla.lu_factor(a)
                self._inv = self._splu = None
                self._lu = lu
                self._mode = "lu"
            return self
        except Exception:
            self._mode = None
            self._inv = self._lu = self._splu = None
            raise

    def solve(self, rhs):
        """Solve against the stored factors; ``rhs`` may be 1-D or 2-D."""
        if self._mode == "inverse":
            return self._inv @ rhs
        if self._mode == "lu":
            return sla.lu_solve(self._lu, rhs, check_finite=False)
        if self._mode == "sparse":
            return self._splu.solve(np.asarray(rhs, dtype=float))
        raise RuntimeError("FrozenFactorization.solve called before factor")


class BlockFactorization:
    """Factor ``B`` independent ``(n, n)`` blocks; solve all in one shot.

    The ensemble transient engine's per-scenario Newton matrices form a
    block-diagonal system that never couples scenarios, so the
    factorisation batches perfectly:

    * a ``(B, n, n)`` dense stack with ``n <= DENSE_LIMIT`` — one batched
      LU factorisation through the array backend
      (:class:`repro.backend.BatchedLinalg`): stacked ``getrf``-style
      factors, no materialised inverses, and every :meth:`solve` is a
      permutation gather plus batched substitution.  On a device backend
      the whole stack factors and solves without leaving the device;
    * a larger dense stack — per-block LAPACK LU on the host (the loop
      runs only on refactorisation, which the chord policy makes rare);
    * a sparse block-diagonal matrix (from
      :class:`repro.linalg.transient_assembler.TransientStepAssembler` in
      batch mode) — one SuperLU factorisation of the whole block diagonal
      (host only).

    ``solve`` takes and returns ``(B, n)`` right-hand sides (row ``b`` is
    scenario ``b``'s system).
    """

    #: Largest per-block dense size handled by the batched factorisation —
    #: aligned with the compiled kernels' 64-unknown dense cap.
    DENSE_LIMIT = 64
    #: Backwards-compatible alias (the old batched-inverse threshold; the
    #: inverse path itself is gone).
    INVERSE_LIMIT = DENSE_LIMIT

    def __init__(self, backend=None):
        from repro.backend import NUMPY

        self._backend = NUMPY if backend is None else backend
        self._mode = None
        self._lu = None
        self._perm = None
        self._lus = None
        self._splu = None
        self._shape = None

    @property
    def ready(self):
        """Whether :meth:`factor` has been called."""
        return self._mode is not None

    def factor(self, blocks):
        """Factorise a ``(B, n, n)`` stack or sparse block-diagonal matrix."""
        backend = self._backend
        if sp.issparse(blocks):
            if backend.is_device:
                raise ConfigurationError(
                    "sparse block-diagonal factorisation is host-only; "
                    "device backends require a dense (B, n, n) stack"
                )
            csc = blocks if sp.isspmatrix_csc(blocks) else blocks.tocsc()
            self._splu = spla.splu(csc)
            self._mode = "sparse"
            return self
        stack = backend.asarray(blocks)
        if stack.ndim != 3 or stack.shape[1] != stack.shape[2]:
            raise ValueError(
                f"blocks must be a (B, n, n) stack, got shape {stack.shape}"
            )
        self._shape = (stack.shape[0], stack.shape[1])
        if stack.shape[1] <= self.DENSE_LIMIT:
            self._lu, self._perm = backend.linalg.lu_factor(stack)
            self._mode = "batched"
        else:
            if backend.is_device:
                raise ConfigurationError(
                    f"device backends cap dense blocks at n="
                    f"{self.DENSE_LIMIT}, got n={stack.shape[1]}"
                )
            self._lus = [sla.lu_factor(block) for block in stack]
            self._mode = "lu"
        return self

    def solve(self, rhs):
        """Solve every scenario's system; ``rhs`` and the result are ``(B, n)``."""
        if self._mode == "batched":
            return self._backend.linalg.lu_solve(
                self._lu, self._perm, self._backend.asarray(rhs)
            )
        if self._mode == "lu":
            rhs = np.asarray(rhs, dtype=float)
            out = np.empty(self._shape)
            for b, lu in enumerate(self._lus):
                out[b] = sla.lu_solve(lu, rhs[b], check_finite=False)
            return out
        if self._mode == "sparse":
            rhs = np.asarray(rhs, dtype=float)
            return self._splu.solve(rhs.ravel()).reshape(rhs.shape)
        raise RuntimeError("BlockFactorization.solve called before factor")


class ReusableLUSolver:
    """LU solver with pattern-aware CSC conversion and factorisation reuse.

    ``stats["factorizations"]`` counts actual (re)factorisations — SuperLU
    ``splu``, LAPACK ``lu_factor``, or a small-dense direct ``solve`` (which
    factors internally) — so callers (:class:`repro.linalg.solver_core.\
SolverCore`) can report uniform factorisation counts; ``stats["solves"]``
    counts calls.
    """

    def __init__(self):
        self.stats = {"factorizations": 0, "solves": 0}
        # Sparse state.
        self._lu = None
        self._lu_data = None
        self._struct_indices = None
        self._struct_indptr = None
        self._struct_shape = None
        # CSR -> CSC conversion cache.
        self._csr_indices = None
        self._csr_indptr = None
        self._csr_perm = None
        self._csc_template = None
        # Dense state.
        self._dense_a = None
        self._dense_lu = None

    # -- sparse helpers ------------------------------------------------------

    def _csc_from_csr(self, matrix):
        """CSC view of a CSR matrix, caching the structural permutation."""
        if not (
            self._csr_indices is matrix.indices
            and self._csr_indptr is matrix.indptr
            and self._csc_template is not None
            and self._csc_template.shape == matrix.shape
        ):
            coo = sp.coo_matrix(
                (
                    np.arange(1, matrix.nnz + 1, dtype=float),
                    (
                        np.repeat(
                            np.arange(matrix.shape[0]),
                            np.diff(matrix.indptr),
                        ),
                        matrix.indices,
                    ),
                ),
                shape=matrix.shape,
            )
            csc = coo.tocsc()
            self._csr_perm = csc.data.astype(np.intp) - 1
            csc.data = np.empty(matrix.nnz)
            self._csc_template = csc
            self._csr_indices = matrix.indices
            self._csr_indptr = matrix.indptr
        np.take(matrix.data, self._csr_perm, out=self._csc_template.data)
        return self._csc_template

    def _same_structure(self, csc):
        return (
            self._struct_shape == csc.shape
            and self._struct_indices is not None
            and (
                self._struct_indices is csc.indices
                or (
                    self._struct_indices.size == csc.indices.size
                    and np.array_equal(self._struct_indices, csc.indices)
                    and np.array_equal(self._struct_indptr, csc.indptr)
                )
            )
        )

    def _solve_sparse(self, matrix, rhs):
        if sp.isspmatrix_csc(matrix):
            csc = matrix
        elif sp.isspmatrix_csr(matrix):
            csc = self._csc_from_csr(matrix)
        else:
            csc = matrix.tocsc()
        if not (
            self._lu is not None
            and self._same_structure(csc)
            and np.array_equal(self._lu_data, csc.data)
        ):
            self._lu = spla.splu(csc)
            self.stats["factorizations"] += 1
            self._lu_data = csc.data.copy()
            self._struct_indices = csc.indices
            self._struct_indptr = csc.indptr
            self._struct_shape = csc.shape
        return self._lu.solve(rhs)

    # -- dense helper --------------------------------------------------------

    #: Below this size the LAPACK-wrapper overhead of a cached ``lu_factor``
    #: exceeds the factorisation itself; plain ``solve`` wins.
    DENSE_CACHE_THRESHOLD = 32

    def _solve_dense(self, matrix, rhs):
        a = np.asarray(matrix, dtype=float)
        if a.shape[0] <= self.DENSE_CACHE_THRESHOLD:
            self.stats["factorizations"] += 1
            return np.linalg.solve(a, rhs)
        if not (
            self._dense_lu is not None
            and self._dense_a.shape == a.shape
            and np.array_equal(self._dense_a, a)
        ):
            self._dense_lu = sla.lu_factor(a)
            self.stats["factorizations"] += 1
            self._dense_a = a.copy()
        return sla.lu_solve(self._dense_lu, rhs)

    def export_frozen(self):
        """Snapshot the current factors as a :class:`FrozenFactorization`.

        Lets a chord policy *adopt* the factorisation a damped full-Newton
        fallback just paid for instead of discarding it (see the
        ``"full_newton"`` recovery rung of
        :class:`repro.linalg.solver_core.SolverCore`).  Returns
        ``None`` when no reusable factors are held — before the first
        solve, or in the small-dense regime where :meth:`_solve_dense`
        factors inside LAPACK ``solve`` without keeping anything.
        """
        frozen = FrozenFactorization()
        if self._lu is not None:
            frozen._splu = self._lu
            frozen._mode = "sparse"
            return frozen
        if self._dense_lu is not None:
            frozen._lu = self._dense_lu
            frozen._mode = "lu"
            return frozen
        return None

    def __call__(self, matrix, rhs):
        self.stats["solves"] += 1
        rhs = np.asarray(rhs, dtype=float).ravel()
        if sp.issparse(matrix):
            return self._solve_sparse(matrix, rhs)
        return self._solve_dense(matrix, rhs)
