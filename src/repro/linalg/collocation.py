"""Pattern-reuse assembly of spectral-collocation Jacobians.

Every multi-time engine in this library (harmonic balance, MPDE and WaMPDE
collocation) solves Newton systems whose matrix has the same shape::

    J  =  outer * ( scale * (W ⊗-blockwise) @ blockdiag(dq_i)
                    + blockdiag(df_i) )
          + blockdiag(dq_i / h)
          [ optionally bordered by extra columns/rows ]

where ``W`` is an ``(M, M)`` collocation-point coupling matrix (a Fourier
differentiation matrix, or a combination of two of them for quasiperiodic
problems) and ``dq_i`` / ``df_i`` are the ``(n, n)`` system Jacobians at
collocation point ``i``.  The product ``(W ⊗ I) @ blockdiag(A_1..A_M)`` has
the closed form ``block(i, j) = W[i, j] * A_j`` — no sparse matrix-matrix
product is needed, and the candidate entry set depends only on structural
masks that never change across Newton iterations or envelope steps.

:class:`CollocationJacobianAssembler` therefore precomputes the candidate
entries (their rows, columns and gather indices) exactly once, and each
:meth:`~CollocationJacobianAssembler.refresh` recomputes only the values —
pure vectorised NumPy — replacing the per-iteration
``scipy.sparse.block_diag`` / ``@`` / ``bmat`` pipeline that used to
dominate the envelope hot path.

Bit-compatibility with the reference pipeline is deliberate and tested: the
value computation reproduces its floating-point grouping exactly, and the
stored-entry set reproduces scipy's operand-level zero dropping (an entry
exists iff the operands that generate it are nonzero, exactly as
``csr_matrix(dense)`` conversions decide), so solvers that switched to the
assembler kept bit-identical Newton trajectories.  The stored pattern is
cached and only rebuilt on the rare iterations where an operand's exact
zero set changes.
"""

from __future__ import annotations

import os

import numpy as np
import scipy.sparse as sp


def union_block_mask(dae):
    """Structural ``(n, n)`` mask ``dq_structure | df_structure`` of a DAE.

    This is the per-collocation-point *diagonal* block pattern of a
    collocation Jacobian; see
    :meth:`repro.dae.base.SemiExplicitDAE.dq_structure`.
    """
    dq = np.asarray(dae.dq_structure(), dtype=bool)
    df = np.asarray(dae.df_structure(), dtype=bool)
    return dq | df


class CollocationJacobianAssembler:
    """Reusable structure for a (possibly bordered) collocation Jacobian.

    Off-diagonal blocks carry the ``dq`` pattern (they arise only from the
    coupling product); diagonal blocks the ``dq | df`` union.

    Parameters
    ----------
    num_points:
        Number of collocation points ``M``.
    n_vars:
        System variables ``n`` per collocation point; the core is
        ``(M*n, M*n)`` in point-major ordering.
    dq_mask, df_mask:
        Boolean ``(n, n)`` supersets of the nonzero patterns of the
        pointwise ``dq_dx`` / ``df_dx`` blocks (see
        :meth:`repro.dae.base.SemiExplicitDAE.dq_structure`).  ``None``
        means dense — always safe, never minimal.
    coupling_mask:
        Boolean ``(M, M)`` superset of the *off-diagonal* nonzero pattern
        of the coupling matrix ``W``; ``None`` means dense (correct for
        Fourier differentiation matrices).  Diagonal coupling entries are
        folded into the diagonal blocks, which always exist.
    num_border:
        Number of border columns/rows (1 for a frequency unknown + phase
        condition, ``N1`` for the quasiperiodic WaMPDE, 0 for none).
    threads:
        Worker threads for the off-diagonal block refresh (the per-block
        value computation is embarrassingly parallel over coupling pairs
        and NumPy releases the GIL inside the ufunc loops).  ``None``
        (the default) picks automatically: refreshes with at least
        ``_THREAD_AUTO_ENTRIES`` candidate off-diagonal entries use up to
        ``_THREAD_AUTO_WORKERS`` workers, smaller ones stay serial.  Pass
        ``threads=1`` to opt out explicitly (force a serial refresh) or a
        larger integer to force a worker count; small refreshes stay
        serial regardless — see ``_THREAD_MIN_ENTRIES``.  The threaded
        path writes disjoint row ranges of preallocated buffers with an
        unchanged per-entry floating-point grouping, so results are
        bit-identical to the serial path.
    """

    def __init__(self, num_points, n_vars, dq_mask=None, df_mask=None,
                 coupling_mask=None, num_border=0, threads=None):
        m = int(num_points)
        n = int(n_vars)
        k = int(num_border)
        self._executor = None
        self._executor_threads = None
        if m < 1 or n < 1 or k < 0:
            raise ValueError(
                f"need num_points >= 1, n_vars >= 1, num_border >= 0; got "
                f"({num_points}, {n_vars}, {num_border})"
            )

        def as_mask(mask, shape, name):
            if mask is None:
                return np.ones(shape, dtype=bool)
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != shape:
                raise ValueError(
                    f"{name} must have shape {shape}, got {mask.shape}"
                )
            return mask

        dq_mask = as_mask(dq_mask, (n, n), "dq_mask")
        df_mask = as_mask(df_mask, (n, n), "df_mask")
        coupling_mask = as_mask(coupling_mask, (m, m), "coupling_mask")
        diag_mask = dq_mask | df_mask

        self.num_points = m
        self.n_vars = n
        self.num_border = k
        self.core_size = m * n
        self.size = m * n + k
        self.dq_mask = dq_mask
        self.df_mask = df_mask

        pairs = np.argwhere(coupling_mask & ~np.eye(m, dtype=bool))
        self._pair_i = pairs[:, 0]
        self._pair_j = pairs[:, 1]
        self._off_r, self._off_c = np.nonzero(dq_mask)
        self._diag_r, self._diag_c = np.nonzero(diag_mask)

        if threads is None:
            # Auto policy: thread the refresh only where it demonstrably
            # pays (bit-identical either way — only wall time changes).
            off_entries = self._pair_i.size * self._off_r.size
            threads = (
                min(self._THREAD_AUTO_WORKERS, os.cpu_count() or 1)
                if off_entries >= self._THREAD_AUTO_ENTRIES
                else 1
            )
        self.threads = max(int(threads), 1)

        # Candidate (row, col) of every structural entry, in the exact order
        # refresh() lays the values out (off blocks, diag blocks, border
        # columns, border rows, corner).
        core = self.core_size
        points = np.arange(m)
        row_parts = [
            (self._pair_i[:, None] * n + self._off_r[None, :]).ravel(),
            (points[:, None] * n + self._diag_r[None, :]).ravel(),
        ]
        col_parts = [
            (self._pair_j[:, None] * n + self._off_c[None, :]).ravel(),
            (points[:, None] * n + self._diag_c[None, :]).ravel(),
        ]
        if k:
            full = np.arange(core, dtype=np.intp)
            # Border columns, one column at a time (column-major).
            row_parts.append(np.tile(full, k))
            col_parts.append(core + np.repeat(np.arange(k), core))
            # Border rows, one row at a time (row-major).
            row_parts.append(core + np.repeat(np.arange(k), core))
            col_parts.append(np.tile(full, k))
            # Corner, row-major.
            row_parts.append(core + np.repeat(np.arange(k), k))
            col_parts.append(core + np.tile(np.arange(k), k))
        self._rows = np.concatenate(row_parts)
        self._cols = np.concatenate(col_parts)
        # Segment boundaries within the candidate (natural) layout.
        n_off = self._pair_i.size * self._off_r.size
        n_diag = m * self._diag_r.size
        self._bcol_start = n_off + n_diag
        self._bcol_end = self._bcol_start + k * core
        self._corner_start = self._bcol_end + k * core
        # Head arrays of the last generically built pattern (single-border
        # case): entries of CSC columns 0..core-1, which depend only on the
        # core and border-row zero sets.  When just the border *column's*
        # zero set changes — the common case, since it holds a spectral
        # derivative whose exact zeros drift — the new pattern is the same
        # head plus a new tail, spliced without re-running COO->CSC.
        self._head = None

        # Pattern cache: which candidates were kept last time, the CSC
        # holding them and the gather map from the natural value layout
        # into csc.data order.  Iterates often alternate between a handful
        # of exact-zero configurations (e.g. a spectral derivative that is
        # exactly zero at a converged state but not mid-iteration), so
        # previously seen patterns are kept in a small dictionary.
        self._keep = None
        self._matrix = None
        self._gather = None
        self._pattern_cache = {}

    _PATTERN_CACHE_LIMIT = 32

    #: Below this many off-diagonal entries the refresh stays serial even
    #: when ``threads > 1`` (thread dispatch would dominate the arithmetic).
    _THREAD_MIN_ENTRIES = 1 << 14

    #: ``threads=None`` (auto) turns the threaded refresh on from this many
    #: candidate off-diagonal entries — 4x the serial floor, so auto-chosen
    #: refreshes are comfortably past the dispatch break-even point.
    _THREAD_AUTO_ENTRIES = 1 << 16

    #: Worker cap for the auto policy: the refresh is memory-bandwidth
    #: bound, so returns diminish quickly beyond a few workers.
    _THREAD_AUTO_WORKERS = 4

    def _get_executor(self):
        # ``threads`` may be raised after construction (the solver core
        # wires its options through system.assembler); rebuild the pool on
        # a change so worker count and chunking stay in sync.
        if (
            self._executor is not None
            and self._executor_threads != self.threads
        ):
            self._executor.shutdown(wait=False)
            self._executor = None
        if self._executor is None:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=self.threads,
                thread_name_prefix="colloc-refresh",
            )
            self._executor_threads = self.threads
        return self._executor

    def _off_blocks(self, w_off, dq_off, coupling_scale, outer_coeff):
        """Off-diagonal block values and keep mask, optionally threaded.

        Each coupling pair's entries are independent, so chunks of pairs
        are filled into disjoint row ranges of preallocated buffers; the
        per-entry floating-point grouping matches the serial path exactly,
        keeping the threaded refresh bit-identical.
        """
        pair_j = self._pair_j
        n_pairs = pair_j.size
        width = self._off_r.size
        if (
            self.threads <= 1
            or n_pairs < 2
            or n_pairs * width < self._THREAD_MIN_ENTRIES
        ):
            off = w_off[:, None] * dq_off[pair_j]
            if coupling_scale != 1.0:
                off *= coupling_scale
            if outer_coeff != 1.0:
                off *= outer_coeff
            keep = (w_off != 0.0)[:, None] & (dq_off != 0.0)[pair_j]
            return off, keep

        off = np.empty((n_pairs, width))
        keep = np.empty((n_pairs, width), dtype=bool)
        dq_nonzero = dq_off != 0.0

        def fill(chunk):
            gathered = dq_off[pair_j[chunk]]
            np.multiply(w_off[chunk, None], gathered, out=off[chunk])
            if coupling_scale != 1.0:
                off[chunk] *= coupling_scale
            if outer_coeff != 1.0:
                off[chunk] *= outer_coeff
            np.logical_and(
                (w_off[chunk] != 0.0)[:, None],
                dq_nonzero[pair_j[chunk]],
                out=keep[chunk],
            )

        bounds = np.linspace(0, n_pairs, self.threads + 1).astype(int)
        chunks = [
            slice(lo, hi) for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        list(self._get_executor().map(fill, chunks))
        return off, keep

    def _rebuild(self, keep):
        """Build or recall the CSC pattern for the kept candidate entries."""
        key = keep.tobytes()
        cached = self._pattern_cache.get(key)
        if cached is None:
            cached = self._splice_tail(keep) or self._build_pattern(keep)
            if len(self._pattern_cache) >= self._PATTERN_CACHE_LIMIT:
                self._pattern_cache.pop(next(iter(self._pattern_cache)))
            self._pattern_cache[key] = cached
        self._matrix, self._gather = cached
        self._keep = keep

    def _build_pattern(self, keep):
        kept_idx = np.nonzero(keep)[0]
        coo = sp.coo_matrix(
            (
                np.arange(1, kept_idx.size + 1, dtype=float),
                (self._rows[kept_idx], self._cols[kept_idx]),
            ),
            shape=(self.size, self.size),
        )
        csc = coo.tocsc()
        if csc.data.size != kept_idx.size:
            raise ValueError(
                "duplicate entries in the collocation pattern "
                f"({kept_idx.size} generated, {csc.data.size} unique)"
            )
        # csc.data[p] is the (1-based) natural position of entry p.
        gather = kept_idx[csc.data.astype(np.intp) - 1]
        csc.data = np.zeros(kept_idx.size)
        if self.num_border == 1:
            head_len = int(csc.indptr[self.core_size])
            self._head = (
                keep[: self._bcol_start].copy(),
                keep[self._bcol_end:self._corner_start].copy(),
                keep[self._corner_start:].copy(),
                csc.indices[:head_len].copy(),
                gather[:head_len].copy(),
                csc.indptr[: self.core_size + 1].copy(),
            )
        return csc, gather

    def _splice_tail(self, keep):
        """New pattern differing from the cached head only in the border
        column: splice the head arrays with the new final-column tail."""
        if self.num_border != 1 or self._head is None:
            return None
        head_keep, brow_keep, corner_keep, head_indices, head_gather, \
            head_indptr = self._head
        if not (
            np.array_equal(keep[: self._bcol_start], head_keep)
            and np.array_equal(
                keep[self._bcol_end:self._corner_start], brow_keep
            )
            and np.array_equal(keep[self._corner_start:], corner_keep)
        ):
            return None
        bcol_rows = np.nonzero(keep[self._bcol_start:self._bcol_end])[0]
        corner_rows = np.nonzero(corner_keep)[0]
        indices = np.concatenate(
            [head_indices, bcol_rows, self.core_size + corner_rows]
        )
        gather = np.concatenate(
            [
                head_gather,
                self._bcol_start + bcol_rows,
                self._corner_start + corner_rows,
            ]
        )
        indptr = np.empty(self.size + 1, dtype=head_indptr.dtype)
        indptr[: self.core_size + 1] = head_indptr
        indptr[self.core_size + 1] = indices.size
        csc = sp.csc_matrix(
            (np.zeros(indices.size), indices, indptr),
            shape=(self.size, self.size),
        )
        return csc, gather

    def refresh(self, coupling, dq_blocks, diag_inner=None, coupling_scale=1.0,
                outer_coeff=1.0, diag_outer=None, border_columns=None,
                border_rows=None, corner=None):
        """Recompute the numeric values and return the assembled matrix.

        The assembled core is

            outer_coeff * ( coupling_scale * ((W ⊗) blockdiag(dq))
                            + blockdiag(diag_inner) )
            + blockdiag(diag_outer)

        evaluated in exactly this floating-point grouping — matching, bit
        for bit, the reference ``bd(dq/h) + outer*(scale*(D_big @ bd(dq)) +
        bd(df))`` that the engines previously built with sparse products.

        The returned CSC matrix is **owned by the assembler and mutated in
        place** on every call — consume it (factorise/solve) before calling
        :meth:`refresh` again.

        Parameters
        ----------
        coupling:
            Dense ``(M, M)`` coupling matrix ``W`` (e.g. a Fourier
            differentiation matrix).
        dq_blocks:
            ``(M, n, n)`` stacked pointwise ``dq_dx`` Jacobians.
        diag_inner:
            Optional ``(M, n, n)`` blocks added to the block diagonal
            *inside* the ``outer_coeff`` factor (typically ``df_dx``).
        coupling_scale:
            Scalar multiplying the coupling product (e.g. the local
            frequency ``omega``).
        outer_coeff:
            Scalar multiplying coupling product + ``diag_inner`` (e.g. the
            integrator's implicitness weight).
        diag_outer:
            Optional ``(M, n, n)`` blocks added to the block diagonal
            outside the ``outer_coeff`` factor (typically ``dq_dx / h`` —
            the caller performs the division so the rounding matches).
        border_columns:
            ``(M*n, k)`` border columns (required when ``num_border > 0``).
        border_rows:
            ``(k, M*n)`` border rows.
        corner:
            ``(k, k)`` corner block; defaults to zeros.
        """
        m, n = self.num_points, self.n_vars
        coupling = np.asarray(coupling, dtype=float)
        if coupling.shape != (m, m):
            raise ValueError(
                f"coupling must be ({m}, {m}), got {coupling.shape}"
            )
        dq_blocks = np.asarray(dq_blocks, dtype=float)
        if dq_blocks.shape != (m, n, n):
            raise ValueError(
                f"dq_blocks must be ({m}, {n}, {n}), got {dq_blocks.shape}"
            )

        dq_off = dq_blocks[:, self._off_r, self._off_c]    # (M, nnz_off)
        dq_diag = dq_blocks[:, self._diag_r, self._diag_c]  # (M, nnz_diag)
        w_off = coupling[self._pair_i, self._pair_j]
        w_diag = np.diagonal(coupling)

        # Which candidates the sparse reference pipeline would store: an
        # entry exists iff some generating operand is nonzero (scipy drops
        # exact zeros when densifying operands, but keeps entries whose
        # *result* happens to round to zero).
        off, keep_off = self._off_blocks(
            w_off, dq_off, coupling_scale, outer_coeff
        )
        diag = w_diag[:, None] * dq_diag
        keep_diag = (w_diag != 0.0)[:, None] & (dq_diag != 0.0)
        if coupling_scale != 1.0:
            diag *= coupling_scale
        if diag_inner is not None:
            diag_inner = np.asarray(diag_inner, dtype=float)
            inner = diag_inner[:, self._diag_r, self._diag_c]
            diag += inner
            keep_diag = keep_diag | (inner != 0.0)
        if outer_coeff != 1.0:
            diag *= outer_coeff
        if diag_outer is not None:
            diag_outer = np.asarray(diag_outer, dtype=float)
            outer = diag_outer[:, self._diag_r, self._diag_c]
            diag += outer
            keep_diag = keep_diag | (outer != 0.0)

        if self.num_border == 0:
            if border_columns is not None or border_rows is not None:
                raise ValueError("assembler was built without a border")
            natural = np.concatenate([off.ravel(), diag.ravel()])
            keep = np.concatenate([keep_off.ravel(), keep_diag.ravel()])
        else:
            k = self.num_border
            if border_columns is None or border_rows is None:
                raise ValueError(
                    f"assembler was built with num_border={k}; border_columns "
                    f"and border_rows are required"
                )
            columns = np.asarray(border_columns, dtype=float).reshape(
                self.core_size, k
            )
            rows = np.asarray(border_rows, dtype=float).reshape(
                k, self.core_size
            )
            if corner is None:
                corner = np.zeros((k, k))
            corner = np.asarray(corner, dtype=float).reshape(k, k)
            natural = np.concatenate(
                [
                    off.ravel(),
                    diag.ravel(),
                    columns.T.ravel(),
                    rows.ravel(),
                    corner.ravel(),
                ]
            )
            keep = natural != 0.0
            keep[: off.size] = keep_off.ravel()
            keep[off.size:off.size + diag.size] = keep_diag.ravel()

        if self._keep is None or not np.array_equal(self._keep, keep):
            self._rebuild(keep)
        np.take(natural, self._gather, out=self._matrix.data)
        return self._matrix
