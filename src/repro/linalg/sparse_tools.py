"""Sparse assembly helpers for multi-time collocation Jacobians."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def as_csr(matrix):
    """Return ``matrix`` as CSR, accepting dense arrays and sparse types."""
    if sp.issparse(matrix):
        return matrix.tocsr()
    return sp.csr_matrix(np.asarray(matrix, dtype=float))


def block_diagonal_expand(blocks):
    """Stack a sequence of equally-sized dense blocks into a block-diagonal CSR.

    Used for pointwise device Jacobians ``dq/dx`` and ``df/dx`` evaluated at
    each collocation point: ``blocks[i]`` is the ``(n, n)`` Jacobian at grid
    point ``i`` and the result acts on the stacked vector
    ``[x(t_0); x(t_1); ...]``.
    """
    blocks = [np.asarray(block, dtype=float) for block in blocks]
    if not blocks:
        raise ValueError("block_diagonal_expand needs at least one block")
    shape = blocks[0].shape
    for block in blocks:
        if block.shape != shape:
            raise ValueError(
                f"all blocks must share shape {shape}, got {block.shape}"
            )
    return sp.block_diag(blocks, format="csr")


def kron_diffmat(diffmat, n_vars, ordering="point"):
    """Expand a collocation differentiation matrix to act on stacked vectors.

    Parameters
    ----------
    diffmat:
        ``(N, N)`` differentiation matrix along the periodic axis.
    n_vars:
        Number of system variables at each collocation point.
    ordering:
        ``"point"``  — unknowns stacked point-major ``[x(t_0); x(t_1); ...]``
        (each block of length ``n_vars``); expansion is ``D ⊗ I``.
        ``"variable"`` — unknowns stacked variable-major
        ``[x_0(t_*); x_1(t_*); ...]``; expansion is ``I ⊗ D``.
    """
    diffmat = np.asarray(diffmat, dtype=float)
    if diffmat.ndim != 2 or diffmat.shape[0] != diffmat.shape[1]:
        raise ValueError(f"diffmat must be square, got shape {diffmat.shape}")
    eye = sp.identity(n_vars, format="csr")
    if ordering == "point":
        return sp.kron(sp.csr_matrix(diffmat), eye, format="csr")
    if ordering == "variable":
        return sp.kron(eye, sp.csr_matrix(diffmat), format="csr")
    raise ValueError(f"unknown ordering {ordering!r}")
