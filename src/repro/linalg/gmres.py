"""Iterative linear solvers for large collocation systems.

The paper notes that "the use of iterative linear techniques [Saa96] enables
large systems to be handled efficiently".  For the circuit sizes exercised
here direct sparse LU is usually fastest, but :class:`GmresLinearSolver`
provides the matrix-free-style alternative: restarted GMRES with an ILU
preconditioner.  Both classes implement the ``(matrix, rhs) -> solution``
callable protocol expected by :func:`repro.linalg.newton.newton_solve`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import ConvergenceError


class DirectLinearSolver:
    """Sparse (or dense) LU solve; the library default, stated explicitly."""

    def __call__(self, matrix, rhs):
        if sp.issparse(matrix):
            return spla.spsolve(sp.csc_matrix(matrix), rhs)
        return np.linalg.solve(np.asarray(matrix, dtype=float), rhs)


class GmresLinearSolver:
    """Restarted GMRES with optional ILU preconditioning.

    Parameters
    ----------
    rtol:
        Relative residual tolerance passed to scipy's GMRES.
    restart:
        Krylov subspace size between restarts.
    maxiter:
        Maximum number of outer iterations.
    use_ilu:
        Build an incomplete-LU preconditioner from the matrix (recommended;
        plain GMRES stagnates on stiff circuit Jacobians).
    fill_factor:
        ILU fill factor; larger is closer to a direct factorisation.
    """

    def __init__(self, rtol=1e-10, restart=60, maxiter=200, use_ilu=True,
                 fill_factor=10.0):
        self.rtol = float(rtol)
        self.restart = int(restart)
        self.maxiter = int(maxiter)
        self.use_ilu = bool(use_ilu)
        self.fill_factor = float(fill_factor)

    def __call__(self, matrix, rhs):
        matrix = sp.csc_matrix(matrix)
        rhs = np.asarray(rhs, dtype=float).ravel()

        preconditioner = None
        if self.use_ilu:
            try:
                ilu = spla.spilu(matrix, fill_factor=self.fill_factor)
                preconditioner = spla.LinearOperator(
                    matrix.shape, matvec=ilu.solve
                )
            except RuntimeError:
                # Structurally singular ILU: fall back to unpreconditioned
                # GMRES rather than failing the whole Newton iteration.
                preconditioner = None

        solution, info = spla.gmres(
            matrix,
            rhs,
            rtol=self.rtol,
            atol=0.0,
            restart=self.restart,
            maxiter=self.maxiter,
            M=preconditioner,
        )
        if info != 0:
            raise ConvergenceError(
                f"GMRES failed with info={info} "
                f"(matrix size {matrix.shape[0]}, rtol {self.rtol:g})"
            )
        return solution
