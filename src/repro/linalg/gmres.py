"""Iterative linear solvers for large collocation and transient systems.

The paper notes that "the use of iterative linear techniques [Saa96] enables
large systems to be handled efficiently".  For the circuit sizes exercised
here direct sparse LU is usually fastest, but :class:`GmresLinearSolver`
provides the matrix-free-style alternative: restarted GMRES with an ILU —
or, for Newton sequences whose matrix drifts slowly, a *frozen complete LU*
— preconditioner.  Both classes implement the ``(matrix, rhs) -> solution``
callable protocol expected by :func:`repro.linalg.newton.newton_solve`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import ConvergenceError


class DirectLinearSolver:
    """Sparse (or dense) LU solve; the library default, stated explicitly."""

    def __call__(self, matrix, rhs):
        if sp.issparse(matrix):
            return spla.spsolve(sp.csc_matrix(matrix), rhs)
        return np.linalg.solve(np.asarray(matrix, dtype=float), rhs)


class GmresLinearSolver:
    """Restarted GMRES with ILU or frozen-LU preconditioning.

    Two preconditioning regimes:

    * ``preconditioner="ilu"`` (the historical default) builds an
      incomplete LU from *each* matrix handed in — robust, but pays a
      factorisation per call.
    * ``preconditioner="lu"`` with ``freeze=True`` builds one *complete*
      sparse LU from the first matrix and keeps it across calls: on the
      matrix it was built from GMRES converges in one iteration (the
      preconditioned operator is the identity), and as the Newton sequence
      drifts the frozen factors stay an excellent preconditioner while the
      system is still solved *exactly* for the current matrix.  This is the
      large-circuit path of the stale-Jacobian transient engine: full
      Newton accuracy at roughly one factorisation per many iterations.
      Call :meth:`invalidate` when the matrix changes abruptly (the
      transient engine does so on step-size changes); a convergence failure
      automatically refreshes the frozen factors and retries once before
      raising.

    Parameters
    ----------
    rtol:
        Relative residual tolerance passed to scipy's GMRES.
    restart:
        Krylov subspace size between restarts.
    maxiter:
        Maximum number of outer iterations.
    use_ilu:
        Back-compatible alias: ``use_ilu=False`` is ``preconditioner=None``.
    fill_factor:
        ILU fill factor; larger is closer to a direct factorisation.
    preconditioner:
        ``"ilu"``, ``"lu"`` or ``None``; default derives from ``use_ilu``.
    freeze:
        Keep the preconditioner factors across calls (recommended with
        ``"lu"``); the factors are rebuilt on shape change, on
        :meth:`invalidate`, or after a convergence failure.
    """

    def __init__(self, rtol=1e-10, restart=60, maxiter=200, use_ilu=True,
                 fill_factor=10.0, preconditioner=None, freeze=False):
        self.rtol = float(rtol)
        self.restart = int(restart)
        self.maxiter = int(maxiter)
        self.fill_factor = float(fill_factor)
        if preconditioner is None and use_ilu:
            preconditioner = "ilu"
        if preconditioner not in (None, "ilu", "lu"):
            raise ValueError(
                f"preconditioner must be None, 'ilu' or 'lu', "
                f"got {preconditioner!r}"
            )
        self.preconditioner = preconditioner
        self.freeze = bool(freeze)
        self._frozen_operator = None
        self._frozen_shape = None
        self.stats = {"factorizations": 0, "solves": 0, "refreshes": 0}

    def invalidate(self):
        """Drop any frozen preconditioner factors."""
        self._frozen_operator = None
        self._frozen_shape = None

    def _build_preconditioner(self, matrix):
        if self.preconditioner is None:
            return None
        try:
            if self.preconditioner == "lu":
                factors = spla.splu(matrix)
            else:
                factors = spla.spilu(matrix, fill_factor=self.fill_factor)
        except RuntimeError:
            # Structurally singular factorisation: fall back to
            # unpreconditioned GMRES rather than failing the whole Newton
            # iteration.
            return None
        self.stats["factorizations"] += 1
        return spla.LinearOperator(matrix.shape, matvec=factors.solve)

    def _get_preconditioner(self, matrix):
        if not self.freeze:
            return self._build_preconditioner(matrix)
        if (
            self._frozen_operator is None
            or self._frozen_shape != matrix.shape
        ):
            self._frozen_operator = self._build_preconditioner(matrix)
            self._frozen_shape = matrix.shape
        return self._frozen_operator

    def _gmres(self, matrix, rhs, preconditioner):
        solution, info = spla.gmres(
            matrix,
            rhs,
            rtol=self.rtol,
            atol=0.0,
            restart=self.restart,
            maxiter=self.maxiter,
            M=preconditioner,
        )
        return solution, info

    def __call__(self, matrix, rhs):
        matrix = sp.csc_matrix(matrix)
        rhs = np.asarray(rhs, dtype=float).ravel()
        self.stats["solves"] += 1

        preconditioner = self._get_preconditioner(matrix)
        solution, info = self._gmres(matrix, rhs, preconditioner)
        if info != 0 and self.freeze and self.preconditioner is not None:
            # The frozen factors have drifted too far from the current
            # matrix: refresh them once and retry before giving up.
            self.invalidate()
            self.stats["refreshes"] += 1
            preconditioner = self._get_preconditioner(matrix)
            solution, info = self._gmres(matrix, rhs, preconditioner)
        if info != 0:
            raise ConvergenceError(
                f"GMRES failed with info={info} "
                f"(matrix size {matrix.shape[0]}, rtol {self.rtol:g})"
            )
        return solution
