"""Numerical linear algebra and nonlinear solvers.

This package hosts the Newton–Raphson kernel shared by every engine in the
library (DC, transient, shooting, harmonic balance, MPDE, WaMPDE), helpers
for bordered sparse systems (a square core plus extra rows/columns, used by
the WaMPDE's frequency unknown + phase condition), and Jacobian verification
utilities used throughout the test suite.
"""

from repro.linalg.newton import (
    NewtonOptions,
    NewtonResult,
    StaleJacobianNewton,
    newton_solve,
)
from repro.linalg.solver_core import (
    CollocationSystem,
    FunctionSystem,
    SolverCore,
    SolverCoreOptions,
    SolverStats,
    core_from_options,
)
from repro.linalg.bordered import BorderedSystem
from repro.linalg.sparse_tools import (
    block_diagonal_expand,
    kron_diffmat,
    as_csr,
)
from repro.linalg.collocation import CollocationJacobianAssembler, union_block_mask
from repro.linalg.transient_assembler import TransientStepAssembler
from repro.linalg.lu_cache import FrozenFactorization, ReusableLUSolver
from repro.linalg.gmres import GmresLinearSolver, DirectLinearSolver
from repro.linalg.jacobian_check import finite_difference_jacobian, jacobian_error

__all__ = [
    "NewtonOptions",
    "NewtonResult",
    "StaleJacobianNewton",
    "newton_solve",
    "CollocationSystem",
    "FunctionSystem",
    "SolverCore",
    "SolverCoreOptions",
    "SolverStats",
    "core_from_options",
    "BorderedSystem",
    "block_diagonal_expand",
    "kron_diffmat",
    "as_csr",
    "CollocationJacobianAssembler",
    "union_block_mask",
    "TransientStepAssembler",
    "FrozenFactorization",
    "ReusableLUSolver",
    "GmresLinearSolver",
    "DirectLinearSolver",
    "finite_difference_jacobian",
    "jacobian_error",
]
