"""Command-line interface: regenerate the paper's experiments from a shell.

Usage::

    python -m repro vco --variant vacuum     # Figs 7-9 series
    python -m repro vco --variant air        # Figs 10-11 series
    python -m repro fm                        # §3 signal-representation story
    python -m repro phase-error               # Fig 12 + speedup (slow)
    python -m repro info                      # calibration summary

Each command prints the same text tables the benchmark harness produces
and optionally writes CSV via ``--csv DIR``.

The CLI is a thin client over :mod:`repro.api`: each subcommand builds
the matching :class:`~repro.api.requests.AnalysisRequest` and executes
it through :func:`repro.api.run` — or through a
:class:`~repro.service.SimulationService` worker pool when ``--workers``
is given — so a shell invocation and a programmatic ``api.run(request)``
produce bit-identical results.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_solver_args(parser):
    """Attach the shared solver-core knobs to a subcommand parser."""
    parser.add_argument(
        "--newton", choices=("full", "chord"), default=None,
        help="Newton policy: 'chord' reuses one factorised Jacobian "
             "across iterations and envelope steps (engine default), "
             "'full' refactorises every iteration",
    )
    parser.add_argument(
        "--linear-solver", dest="linear_solver",
        choices=("lu", "gmres"), default=None,
        help="linear solver: direct sparse LU with factorisation reuse "
             "(default) or frozen-LU-preconditioned GMRES (large circuits)",
    )
    parser.add_argument(
        "--threads", type=int, default=None,
        help="worker threads for the collocation Jacobian refresh "
             "(default: automatic — large refreshes thread themselves; "
             "pass 1 to force a serial refresh)",
    )
    parser.add_argument(
        "--recovery", choices=("default", "extended"), default=None,
        help="solver recovery ladder: 'default' retries a failed solve "
             "with damped full Newton only, 'extended' escalates through "
             "Jacobian refresh, GMRES retry and pseudo-transient "
             "continuation before giving up",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="execute through the simulation service with N worker "
             "processes (default 0: run in-process; results are "
             "identical either way)",
    )


def _execute(args, request):
    """Run ``request`` through the unified API.

    In-process by default; through a :class:`SimulationService` worker
    pool when ``--workers N`` was given.  Requests that cannot cross the
    process boundary (closure factories) fall back to inline execution
    inside the service, so the output is the same either way.
    """
    from repro import api

    workers = int(getattr(args, "workers", 0) or 0)
    if workers <= 0:
        return api.run(request)
    from repro.service import SimulationService

    with SimulationService(workers=workers) as service:
        job = service.submit(request)
        return service.result(job.job_id)


def _envelope_options(args, **kwargs):
    """Build WampdeEnvelopeOptions from the shared solver-core flags."""
    from repro.wampde import WampdeEnvelopeOptions

    if args.newton == "chord" and args.linear_solver == "gmres":
        # The chord policy owns its own direct factorisation; an iterative
        # linear solver would silently demote it to full Newton.  Refuse
        # the explicit contradiction instead.
        raise SystemExit(
            "error: --newton chord cannot be combined with "
            "--linear-solver gmres (the chord policy factorises directly); "
            "drop one of the two flags"
        )
    options = WampdeEnvelopeOptions(**kwargs)
    if args.newton:
        options.newton_mode = args.newton
    if args.linear_solver:
        options.linear_solver = args.linear_solver
        if args.newton is None and args.linear_solver == "gmres":
            # GMRES implies full Newton; make the effective mode explicit
            # rather than relying on the core's silent demotion.  An
            # explicit "lu" is the default direct solver and keeps chord.
            options.newton_mode = "full"
    options.threads = args.threads
    if getattr(args, "recovery", None):
        options.ladder = args.recovery
    if getattr(args, "checkpoint_every", 0):
        options.checkpoint_every = args.checkpoint_every
    if getattr(args, "checkpoint_path", None):
        options.checkpoint_path = args.checkpoint_path
    return options


def _print_solver_stats(stats):
    """Print the uniform SolverStats summary of a result's stats dict."""
    from repro.linalg.solver_core import SolverStats

    solver = (stats or {}).get("solver")
    if solver:
        print(f"solver: {SolverStats(**solver).summary()}")
    kernel = (stats or {}).get("kernel")
    if kernel and kernel.get("mode", "python") != "python":
        extra = ""
        if "compiled_steps" in kernel:
            extra = (f", {kernel['compiled_steps']} compiled / "
                     f"{kernel.get('python_steps', 0)} python step(s)")
        if kernel.get("reason"):
            # A mid-run handback: part of the march fell back to python.
            extra += f"; {kernel['reason']}"
        print(f"kernel: {kernel['mode']} "
              f"(requested {kernel.get('requested', 'auto')}, "
              f"compile {kernel.get('compile_time_s', 0.0):.3f}s{extra})")
    elif kernel and kernel.get("requested") != "python":
        # Never fall back to the slow path silently: say why the run
        # stayed python even when the user didn't ask for a backend.
        print(f"kernel: python ({kernel.get('reason', 'not eligible')})")
    recovery = (stats or {}).get("recovery")
    if recovery and recovery.get("escalated_solves"):
        rungs = ", ".join(
            f"{rung}x{count}"
            for rung, count in sorted(recovery["rung_counts"].items())
        )
        print(f"recovery: {recovery['escalated_solves']} escalated "
              f"solve(s), {recovery['total_attempts']} ladder attempt(s): "
              f"{rungs}")


def _cmd_info(args):
    """Print the calibrated VCO parameters and tuning anchors."""
    from repro.circuits.library import F_NOMINAL, T_NOMINAL, VcoParams
    from repro.utils import format_table

    for name, params in (("vacuum", VcoParams.vacuum()),
                         ("air", VcoParams.air())):
        rows = [
            ["tank inductance [H]", params.inductance],
            ["varactor C0 [F]", params.c0],
            ["negative conductance g1 [S]", params.g1],
            ["cubic coefficient g3 [S/V^2]", params.g3],
            ["plate mass [kg]", params.mass],
            ["spring constant [N/m]", params.stiffness],
            ["damping [N s/m]", params.damping],
            ["actuation gain [N/V^2]", params.force_gain],
            ["control offset / amplitude [V]",
             f"{params.control_offset} / {params.control_amplitude}"],
            ["control period [s]", params.control_period],
            ["static f(1.5 V) [MHz]", params.static_frequency(1.5) / 1e6],
        ]
        print(format_table(["parameter", "value"], rows,
                           title=f"MEMS VCO — {name} calibration"))
        print()
    print(f"nominal oscillation: {F_NOMINAL/1e6:.3f} MHz "
          f"(period {T_NOMINAL*1e6:.4f} us)")
    return 0


def _run_tuning_sweep(args):
    """Tuning-curve sweep over the control voltage (paper Figs 7/10 law).

    ``--ensemble`` (the default) settles every control voltage in one
    lock-step batched transient and refines each point with autonomous HB;
    ``--no-ensemble`` runs classic point-by-point continuation.  Prints
    the per-scenario SolverStats either way.
    """
    from dataclasses import replace

    from repro.api import SweepRequest
    from repro.circuits.library import MemsVcoDae, T_NOMINAL, VcoParams
    from repro.linalg.solver_core import SolverStats
    from repro.utils import format_table, write_csv

    if (args.newton or args.linear_solver or args.threads is not None
            or args.recovery or args.checkpoint_every or args.resume_from):
        # The sweep's solves are the batched ensemble chord loop plus
        # per-point HB with its own defaults; silently ignoring explicit
        # solver flags would be worse than refusing them.
        raise SystemExit(
            "error: --newton/--linear-solver/--threads/--recovery/"
            "--checkpoint-every/--resume-from configure the envelope run "
            "and are not supported with --sweep"
        )
    params = VcoParams.vacuum() if args.variant == "vacuum" else \
        VcoParams.air()
    values = np.linspace(args.sweep_min, args.sweep_max, args.sweep)

    def factory(vc):
        return MemsVcoDae(
            replace(params, control_offset=vc), constant_control=True
        )

    def stacked_factory(stack):
        return MemsVcoDae(
            replace(params, control_offset=np.asarray(stack)),
            constant_control=True,
        )

    method = "ensemble" if args.ensemble else "continuation"
    sweep = _execute(args, SweepRequest(
        dae_factory=factory, values=values, period_guess=T_NOMINAL,
        num_t1=args.num_t1, method=method,
        stacked_factory=stacked_factory,
        backend=getattr(args, "backend", None),
    ))
    print(format_table(
        ["Vc [V]", "frequency [MHz]", "amplitude [Vpp]"],
        [[v, f / 1e6, a] for v, f, a in
         zip(sweep.values, sweep.frequencies, sweep.amplitudes)],
        title=f"{args.variant} VCO tuning curve ({method}, "
              f"{values.size} points)",
    ))
    for value, stats in zip(sweep.values, sweep.solver_stats):
        print(f"scenario Vc={value:.3f} V: "
              f"{SolverStats(**stats).summary()}")
    if args.csv:
        path = write_csv(
            f"{args.csv}/vco_{args.variant}_tuning_sweep.csv",
            ["vc_v", "frequency_hz", "amplitude_vpp"],
            [sweep.values, sweep.frequencies, sweep.amplitudes],
        )
        print(f"wrote {path}")
    return 0


def _cmd_vco(args):
    """Run a WaMPDE envelope of the chosen VCO variant; print Fig 7/10."""
    from repro.api import EnvelopeRequest
    from repro.circuits.library import MemsVcoDae, T_NOMINAL, VcoParams
    from repro.utils import ascii_plot, format_table, write_csv

    if args.sweep:
        return _run_tuning_sweep(args)

    if args.variant == "vacuum":
        params, horizon, steps = VcoParams.vacuum(), 60e-6, 600
    else:
        params, horizon, steps = VcoParams.air(), 3e-3, 1200
    if args.horizon:
        horizon = float(args.horizon)
    if args.steps:
        steps = int(args.steps)

    # The request folds the paper's §4.1 initialisation (DC -> settle ->
    # autonomous HB) in with the envelope march; env.omega[0] is the
    # free-running frequency it found.
    env = _execute(args, EnvelopeRequest(
        dae=MemsVcoDae(params),
        t2_start=0.0, t2_stop=horizon, num_steps=steps,
        unforced_dae=MemsVcoDae(params, constant_control=True),
        num_t1=args.num_t1, period_guess=T_NOMINAL,
        options=_envelope_options(args),
        resume_from=args.resume_from,
    ))
    print(f"free-running: {env.omega[0]/1e6:.4f} MHz")
    _print_solver_stats(env.stats)

    idx = np.linspace(0, env.t2.size - 1, 13).astype(int)
    print(format_table(
        ["t2 [s]", "local frequency [MHz]"],
        [[env.t2[i], env.omega[i] / 1e6] for i in idx],
        title=f"{args.variant} VCO — local frequency "
              f"(paper Fig {'7' if args.variant == 'vacuum' else '10'})",
    ))
    print(ascii_plot(env.t2, env.omega / 1e6, ylabel="f [MHz]"))
    amplitude = env.bivariate("v(tank)").amplitude_vs_t2()
    print(f"amplitude variation: {amplitude.min():.3f}..{amplitude.max():.3f} V")
    if args.csv:
        path = write_csv(
            f"{args.csv}/vco_{args.variant}_frequency.csv",
            ["t2_s", "frequency_hz"], [env.t2, env.omega],
        )
        print(f"wrote {path}")
    return 0


def _cmd_fm(args):
    """Print the §3 representation-cost story (Figs 1-6)."""
    from repro.signals import (
        bivariate_sample_count,
        fm_unwarped_bivariate,
        fm_warped_bivariate,
        grid_undulation_count,
        reconstruction_error_two_tone,
        transient_sample_count,
    )
    from repro.signals.fm import F2_PAPER, K_PAPER
    from repro.utils import format_table

    t2 = np.linspace(0.0, 1.0 / F2_PAPER, 801, endpoint=False)
    unwarped = fm_unwarped_bivariate(0.0, t2[:, None]).reshape(-1, 1)
    warped = fm_warped_bivariate(np.linspace(0, 1, 31)[None, :],
                                 t2[:, None])
    rows = [
        ["two-tone: direct samples (Fig 1)", transient_sample_count()],
        ["two-tone: bivariate samples (Fig 2)", bivariate_sample_count()],
        ["two-tone: recovery error from 15x15",
         reconstruction_error_two_tone(15)],
        ["FM: xhat1 extrema along t2 (Fig 5)",
         grid_undulation_count(unwarped, axis=0)],
        ["FM: xhat2 extrema along t2 (Fig 6)",
         grid_undulation_count(warped, axis=0)],
        ["FM: k/(2 pi)", K_PAPER / (2 * np.pi)],
    ]
    print(format_table(["quantity", "value"], rows,
                       title="multi-time representation costs (paper §3)"))
    return 0


def _cmd_phase_error(args):
    """Fig 12 comparison + the speedup headline (takes ~1 minute)."""
    from repro.analysis import phase_error_vs_reference
    from repro.api import EnvelopeRequest, TransientRequest
    from repro.circuits.library import MemsVcoDae, T_NOMINAL, VcoParams
    from repro.transient import TransientOptions
    from repro.utils import WallTimer, format_table
    from repro.wampde import oscillator_initial_condition

    params = VcoParams.air()
    horizon = float(args.horizon) if args.horizon else 0.3e-3
    unforced = MemsVcoDae(params, constant_control=True)
    samples, f0 = oscillator_initial_condition(
        unforced, num_t1=25, period_guess=T_NOMINAL
    )
    forced = MemsVcoDae(params)

    with WallTimer() as ref_timer:
        reference = _execute(args, TransientRequest(
            dae=forced, x0=samples[0], t_start=0.0, t_stop=horizon,
            options=TransientOptions(integrator="trap", dt=T_NOMINAL / 1000),
        ))
    rows = []
    for pts in (50, 100):
        with WallTimer() as timer:
            run = _execute(args, TransientRequest(
                dae=forced, x0=samples[0], t_start=0.0, t_stop=horizon,
                options=TransientOptions(integrator="trap",
                                         dt=T_NOMINAL / pts),
            ))
        _t, err = phase_error_vs_reference(
            run.t, run["v(tank)"], reference.t, reference["v(tank)"]
        )
        rows.append([f"transient {pts}/cycle", timer.elapsed,
                     float(np.abs(err).max())])
    with WallTimer() as timer:
        env = _execute(args, EnvelopeRequest(
            dae=forced, t2_start=0.0, t2_stop=horizon,
            num_steps=max(int(120 * horizon / params.control_period), 40),
            initial_samples=samples, omega0=f0,
            options=_envelope_options(args),
        ))
    _print_solver_stats(env.stats)
    times = np.linspace(0.0, horizon, 40000)
    rec = env.reconstruct("v(tank)", times)
    _t, err = phase_error_vs_reference(
        times, rec, reference.t, reference["v(tank)"]
    )
    rows.append(["WaMPDE", timer.elapsed, float(np.abs(err).max())])
    rows.append(["transient 1000/cycle (reference)", ref_timer.elapsed, 0.0])
    print(format_table(
        ["method", "wall time [s]", "peak phase error [cycles]"], rows,
        title=f"Fig 12 over {horizon*1e3:.2f} ms",
    ))
    print(f"speedup at matched accuracy: {ref_timer.elapsed/timer.elapsed:.0f}x")
    return 0


def build_parser():
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Multi-Time Simulation of "
                    "Voltage-Controlled Oscillators' (DAC 1999)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the calibrated VCO parameters")

    vco = sub.add_parser("vco", help="WaMPDE envelope of the paper's VCO")
    vco.add_argument("--variant", choices=("vacuum", "air"),
                     default="vacuum")
    vco.add_argument("--horizon", help="t2 window in seconds")
    vco.add_argument("--steps", help="number of t2 steps")
    vco.add_argument("--num-t1", dest="num_t1", type=int, default=25,
                     help="odd t1 sample count (harmonics = (N-1)/2)")
    vco.add_argument("--csv", help="directory for CSV output")
    vco.add_argument(
        "--sweep", type=int, default=0, metavar="N",
        help="instead of the envelope, sweep the tuning curve over N "
             "control voltages and print per-scenario solver stats",
    )
    vco.add_argument(
        "--ensemble", action=argparse.BooleanOptionalAction, default=True,
        help="run the sweep through the lock-step ensemble path "
             "(--no-ensemble = point-by-point continuation)",
    )
    vco.add_argument(
        "--backend", choices=("auto", "numpy", "strict", "cupy"),
        default=None,
        help="array backend for the --sweep ensemble settle transient: "
             "'numpy' (host, the default), 'cupy' (GPU, when installed), "
             "'strict' (host numerics that reject implicit transfers), "
             "or 'auto' ($REPRO_XP or numpy)",
    )
    vco.add_argument("--sweep-min", type=float, default=0.4,
                     help="lowest swept control voltage [V]")
    vco.add_argument("--sweep-max", type=float, default=2.6,
                     help="highest swept control voltage [V]")
    vco.add_argument(
        "--checkpoint-every", dest="checkpoint_every", type=int, default=0,
        metavar="K",
        help="spool a resume checkpoint every K envelope steps "
             "(0 disables)",
    )
    vco.add_argument(
        "--checkpoint-path", dest="checkpoint_path", default=None,
        metavar="FILE",
        help="file the checkpoints are written to (atomically replaced)",
    )
    vco.add_argument(
        "--resume-from", dest="resume_from", default=None, metavar="FILE",
        help="resume an interrupted envelope run from a checkpoint file "
             "written by --checkpoint-path (same variant/horizon/steps)",
    )
    _add_solver_args(vco)

    sub.add_parser("fm", help="§3 signal-representation story")

    pe = sub.add_parser("phase-error", help="Fig 12 + speedup (slow)")
    pe.add_argument("--horizon", help="window in seconds (default 0.3 ms)")
    _add_solver_args(pe)

    return parser


_COMMANDS = {
    "info": _cmd_info,
    "vco": _cmd_vco,
    "fm": _cmd_fm,
    "phase-error": _cmd_phase_error,
}


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
