"""Continuation embeddings expressed as ``CollocationSystem`` wrappers.

Continuation methods recover a hard root-finding problem ``F(z) = 0`` by
solving a *family* of easier problems that deform into it.  Each family
member here is a thin :class:`~repro.linalg.solver_core.CollocationSystem`
wrapper around the original system — the wrapped residual/Jacobian feed
the ordinary Newton machinery, so no new solver exists, only new systems:

:class:`GminShiftedSystem`
    ``F(z) + gmin * z = 0`` — the SPICE gmin step.  A shunt conductance
    from every unknown to ground makes the Jacobian diagonally dominant;
    relaxing ``gmin`` toward zero walks back to the original problem.
:class:`SourceScaledSystem`
    ``F(z) + (1 - scale) * source = 0`` — source stepping.  With
    ``F(z) = f(z) - b`` and ``source = b`` this is ``f(z) - scale * b``:
    ramp the excitation from zero (where the origin usually solves the
    system) up to full strength.
:class:`PseudoTransientSystem`
    ``F(z) + (z - z_ref) / dtau = 0`` — one implicit-Euler step of the
    artificial flow ``dz/dtau = -F(z)``.  Small ``dtau`` makes the
    iteration matrix ``J + I/dtau`` well conditioned near ``z_ref``;
    growing ``dtau`` geometrically turns the march back into plain
    Newton.  This is the right embedding for envelope/HB initial points,
    where there is no source to ramp.

:func:`pseudo_transient_march` drives the last embedding through any
``solve(system, z0) -> NewtonResult`` callable (a bound
``SolverCore.solve``, or a closure over :func:`newton_solve` — the
recovery ladder uses the latter so a continuation rung does not recurse
into the ladder that invoked it).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def _shift_diagonal(jac, value):
    """``jac + value * I`` without mutating an assembler-owned matrix."""
    if sp.issparse(jac):
        return (jac + value * sp.identity(jac.shape[0], jac.dtype)).tocsc()
    jac = np.asarray(jac, dtype=float)
    return jac + value * np.eye(jac.shape[0])


class _WrappedSystem:
    """Base for continuation wrappers: forward structure and assembler.

    Implements the :class:`repro.linalg.solver_core.CollocationSystem`
    contract structurally (the core reads ``residual``/``jacobian``/
    ``assembler`` as attributes) — deliberately not by inheritance, so
    this module stays importable from ``solver_core`` itself.
    """

    def __init__(self, base):
        self.base = base
        # Forward the assembler so SolverCore's thread wiring still lands.
        self.assembler = getattr(base, "assembler", None)

    def structure(self):
        structure = dict(self.base.structure())
        structure["continuation"] = type(self).__name__
        return structure


class GminShiftedSystem(_WrappedSystem):
    """``F(z) + gmin * z = 0``: shunt conductance on every unknown."""

    def __init__(self, base, gmin):
        super().__init__(base)
        self.gmin = float(gmin)

    def residual(self, z):
        r = np.asarray(self.base.residual(z), dtype=float)
        if self.gmin:
            r = r + self.gmin * z
        return r

    def jacobian(self, z):
        jac = self.base.jacobian(z)
        if self.gmin:
            jac = _shift_diagonal(jac, self.gmin)
        return jac


class SourceScaledSystem(_WrappedSystem):
    """``F(z) + (1 - scale) * source = 0``: ramped excitation.

    ``source`` is the full-strength excitation vector the residual
    already subtracts (so ``scale=1`` reproduces the original system and
    ``scale=0`` removes the excitation entirely).
    """

    def __init__(self, base, source, scale):
        super().__init__(base)
        self.source = np.asarray(source, dtype=float)
        self.scale = float(scale)

    def residual(self, z):
        r = np.asarray(self.base.residual(z), dtype=float)
        if self.scale != 1.0:
            r = r + (1.0 - self.scale) * self.source
        return r

    def jacobian(self, z):
        return self.base.jacobian(z)


class PseudoTransientSystem(_WrappedSystem):
    """``F(z) + (z - z_ref) / dtau = 0``: implicit-Euler pseudo-time step."""

    def __init__(self, base, z_ref, dtau):
        super().__init__(base)
        self.z_ref = np.asarray(z_ref, dtype=float).ravel()
        self.dtau = float(dtau)
        if not self.dtau > 0.0:
            raise ValueError(f"dtau must be positive, got {dtau!r}")

    def residual(self, z):
        r = np.asarray(self.base.residual(z), dtype=float)
        return r + (z - self.z_ref) / self.dtau

    def jacobian(self, z):
        return _shift_diagonal(self.base.jacobian(z), 1.0 / self.dtau)


def pseudo_transient_march(solve, system, z0, stages=5, dtau=1e-2,
                           grow=10.0):
    """March ``dz/dtau = -F(z)`` until plain Newton takes over.

    Parameters
    ----------
    solve:
        ``(system, z0) -> NewtonResult`` — must *return* a non-converged
        result rather than raise (``raise_on_failure=False`` semantics).
    system:
        The target :class:`~repro.linalg.solver_core.CollocationSystem`.
    z0:
        Start point of the march.
    stages:
        Pseudo-time steps before the final plain solve.
    dtau:
        Initial pseudo-time step, multiplied by ``grow`` per stage.

    Returns
    -------
    (NewtonResult, list[tuple[float, NewtonResult]])
        The final plain-system result (non-converged if any stage died),
        and the per-stage ``(dtau, result)`` trail for diagnostics.
    """
    z = np.asarray(z0, dtype=float).ravel()
    trail = []
    for _ in range(max(int(stages), 0)):
        stage = PseudoTransientSystem(system, z, dtau)
        result = solve(stage, z)
        trail.append((dtau, result))
        if not result.converged:
            return result, trail
        z = result.x
        dtau *= grow
    return solve(system, z), trail
