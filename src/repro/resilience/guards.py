"""Finite-value guards at the device/DAE evaluation boundary.

A NaN born inside one device model surfaces, many frames later, as an
opaque "Newton failed to converge" — by which time the non-finite entry
has been smeared across the whole residual by the linear solve.  The
:class:`GuardedDAE` wrapper checks every evaluation *output* (and
optionally the state input) with one whole-array ``np.isfinite`` test —
no per-entry Python on the hot path — and, only on failure, runs the
post-mortem :func:`diagnose_nonfinite` walk that re-evaluates the circuit
device by device to attribute the first non-finite value to a specific
device and unknown, raised as :class:`repro.errors.NonFiniteError`.

The guard is a diagnostic mode, not a recovery rung: ``NonFiniteError``
is a :class:`~repro.errors.SimulationError` (not a ``ConvergenceError``),
so it bypasses the recovery ladder and the transient dt controller and
surfaces immediately with its attribution.  Recovery from transient
non-finite *trial* evaluations is the solvers' own job (the Newton
kernels reject non-finite updates and line-search trials); the guard is
for finding the model bug that makes *every* evaluation poisonous.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NonFiniteError

#: DAE evaluation methods wrapped by :class:`GuardedDAE`.
GUARDED_METHODS = (
    "q", "f", "b", "dq_dx", "df_dx", "qf",
    "q_batch", "f_batch", "b_batch", "qf_batch",
    "dq_dx_batch", "df_dx_batch",
)


def first_nonfinite(values):
    """Flat index of the first non-finite entry of ``values`` (or None)."""
    flat = np.asarray(values, dtype=float).ravel()
    bad = ~np.isfinite(flat)
    if not bad.any():
        return None
    return int(np.argmax(bad))


def _variable_for(dae, method, values, index):
    """Best-effort unknown name for flat ``index`` into ``values``."""
    names = getattr(dae, "variable_names", None)
    if not names:
        return None
    shape = np.asarray(values, dtype=float).shape
    n = len(names)
    if method in ("dq_dx", "df_dx"):
        index = index // shape[-1]          # row = equation = unknown
    elif method.endswith("_batch") or len(shape) > 1:
        index = index % shape[-1]           # column = unknown
    return names[index] if 0 <= index < n else None


def _device_for(dae, method, x_or_t):
    """Walk a circuit's devices for the first non-finite local value.

    Post-mortem only — runs after a whole-array check already failed, so
    per-device Python cost is irrelevant.  Returns ``(device_name,
    detail)`` or ``(None, None)`` for non-circuit DAEs.
    """
    slots = getattr(dae, "_slots", None)
    gather = getattr(dae, "_gather", None)
    if slots is None or gather is None:
        return None, None
    base = method.replace("_batch", "")
    if base in ("qf",):
        candidates = ("q", "f")
    elif base in ("q", "f", "b", "dq_dx", "df_dx"):
        candidates = (base,)
    else:
        return None, None
    local_name = {
        "q": "q_local", "f": "f_local", "b": "b_local",
        "dq_dx": "dq_dx_local", "df_dx": "df_dx_local",
    }
    for slot in slots:
        device = slot.device
        if base != "b":
            local_x = gather(np.asarray(x_or_t, dtype=float), slot.columns)
            if not np.isfinite(local_x).all():
                return (
                    getattr(device, "name", type(device).__name__),
                    "non-finite local state input",
                )
        for kind in candidates:
            evaluate = getattr(device, local_name[kind], None)
            if evaluate is None:
                continue
            try:
                local = evaluate(x_or_t if base == "b" else local_x)
            except Exception:
                continue
            if not np.isfinite(np.asarray(local, dtype=float)).all():
                return (
                    getattr(device, "name", type(device).__name__),
                    f"non-finite {kind}_local output",
                )
    return None, None


def diagnose_nonfinite(dae, method, x_or_t, values):
    """Build the attributed :class:`NonFiniteError` for a failed check."""
    index = first_nonfinite(values)
    variable = (
        _variable_for(dae, method, values, index)
        if index is not None else None
    )
    device, detail = _device_for(dae, method, x_or_t)
    parts = [f"non-finite value in {method}() output"]
    if variable is not None:
        parts.append(f"unknown {variable!r}")
    if device is not None:
        parts.append(f"device {device!r}" + (f" ({detail})" if detail else ""))
    return NonFiniteError(
        "; first attributed to ".join([parts[0], ", ".join(parts[1:])])
        if len(parts) > 1 else parts[0],
        method=method,
        variable=variable,
        device=device,
    )


class GuardedDAE:
    """Finite-checking proxy around a :class:`~repro.dae.base.SemiExplicitDAE`.

    Every method in :data:`GUARDED_METHODS` is wrapped with a whole-array
    ``np.isfinite(...).all()`` output check (and, with
    ``check_inputs=True``, the same check on the state argument).  All
    other attributes — ``n``, ``variable_names``, structure masks,
    anything engine-specific — delegate to the wrapped DAE.

    Use :func:`guard_dae` for construction.
    """

    def __init__(self, dae, check_inputs=False):
        self._dae = dae
        self._check_inputs = bool(check_inputs)
        self.n = dae.n
        self.variable_names = dae.variable_names
        for method in GUARDED_METHODS:
            inner = getattr(dae, method, None)
            if inner is not None:
                setattr(self, method, self._wrap(method, inner))

    def __getattr__(self, name):
        return getattr(self._dae, name)

    def _check_output(self, method, argument, values):
        if isinstance(values, tuple):
            for part in values:
                self._check_output(method, argument, part)
            return
        array = np.asarray(values)
        if not np.isfinite(array).all():
            raise diagnose_nonfinite(self._dae, method, argument, array)

    def _wrap(self, method, inner):
        takes_state = method not in ("b", "b_batch")
        check_inputs = self._check_inputs

        def guarded(argument):
            if check_inputs and takes_state:
                state = np.asarray(argument, dtype=float)
                if not np.isfinite(state).all():
                    index = first_nonfinite(state)
                    names = self.variable_names
                    variable = (
                        names[index % len(names)] if names else None
                    )
                    raise NonFiniteError(
                        f"non-finite state passed to {method}()"
                        + (f" (unknown {variable!r})" if variable else ""),
                        method=method,
                        variable=variable,
                    )
            values = inner(argument)
            self._check_output(method, argument, values)
            return values

        guarded.__name__ = f"guarded_{method}"
        return guarded


def guard_dae(dae, check_inputs=False):
    """Wrap ``dae`` with finite-value guards (idempotent)."""
    if isinstance(dae, GuardedDAE):
        return dae
    return GuardedDAE(dae, check_inputs=check_inputs)
