"""Recovery ladder vocabulary: rungs, attempts and the structured log.

A *recovery ladder* is an ordered escalation policy a
:class:`repro.linalg.solver_core.SolverCore` walks when a nonlinear solve
fails: cheap retries first (the chord iteration with whatever factors are
frozen), progressively more expensive and more robust strategies after
(fresh factorisation, damped full Newton from the last good state, a
frozen-LU GMRES retry, pseudo-transient continuation).  Every attempt is
recorded as a :class:`RecoveryAttempt` in a :class:`RecoveryLog` attached
to the core's :class:`~repro.linalg.solver_core.SolverStats`, so a failure
is an observable, structured event rather than a bare stack trace.

Rungs
-----

``"chord"``
    Chord (stale-Jacobian) iteration with the currently frozen factors.
``"refresh"``
    Drop the frozen factors and retry the chord iteration with a fresh
    factorisation at the start point.
``"newton"``
    Full Newton from the caller's start point through the configured
    linear solver (the primary attempt of a full-mode core).
``"full_newton"``
    Damped full Newton restarted from the fallback start point (the last
    accepted state of a step sequence when the engine provides one) with
    fresh direct factorisations; a converged run's last factorisation is
    adopted by the chord policy.
``"gmres"``
    Full Newton with a fresh frozen-LU-preconditioned GMRES linear solver
    — a different linear-algebra route around a badly conditioned direct
    factorisation.
``"continuation"``
    Pseudo-transient continuation (see
    :mod:`repro.resilience.continuation`): embed the root-finding problem
    in an artificial time march whose steps grow until the plain system
    is recovered.  The last, most expensive rung.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

#: Every rung name a ladder may contain, in canonical escalation order.
LADDER_RUNGS = (
    "chord", "refresh", "newton", "full_newton", "gmres", "continuation",
)

#: Default ladders — these reproduce the historical chord-with-fallback /
#: full-with-restart policies exactly.
DEFAULT_CHORD_LADDER = ("chord", "full_newton")
DEFAULT_FULL_LADDER = ("newton", "full_newton")

#: Extended ladders — every recovery strategy, in escalation order.
EXTENDED_CHORD_LADDER = (
    "chord", "refresh", "full_newton", "gmres", "continuation",
)
EXTENDED_FULL_LADDER = ("newton", "full_newton", "gmres", "continuation")


def default_ladder(mode):
    """The historical escalation policy for a Newton ``mode``."""
    return DEFAULT_CHORD_LADDER if mode == "chord" else DEFAULT_FULL_LADDER


def extended_ladder(mode):
    """The full escalation policy for a Newton ``mode``."""
    return EXTENDED_CHORD_LADDER if mode == "chord" else EXTENDED_FULL_LADDER


@dataclass
class RecoveryAttempt:
    """One rung attempt of one nonlinear solve.

    Attributes
    ----------
    solve:
        Index of the solve (the core's ``stats.solves`` value at the
        time) the attempt belongs to, so attempts of the same solve can
        be grouped when reading the log.
    rung:
        Rung name (one of :data:`LADDER_RUNGS`).
    converged:
        Whether this attempt solved the system.
    iterations:
        Newton/chord iterations the attempt burned.
    residual_norm:
        Residual infinity-norm at the attempt's last iterate (NaN when
        the attempt died before producing one).
    detail:
        Free-text context — the exception message of a raising attempt,
        or continuation-stage information.
    """

    solve: int
    rung: str
    converged: bool
    iterations: int = 0
    residual_norm: float = float("nan")
    detail: str = ""

    def as_dict(self):
        """Plain-dict view (stable keys, for result payloads)."""
        return {
            "solve": self.solve,
            "rung": self.rung,
            "converged": self.converged,
            "iterations": self.iterations,
            "residual_norm": self.residual_norm,
            "detail": self.detail,
        }


class RecoveryLog:
    """Bounded record of every recovery-ladder escalation of one core.

    Solves that converge on their first rung are *not* recorded (a long
    healthy transient would otherwise accumulate one entry per step);
    the log holds the full attempt sequence of every solve that needed
    escalation, up to ``maxlen`` most recent attempts, plus exact
    aggregate counters that never roll off.

    Attributes
    ----------
    attempts:
        The retained :class:`RecoveryAttempt` entries, oldest first.
    escalated_solves:
        Number of solves that went beyond their first rung.
    total_attempts:
        Rung attempts recorded over the core's lifetime (including ones
        that have rolled off the bounded deque).
    rung_counts:
        ``{rung: attempts}`` aggregate, also exact.
    """

    def __init__(self, maxlen=256):
        self.attempts = deque(maxlen=maxlen)
        self.escalated_solves = 0
        self.total_attempts = 0
        self.rung_counts = {}

    def __len__(self):
        return len(self.attempts)

    def __iter__(self):
        return iter(self.attempts)

    def __bool__(self):
        return self.total_attempts > 0

    def extend(self, attempts):
        """Record one solve's escalation (its full attempt sequence)."""
        self.escalated_solves += 1
        for attempt in attempts:
            self.attempts.append(attempt)
            self.total_attempts += 1
            self.rung_counts[attempt.rung] = (
                self.rung_counts.get(attempt.rung, 0) + 1
            )

    def rungs(self):
        """Rung names of the retained attempts, in order."""
        return [attempt.rung for attempt in self.attempts]

    def last_solve_attempts(self):
        """The retained attempts of the most recent escalated solve."""
        if not self.attempts:
            return []
        last = self.attempts[-1].solve
        return [a for a in self.attempts if a.solve == last]

    def as_dict(self):
        """Aggregate summary (stable keys, for result ``stats`` payloads)."""
        return {
            "escalated_solves": self.escalated_solves,
            "total_attempts": self.total_attempts,
            "rung_counts": dict(self.rung_counts),
        }

    def summary(self):
        """One-line human-readable summary (printed by the CLI)."""
        if not self:
            return "no recovery escalations"
        rungs = ", ".join(
            f"{rung}×{count}" for rung, count in sorted(
                self.rung_counts.items(),
                key=lambda item: LADDER_RUNGS.index(item[0])
                if item[0] in LADDER_RUNGS else len(LADDER_RUNGS),
            )
        )
        return (
            f"{self.escalated_solves} escalated solve(s), "
            f"{self.total_attempts} ladder attempt(s): {rungs}"
        )


@dataclass
class RecoveryPolicy:
    """A ladder plus per-rung retry budgets.

    Attributes
    ----------
    rungs:
        Ordered rung names; ``None`` means the mode's default ladder.
    budgets:
        ``{rung: attempts}`` — how many times each rung may be retried
        before escalating (default 1 per rung).  Chord retries beyond the
        first drop the frozen factors, so a budget of 2 on ``"chord"``
        subsumes an explicit ``"refresh"`` rung.
    continuation_stages:
        Pseudo-transient stages the ``"continuation"`` rung marches.
    continuation_dtau:
        Initial pseudo-time step of the ``"continuation"`` rung, grown
        geometrically per stage.
    """

    rungs: tuple = None
    budgets: dict = field(default_factory=dict)
    continuation_stages: int = 5
    continuation_dtau: float = 1e-2

    def budget(self, rung):
        """Attempt budget for ``rung`` (default 1)."""
        return max(int(self.budgets.get(rung, 1)), 1)
