"""Checkpoint/restart for long marches (transient and envelope runs).

A :class:`Checkpoint` is an RNG-free snapshot of everything a march needs
to continue *bit-identically*: the integrator history window, the stored
trajectory prefix, the step controller's registered parameters, the
engine's counters, and — the subtle part — the *metadata* of the frozen
chord factorisation (the ``(alpha, beta, x)`` the step Jacobian was last
assembled at).  The factorisation object itself (SuperLU handle, LAPACK
factors) is not picklable and is not stored; instead the resuming engine
re-assembles the same matrix at the same point and refactorises.  LU of
an identical matrix is deterministic, so the resumed run's chord policy
makes exactly the decisions the uninterrupted run would have made.

:class:`CheckpointManager` owns the cadence: engines call
:meth:`CheckpointManager.offer` once per accepted step with a zero-cost
*factory* closure, and the manager decides (modulo its ``every`` knob)
whether to materialise a snapshot, keep it in memory, and/or spool it to
disk.  A march that dies raises :class:`~repro.errors.SimulationError`
with its last materialised checkpoint attached, and
``simulate_transient(resume_from=...)`` (or the envelope equivalent)
continues from it.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field


@dataclass
class Checkpoint:
    """One resumable snapshot of a march.

    Attributes
    ----------
    kind:
        The producing engine (``"transient"``, ``"wampde_envelope"``,
        ``"mpde_envelope"``), checked by the resuming engine.
    step:
        Accepted steps at the snapshot.
    t:
        Last accepted time (``t`` or the slow time ``t2``).
    dt:
        Step size the next attempt would use.
    payload:
        Engine-specific state: the integrator history window, stored
        trajectory prefix, engine counters, solver-core parameters and
        frozen-factorisation metadata.  Plain arrays/floats/dicts only —
        no factorisation handles, no RNG state, no open resources.
    """

    kind: str
    step: int
    t: float
    dt: float
    payload: dict = field(default_factory=dict)

    def save(self, path):
        """Pickle the snapshot to ``path`` atomically (write + rename)."""
        path = os.fspath(path)
        directory = os.path.dirname(path) or "."
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".ckpt-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(self, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @staticmethod
    def load(path):
        """Load a snapshot previously written by :meth:`save`."""
        with open(os.fspath(path), "rb") as handle:
            checkpoint = pickle.load(handle)
        if not isinstance(checkpoint, Checkpoint):
            raise TypeError(
                f"{path!r} does not contain a Checkpoint "
                f"(got {type(checkpoint).__name__})"
            )
        return checkpoint


class CheckpointManager:
    """Cadence and retention policy for periodic checkpoints.

    Parameters
    ----------
    every:
        Take a snapshot every this-many accepted steps (0 disables
        periodic snapshots; the manager then only holds snapshots pushed
        explicitly through :meth:`take`).
    path:
        Optional file the latest snapshot is spooled to (atomic
        write-and-rename, so a crash mid-save never corrupts the
        previous one) — or a *callable* sink invoked with each
        materialised :class:`Checkpoint`.  The callable form is how the
        service layer streams partial results out of a running job
        without the engines knowing about streaming.
    keep:
        In-memory snapshots retained, newest last.
    """

    def __init__(self, every=0, path=None, keep=2):
        self.every = max(int(every), 0)
        self.path = path
        self.keep = max(int(keep), 1)
        self.checkpoints = []
        self.taken = 0

    @property
    def last(self):
        """The most recent snapshot, or ``None``."""
        return self.checkpoints[-1] if self.checkpoints else None

    def offer(self, step, factory):
        """Maybe snapshot at accepted step ``step``.

        ``factory`` is a zero-argument closure building the
        :class:`Checkpoint`; it is only invoked when the cadence fires,
        so a run with ``every=0`` (or between cadence points) pays one
        integer comparison per accepted step and nothing else.
        """
        if self.every and step > 0 and step % self.every == 0:
            return self.take(factory)
        return None

    def take(self, factory):
        """Unconditionally snapshot (used for the final/failure state)."""
        checkpoint = factory()
        self.checkpoints.append(checkpoint)
        del self.checkpoints[: -self.keep]
        self.taken += 1
        if callable(self.path):
            self.path(checkpoint)
        elif self.path is not None:
            checkpoint.save(self.path)
        return checkpoint
