"""Solver resilience layer: recovery ladders, continuation, checkpoints.

Four pieces, each usable on its own:

* :mod:`repro.resilience.recovery` — the recovery-ladder vocabulary
  (rung names, per-rung budgets, the structured :class:`RecoveryLog`
  that :class:`repro.linalg.solver_core.SolverCore` attaches to its
  stats);
* :mod:`repro.resilience.continuation` — gmin/source/pseudo-transient
  continuation embeddings as ``CollocationSystem`` wrappers;
* :mod:`repro.resilience.checkpoint` — RNG-free snapshots and the
  cadence manager behind ``simulate_transient(resume_from=...)``;
* :mod:`repro.resilience.guards` — finite-value guards attributing the
  first NaN/Inf at the device/DAE boundary to a device and unknown.
"""

from repro.resilience.checkpoint import Checkpoint, CheckpointManager
from repro.resilience.continuation import (
    GminShiftedSystem,
    PseudoTransientSystem,
    SourceScaledSystem,
    pseudo_transient_march,
)
from repro.resilience.guards import (
    GuardedDAE,
    diagnose_nonfinite,
    first_nonfinite,
    guard_dae,
)
from repro.resilience.recovery import (
    DEFAULT_CHORD_LADDER,
    DEFAULT_FULL_LADDER,
    EXTENDED_CHORD_LADDER,
    EXTENDED_FULL_LADDER,
    LADDER_RUNGS,
    RecoveryAttempt,
    RecoveryLog,
    RecoveryPolicy,
    default_ladder,
    extended_ladder,
)

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "DEFAULT_CHORD_LADDER",
    "DEFAULT_FULL_LADDER",
    "EXTENDED_CHORD_LADDER",
    "EXTENDED_FULL_LADDER",
    "GminShiftedSystem",
    "GuardedDAE",
    "LADDER_RUNGS",
    "PseudoTransientSystem",
    "RecoveryAttempt",
    "RecoveryLog",
    "RecoveryPolicy",
    "SourceScaledSystem",
    "default_ladder",
    "diagnose_nonfinite",
    "extended_ladder",
    "first_nonfinite",
    "guard_dae",
    "pseudo_transient_march",
]
