"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, sign, range, ...)."""


class ConfigurationError(ReproError, ValueError):
    """Options request a capability the environment cannot provide.

    Raised eagerly at configuration time -- e.g. ``kernel="numba"``
    without numba installed, or ``kernel="c"`` without a C compiler --
    instead of failing with an ImportError deep inside a march.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative method failed to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual_norm:
        Norm of the residual at the last iterate, if known.
    recovery:
        The :class:`repro.resilience.RecoveryLog` of ladder attempts made
        before giving up, when the solve ran under a recovery ladder
        (``None`` otherwise).
    """

    def __init__(self, message, iterations=None, residual_norm=None,
                 recovery=None):
        super().__init__(message)
        self.iterations = iterations
        self.residual_norm = residual_norm
        self.recovery = recovery


class SingularJacobianError(ConvergenceError):
    """The Jacobian was singular (or numerically unusable) during a solve."""


class NetlistError(ReproError):
    """The netlist is malformed (unknown node, duplicate device, ...)."""


class DeviceError(ReproError):
    """A device was constructed or evaluated with invalid parameters."""


class SimulationError(ReproError, RuntimeError):
    """A simulation engine failed (step-size underflow, blow-up, ...).

    Beyond the message, raise sites attach whatever structured context
    they have so callers can react programmatically instead of parsing
    text: salvage the computed prefix (``partial_result``), resume a long
    run (``checkpoint`` + ``simulate_transient(resume_from=...)``), or
    report exactly where and how the engine died.

    Attributes
    ----------
    step:
        Index of the step being attempted when the engine gave up.
    time:
        Simulation time (``t`` or ``t2``) at the last accepted point.
    dt:
        Step size of the failed attempt, if stepping was involved.
    residual_norm:
        Newton residual norm of the last failed solve, if known.
    iterations:
        Newton iterations of the last failed solve, if known.
    checkpoint:
        A :class:`repro.resilience.Checkpoint` of the last accepted state,
        from which the run can be resumed (``None`` when the failure
        precedes any accepted state).
    partial_result:
        The trajectory prefix accepted before the failure (a
        ``TransientResult``/engine-specific result), or ``None``.
    """

    def __init__(self, message, step=None, time=None, dt=None,
                 residual_norm=None, iterations=None, checkpoint=None,
                 partial_result=None):
        super().__init__(message)
        self.step = step
        self.time = time
        self.dt = dt
        self.residual_norm = residual_norm
        self.iterations = iterations
        self.checkpoint = checkpoint
        self.partial_result = partial_result


class NonFiniteError(SimulationError):
    """A NaN/Inf appeared at the device/DAE evaluation boundary.

    Raised by :class:`repro.resilience.GuardedDAE` (and the post-mortem
    :func:`repro.resilience.diagnose_nonfinite`), which attribute the
    *first* non-finite entry to a specific device and unknown instead of
    letting the NaN propagate into an opaque Newton failure.

    Attributes
    ----------
    method:
        The DAE method whose output (or input) was non-finite
        (``"q"``, ``"f"``, ``"b"``, ``"dq_dx"``, ``"df_dx"``, ``"state"``).
    variable:
        Name of the first affected unknown, when attributable.
    device:
        Name of the first device producing a non-finite local
        contribution, when the DAE is a circuit (``None`` otherwise).
    """

    def __init__(self, message, method=None, variable=None, device=None,
                 **kwargs):
        super().__init__(message, **kwargs)
        self.method = method
        self.variable = variable
        self.device = device


class PhaseConditionError(ReproError):
    """A WaMPDE phase condition is inconsistent with the current solution."""
