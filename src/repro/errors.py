"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, sign, range, ...)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative method failed to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual_norm:
        Norm of the residual at the last iterate, if known.
    """

    def __init__(self, message, iterations=None, residual_norm=None):
        super().__init__(message)
        self.iterations = iterations
        self.residual_norm = residual_norm


class SingularJacobianError(ConvergenceError):
    """The Jacobian was singular (or numerically unusable) during a solve."""


class NetlistError(ReproError):
    """The netlist is malformed (unknown node, duplicate device, ...)."""


class DeviceError(ReproError):
    """A device was constructed or evaluated with invalid parameters."""


class SimulationError(ReproError, RuntimeError):
    """A simulation engine failed (step-size underflow, blow-up, ...)."""


class PhaseConditionError(ReproError):
    """A WaMPDE phase condition is inconsistent with the current solution."""
