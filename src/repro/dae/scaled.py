"""Variable and time scaling of a DAE.

Circuit unknowns can span many decades (volts next to picofarad charges);
scaling improves Newton conditioning.  ``ScaledDAE`` wraps any
:class:`~repro.dae.base.SemiExplicitDAE` with diagonal variable scaling and
a time dilation, preserving the semi-explicit structure:

With ``x = S @ y`` and ``t = T * s`` the system
``d/dt q(x) + f(x) = b(t)`` becomes (in the new time ``s``)

    d/ds [q(S y) / T] + f(S y) = b(T s)

so ``q_scaled(y) = q(S y) / T``, ``f_scaled(y) = f(S y)`` and
``b_scaled(s) = b(T s)``.  Row scaling (equation scaling) is applied on top
with a diagonal ``R``.
"""

from __future__ import annotations

import numpy as np

from repro.dae.base import SemiExplicitDAE
from repro.utils.validation import as_1d_array, check_positive


class ScaledDAE(SemiExplicitDAE):
    """Diagonally scaled view of another DAE.

    Parameters
    ----------
    inner:
        The DAE being wrapped.
    variable_scale:
        Per-unknown scale factors ``S`` (``x = S * y``). Scalar or length-n.
    time_scale:
        Time dilation ``T`` (``t = T * s``).
    equation_scale:
        Per-equation row scaling ``R``. Scalar or length-n.
    """

    def __init__(self, inner, variable_scale=1.0, time_scale=1.0,
                 equation_scale=1.0):
        self.inner = inner
        self.n = inner.n
        self.variable_names = inner.variable_names
        check_positive(time_scale, "time_scale")
        self.time_scale = float(time_scale)
        self.variable_scale = self._expand(variable_scale, "variable_scale")
        self.equation_scale = self._expand(equation_scale, "equation_scale")

    def _expand(self, scale, name):
        arr = as_1d_array(scale, name)
        if arr.size == 1:
            arr = np.full(self.n, arr[0])
        if arr.size != self.n:
            raise ValueError(f"{name} must have length {self.n}, got {arr.size}")
        if np.any(arr <= 0):
            raise ValueError(f"{name} entries must be positive")
        return arr

    # -- mappings ------------------------------------------------------------

    def to_inner(self, y):
        """Map scaled unknowns ``y`` to the inner DAE's ``x``."""
        return self.variable_scale * np.asarray(y, dtype=float)

    def from_inner(self, x):
        """Map inner unknowns ``x`` to the scaled ``y``."""
        return np.asarray(x, dtype=float) / self.variable_scale

    # -- DAE interface ---------------------------------------------------------

    def q(self, y):
        return self.equation_scale * self.inner.q(self.to_inner(y)) / self.time_scale

    def f(self, y):
        return self.equation_scale * self.inner.f(self.to_inner(y))

    def b(self, s):
        return self.equation_scale * self.inner.b(self.time_scale * float(s))

    def dq_dx(self, y):
        jac = self.inner.dq_dx(self.to_inner(y))
        return (
            self.equation_scale[:, None]
            * jac
            * self.variable_scale[None, :]
            / self.time_scale
        )

    def df_dx(self, y):
        jac = self.inner.df_dx(self.to_inner(y))
        return self.equation_scale[:, None] * jac * self.variable_scale[None, :]

    # -- batched interface (delegates to the inner DAE's fast paths) -----------

    def q_batch(self, states):
        states = np.asarray(states, dtype=float)
        inner = self.inner.q_batch(states * self.variable_scale)
        return self.equation_scale * inner / self.time_scale

    def f_batch(self, states):
        states = np.asarray(states, dtype=float)
        return self.equation_scale * self.inner.f_batch(
            states * self.variable_scale
        )

    def b_batch(self, times):
        times = np.asarray(times, dtype=float).ravel()
        return self.equation_scale * self.inner.b_batch(self.time_scale * times)

    def dq_dx_batch(self, states):
        states = np.asarray(states, dtype=float)
        jac = self.inner.dq_dx_batch(states * self.variable_scale)
        return (
            self.equation_scale[None, :, None]
            * jac
            * self.variable_scale[None, None, :]
            / self.time_scale
        )

    def df_dx_batch(self, states):
        states = np.asarray(states, dtype=float)
        jac = self.inner.df_dx_batch(states * self.variable_scale)
        return (
            self.equation_scale[None, :, None]
            * jac
            * self.variable_scale[None, None, :]
        )

    # Diagonal scaling preserves the structural pattern.

    def dq_structure(self):
        return self.inner.dq_structure()

    def df_structure(self):
        return self.inner.df_structure()
