"""Ensembles: B independent scenarios of one DAE, evaluated in lock-step.

The paper's headline results are *families* of runs — tuning curves sweep
the control voltage point by point, Monte-Carlo studies spread component
values — yet each scenario shares the structure of every other: same
unknowns, same sparsity, same forcing shape.  An :class:`EnsembleDAE`
stacks ``B`` such scenarios behind one evaluation interface with a leading
scenario axis, so the ensemble engines
(:func:`repro.transient.ensemble.simulate_transient_ensemble`,
:func:`repro.steadystate.sweep.ensemble_frequency_sweep`) advance all of
them from one Python loop: the per-step dispatch overhead that dominates
small-system hot paths is paid once per ensemble instead of once per
scenario.

Two realisations
----------------

:meth:`EnsembleDAE.from_stacked`
    Wraps a *single* DAE instance whose parameters carry the ``(B,)``
    scenario axis (e.g. :class:`repro.circuits.library.MemsVcoDae` with an
    array ``control_offset``, or a :class:`repro.circuits.mna.CircuitDAE`
    whose devices hold per-scenario component stacks).  Every evaluation
    is one vectorised ``*_batch`` call — the fast path, reusing the PR-1
    batch machinery and gather/scatter maps unchanged because those never
    look at parameter values.

:meth:`EnsembleDAE.from_members`
    Wraps ``B`` independent member DAEs and loops over them — one Python
    call per *member* per evaluation (not per grid point), correct for any
    :class:`~repro.dae.base.SemiExplicitDAE`.  The generic fallback, and
    the cross-check the stacked path is tested against.

Both expose the same row-wise interface (``(B, n)`` states in, ``(B, n)``
/ ``(B, n, n)`` values out) plus per-member accessors for seeding and
fallback solves.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


class EnsembleDAE:
    """B lock-step scenarios of a structurally identical DAE family.

    Build with :meth:`from_stacked` (vectorised fast path) or
    :meth:`from_members` (generic loop).  States are handled row-wise:
    ``states[b]`` is scenario ``b``'s state vector of length ``n``.

    Attributes
    ----------
    batch_size:
        Number of scenarios ``B``.
    n:
        Unknowns *per scenario* (every member has the same count).
    variable_names:
        Member-level labels, length ``n``.
    """

    def __init__(self, batch_size, n, variable_names, members=None,
                 stacked=None):
        self.batch_size = int(batch_size)
        self.n = int(n)
        self.variable_names = tuple(variable_names)
        self._members = list(members) if members is not None else None
        self._stacked = stacked
        if self.batch_size < 1:
            raise ValidationError(
                f"ensemble needs batch_size >= 1, got {batch_size}"
            )
        if self._members is None and self._stacked is None:
            raise ValidationError(
                "ensemble needs members and/or a stacked DAE; use "
                "EnsembleDAE.from_members / EnsembleDAE.from_stacked"
            )

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_members(cls, members):
        """Ensemble over independent member DAEs (generic loop path)."""
        members = list(members)
        if not members:
            raise ValidationError("ensemble needs at least one member")
        n = members[0].n
        for member in members[1:]:
            if member.n != n:
                raise ValidationError(
                    f"ensemble members must share one system size; got "
                    f"{n} and {member.n}"
                )
        return cls(len(members), n, members[0].variable_names,
                   members=members)

    @classmethod
    def from_stacked(cls, dae, batch_size, members=None):
        """Ensemble over one stacked-parameter DAE (vectorised fast path).

        Parameters
        ----------
        dae:
            A :class:`~repro.dae.base.SemiExplicitDAE` whose parameters
            broadcast over a leading ``(batch_size,)`` scenario axis when
            evaluated through its ``*_batch`` methods with exactly
            ``batch_size`` rows.  A plain scalar-parameter DAE qualifies
            trivially (B identical scenarios — useful for batching
            independent solves of one system from different states).
        members:
            Optional per-scenario member DAEs, kept for seeding and for
            the per-scenario full-Newton fallback; without them a
            scenario that diverges under the vectorised chord loop cannot
            be rescued individually.
        """
        return cls(batch_size, dae.n, dae.variable_names,
                   members=list(members) if members is not None else None,
                   stacked=dae)

    # -- member access ------------------------------------------------------

    @property
    def has_members(self):
        """Whether per-scenario member DAEs are available."""
        return self._members is not None

    def member(self, index):
        """Scenario ``index``'s standalone DAE (requires members)."""
        if self._members is None:
            raise ValidationError(
                "this ensemble was built without member DAEs; pass "
                "members= to EnsembleDAE.from_stacked"
            )
        return self._members[index]

    def subset(self, indices):
        """A new ensemble restricted to the given scenario ``indices``.

        Used by the backend-chunked ensemble march (split ``B`` into
        device-sized blocks) and by backend-aware service sharding.  A
        stacked ensemble subsets through the stacked DAE's optional
        ``subset_scenarios(indices)`` hook (parameter-stack slicing);
        without that hook, member DAEs are sliced; with neither, raises
        :class:`~repro.errors.ValidationError`.
        """
        indices = np.asarray(indices, dtype=int).ravel()
        if indices.size < 1:
            raise ValidationError("ensemble subset needs at least one index")
        if np.any((indices < 0) | (indices >= self.batch_size)):
            raise ValidationError(
                f"subset indices out of range for batch_size="
                f"{self.batch_size}: {indices.tolist()}"
            )
        members = (
            [self._members[i] for i in indices]
            if self._members is not None else None
        )
        stacked = None
        if self._stacked is not None:
            hook = getattr(self._stacked, "subset_scenarios", None)
            if hook is not None:
                stacked = hook(indices)
            elif members is None:
                raise ValidationError(
                    f"{type(self._stacked).__name__} does not support "
                    f"subset_scenarios and the ensemble has no members "
                    f"to slice"
                )
        return EnsembleDAE(
            indices.size, self.n, self.variable_names,
            members=members, stacked=stacked,
        )

    # -- row-wise evaluation -------------------------------------------------

    def _check_rows(self, states):
        shape = (self.batch_size, self.n)
        # Backend arrays (CuPy, the strict wrapper) pass through untouched
        # when already shaped — coercing through np.asarray would force a
        # host round-trip on every evaluation.
        if not isinstance(states, np.ndarray) \
                and getattr(states, "shape", None) == shape:
            return states
        states = np.asarray(states, dtype=float)
        if states.shape != shape:
            raise ValidationError(
                f"ensemble states must have shape {shape}, "
                f"got {states.shape}"
            )
        return states

    def q_rows(self, states):
        """``q`` of every scenario at its own state: ``(B, n)``."""
        states = self._check_rows(states)
        if self._stacked is not None:
            return self._stacked.q_batch(states)
        return np.stack([m.q(x) for m, x in zip(self._members, states)])

    def f_rows(self, states):
        """``f`` of every scenario at its own state: ``(B, n)``."""
        states = self._check_rows(states)
        if self._stacked is not None:
            return self._stacked.f_batch(states)
        return np.stack([m.f(x) for m, x in zip(self._members, states)])

    def qf_rows(self, states):
        """Fused ``(q_rows, f_rows)`` — the ensemble Newton hot path."""
        states = self._check_rows(states)
        if self._stacked is not None:
            return self._stacked.qf_batch(states)
        pairs = [m.qf(x) for m, x in zip(self._members, states)]
        return (np.stack([q for q, _f in pairs]),
                np.stack([f for _q, f in pairs]))

    def b_rows(self, t):
        """Forcing of every scenario at the shared time ``t``: ``(B, n)``."""
        if self._stacked is not None:
            return self._stacked.b_batch(np.full(self.batch_size, float(t)))
        return np.stack([m.b(t) for m in self._members])

    def b_rows_grid(self, times):
        """Forcing on a whole shared grid: ``(T, B, n)``.

        The fixed-step ensemble engine precomputes this once per run.
        With members available this is one vectorised ``b_batch`` call
        per *member* (B calls); a stacked ensemble without members falls
        back to one (vectorised-over-scenarios) call per grid point —
        the stacked instance's array parameters broadcast against a
        ``(B,)`` time vector, not against the full grid.
        """
        times = np.asarray(times, dtype=float).ravel()
        if self._members is not None:
            first = self._members[0]
            if all(member is first for member in self._members):
                # B references to one DAE (e.g. the entrainment probe):
                # evaluate the grid once and broadcast over scenarios.
                base = first.b_batch(times)
                return np.broadcast_to(
                    base[:, None, :],
                    (times.size, self.batch_size, self.n),
                ).copy()
            per_member = np.stack(
                [member.b_batch(times) for member in self._members]
            )  # (B, T, n)
            return np.ascontiguousarray(per_member.transpose(1, 0, 2))
        return np.stack([self.b_rows(t) for t in times])

    def dq_rows(self, states):
        """Per-scenario ``dq_dx`` blocks: ``(B, n, n)``."""
        states = self._check_rows(states)
        if self._stacked is not None:
            return self._stacked.dq_dx_batch(states)
        return np.stack(
            [m.dq_dx(x) for m, x in zip(self._members, states)]
        )

    def df_rows(self, states):
        """Per-scenario ``df_dx`` blocks: ``(B, n, n)``."""
        states = self._check_rows(states)
        if self._stacked is not None:
            return self._stacked.df_dx_batch(states)
        return np.stack(
            [m.df_dx(x) for m, x in zip(self._members, states)]
        )

    # -- compiled lowering ---------------------------------------------------

    def kernel_spec(self):
        """Lower the ensemble to a batched :class:`~repro.kernels.registry.KernelSpec`.

        Returns ``(spec, None)`` or ``(None, reason)`` like
        :func:`~repro.kernels.registry.spec_for_dae`.  Only stacked
        ensembles lower (a member loop has no single statement list);
        stacked parameter rows must line up with the scenario axis —
        one shared row or exactly ``batch_size`` rows.
        """
        from repro.kernels.registry import spec_for_dae
        from repro.kernels.sweep import KernelizedDAE

        if self._stacked is None:
            return None, "member-loop ensembles stay on the python path"
        base = self._stacked
        if isinstance(base, KernelizedDAE):
            base = base._dae
        spec, why = spec_for_dae(base)
        if spec is None:
            return None, why
        if spec.params_rows.shape[0] not in (1, self.batch_size):
            return None, (
                f"{spec.params_rows.shape[0]} stacked parameter rows do "
                f"not line up with batch_size={self.batch_size}"
            )
        return spec, None

    # -- structural sparsity -------------------------------------------------

    def dq_structure(self):
        """Member-level ``(n, n)`` superset of every scenario's pattern."""
        if self._stacked is not None:
            return np.asarray(self._stacked.dq_structure(), dtype=bool)
        mask = np.zeros((self.n, self.n), dtype=bool)
        for member in self._members:
            mask |= np.asarray(member.dq_structure(), dtype=bool)
        return mask

    def df_structure(self):
        """Member-level ``(n, n)`` superset of every scenario's pattern."""
        if self._stacked is not None:
            return np.asarray(self._stacked.df_structure(), dtype=bool)
        mask = np.zeros((self.n, self.n), dtype=bool)
        for member in self._members:
            mask |= np.asarray(member.df_structure(), dtype=bool)
        return mask

    def __repr__(self):
        kind = "stacked" if self._stacked is not None else "members"
        return (
            f"EnsembleDAE(batch_size={self.batch_size}, n={self.n}, "
            f"kind={kind!r})"
        )


def ensemble_from_factory(factory, values, stacked_factory=None):
    """Build an ensemble over one scalar parameter.

    Parameters
    ----------
    factory:
        ``value -> SemiExplicitDAE`` building one scenario (the same
        contract :func:`repro.steadystate.sweep.oscillator_frequency_sweep`
        takes).  Members are always built — they seed per-scenario solves
        and back the divergence fallback.
    values:
        The ``B`` parameter values, one scenario each.
    stacked_factory:
        Optional ``values_array -> SemiExplicitDAE`` building the whole
        family as one stacked-parameter instance (the vectorised fast
        path); when omitted, the ensemble falls back to the member loop.
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size < 1:
        raise ValidationError("ensemble needs at least one parameter value")
    members = [factory(float(v)) for v in values]
    if stacked_factory is None:
        return EnsembleDAE.from_members(members)
    return EnsembleDAE.from_stacked(
        stacked_factory(values), values.size, members=members
    )
