"""Manufactured DAE systems with known analytic behaviour.

These are the measuring sticks of the test suite: integrator convergence
orders, shooting/HB correctness and MPDE/WaMPDE sanity are all verified
against the closed forms documented on each class.
"""

from __future__ import annotations

import numpy as np

from repro.backend import array_namespace
from repro.dae.base import SemiExplicitDAE
from repro.errors import ValidationError
from repro.utils.validation import check_nonnegative, check_positive


class LinearRCDae(SemiExplicitDAE):
    """Driven RC low-pass: ``C v' + v/R = I(t)``.

    With sinusoidal drive ``I(t) = amplitude * cos(omega t)`` the periodic
    steady state is available in closed form through
    :meth:`steady_state_response`.
    """

    def __init__(self, resistance=1.0, capacitance=1.0, amplitude=1.0,
                 omega=1.0):
        check_positive(resistance, "resistance")
        check_positive(capacitance, "capacitance")
        self.resistance = float(resistance)
        self.capacitance = float(capacitance)
        self.amplitude = float(amplitude)
        self.omega = float(omega)
        self.n = 1
        self.variable_names = ("v",)

    def q(self, x):
        return np.array([self.capacitance * x[0]])

    def f(self, x):
        return np.array([x[0] / self.resistance])

    def b(self, t):
        return np.array([self.amplitude * np.cos(self.omega * t)])

    def dq_dx(self, x):
        return np.array([[self.capacitance]])

    def df_dx(self, x):
        return np.array([[1.0 / self.resistance]])

    def steady_state_response(self, t):
        """Exact periodic steady-state voltage at times ``t``."""
        t = np.asarray(t, dtype=float)
        g = 1.0 / self.resistance
        c = self.capacitance
        w = self.omega
        denom = g**2 + (w * c) ** 2
        return (
            self.amplitude
            * (g * np.cos(w * t) + w * c * np.sin(w * t))
            / denom
        )

    def transient_response(self, t, v0):
        """Exact solution from initial voltage ``v0`` (includes transient)."""
        t = np.asarray(t, dtype=float)
        tau = self.resistance * self.capacitance
        steady = self.steady_state_response(t)
        steady0 = self.steady_state_response(0.0)
        return steady + (v0 - steady0) * np.exp(-t / tau)


class HarmonicOscillatorDae(SemiExplicitDAE):
    """Undamped LC oscillator in first-order form.

    Unknowns ``x = [v, i]`` with ``C v' + i = 0`` and ``L i' - v = 0``; the
    solution oscillates at ``omega0 = 1/sqrt(L C)`` with conserved energy
    ``E = C v^2 / 2 + L i^2 / 2``.
    """

    def __init__(self, inductance=1.0, capacitance=1.0):
        check_positive(inductance, "inductance")
        check_positive(capacitance, "capacitance")
        self.inductance = float(inductance)
        self.capacitance = float(capacitance)
        self.n = 2
        self.variable_names = ("v", "i")

    @property
    def omega0(self):
        """Natural angular frequency ``1/sqrt(LC)``."""
        return 1.0 / np.sqrt(self.inductance * self.capacitance)

    def q(self, x):
        return np.array([self.capacitance * x[0], self.inductance * x[1]])

    def f(self, x):
        return np.array([x[1], -x[0]])

    def b(self, t):
        return np.zeros(2)

    def dq_dx(self, x):
        return np.diag([self.capacitance, self.inductance])

    def df_dx(self, x):
        return np.array([[0.0, 1.0], [-1.0, 0.0]])

    def energy(self, x):
        """Conserved energy of the state (invariant under exact flow)."""
        v, i = x
        return 0.5 * self.capacitance * v**2 + 0.5 * self.inductance * i**2

    def exact(self, t, v0, i0=0.0):
        """Closed-form solution from initial conditions ``(v0, i0)``."""
        t = np.asarray(t, dtype=float)
        w = self.omega0
        z0 = np.sqrt(self.inductance / self.capacitance)
        v = v0 * np.cos(w * t) - i0 * z0 * np.sin(w * t)
        i = i0 * np.cos(w * t) + (v0 / z0) * np.sin(w * t)
        return np.stack([v, i], axis=-1)


class VanDerPolDae(SemiExplicitDAE):
    """Van der Pol oscillator ``y'' - mu (1 - y^2) y' + y = 0``.

    Written as a DAE with ``x = [y, w]``, ``q = x``::

        y' - w = 0
        w' - mu (1 - y^2) w + y = 0

    For small ``mu`` the limit cycle has amplitude ≈ 2 and angular frequency
    ``omega ≈ 1 - mu^2 / 16`` (classical two-timing result), which the
    shooting/HB/WaMPDE tests check against.
    """

    def __init__(self, mu=0.2):
        # mu may be a (B,) per-scenario stack: the batch methods then
        # evaluate row b with mu[b], so one instance carries a whole
        # nonlinearity sweep (see repro.dae.ensemble).
        if np.ndim(mu) == 0:
            check_nonnegative(mu, "mu")
            self.mu = float(mu)
        else:
            self.mu = np.asarray(mu, dtype=float)
            if self.mu.ndim != 1 or np.any(self.mu < 0):
                raise ValidationError(
                    f"mu must be a non-negative scalar or 1-D stack, got {mu!r}"
                )
        self.n = 2
        self.variable_names = ("y", "w")

    def q(self, x):
        return np.asarray(x, dtype=float).copy()

    def f(self, x):
        y, w = x
        return np.array([-w, -self.mu * (1.0 - y**2) * w + y])

    def b(self, t):
        return np.zeros(2)

    def dq_dx(self, x):
        return np.eye(2)

    def df_dx(self, x):
        y, w = x
        return np.array(
            [
                [0.0, -1.0],
                [2.0 * self.mu * y * w + 1.0, -self.mu * (1.0 - y**2)],
            ]
        )

    def small_mu_angular_frequency(self):
        """Two-timing estimate ``1 - mu^2/16`` of the limit-cycle frequency."""
        return 1.0 - self.mu**2 / 16.0

    def qf(self, x):
        y, w = x
        return (
            np.asarray(x, dtype=float).copy(),
            np.array([-w, -self.mu * (1.0 - y**2) * w + y]),
        )

    def subset_scenarios(self, indices):
        """Stacked-``mu`` slice for chunked ensemble marches."""
        mu = self.mu
        if np.ndim(mu) != 0:
            mu = np.asarray(mu, dtype=float)[np.asarray(indices, dtype=int)]
        return VanDerPolDae(mu=mu)

    # Vectorised batch evaluation (exercised heavily by multi-time solvers).

    def q_batch(self, states):
        xp = array_namespace(states)
        return xp.asarray(states, dtype=float).copy()

    def f_batch(self, states):
        xp = array_namespace(states)
        states = xp.asarray(states, dtype=float)
        y = states[:, 0]
        w = states[:, 1]
        out = xp.empty_like(states)
        out[:, 0] = -w
        out[:, 1] = -self.mu * (1.0 - y**2) * w + y
        return out

    def dq_dx_batch(self, states):
        xp = array_namespace(states)
        states = xp.asarray(states, dtype=float)
        out = xp.zeros((states.shape[0], 2, 2))
        out[:, 0, 0] = 1.0
        out[:, 1, 1] = 1.0
        return out

    def df_dx_batch(self, states):
        xp = array_namespace(states)
        states = xp.asarray(states, dtype=float)
        y = states[:, 0]
        w = states[:, 1]
        out = xp.zeros((states.shape[0], 2, 2))
        out[:, 0, 1] = -1.0
        out[:, 1, 0] = 2.0 * self.mu * y * w + 1.0
        out[:, 1, 1] = -self.mu * (1.0 - y**2)
        return out

    def dq_structure(self):
        return np.eye(2, dtype=bool)

    def df_structure(self):
        return np.array([[False, True], [True, True]])


class ForcedDecayDae(SemiExplicitDAE):
    """Scalar linear decay with arbitrary forcing: ``x' + a x = u(t)``.

    Used for convergence-order studies; the exact solution for constant
    forcing is available via :meth:`exact_constant_forcing`.
    """

    def __init__(self, rate=1.0, forcing=None):
        check_positive(rate, "rate")
        self.rate = float(rate)
        self.forcing = forcing if forcing is not None else (lambda t: 0.0)
        self.n = 1
        self.variable_names = ("x",)

    def q(self, x):
        return np.asarray(x, dtype=float).copy()

    def f(self, x):
        return np.array([self.rate * x[0]])

    def b(self, t):
        return np.array([float(self.forcing(t))])

    def dq_dx(self, x):
        return np.eye(1)

    def df_dx(self, x):
        return np.array([[self.rate]])

    def exact_constant_forcing(self, t, x0, u):
        """Exact solution when ``forcing ≡ u`` (constant)."""
        t = np.asarray(t, dtype=float)
        xinf = u / self.rate
        return xinf + (x0 - xinf) * np.exp(-self.rate * t)
