"""Base classes for charge-oriented DAE systems."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class SemiExplicitDAE(ABC):
    """A system ``d/dt q(x) + f(x) = b(t)`` with analytic Jacobians.

    Subclasses implement the five single-point methods; the ``*_batch``
    variants have generic loop implementations and may be overridden with
    vectorised versions for speed (the multi-time solvers evaluate the
    system at every collocation point of a grid each Newton iteration).

    Attributes
    ----------
    n:
        Number of unknowns (and equations).
    variable_names:
        Human-readable unknown labels, length ``n``.
    """

    #: Number of unknowns; subclasses must set this in ``__init__``.
    n: int

    #: Labels for the unknowns; subclasses must set this in ``__init__``.
    variable_names: tuple

    @abstractmethod
    def q(self, x):
        """Charge/flux-like state vector ``q(x)`` (length ``n``)."""

    @abstractmethod
    def f(self, x):
        """Resistive/static vector ``f(x)`` (length ``n``)."""

    @abstractmethod
    def b(self, t):
        """Forcing vector ``b(t)`` (length ``n``)."""

    @abstractmethod
    def dq_dx(self, x):
        """Jacobian of :meth:`q` — dense ``(n, n)`` array."""

    @abstractmethod
    def df_dx(self, x):
        """Jacobian of :meth:`f` — dense ``(n, n)`` array."""

    # -- fused evaluation ----------------------------------------------------

    def qf(self, x):
        """Evaluate ``(q(x), f(x))`` together.

        The transient inner loop evaluates both at every Newton iterate;
        systems whose ``q`` and ``f`` share sub-expressions (state unpacking,
        capacitance laws, device gathers) should override this to compute
        them in one pass.  The default simply delegates.
        """
        return self.q(x), self.f(x)

    # -- batched evaluation ------------------------------------------------

    def qf_batch(self, states):
        """Evaluate ``(q_batch, f_batch)`` together over ``(m, n)`` states.

        The ensemble transient engine calls this at every Newton iterate
        (one row per scenario); systems whose ``q`` and ``f`` share
        sub-expressions should override it the same way they override
        :meth:`qf`.  The default delegates.
        """
        return self.q_batch(states), self.f_batch(states)

    def q_batch(self, states):
        """Apply :meth:`q` row-wise to ``states`` of shape ``(m, n)``."""
        states = np.asarray(states, dtype=float)
        return np.stack([self.q(row) for row in states])

    def f_batch(self, states):
        """Apply :meth:`f` row-wise to ``states`` of shape ``(m, n)``."""
        states = np.asarray(states, dtype=float)
        return np.stack([self.f(row) for row in states])

    def b_batch(self, times):
        """Apply :meth:`b` to each entry of 1-D ``times`` → ``(m, n)``."""
        times = np.asarray(times, dtype=float).ravel()
        return np.stack([self.b(t) for t in times])

    def dq_dx_batch(self, states):
        """Stack of :meth:`dq_dx` blocks, shape ``(m, n, n)``."""
        states = np.asarray(states, dtype=float)
        return np.stack([self.dq_dx(row) for row in states])

    def df_dx_batch(self, states):
        """Stack of :meth:`df_dx` blocks, shape ``(m, n, n)``."""
        states = np.asarray(states, dtype=float)
        return np.stack([self.df_dx(row) for row in states])

    # -- structural sparsity -------------------------------------------------

    def dq_structure(self):
        """Boolean ``(n, n)`` superset of the nonzero pattern of ``dq_dx``.

        The pattern must hold at *every* state (a superset is always safe;
        the default is dense).  Collocation engines use it to precompute
        their Jacobian sparsity once per solve — see
        :class:`repro.linalg.collocation.CollocationJacobianAssembler`.
        """
        return np.ones((self.n, self.n), dtype=bool)

    def df_structure(self):
        """Boolean ``(n, n)`` superset of the nonzero pattern of ``df_dx``."""
        return np.ones((self.n, self.n), dtype=bool)

    # -- conveniences -------------------------------------------------------

    def residual(self, x, xdot_q, t):
        """Residual ``xdot_q + f(x) - b(t)`` where ``xdot_q ≈ d/dt q(x)``.

        Integrators supply their discretisation of ``d/dt q`` and reuse this
        to keep sign conventions in one place.
        """
        return np.asarray(xdot_q, dtype=float) + self.f(x) - self.b(t)

    def variable_index(self, name):
        """Index of the unknown called ``name``.

        Raises
        ------
        KeyError
            If no unknown has that label.
        """
        try:
            return self.variable_names.index(name)
        except ValueError:
            raise KeyError(
                f"unknown variable {name!r}; have {list(self.variable_names)}"
            ) from None


class FunctionDAE(SemiExplicitDAE):
    """A :class:`SemiExplicitDAE` assembled from plain callables.

    Useful for tests and small manufactured problems.

    Parameters
    ----------
    n:
        System size.
    q, f, b:
        Callables with the base-class semantics.
    dq_dx, df_dx:
        Callables returning dense ``(n, n)`` Jacobians.
    variable_names:
        Optional labels; defaults to ``x0..x{n-1}``.
    """

    def __init__(self, n, q, f, b, dq_dx, df_dx, variable_names=None):
        self.n = int(n)
        self._q = q
        self._f = f
        self._b = b
        self._dq_dx = dq_dx
        self._df_dx = df_dx
        if variable_names is None:
            variable_names = tuple(f"x{i}" for i in range(self.n))
        if len(variable_names) != self.n:
            raise ValueError(
                f"expected {self.n} variable names, got {len(variable_names)}"
            )
        self.variable_names = tuple(variable_names)

    def q(self, x):
        return np.asarray(self._q(np.asarray(x, dtype=float)), dtype=float)

    def f(self, x):
        return np.asarray(self._f(np.asarray(x, dtype=float)), dtype=float)

    def b(self, t):
        return np.asarray(self._b(float(t)), dtype=float)

    def dq_dx(self, x):
        return np.asarray(self._dq_dx(np.asarray(x, dtype=float)), dtype=float)

    def df_dx(self, x):
        return np.asarray(self._df_dx(np.asarray(x, dtype=float)), dtype=float)
