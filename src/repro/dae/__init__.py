"""Differential-algebraic equation abstraction.

Everything this library simulates is expressed in the charge-oriented
semi-explicit form used by the paper (its eq. 12)::

    d/dt q(x(t)) + f(x(t)) = b(t)

:class:`~repro.dae.base.SemiExplicitDAE` is the contract consumed by the
transient, steady-state, MPDE and WaMPDE engines.  Circuits built with
:mod:`repro.circuits` compile to this interface; manufactured systems with
known closed-form solutions live in :mod:`repro.dae.manufactured` for
verifying integrator orders and solver correctness.
"""

from repro.dae.base import SemiExplicitDAE, FunctionDAE
from repro.dae.ensemble import EnsembleDAE, ensemble_from_factory
from repro.dae.scaled import ScaledDAE
from repro.dae.manufactured import (
    LinearRCDae,
    HarmonicOscillatorDae,
    VanDerPolDae,
    ForcedDecayDae,
)

__all__ = [
    "SemiExplicitDAE",
    "FunctionDAE",
    "EnsembleDAE",
    "ensemble_from_factory",
    "ScaledDAE",
    "LinearRCDae",
    "HarmonicOscillatorDae",
    "VanDerPolDae",
    "ForcedDecayDae",
]
