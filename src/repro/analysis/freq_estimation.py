"""Instantaneous-frequency estimators.

Used to validate the WaMPDE's explicitly computed ``omega(t2)`` against
model-free estimates extracted from brute-force transient waveforms.
"""

from __future__ import annotations

import numpy as np
import scipy.signal

from repro.transient.events import zero_crossings
from repro.utils.validation import as_1d_array


def frequency_from_crossings(t, y, level=None):
    """Cycle-by-cycle frequency from rising level crossings.

    Parameters
    ----------
    t, y:
        Sampled waveform.
    level:
        Crossing level; defaults to the waveform mean.

    Returns
    -------
    tuple
        ``(t_mid, freq)``: midpoints between consecutive rising crossings
        and the corresponding ``1 / spacing`` frequencies [Hz].
    """
    t = as_1d_array(t, "t")
    y = as_1d_array(y, "y")
    if level is None:
        level = float(np.mean(y))
    crossings = zero_crossings(t, y - level, direction=+1)
    if crossings.size < 2:
        return np.array([]), np.array([])
    spacing = np.diff(crossings)
    t_mid = 0.5 * (crossings[:-1] + crossings[1:])
    return t_mid, 1.0 / spacing


def instantaneous_frequency_hilbert(t, y, smooth_window=0):
    """Instantaneous frequency from the analytic-signal phase derivative.

    Suitable for narrowband signals on a *uniform* time grid; the optional
    moving-average ``smooth_window`` (samples) tames differentiation noise.

    Returns
    -------
    tuple
        ``(t_mid, freq)`` at the midpoints of the sample grid.
    """
    t = as_1d_array(t, "t")
    y = as_1d_array(y, "y")
    if t.size < 4:
        raise ValueError("need at least 4 samples for the Hilbert estimator")
    dt = np.diff(t)
    if not np.allclose(dt, dt[0], rtol=1e-6):
        raise ValueError("Hilbert estimator requires a uniform time grid")
    analytic = scipy.signal.hilbert(y - np.mean(y))
    phase = np.unwrap(np.angle(analytic))
    freq = np.diff(phase) / (2.0 * np.pi * dt)
    t_mid = 0.5 * (t[:-1] + t[1:])
    if smooth_window and smooth_window > 1:
        kernel = np.ones(int(smooth_window)) / int(smooth_window)
        freq = np.convolve(freq, kernel, mode="same")
    return t_mid, freq
