"""Waveform analysis: frequency estimation, phase error, spectra.

These tools turn raw simulation traces into the quantities the paper's
figures report: local frequency versus time (Figs 7, 10) and accumulated
phase error of transient simulation versus the WaMPDE (Fig 12).
"""

from repro.analysis.freq_estimation import (
    frequency_from_crossings,
    instantaneous_frequency_hilbert,
)
from repro.analysis.phase_error import (
    phase_from_crossings,
    phase_error_vs_reference,
    cycles_to_radians,
)
from repro.analysis.spectrum import amplitude_spectrum, dominant_frequency
from repro.analysis.compare import rms_error, max_error, relative_rms_error

__all__ = [
    "frequency_from_crossings",
    "instantaneous_frequency_hilbert",
    "phase_from_crossings",
    "phase_error_vs_reference",
    "cycles_to_radians",
    "amplitude_spectrum",
    "dominant_frequency",
    "rms_error",
    "max_error",
    "relative_rms_error",
]
