"""Accumulated-phase comparison between waveforms (paper Fig 12).

The paper's Fig 12 point: transient simulation of an oscillator
accumulates phase error without bound (50 points/cycle drifts visibly by
0.3 ms; "many multiples of 2 pi by the end"), while the WaMPDE's phase
condition prevents build-up.  These helpers extract the unwrapped phase of
an oscillatory trace from its rising crossings and difference it against a
reference.
"""

from __future__ import annotations

import numpy as np

from repro.transient.events import zero_crossings
from repro.utils.validation import as_1d_array


def phase_from_crossings(t, y, level=None):
    """Unwrapped phase (in cycles) built from rising level crossings.

    The j-th rising crossing is assigned phase ``j`` cycles; between
    crossings the phase is linearly interpolated.

    Returns
    -------
    tuple
        ``(crossing_times, cycle_indices)`` — pass to :func:`numpy.interp`
        to evaluate the phase at arbitrary times inside the range.
    """
    t = as_1d_array(t, "t")
    y = as_1d_array(y, "y")
    if level is None:
        level = float(np.mean(y))
    crossings = zero_crossings(t, y - level, direction=+1)
    if crossings.size < 2:
        raise ValueError(
            "need at least two rising crossings to define a phase"
        )
    return crossings, np.arange(crossings.size, dtype=float)


def phase_error_vs_reference(t_test, y_test, t_ref, y_ref, num_eval=200,
                             level=None):
    """Phase of ``y_test`` minus phase of ``y_ref`` over their common span.

    Both phases are anchored so the error is zero at the start of the
    common window (the oscillators are assumed to start in phase).

    Returns
    -------
    tuple
        ``(times, error_cycles)``: evaluation times and the signed phase
        error in cycles (multiply by ``2 pi`` for radians).
    """
    ct_test, ph_test = phase_from_crossings(t_test, y_test, level)
    ct_ref, ph_ref = phase_from_crossings(t_ref, y_ref, level)
    start = max(ct_test[0], ct_ref[0])
    stop = min(ct_test[-1], ct_ref[-1])
    if stop <= start:
        raise ValueError("waveforms share no common crossing span")
    times = np.linspace(start, stop, num_eval)
    test_phase = np.interp(times, ct_test, ph_test)
    ref_phase = np.interp(times, ct_ref, ph_ref)
    error = test_phase - ref_phase
    return times, error - error[0]


def cycles_to_radians(cycles):
    """Convert a phase expressed in cycles to radians."""
    return 2.0 * np.pi * np.asarray(cycles, dtype=float)
