"""Simple amplitude spectra of uniformly sampled waveforms."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_1d_array


def amplitude_spectrum(t, y, window="hann"):
    """One-sided amplitude spectrum of a uniformly sampled signal.

    Parameters
    ----------
    t, y:
        Samples on a uniform grid.
    window:
        ``"hann"``, ``"rect"`` — taper applied before the FFT; amplitudes
        are rescaled for the window's coherent gain.

    Returns
    -------
    tuple
        ``(frequencies, amplitudes)`` for the non-negative frequencies.
    """
    t = as_1d_array(t, "t")
    y = as_1d_array(y, "y")
    if t.size != y.size:
        raise ValueError(f"t and y must have equal length, got {t.size} vs {y.size}")
    if t.size < 4:
        raise ValueError("need at least 4 samples for a spectrum")
    dt = np.diff(t)
    if not np.allclose(dt, dt[0], rtol=1e-6):
        raise ValueError("amplitude_spectrum requires a uniform time grid")

    if window == "hann":
        taper = np.hanning(y.size)
    elif window == "rect":
        taper = np.ones(y.size)
    else:
        raise ValueError(f"unknown window {window!r}; use 'hann' or 'rect'")
    gain = np.sum(taper) / y.size

    spectrum = np.fft.rfft(y * taper) / (y.size * gain)
    freqs = np.fft.rfftfreq(y.size, d=float(dt[0]))
    amplitudes = np.abs(spectrum)
    amplitudes[1:] *= 2.0  # fold negative frequencies
    return freqs, amplitudes


def dominant_frequency(t, y):
    """Frequency of the largest non-DC spectral peak [Hz]."""
    freqs, amps = amplitude_spectrum(t, y)
    if freqs.size < 2:
        raise ValueError("spectrum too short to find a peak")
    peak = 1 + int(np.argmax(amps[1:]))
    return float(freqs[peak])
