"""Waveform error metrics."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_1d_array


def _pair(a, b):
    a = as_1d_array(a, "a")
    b = as_1d_array(b, "b")
    if a.size != b.size:
        raise ValueError(f"arrays must have equal length, got {a.size} vs {b.size}")
    return a, b


def rms_error(a, b):
    """Root-mean-square difference between two equal-length arrays."""
    a, b = _pair(a, b)
    return float(np.sqrt(np.mean((a - b) ** 2)))


def max_error(a, b):
    """Maximum absolute difference between two equal-length arrays."""
    a, b = _pair(a, b)
    return float(np.max(np.abs(a - b)))


def relative_rms_error(test, reference):
    """RMS error normalised by the reference's RMS value."""
    test, reference = _pair(test, reference)
    scale = float(np.sqrt(np.mean(reference**2)))
    if scale == 0.0:
        raise ValueError("reference signal is identically zero")
    return rms_error(test, reference) / scale
