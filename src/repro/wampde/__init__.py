"""The WaMPDE — the paper's core contribution.

The Warped Multirate Partial Differential Equation (paper eq. 16)::

    omega(t2) * dq(xhat)/dt1 + dq(xhat)/dt2 + f(xhat) = b(t2)

is solved here in two regimes:

* :func:`~repro.wampde.envelope.solve_wampde_envelope` — initial conditions
  in ``t2``, time-stepping with spectral collocation along the warped
  ``t1`` axis (the method behind the paper's Figs 7-12);
* :func:`~repro.wampde.quasiperiodic.solve_wampde_quasiperiodic` — periodic
  boundary conditions in ``t2`` (paper §4.1), capturing FM- and
  AM-quasiperiodicity, mode locking and period multiplication.

Supporting pieces: :class:`~repro.wampde.bivariate.BivariateWaveform`
(the ``xhat(t1, t2)`` container), :class:`~repro.wampde.warping.WarpingFunction`
(``phi(t) = int_0^t omega``), univariate reconstruction along the warped
path (paper eq. 15), and oscillator initialisation.
"""

from repro.wampde.bivariate import BivariateWaveform
from repro.wampde.warping import WarpingFunction, sawtooth_path
from repro.wampde.envelope import (
    WampdeEnvelopeOptions,
    WampdeEnvelopeResult,
    solve_wampde_envelope,
    solve_wampde_envelope_adaptive,
)
from repro.wampde.quasiperiodic import (
    WampdeQuasiperiodicResult,
    solve_wampde_quasiperiodic,
    envelope_to_quasiperiodic_guess,
)
from repro.wampde.initial_condition import oscillator_initial_condition
from repro.wampde.reconstruct import reconstruct_univariate

__all__ = [
    "BivariateWaveform",
    "WarpingFunction",
    "sawtooth_path",
    "WampdeEnvelopeOptions",
    "WampdeEnvelopeResult",
    "solve_wampde_envelope",
    "solve_wampde_envelope_adaptive",
    "WampdeQuasiperiodicResult",
    "solve_wampde_quasiperiodic",
    "envelope_to_quasiperiodic_guess",
    "oscillator_initial_condition",
    "reconstruct_univariate",
]
