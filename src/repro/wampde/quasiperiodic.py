"""WaMPDE with periodic boundary conditions in the slow time (paper §4.1).

Solves for ``xhat(t1, t2)`` that is (1, T2)-periodic together with the
T2-periodic local frequency ``omega(t2)`` — the representation that
captures FM- and AM-quasiperiodicity, mode locking (``omega`` constant and
equal to the forcing frequency) and period multiplication (``omega`` a
submultiple) as special cases, per the paper's §4.1 discussion.

Discretisation: spectral collocation on an odd ``N0 x N1`` tensor grid
(both axes periodic), one phase-condition row per t2 point, Newton on the
full coupled system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.api.serialize import SerializableMixin
from repro.errors import SimulationError
from repro.linalg.collocation import CollocationJacobianAssembler
from repro.linalg.newton import NewtonOptions
from repro.linalg.solver_core import (
    CollocationSystem,
    SolverOptionsMixin,
    core_from_options,
)
from repro.linalg.sparse_tools import kron_diffmat
from repro.phase_conditions import as_phase_condition
from repro.spectral.diffmat import fourier_differentiation_matrix
from repro.spectral.grid import collocation_grid
from repro.utils.validation import check_odd, check_positive
from repro.wampde.bivariate import BivariateWaveform
from repro.wampde.warping import WarpingFunction


@dataclass
class WampdeQuasiperiodicOptions(SolverOptionsMixin):
    """Configuration for :func:`solve_wampde_quasiperiodic`.

    The ``newton``/``linear_solver``/``threads``/``ladder`` fields come
    from the shared
    :class:`~repro.linalg.solver_core.SolverOptionsMixin` (``threads``
    now defaults to ``None`` — automatic refresh threading — like every
    other engine, instead of the historical forced-serial ``1``);
    ``newton_mode`` selects the
    :class:`repro.linalg.solver_core.SolverCore` Newton policy.
    """

    newton: NewtonOptions = field(
        default_factory=lambda: NewtonOptions(atol=1e-8, max_iterations=60)
    )
    phase_condition: object = "fourier"
    phase_variable: int = 0
    newton_mode: str = "full"


class WampdeQuasiperiodicResult(SerializableMixin):
    """Bi-periodic WaMPDE solution.

    Attributes
    ----------
    t2:
        Slow-time collocation grid on ``[0, T2)``, shape ``(N1,)``.
    period2:
        Slow period ``T2``.
    omega:
        T2-periodic local frequency at the grid points [Hz].
    samples:
        Solution grid, shape ``(N1, N0, n)``.
    variable_names:
        Labels for the trailing axis.
    newton_iterations:
        Newton iterations used.
    """

    def __init__(self, t2, period2, omega, samples, variable_names,
                 newton_iterations, stats=None):
        self.t2 = np.asarray(t2, dtype=float)
        self.period2 = float(period2)
        self.omega = np.asarray(omega, dtype=float)
        self.samples = np.asarray(samples, dtype=float)
        self.variable_names = tuple(variable_names)
        self.newton_iterations = int(newton_iterations)
        self.stats = dict(stats or {})

    @property
    def mean_frequency(self):
        """The constant part ``omega_0`` of eq. (21) [Hz]."""
        return float(np.mean(self.omega))

    def frequency_modulation_depth(self):
        """Peak deviation of ``omega`` from its mean, normalised [—]."""
        mean = self.mean_frequency
        if mean == 0:
            return float("inf")
        return float(np.max(np.abs(self.omega - mean)) / abs(mean))

    def is_mode_locked(self, forcing_frequency, rtol=1e-3):
        """Entrainment test: omega constant and equal to the forcing rate."""
        return (
            self.frequency_modulation_depth() < rtol
            and abs(self.mean_frequency - forcing_frequency)
            < rtol * forcing_frequency
        )

    def bivariate(self, key):
        """Bivariate waveform with the t2 axis extended one wrap point."""
        if isinstance(key, str):
            key = self.variable_names.index(key)
        t2_ext = np.concatenate([self.t2, [self.period2]])
        data = np.vstack([self.samples[:, :, key], self.samples[:1, :, key]])
        return BivariateWaveform(t2_ext, data, name=self.variable_names[key])

    def warping(self, num_periods=1, phi0=0.0):
        """Warping function over ``num_periods`` repetitions of T2."""
        knots = [self.t2 + m * self.period2 for m in range(num_periods)]
        knots.append(np.array([num_periods * self.period2]))
        times = np.concatenate(knots)
        omegas = np.concatenate(
            [np.tile(self.omega, num_periods), [self.omega[0]]]
        )
        return WarpingFunction(times, omegas, phi0=phi0)

    def reconstruct(self, key, times):
        """Univariate ``x(t)`` over any time range (uses T2-periodicity)."""
        times = np.asarray(times, dtype=float)
        num_periods = int(np.ceil(times.max() / self.period2)) + 1
        warping = self.warping(num_periods=num_periods)
        waveform = self.bivariate(key)
        t1 = np.mod(warping.phi(times), 1.0)
        t2 = np.mod(times, self.period2)
        return waveform(t1, t2)


def envelope_to_quasiperiodic_guess(envelope_result, period2, num_t2,
                                    tail_start=None):
    """Build a quasiperiodic initial guess from a settled envelope run.

    The natural continuation strategy: after an envelope simulation has
    settled into its T2-periodic steady response, resample its last
    forcing period onto the quasiperiodic collocation grid.  Newton on
    the bi-periodic BVP then typically converges in a couple of
    iterations (cold starts from a t2-constant guess often fail for
    strongly modulated oscillators).

    Parameters
    ----------
    envelope_result:
        A :class:`repro.wampde.envelope.WampdeEnvelopeResult` whose tail
        is (close to) T2-periodic.
    period2:
        The forcing period T2.
    num_t2:
        Odd collocation count of the target quasiperiodic solve.
    tail_start:
        Absolute t2 where the sampled period begins; defaults to the last
        full forcing period, aligned to a multiple of T2 so the forcing
        phase of the guess matches the collocation grid.

    Returns
    -------
    tuple
        ``(initial_samples, omega0)`` shaped for
        :func:`solve_wampde_quasiperiodic`.
    """
    check_positive(period2, "period2")
    n1 = check_odd(num_t2, "num_t2")
    t2 = envelope_result.t2
    if tail_start is None:
        periods_in = int(np.floor((t2[-1] - t2[0]) / period2))
        if periods_in < 1:
            raise SimulationError(
                "envelope run is shorter than one forcing period; cannot "
                "extract a periodic tail"
            )
        tail_start = t2[0] + (periods_in - 1) * period2
    grid = collocation_grid(n1, period2)
    samples = np.empty(
        (n1,) + envelope_result.samples.shape[1:], dtype=float
    )
    omegas = np.empty(n1)
    for i, tau in enumerate(grid):
        t_abs = min(tail_start + tau, t2[-1])
        row = int(np.clip(np.searchsorted(t2, t_abs), 0, t2.size - 1))
        samples[i] = envelope_result.samples[row]
        omegas[i] = envelope_result.local_frequency(t_abs)
    return samples, omegas


class _QuasiperiodicSystem(CollocationSystem):
    """Bi-periodic WaMPDE system: N1 frequency unknowns + N1 phase rows.

    Core residual: ``omega(t2_i) * D1 q + D2 q + f - b(t2)`` over the
    flattened ``(N1, N0)`` grid, bordered by one frequency column and one
    phase-condition row per t2 slice.
    """

    def __init__(self, dae, period2, n0, n1, condition):
        self.dae = dae
        self.n0 = n0
        self.n1 = n1
        self.n = dae.n
        self.condition = condition
        self.phase_row_block = condition.gradient(n0, self.n)
        self.block = n0 * self.n  # unknowns per t2 point
        self.total = n1 * self.block

        t2_grid = collocation_grid(n1, period2)
        diffmat1 = fourier_differentiation_matrix(n0, period=1.0)
        diffmat2 = fourier_differentiation_matrix(n1, period=period2)
        d1_big = kron_diffmat(diffmat1, self.n, ordering="point")
        self.d1_all = sp.kron(
            sp.identity(n1, format="csr"), d1_big, format="csr"
        )
        self.d2_all = kron_diffmat(diffmat2, self.block, ordering="point")
        self.b_flat = np.stack(
            [np.tile(dae.b(t), n0) for t in t2_grid]
        ).ravel()

        # Point-coupling matrices over the flattened (t2, t1) grid: the
        # fast axis couples points within one t2 slice, the slow axis
        # couples equal t1 indices across slices.  Their combination
        # drives the pattern-reuse Jacobian assembly (see
        # repro.linalg.collocation).
        self.w1 = np.kron(np.eye(n1), diffmat1)
        self.w2 = np.kron(diffmat2, np.eye(n0))
        self.assembler = CollocationJacobianAssembler(
            n1 * n0,
            self.n,
            dq_mask=dae.dq_structure(),
            df_mask=dae.df_structure(),
            coupling_mask=(self.w1 != 0.0) | (self.w2 != 0.0),
            num_border=n1,
        )

    def split(self, z):
        states = z[:self.total].reshape(self.n1, self.n0, self.n)
        omegas = z[self.total:]
        return states, omegas

    def residual(self, z):
        states, omegas = self.split(z)
        flat_states = states.reshape(self.n1 * self.n0, self.n)
        q_flat = self.dae.q_batch(flat_states).ravel()
        f_flat = self.dae.f_batch(flat_states).ravel()
        omega_expand = np.repeat(omegas, self.block)
        core = (
            omega_expand * (self.d1_all @ q_flat)
            + self.d2_all @ q_flat
            + f_flat
            - self.b_flat
        )
        phase = np.array(
            [self.condition.residual(states[i2]) for i2 in range(self.n1)]
        )
        return np.concatenate([core, phase])

    def jacobian(self, z):
        n1, block, total = self.n1, self.block, self.total
        states, omegas = self.split(z)
        flat_states = states.reshape(n1 * self.n0, self.n)
        dq = self.dae.dq_dx_batch(flat_states)
        df = self.dae.df_dx_batch(flat_states)
        # omega(t2) row-scales the fast-axis coupling only.
        coupling = np.repeat(omegas, self.n0)[:, None] * self.w1 + self.w2

        q_flat = self.dae.q_batch(flat_states).ravel()
        d1q = self.d1_all @ q_flat
        columns = np.zeros((total, n1))
        for i2 in range(n1):
            sl = slice(i2 * block, (i2 + 1) * block)
            columns[sl, i2] = d1q[sl]

        rows = np.zeros((n1, total))
        for i2 in range(n1):
            rows[i2, i2 * block:(i2 + 1) * block] = self.phase_row_block

        return self.assembler.refresh(
            coupling,
            dq,
            diag_inner=df,
            border_columns=columns,
            border_rows=rows,
        )

    def structure(self):
        return {"num_points": self.n1 * self.n0, "n_vars": self.n,
                "num_border": self.n1, "size": self.total + self.n1}


def solve_wampde_quasiperiodic(dae, period2, initial_samples, omega0,
                               num_t2=15, options=None, warm_start=None):
    """Solve the bi-periodic WaMPDE boundary-value problem.

    Parameters
    ----------
    dae:
        Forced autonomous system; ``b(t)`` must be ``period2``-periodic.
    period2:
        The forcing (slow) period T2.
    initial_samples:
        Starting guess: either ``(N0, n)`` — replicated across t2 — or a
        full ``(N1, N0, n)`` grid.  Use the unforced oscillator's HB
        solution.
    omega0:
        Starting local frequency [Hz] (scalar or length-``N1``).
    num_t2:
        Odd number of t2 collocation points ``N1``.
    options:
        :class:`WampdeQuasiperiodicOptions`.
    warm_start:
        Optional warm-start seed (duck-typed, typically
        :class:`repro.service.cache.WarmStart`): ``samples``/``omega0``
        supply the starting guess when the corresponding arguments are
        passed as ``None``.

    Returns
    -------
    WampdeQuasiperiodicResult
    """
    opts = options or WampdeQuasiperiodicOptions()
    check_positive(period2, "period2")
    n1 = check_odd(num_t2, "num_t2")

    if warm_start is not None:
        if initial_samples is None:
            initial_samples = getattr(warm_start, "samples", None)
        if omega0 is None:
            omega0 = getattr(warm_start, "omega0", None)
    if initial_samples is None or omega0 is None:
        raise SimulationError(
            "initial_samples and omega0 are required (directly or via "
            "warm_start)"
        )
    initial_samples = np.asarray(initial_samples, dtype=float)
    if initial_samples.ndim == 2:
        initial_samples = np.broadcast_to(
            initial_samples[None], (n1,) + initial_samples.shape
        ).copy()
    if initial_samples.ndim != 3 or initial_samples.shape[0] != n1:
        raise SimulationError(
            f"initial_samples must be (N0, n) or ({n1}, N0, n), got "
            f"{initial_samples.shape}"
        )
    _, n0, n = initial_samples.shape
    check_odd(n0, "N0 (t1 samples)")
    if n != dae.n:
        raise SimulationError(
            f"initial_samples has {n} variables, DAE has {dae.n}"
        )

    omega0 = np.asarray(omega0, dtype=float).ravel()
    if omega0.size == 1:
        omega0 = np.full(n1, omega0[0])
    if omega0.size != n1:
        raise SimulationError(
            f"omega0 must be scalar or length {n1}, got {omega0.size}"
        )

    condition = as_phase_condition(opts.phase_condition, opts.phase_variable)
    t2_grid = collocation_grid(n1, period2)

    system = _QuasiperiodicSystem(dae, period2, n0, n1, condition)
    core = core_from_options(opts)
    z0 = np.concatenate([initial_samples.ravel(), omega0])
    result = core.solve(system, z0)
    states, omegas = system.split(result.x)
    if np.any(omegas <= 0):
        raise SimulationError(
            "quasiperiodic WaMPDE converged to non-positive local frequency"
        )
    return WampdeQuasiperiodicResult(
        t2_grid, period2, omegas, states, dae.variable_names,
        result.iterations, core.stats.as_dict(),
    )
