"""Univariate reconstruction along the warped path (paper eq. 15).

Given an envelope solution ``(xhat, omega)``, the 1-D solution of the
original DAE is

    x(t) = xhat(phi(t), t),    phi(t) = int_0^t omega(s) ds

with ``xhat`` 1-periodic in its first argument.  This is what Fig 9 and
Fig 12 plot against direct transient simulation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_1d_array


def reconstruct_univariate(envelope_result, key, times, chunk=65536):
    """Evaluate ``x(t) = xhat(phi(t) mod 1, t)`` at ``times``.

    Parameters
    ----------
    envelope_result:
        A :class:`repro.wampde.envelope.WampdeEnvelopeResult`.
    key:
        Variable name or index.
    times:
        1-D unwarped times inside the simulated t2 window.
    chunk:
        Evaluation chunk size (memory/time tradeoff).

    Returns
    -------
    numpy.ndarray
        The reconstructed waveform, same length as ``times``.
    """
    times = as_1d_array(times, "times")
    waveform = envelope_result.bivariate(key)
    warping = envelope_result.warping()

    out = np.empty(times.size)
    for start in range(0, times.size, chunk):
        sl = slice(start, min(start + chunk, times.size))
        t_chunk = times[sl]
        t1 = np.mod(warping.phi(t_chunk), 1.0)
        out[sl] = waveform(t1, t_chunk)
    return out
