"""The bivariate waveform ``xhat(t1, t2)`` (paper Figs 2, 6, 8, 11).

Storage is a grid: odd ``N0`` uniform samples along the (periodic, warped)
``t1`` axis at each of ``N2`` slow-time points.  Evaluation is spectral
(trigonometric) along ``t1`` and linear along ``t2`` — matching how the
envelope solver computes the data.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.spectral.fourier import samples_to_coefficients
from repro.spectral.grid import collocation_grid, harmonic_indices
from repro.utils.validation import as_1d_array, as_2d_array


class BivariateWaveform:
    """One variable's ``xhat(t1, t2)`` on a (t1 x t2) grid.

    Parameters
    ----------
    t2:
        Slow-time grid, strictly increasing, shape ``(N2,)``.
    samples:
        Grid values, shape ``(N2, N0)`` with odd ``N0``; row ``i`` holds the
        t1-samples at ``t2[i]``.
    name:
        Variable label (for reports).
    t1_period:
        Period along ``t1`` (1.0 for the warped/normalised axis).
    """

    def __init__(self, t2, samples, name="x", t1_period=1.0):
        self.t2 = as_1d_array(t2, "t2")
        self.samples = as_2d_array(samples, "samples")
        if self.samples.shape[0] != self.t2.size:
            raise ValidationError(
                f"samples has {self.samples.shape[0]} rows but t2 has "
                f"{self.t2.size} points"
            )
        if np.any(np.diff(self.t2) <= 0):
            raise ValidationError("t2 must be strictly increasing")
        if self.samples.shape[1] % 2 != 1:
            raise ValidationError(
                f"N0 (t1 samples) must be odd, got {self.samples.shape[1]}"
            )
        if not t1_period > 0:
            raise ValidationError(f"t1_period must be positive, got {t1_period!r}")
        self.name = str(name)
        self.t1_period = float(t1_period)
        # Fourier coefficients per t2 row (centered order), shape (N2, N0).
        self._coefficients = samples_to_coefficients(self.samples, axis=1)
        self._indices = harmonic_indices(self.samples.shape[1])

    # -- geometry ---------------------------------------------------------------

    @property
    def num_t1(self):
        """Number of t1 samples (odd)."""
        return self.samples.shape[1]

    @property
    def num_t2(self):
        """Number of t2 grid points."""
        return self.t2.size

    def t1_grid(self):
        """The t1 collocation grid on ``[0, t1_period)``."""
        return collocation_grid(self.num_t1, self.t1_period)

    # -- evaluation ---------------------------------------------------------------

    def _row_weights(self, t2_points):
        """Indices and interpolation weights along t2 (clamped ends)."""
        t2_points = np.asarray(t2_points, dtype=float)
        clipped = np.clip(t2_points, self.t2[0], self.t2[-1])
        idx = np.clip(
            np.searchsorted(self.t2, clipped, side="right") - 1,
            0,
            self.t2.size - 2,
        )
        span = self.t2[idx + 1] - self.t2[idx]
        theta = (clipped - self.t2[idx]) / span
        return idx, theta

    def __call__(self, t1, t2):
        """Evaluate ``xhat`` at broadcastable ``t1``/``t2`` arrays.

        ``t1`` is wrapped modulo ``t1_period``; ``t2`` is clamped to the
        stored range.
        """
        t1 = np.asarray(t1, dtype=float)
        t2 = np.asarray(t2, dtype=float)
        t1b, t2b = np.broadcast_arrays(t1, t2)
        flat_t1 = t1b.ravel()
        flat_t2 = t2b.ravel()

        idx, theta = self._row_weights(flat_t2)
        coeff = (
            (1.0 - theta)[:, None] * self._coefficients[idx]
            + theta[:, None] * self._coefficients[idx + 1]
        )
        phases = np.exp(
            2j
            * np.pi
            * np.multiply.outer(flat_t1 / self.t1_period, self._indices)
        )
        values = np.einsum("ij,ij->i", phases, coeff).real
        result = values.reshape(t1b.shape)
        return result if result.ndim else float(result)

    def grid_values(self, t1_points, t2_points):
        """Evaluate on the tensor grid ``t1_points x t2_points``.

        Returns
        -------
        numpy.ndarray
            Shape ``(len(t2_points), len(t1_points))``.
        """
        t1_points = as_1d_array(t1_points, "t1_points")
        t2_points = as_1d_array(t2_points, "t2_points")
        return self(t1_points[None, :], t2_points[:, None])

    # -- summaries used by the figure benches --------------------------------------

    def amplitude_vs_t2(self, oversample=8):
        """Peak-to-peak amplitude of the t1-waveform at each stored t2.

        Extrema are located on an ``oversample``-times-refined grid through
        the trigonometric interpolant, so they do not depend on whether the
        collocation points happen to hit the peaks.
        """
        fine = np.linspace(
            0.0, self.t1_period, oversample * self.num_t1, endpoint=False
        )
        phases = np.exp(
            2j * np.pi * np.multiply.outer(fine / self.t1_period, self._indices)
        )
        values = (self._coefficients @ phases.T).real
        return values.max(axis=1) - values.min(axis=1)

    def fundamental_magnitude_vs_t2(self):
        """|first harmonic| of the t1-waveform at each stored t2."""
        fundamental = self._coefficients[:, self.num_t1 // 2 + 1]
        return 2.0 * np.abs(fundamental)

    def __repr__(self):
        return (
            f"BivariateWaveform({self.name!r}, N2={self.num_t2}, "
            f"N0={self.num_t1}, t2 in [{self.t2[0]:.3g}, {self.t2[-1]:.3g}])"
        )
