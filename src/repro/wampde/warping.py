"""Time warping: the map ``phi(t) = int_0^t omega(s) ds`` (paper eq. 17).

``phi`` converts unwarped time into warped time (in *cycles*, because this
library normalises the warped axis to period 1, so ``omega`` is the local
frequency in Hz and ``d phi / d t`` is directly the paper's Fig 7/10
y-axis).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import as_1d_array


class WarpingFunction:
    """Piecewise-linear local frequency and its exact integral.

    ``omega(t)`` is stored as samples on knots and interpolated linearly;
    ``phi(t)`` is then piecewise quadratic and exactly consistent with the
    interpolated ``omega`` (``phi' = omega`` everywhere).

    Parameters
    ----------
    times:
        Strictly increasing knot times, shape ``(m,)``.
    omega:
        Local frequency at the knots [cycles per unit time], shape ``(m,)``.
    phi0:
        Warped time at ``times[0]`` (default 0).
    """

    def __init__(self, times, omega, phi0=0.0):
        self.times = as_1d_array(times, "times")
        self.omega_values = as_1d_array(omega, "omega")
        if self.times.size != self.omega_values.size:
            raise ValidationError(
                f"times and omega must have equal length, got "
                f"{self.times.size} vs {self.omega_values.size}"
            )
        if self.times.size < 2:
            raise ValidationError("WarpingFunction needs at least two knots")
        if np.any(np.diff(self.times) <= 0):
            raise ValidationError("times must be strictly increasing")
        # Cumulative trapezoid: exact integral of the linear interpolant.
        spans = np.diff(self.times)
        mids = 0.5 * (self.omega_values[:-1] + self.omega_values[1:])
        self.phi_values = float(phi0) + np.concatenate(
            [[0.0], np.cumsum(spans * mids)]
        )

    # -- queries ---------------------------------------------------------------

    def omega(self, t):
        """Local frequency at ``t`` (linear interpolation, clamped ends)."""
        t = np.asarray(t, dtype=float)
        return np.interp(t, self.times, self.omega_values)

    def phi(self, t):
        """Warped time ``phi(t)`` (piecewise quadratic, exact integral)."""
        t = np.asarray(t, dtype=float)
        t_clipped = np.clip(t, self.times[0], self.times[-1])
        idx = np.clip(
            np.searchsorted(self.times, t_clipped, side="right") - 1,
            0,
            self.times.size - 2,
        )
        t0 = self.times[idx]
        w0 = self.omega_values[idx]
        slope = (self.omega_values[idx + 1] - w0) / (self.times[idx + 1] - t0)
        dt = t_clipped - t0
        local = self.phi_values[idx] + w0 * dt + 0.5 * slope * dt**2
        # Linear extension beyond the knot range using the edge frequencies.
        below = t < self.times[0]
        above = t > self.times[-1]
        result = np.where(
            below,
            self.phi_values[0] + self.omega_values[0] * (t - self.times[0]),
            np.where(
                above,
                self.phi_values[-1]
                + self.omega_values[-1] * (t - self.times[-1]),
                local,
            ),
        )
        return result if result.ndim else float(result)

    def __call__(self, t):
        """Alias for :meth:`phi`."""
        return self.phi(t)

    def total_cycles(self):
        """Warped-time span over the knot range (number of oscillations)."""
        return float(self.phi_values[-1] - self.phi_values[0])

    def invert(self, phi_target):
        """Unwarped time at which ``phi(t) = phi_target`` (monotone case).

        Requires strictly positive ``omega`` everywhere.
        """
        if np.any(self.omega_values <= 0):
            raise ValidationError(
                "invert requires strictly positive local frequency"
            )
        phi_target = np.asarray(phi_target, dtype=float)
        idx = np.clip(
            np.searchsorted(self.phi_values, phi_target, side="right") - 1,
            0,
            self.times.size - 2,
        )
        t0 = self.times[idx]
        w0 = self.omega_values[idx]
        slope = (self.omega_values[idx + 1] - w0) / (self.times[idx + 1] - t0)
        dphi = phi_target - self.phi_values[idx]
        # Solve 0.5*slope*dt^2 + w0*dt - dphi = 0 for dt >= 0.
        with np.errstate(invalid="ignore", divide="ignore"):
            quad = (np.sqrt(w0**2 + 2.0 * slope * dphi) - w0) / slope
        linear = dphi / w0
        dt = np.where(np.abs(slope) < 1e-300 * np.abs(w0) + 1e-30, linear, quad)
        result = t0 + dt
        return result if result.ndim else float(result)


def sawtooth_path(times, periods):
    """The multi-time evaluation path ``t_i = t mod T_i`` (paper Fig 3).

    Parameters
    ----------
    times:
        1-D times along the diagonal path.
    periods:
        Sequence of axis periods ``(T_1, ..., T_p)``.

    Returns
    -------
    numpy.ndarray
        Shape ``(len(times), len(periods))``; column ``i`` is
        ``times mod periods[i]``.
    """
    times = as_1d_array(times, "times")
    columns = []
    for period in periods:
        if not period > 0:
            raise ValidationError(f"periods must be positive, got {period!r}")
        columns.append(np.mod(times, period))
    return np.stack(columns, axis=-1)
