"""WaMPDE envelope simulation: time-step in t2, spectral in t1.

This is the method behind the paper's §5 experiments.  At each slow time
``t2_m`` the unknowns are the ``N0`` t1-samples of every system variable
(one warped oscillation cycle) plus the local frequency ``omega(t2_m)``;
the equations are the collocated WaMPDE (paper eq. 16)

    omega * D1 q(X) + dq/dt2|_discrete + f(X) = b(t2)

plus one phase-condition row (paper eq. 20 / §3 eq. 9) that pins the t1
phase and thereby *determines* omega.  The t2 derivative uses backward
Euler or trapezoidal differencing; the per-step Newton system is a
bordered sparse matrix (collocation core + omega column + phase row).

Because the phase condition re-anchors every step, phase error cannot
accumulate — the property the paper contrasts with transient simulation
in Fig 12.

Two drivers share the stepping kernel:

* :func:`solve_wampde_envelope` — fixed, uniform t2 steps;
* :func:`solve_wampde_envelope_adaptive` — proportional step control from
  a predictor-corrector error estimate, for runs whose slow dynamics have
  widely varying rates (e.g. sharp settling followed by a long coast).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.serialize import SerializableMixin
from repro.errors import ConvergenceError, SimulationError
# Re-exported from repro.grids (the shared home of the grid helpers) for
# backwards compatibility with existing imports of wampde.envelope.
from repro.grids import harmonic_axis as harmonic_axis, t1_grid as t1_grid
from repro.kernels.sweep import maybe_kernelize_batch
from repro.linalg.collocation import CollocationJacobianAssembler
from repro.linalg.lu_cache import FrozenFactorization
from repro.linalg.newton import NewtonOptions
from repro.linalg.solver_core import (
    CollocationSystem,
    SolverOptionsMixin,
    core_from_options,
)
from repro.linalg.sparse_tools import kron_diffmat
from repro.resilience.checkpoint import Checkpoint, CheckpointManager
from repro.phase_conditions import as_phase_condition
from repro.spectral.diffmat import fourier_differentiation_matrix
from repro.utils.validation import check_odd, check_positive
from repro.wampde.bivariate import BivariateWaveform
from repro.wampde.warping import WarpingFunction


@dataclass
class WampdeEnvelopeOptions(SolverOptionsMixin):
    """Configuration for the WaMPDE envelope drivers.

    The ``newton``/``linear_solver``/``threads``/``ladder`` fields come
    from the shared
    :class:`~repro.linalg.solver_core.SolverOptionsMixin`.

    Attributes
    ----------
    integrator:
        ``"theta"`` (default), ``"trap"`` or ``"be"``.  The t2 derivative
        is differenced with the one-parameter theta method: ``theta=0.5``
        is trapezoidal (2nd order, but leaves fast detuning modes
        undamped — they can ring and destabilise long envelope runs),
        ``theta=1`` is backward Euler (L-stable but damps the *physical*
        slow dynamics too).  The default ``"theta"`` uses ``theta`` just
        above 0.5: near-2nd-order accuracy on the slow manifold with
        enough dissipation to kill collocation-mode ringing.
    theta:
        Implicitness parameter used when ``integrator="theta"``
        (0.5 < theta <= 1).
    phase_condition:
        Spec for :func:`repro.phase_conditions.as_phase_condition`; pins
        the t1 phase each step.  Default is the paper's eq.-(20) Fourier
        anchor — time-domain anchors (``"derivative"``, ``"value"``) are
        local functionals that can lose their grip on strongly distorting
        waveforms (the bordered system's solvability pairing
        ``phase_row . dx/domega`` can vanish).
    phase_variable:
        Variable index the default phase condition applies to.
    newton:
        Per-step Newton options.
    newton_mode:
        ``"chord"`` (default) carries one factorised step Jacobian across
        Newton iterations *and* across envelope steps via
        :class:`repro.linalg.solver_core.SolverCore`, refactorising only
        on slow contraction, divergence, or an ``h``/``omega`` jump —
        the policy the transient engine uses across time steps.
        ``"full"`` recovers a fresh Jacobian per Newton iteration.
    linear_solver:
        ``None``/"lu" — direct sparse LU with factorisation reuse;
        ``"gmres"`` — frozen-LU-preconditioned GMRES for large circuits
        (the paper's [Saa96] reference); or any ``(matrix, rhs) ->
        solution`` callable.  Non-default values imply full Newton.
    threads:
        Worker threads for the collocation Jacobian block refresh.
        ``None`` (default) lets the assembler thread large refreshes
        automatically; ``1`` forces a serial refresh (explicit opt-out).
    store_every:
        Keep every k-th accepted t2 point.
    rtol, atol:
        Local-error weights for the adaptive driver.
    dt2_min, dt2_max:
        Step bounds for the adaptive driver.
    ladder:
        Recovery-ladder spec forwarded to the shared
        :class:`~repro.linalg.solver_core.SolverCore` (``None``/
        ``"default"``, ``"extended"``, or an explicit rung tuple — see
        :mod:`repro.resilience.recovery`).
    checkpoint_every:
        Take an in-memory resume checkpoint every k accepted envelope
        steps (0 disables).  A failing march always attaches its most
        recent checkpoint to the raised
        :class:`~repro.errors.SimulationError`.
    checkpoint_path:
        When set, checkpoints are also spooled to this file
        (atomically replaced each time) for restart after a crash.
    """

    newton: NewtonOptions = field(
        default_factory=lambda: NewtonOptions(atol=1e-9, max_iterations=30)
    )
    integrator: str = "theta"
    theta: float = 0.55
    phase_condition: object = "fourier"
    phase_variable: int = 0
    newton_mode: str = "chord"
    store_every: int = 1
    rtol: float = 1e-5
    atol: float = 1e-8
    dt2_min: float = 0.0
    dt2_max: float = np.inf
    checkpoint_every: int = 0
    checkpoint_path: object = None


class WampdeEnvelopeResult(SerializableMixin):
    """Output of a WaMPDE envelope run.

    Attributes
    ----------
    t2:
        Stored slow-time points, shape ``(m,)``.
    omega:
        Local frequency [Hz] at those points, shape ``(m,)`` — the paper's
        Fig 7 / Fig 10 series.
    samples:
        Bivariate samples, shape ``(m, N0, n)``.
    variable_names:
        Labels for the trailing axis.
    stats:
        Newton/step counters.
    """

    def __init__(self, t2, omega, samples, variable_names, stats=None):
        self.t2 = np.asarray(t2, dtype=float)
        self.omega = np.asarray(omega, dtype=float)
        self.samples = np.asarray(samples, dtype=float)
        self.variable_names = tuple(variable_names)
        self.stats = dict(stats or {})

    @property
    def num_t1(self):
        """t1 samples per slow-time point."""
        return self.samples.shape[1]

    def variable_index(self, key):
        """Column index for a name or integer key."""
        if isinstance(key, str):
            return self.variable_names.index(key)
        return int(key)

    def bivariate(self, key):
        """:class:`BivariateWaveform` of one variable (Figs 8, 11)."""
        k = self.variable_index(key)
        return BivariateWaveform(
            self.t2, self.samples[:, :, k], name=self.variable_names[k]
        )

    def warping(self):
        """:class:`WarpingFunction` built from the omega(t2) trace."""
        return WarpingFunction(self.t2, self.omega)

    def local_frequency(self, times):
        """Interpolated local frequency at arbitrary times [Hz]."""
        return np.interp(times, self.t2, self.omega)

    def harmonic_trace(self, key, harmonic):
        """Complex envelope of one t1-harmonic versus t2.

        This is the frequency-domain view of the solution — the
        ``Xhat_i(t2)`` of the paper's eq. (18)/(19).  ``harmonic = 1``
        gives the RF fundamental's complex envelope (magnitude = carrier
        amplitude, argument = slow phase drift allowed by the phase
        condition).

        Returns
        -------
        numpy.ndarray
            Complex array, one value per stored t2 point.
        """
        k = self.variable_index(key)
        num = self.num_t1
        half = num // 2
        if abs(int(harmonic)) > half:
            raise ValueError(
                f"harmonic {harmonic} not representable with {num} t1 samples"
            )
        coeffs = np.fft.fftshift(
            np.fft.fft(self.samples[:, :, k], axis=1), axes=1
        ) / num
        return coeffs[:, half + int(harmonic)]

    def reconstruct(self, key, times):
        """Univariate ``x(t) = xhat(phi(t), t)`` (paper eq. 15)."""
        from repro.wampde.reconstruct import reconstruct_univariate

        return reconstruct_univariate(self, key, times)


class _EnvelopeStepper(CollocationSystem):
    """Shared per-step Newton kernel for the envelope drivers.

    Implements the :class:`~repro.linalg.solver_core.CollocationSystem`
    contract — :meth:`step` configures the per-step data, then hands the
    stepper itself to the shared :class:`~repro.linalg.solver_core.\
SolverCore`, which owns the Newton policy and (in chord mode) carries the
    factorised bordered Jacobian across envelope steps.
    """

    def __init__(self, dae, num_t1, options):
        self.dae = dae
        self.num_t1 = check_odd(num_t1, "N0 (t1 samples)")
        self.n = dae.n
        if options.integrator == "trap":
            self.theta = 0.5
        elif options.integrator == "be":
            self.theta = 1.0
        elif options.integrator == "theta":
            if not 0.5 <= options.theta <= 1.0:
                raise SimulationError(
                    f"theta must lie in [0.5, 1], got {options.theta!r}"
                )
            self.theta = float(options.theta)
        else:
            raise SimulationError(
                f"integrator must be 'theta', 'trap' or 'be', got "
                f"{options.integrator!r}"
            )
        self.options = options
        self.condition = as_phase_condition(
            options.phase_condition, options.phase_variable
        )
        self.phase_row = self.condition.gradient(self.num_t1, self.n)
        self.diffmat = fourier_differentiation_matrix(self.num_t1, period=1.0)
        self.d_big = kron_diffmat(self.diffmat, self.n, ordering="point")
        # The bordered collocation Jacobian's sparsity never changes across
        # Newton iterations or envelope steps: precompute its CSC structure
        # once and refresh only the numeric data each iteration.
        self.assembler = CollocationJacobianAssembler(
            self.num_t1,
            self.n,
            dq_mask=dae.dq_structure(),
            df_mask=dae.df_structure(),
            num_border=1,
        )
        # ... and the shared solver core: Newton policy, linear-solver
        # selection and factorisation reuse (carried across envelope steps
        # in chord mode), plus uniform stats for the run.
        self.core = core_from_options(options)
        # Per-step configuration consumed by residual()/jacobian().
        self._b_new_tile = None
        self._q_old = None
        self._rhs_old = None
        self._h = None
        # Memoised (iterate, q_flat, f_flat): jacobian(z) and rhs_terms()
        # re-see the iterate residual(z) just evaluated.
        self._eval_z = None
        self._eval_q = None
        self._eval_f = None
        # (z, h) of the most recent bordered-Jacobian assembly — the
        # metadata a checkpoint stores instead of the (unpicklable)
        # factorisation itself.  Refreshed inside jacobian(), so it tracks
        # exactly the matrix the chord policy holds factors of.
        self._jac_meta = None

    def _evaluate_qf(self, states, z):
        """Flat ``q_batch``/``f_batch`` at ``z``, memoised on the iterate."""
        if self._eval_z is not None and np.array_equal(self._eval_z, z):
            return self._eval_q, self._eval_f
        q_flat = self.dae.q_batch(states).ravel()
        f_flat = self.dae.f_batch(states).ravel()
        self._eval_z = np.array(z, dtype=float, copy=True)
        self._eval_q = q_flat
        self._eval_f = f_flat
        return q_flat, f_flat

    def rhs_terms(self, states, omega_value, t2_value):
        """``omega*D1 q + f - b`` at a configuration, plus the flat q."""
        states = np.asarray(states, dtype=float)
        z = np.concatenate([states.ravel(), [omega_value]])
        q_flat, f_flat = self._evaluate_qf(states, z)
        b_tile = np.tile(self.dae.b(t2_value), self.num_t1)
        fast = omega_value * (self.d_big @ q_flat) + f_flat - b_tile
        return fast, q_flat

    def residual(self, z):
        states = z[:-1].reshape(self.num_t1, self.n)
        w = z[-1]
        q_flat, f_flat = self._evaluate_qf(states, z)
        fast = w * (self.d_big @ q_flat) + f_flat - self._b_new_tile
        core = (
            (q_flat - self._q_old) / self._h
            + self.theta * fast
            + (1.0 - self.theta) * self._rhs_old
        )
        return np.concatenate(
            [core, [self.condition.residual(states)]]
        )

    def jacobian(self, z):
        self._jac_meta = (np.array(z, dtype=float), self._h)
        states = z[:-1].reshape(self.num_t1, self.n)
        w = z[-1]
        dq = self.dae.dq_dx_batch(states)
        df = self.dae.df_dx_batch(states)
        q_flat, _f_flat = self._evaluate_qf(states, z)
        omega_col = self.theta * (self.d_big @ q_flat)
        # core = dq/h + theta * (w * D1 @ dq + df), bordered by the omega
        # column and the phase row — data-only refresh, fixed pattern.
        return self.assembler.refresh(
            self.diffmat,
            dq,
            diag_inner=df,
            coupling_scale=w,
            outer_coeff=self.theta,
            # scipy's sparse "/ h" is "* (1/h)"; match it bit for bit.
            diag_outer=dq * (1.0 / self._h),
            border_columns=omega_col[:, None],
            border_rows=self.phase_row[None, :],
        )

    def structure(self):
        return {
            "num_points": self.num_t1,
            "n_vars": self.n,
            "num_border": 1,
            "size": self.num_t1 * self.n + 1,
        }

    def factor_metadata(self):
        """Checkpointable description of the frozen chord factorisation.

        Returns ``(z, h)`` — enough to re-assemble and refactorise the
        exact bordered matrix the chord policy currently holds — or
        ``None`` when no factors are held (full-Newton mode, or right
        after an invalidation), in which case a resumed march starts
        unfactored exactly like the live run would have continued.
        """
        chord = self.core._chord
        if chord is not None and chord._have and self._jac_meta is not None:
            z, h = self._jac_meta
            return (np.array(z, dtype=float), float(h))
        return None

    def solver_snapshot(self):
        """Checkpointable solver-core bookkeeping (stats + parameters)."""
        return {
            "stats": self.core.stats.as_dict(),
            "params": dict(self.core._params),
        }

    def restore(self, snapshot, factor_meta):
        """Rebuild the stepper state captured by a checkpoint.

        Factorising the re-assembled matrix is deterministic (SuperLU on
        identical input), so after this call the chord policy makes
        bit-for-bit the decisions of the uninterrupted march.
        """
        stats = self.core.stats
        for key, value in snapshot["stats"].items():
            setattr(stats, key, value)
        self.core._params.update(snapshot["params"])
        if factor_meta is not None and self.core._chord is not None:
            z, h = factor_meta
            self._h = float(h)
            matrix = self.jacobian(np.asarray(z, dtype=float))
            self.core.adopt_factorization(FrozenFactorization().factor(matrix))

    def step(self, x_samples, omega, q_old, rhs_old, t2_new, h):
        """One implicit t2 step; returns ``(x_new, omega_new, iterations)``.

        Raises
        ------
        ConvergenceError
            If the per-step Newton iteration fails.
        """
        num_t1, n = self.num_t1, self.n
        self._b_new_tile = np.tile(self.dae.b(t2_new), num_t1)
        self._q_old = q_old
        self._rhs_old = rhs_old
        self._h = h
        # A jump in the step size or the local frequency reshapes the
        # Newton matrix discontinuously; the core drops any carried chord
        # factorisation then (smooth drifts keep it).
        self.core.note_parameters(h=h, omega=omega)
        z0 = np.concatenate([x_samples.ravel(), [omega]])
        result = self.core.solve(self, z0)
        x_new = result.x[:-1].reshape(num_t1, n)
        omega_new = float(result.x[-1])
        if omega_new <= 0:
            raise SimulationError(
                f"local frequency went non-positive ({omega_new:g}) at "
                f"t2={t2_new:.6e}; the oscillation has likely quenched"
            )
        return x_new, omega_new, result.iterations


def _apply_warm_inputs(warm_start, initial_samples, omega0):
    """Fill missing ``initial_samples``/``omega0`` from a warm-start seed.

    ``warm_start`` is duck-typed (any object with ``samples``/``omega0``
    attributes, typically :class:`repro.service.cache.WarmStart`), so the
    engines stay import-independent of the service layer.
    """
    if warm_start is not None:
        if initial_samples is None:
            initial_samples = getattr(warm_start, "samples", None)
        if omega0 is None:
            omega0 = getattr(warm_start, "omega0", None)
    if initial_samples is None:
        raise SimulationError(
            "initial_samples is required (directly or via warm_start)"
        )
    if omega0 is None:
        raise SimulationError(
            "omega0 is required (directly or via warm_start)"
        )
    return initial_samples, omega0


def _adopt_warm_solver(stepper, warm_start):
    """Adopt a warm solver state + frozen-factorisation metadata.

    The chord policy then starts the march with factors already in hand;
    :meth:`SolverCore.note_parameters` still drops them on an ``h``/
    ``omega`` jump, so a badly matched warm start degrades to a cold one
    instead of corrupting the solve.
    """
    if warm_start is None:
        return
    state = getattr(warm_start, "solver_state", None)
    if state:
        stepper.core.adopt_warm_state(state)
    meta = getattr(warm_start, "factor_meta", None)
    if meta is not None and stepper.core._chord is not None:
        z, h = meta
        stepper._h = float(h)
        matrix = stepper.jacobian(np.asarray(z, dtype=float))
        stepper.core.adopt_factorization(FrozenFactorization().factor(matrix))


def _validate_inputs(dae, initial_samples, omega0, t2_start, t2_stop):
    initial_samples = np.asarray(initial_samples, dtype=float)
    if initial_samples.ndim != 2:
        raise SimulationError(
            f"initial_samples must be 2-D (N0, n), got shape "
            f"{initial_samples.shape}"
        )
    if initial_samples.shape[1] != dae.n:
        raise SimulationError(
            f"initial_samples has {initial_samples.shape[1]} variables, "
            f"DAE has {dae.n}"
        )
    check_positive(omega0, "omega0")
    if not t2_stop > t2_start:
        raise SimulationError(
            f"t2_stop must exceed t2_start, got [{t2_start}, {t2_stop}]"
        )
    return initial_samples


def solve_wampde_envelope(dae, initial_samples, omega0, t2_start, t2_stop,
                          num_steps, options=None, resume_from=None,
                          warm_start=None):
    """Integrate the WaMPDE in ``t2`` with uniform steps.

    Parameters
    ----------
    dae:
        The forced system; ``b(t)`` must depend only on the slow time
        (the paper's ``b(t2)``).
    initial_samples:
        ``(N0, n)`` samples of one steady oscillation cycle at
        ``t2_start`` on the normalised t1 grid — typically from
        :func:`repro.wampde.initial_condition.oscillator_initial_condition`.
    omega0:
        Initial local frequency [Hz].
    t2_start, t2_stop:
        Slow-time window.
    num_steps:
        Number of uniform t2 steps.
    options:
        :class:`WampdeEnvelopeOptions`.
    resume_from:
        A :class:`~repro.resilience.checkpoint.Checkpoint` (or a path to
        one saved on disk) from an earlier, interrupted run with the same
        DAE, window and options.  The march continues from the
        checkpointed step and produces the result of the uninterrupted
        run bit for bit.
    warm_start:
        Optional warm-start seed (duck-typed, typically
        :class:`repro.service.cache.WarmStart`): supplies
        ``initial_samples``/``omega0`` when those are passed as ``None``,
        and pre-adopts a previously exported solver state and frozen
        chord factorisation so the first steps skip the cold Jacobian
        build.  Ignored where ``resume_from`` already restores the exact
        mid-march state.

    Returns
    -------
    WampdeEnvelopeResult
    """
    opts = options or WampdeEnvelopeOptions()
    initial_samples, omega0 = _apply_warm_inputs(
        warm_start, initial_samples, omega0
    )
    initial_samples = _validate_inputs(
        dae, initial_samples, omega0, t2_start, t2_stop
    )
    if num_steps < 1:
        raise SimulationError(f"num_steps must be >= 1, got {num_steps}")

    # Batched q/f/Jacobian evaluations go through a compiled kernel when
    # the DAE is lowerable; the march logic is unchanged either way.
    dae, kernel_info = maybe_kernelize_batch(
        dae, getattr(opts, "kernel", "auto")
    )
    stepper = _EnvelopeStepper(dae, initial_samples.shape[0], opts)
    h = (t2_stop - t2_start) / num_steps
    manager = CheckpointManager(
        every=int(getattr(opts, "checkpoint_every", 0) or 0),
        path=getattr(opts, "checkpoint_path", None),
    )

    if resume_from is not None:
        checkpoint = (
            resume_from
            if isinstance(resume_from, Checkpoint)
            else Checkpoint.load(resume_from)
        )
        if checkpoint.kind != "wampde_envelope":
            raise SimulationError(
                f"cannot resume a WaMPDE envelope march from a "
                f"{checkpoint.kind!r} checkpoint"
            )
        payload = checkpoint.payload
        x_samples = np.array(payload["x_samples"], dtype=float)
        omega = float(payload["omega"])
        t2 = float(payload["t2"])
        stored_t2 = list(payload["stored_t2"])
        stored_omega = list(payload["stored_omega"])
        stored_samples = [np.array(s, dtype=float)
                          for s in payload["stored_samples"]]
        stats = dict(payload["stats"])
        since_store = int(payload["since_store"])
        start_step = int(checkpoint.step)
        stepper.restore(payload["solver"], payload["factor_meta"])
    else:
        x_samples = initial_samples.copy()
        omega = float(omega0)
        t2 = float(t2_start)
        stored_t2 = [t2]
        stored_omega = [omega]
        stored_samples = [x_samples.copy()]
        stats = {"steps": 0, "newton_iterations": 0}
        since_store = 0
        start_step = 0
        _adopt_warm_solver(stepper, warm_start)
    stats["kernel"] = kernel_info
    rhs_old, q_old = stepper.rhs_terms(x_samples, omega, t2)

    def take_checkpoint():
        return Checkpoint(
            kind="wampde_envelope",
            step=stats["steps"],
            t=t2,
            dt=h,
            payload={
                "x_samples": x_samples.copy(),
                "omega": omega,
                "t2": t2,
                "stored_t2": list(stored_t2),
                "stored_omega": list(stored_omega),
                "stored_samples": [s.copy() for s in stored_samples],
                "stats": dict(stats),
                "since_store": since_store,
                "t2_start": t2_start,
                "t2_stop": t2_stop,
                "num_steps": num_steps,
                "solver": stepper.solver_snapshot(),
                "factor_meta": stepper.factor_metadata(),
            },
        )

    for step_index in range(start_step, num_steps):
        t2_new = t2_start + (step_index + 1) * h
        try:
            x_samples, omega, iterations = stepper.step(
                x_samples, omega, q_old, rhs_old, t2_new, h
            )
        except ConvergenceError as exc:
            partial_stats = dict(stats)
            partial_stats["solver"] = stepper.core.stats.as_dict()
            raise SimulationError(
                f"WaMPDE envelope step {step_index + 1} failed to converge "
                f"at t2={t2_new:.6e}: {exc}",
                step=stats["steps"],
                time=t2,
                dt=h,
                iterations=exc.iterations,
                residual_norm=exc.residual_norm,
                checkpoint=manager.take(take_checkpoint),
                partial_result=WampdeEnvelopeResult(
                    stored_t2, stored_omega, stored_samples,
                    dae.variable_names, partial_stats,
                ),
            ) from exc
        stats["newton_iterations"] += iterations
        t2 = t2_new
        rhs_old, q_old = stepper.rhs_terms(x_samples, omega, t2)
        stats["steps"] += 1
        since_store += 1
        if since_store >= opts.store_every or step_index == num_steps - 1:
            stored_t2.append(t2)
            stored_omega.append(omega)
            stored_samples.append(x_samples.copy())
            since_store = 0
        manager.offer(stats["steps"], take_checkpoint)

    stats["solver"] = stepper.core.stats.as_dict()
    if stepper.core.recovery:
        stats["recovery"] = stepper.core.recovery.as_dict()
    stats["warm"] = {
        "factor_meta": stepper.factor_metadata(),
        "solver_state": stepper.core.export_warm_state(),
    }
    return WampdeEnvelopeResult(
        np.asarray(stored_t2),
        np.asarray(stored_omega),
        np.asarray(stored_samples),
        dae.variable_names,
        stats,
    )


def solve_wampde_envelope_adaptive(dae, initial_samples, omega0, t2_start,
                                   t2_stop, dt2_initial=None, options=None,
                                   max_steps=1_000_000, resume_from=None):
    """Integrate the WaMPDE in ``t2`` with error-controlled steps.

    Local error is estimated by **step doubling**: each accepted step is
    computed both as one step of size ``h`` and as two steps of ``h/2``;
    their difference is the Richardson estimate of the local error and the
    half-step result (the more accurate one) is kept.  Unlike a
    linear-predictor estimate, the doubling difference vanishes as ``h``
    shrinks even when the envelope state carries fast collocation-mode
    ringing, so the controller cannot spiral on stiff problems.  The
    price is ~3 Newton solves per accepted step.

    For strongly distorting oscillators prefer
    ``phase_condition="fourier"`` (the paper's eq. 20): the derivative
    anchor pins a waveform extremum, which can flatten and degenerate at
    the extremes of the frequency swing, whereas the Fourier anchor is a
    global functional and stays well conditioned.

    Parameters
    ----------
    dt2_initial:
        Starting step; defaults to 1e-4 of the window (grown quickly by
        the controller).
    max_steps:
        Safety bound on accepted steps.
    resume_from:
        A :class:`~repro.resilience.checkpoint.Checkpoint` (or a path to
        one) from an earlier, interrupted adaptive run with the same DAE,
        window and options; the march continues from the checkpointed
        accepted step.

    Returns
    -------
    WampdeEnvelopeResult
        With ``stats["rejected_steps"]`` recording controller activity.
    """
    opts = options or WampdeEnvelopeOptions()
    initial_samples = _validate_inputs(
        dae, initial_samples, omega0, t2_start, t2_stop
    )
    dae, kernel_info = maybe_kernelize_batch(
        dae, getattr(opts, "kernel", "auto")
    )
    stepper = _EnvelopeStepper(dae, initial_samples.shape[0], opts)
    span = t2_stop - t2_start
    h = float(dt2_initial) if dt2_initial else span * 1e-4
    h = min(max(h, opts.dt2_min or span * 1e-12), opts.dt2_max, span)
    order = 2 if stepper.theta < 0.75 else 1
    # The charge-difference residual (q - q_old)/h amplifies round-off as
    # 1/h; below h_noise the per-step Newton solve cannot reach its
    # residual tolerance no matter how accurate the iterate.  The step is
    # therefore never driven below this floor — the controller accepts at
    # the floor instead (accuracy beyond it is unattainable anyway).
    q_scale = float(np.max(np.abs(dae.q_batch(initial_samples)))) or 1.0
    h_noise = 100.0 * np.finfo(float).eps * q_scale / opts.newton.atol
    # Below ~1e-3 oscillation periods the q-continuity term freezes the
    # waveform and the frequency unknown loses its defining equation (the
    # omega column of the bordered Jacobian is swamped by the 1/h block),
    # so omega would drift on round-off: envelope steps must stay a
    # fraction of the oscillation period.
    h_physics = 1e-3 / float(omega0)
    h_floor = max(opts.dt2_min, span * 1e-12, h_noise, h_physics)

    manager = CheckpointManager(
        every=int(getattr(opts, "checkpoint_every", 0) or 0),
        path=getattr(opts, "checkpoint_path", None),
    )
    if resume_from is not None:
        checkpoint = (
            resume_from
            if isinstance(resume_from, Checkpoint)
            else Checkpoint.load(resume_from)
        )
        if checkpoint.kind != "wampde_envelope_adaptive":
            raise SimulationError(
                f"cannot resume an adaptive WaMPDE envelope march from a "
                f"{checkpoint.kind!r} checkpoint"
            )
        payload = checkpoint.payload
        x_samples = np.array(payload["x_samples"], dtype=float)
        omega = float(payload["omega"])
        t2 = float(payload["t2"])
        h = float(checkpoint.dt)
        stored_t2 = list(payload["stored_t2"])
        stored_omega = list(payload["stored_omega"])
        stored_samples = [np.array(s, dtype=float)
                          for s in payload["stored_samples"]]
        stats = dict(payload["stats"])
        stepper.restore(payload["solver"], payload["factor_meta"])
    else:
        x_samples = initial_samples.copy()
        omega = float(omega0)
        t2 = float(t2_start)
        stored_t2 = [t2]
        stored_omega = [omega]
        stored_samples = [x_samples.copy()]
        stats = {"steps": 0, "newton_iterations": 0, "rejected_steps": 0,
                 "newton_failures": 0}
    stats["kernel"] = kernel_info
    rhs_old, q_old = stepper.rhs_terms(x_samples, omega, t2)

    def take_checkpoint():
        return Checkpoint(
            kind="wampde_envelope_adaptive",
            step=stats["steps"],
            t=t2,
            dt=h,
            payload={
                "x_samples": x_samples.copy(),
                "omega": omega,
                "t2": t2,
                "stored_t2": list(stored_t2),
                "stored_omega": list(stored_omega),
                "stored_samples": [s.copy() for s in stored_samples],
                "stats": dict(stats),
                "t2_start": t2_start,
                "t2_stop": t2_stop,
                "solver": stepper.solver_snapshot(),
                "factor_meta": stepper.factor_metadata(),
            },
        )

    def fail(message):
        partial_stats = dict(stats)
        partial_stats["solver"] = stepper.core.stats.as_dict()
        return SimulationError(
            message,
            step=stats["steps"],
            time=t2,
            dt=h,
            checkpoint=manager.take(take_checkpoint),
            partial_result=WampdeEnvelopeResult(
                stored_t2, stored_omega, stored_samples,
                dae.variable_names, partial_stats,
            ),
        )

    while t2 < t2_stop - 1e-15 * max(abs(t2_stop), 1.0):
        h = min(h, t2_stop - t2)
        try:
            # Full step.
            x_full, omega_full, it_full = stepper.step(
                x_samples, omega, q_old, rhs_old, t2 + h, h
            )
            # Two half steps.
            x_mid, omega_mid, it_mid = stepper.step(
                x_samples, omega, q_old, rhs_old, t2 + 0.5 * h, 0.5 * h
            )
            rhs_mid, q_mid = stepper.rhs_terms(x_mid, omega_mid, t2 + 0.5 * h)
            x_half, omega_half, it_half = stepper.step(
                x_mid, omega_mid, q_mid, rhs_mid, t2 + h, 0.5 * h
            )
        except ConvergenceError:
            stats["newton_failures"] += 1
            if h <= h_floor * 1.01:
                raise fail(
                    f"WaMPDE adaptive step underflow at t2={t2:.6e} "
                    f"(Newton cannot converge at the minimum step "
                    f"{h_floor:.3e}; try a looser rtol or more t1 samples)"
                ) from None
            h = max(0.5 * h, h_floor)
            continue
        stats["newton_iterations"] += it_full + it_mid + it_half

        # Guard against Newton landing on a spurious solution branch: the
        # local frequency is continuous in t2, so a large jump within one
        # step means the step left the basin of the physical branch (both
        # half and full steps then agree on garbage, fooling the pure
        # error test).
        jump = max(abs(omega_full - omega), abs(omega_half - omega))
        if jump > 0.1 * abs(omega):
            if h <= h_floor * 1.01:
                raise fail(
                    f"WaMPDE adaptive run lost the oscillation branch at "
                    f"t2={t2:.6e} (omega jumped {jump:.3e} from "
                    f"{omega:.3e} at the minimum step).  Local time-domain "
                    f"phase anchors can degenerate when the waveform "
                    f"distorts; try phase_condition='fourier'."
                )
            stats["rejected_steps"] += 1
            h = max(0.25 * h, h_floor)
            continue

        scale_x = opts.atol + opts.rtol * np.maximum(
            np.abs(x_half), np.abs(x_samples)
        )
        scale_w = opts.atol + opts.rtol * max(abs(omega_half), abs(omega))
        err = float(np.sqrt(
            (np.mean(((x_half - x_full) / scale_x) ** 2)
             + ((omega_half - omega_full) / scale_w) ** 2) / 2.0
        ))
        if err > 1.0 and h > h_floor * 1.01:
            stats["rejected_steps"] += 1
            h = max(h * max(0.2, 0.9 * err ** (-1.0 / (order + 1))), h_floor)
            continue
        if err > 1.0:
            # At the floor: accept regardless (see h_noise note above).
            stats["floor_acceptances"] = stats.get("floor_acceptances", 0) + 1

        # Accept the half-step composition (the more accurate result).
        t2 = t2 + h
        x_samples, omega = x_half, omega_half
        rhs_old, q_old = stepper.rhs_terms(x_samples, omega, t2)
        stats["steps"] += 1
        stored_t2.append(t2)
        stored_omega.append(omega)
        stored_samples.append(x_samples.copy())
        growth = 0.9 * err ** (-1.0 / (order + 1)) if err > 0 else 5.0
        h = max(min(h * min(5.0, max(0.2, growth)), opts.dt2_max), h_floor)
        manager.offer(stats["steps"], take_checkpoint)
        if stats["steps"] >= max_steps:
            raise fail(
                f"WaMPDE adaptive run exceeded max_steps={max_steps}"
            )

    stats["solver"] = stepper.core.stats.as_dict()
    if stepper.core.recovery:
        stats["recovery"] = stepper.core.recovery.as_dict()
    return WampdeEnvelopeResult(
        np.asarray(stored_t2),
        np.asarray(stored_omega),
        np.asarray(stored_samples),
        dae.variable_names,
        stats,
    )


