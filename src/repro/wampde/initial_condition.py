"""Initial conditions for WaMPDE envelope runs.

Paper §4.1: "a natural initial condition is the solution of (12) with no
forcing, i.e., with b(t) constant."  This module automates the pipeline:

    DC point → perturb → transient until the limit cycle settles →
    period estimate from zero crossings → autonomous harmonic balance
    (with the *same* phase condition the envelope will use)

yielding ``(samples, omega0)`` ready for
:func:`repro.wampde.envelope.solve_wampde_envelope`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.phase_conditions import as_phase_condition
from repro.steadystate.dc import dc_operating_point
from repro.steadystate.harmonic_balance import harmonic_balance_autonomous
from repro.steadystate.shooting import estimate_period_from_transient
from repro.transient.engine import TransientOptions, simulate_transient
from repro.utils.validation import check_odd


def oscillator_initial_condition(dae_unforced, num_t1=25,
                                 phase_condition="fourier",
                                 phase_variable=0, period_guess=None,
                                 settle_cycles=40, steps_per_cycle=60,
                                 perturbation=None, t0=0.0):
    """Steady oscillation of the unforced system, as WaMPDE initial data.

    Parameters
    ----------
    dae_unforced:
        The oscillator with its forcing frozen (e.g. the VCO with constant
        control voltage).
    num_t1:
        Odd number of t1 samples to return.
    phase_condition, phase_variable:
        Must match the envelope solver's settings so the initial samples
        satisfy its phase equation.
    period_guess:
        Rough period [s]; used to size the settling transient.  Required —
        there is no reliable way to guess an oscillation timescale from the
        equations alone.
    settle_cycles:
        Limit-cycle settling length, in (estimated) periods.
    steps_per_cycle:
        Transient resolution during settling.
    perturbation:
        State offset added to the DC point to kick the oscillation
        (default: 10% of unity on the phase variable).

    Returns
    -------
    tuple
        ``(samples, omega0)``: ``(num_t1, n)`` waveform samples on the
        normalised t1 grid and the free-running frequency [Hz].
    """
    check_odd(num_t1, "num_t1")
    if period_guess is None:
        raise SimulationError(
            "period_guess is required: supply a rough oscillation period"
        )

    x_dc = dc_operating_point(dae_unforced, t0=t0)

    kick = np.zeros(dae_unforced.n)
    if perturbation is None:
        kick[phase_variable] = 0.1
    else:
        kick = np.asarray(perturbation, dtype=float)
        if kick.shape != (dae_unforced.n,):
            raise SimulationError(
                f"perturbation must have shape ({dae_unforced.n},), got "
                f"{kick.shape}"
            )

    options = TransientOptions(
        integrator="trap", dt=period_guess / steps_per_cycle
    )
    settle = simulate_transient(
        dae_unforced,
        x_dc + kick,
        t0,
        t0 + settle_cycles * period_guess,
        options,
    )
    period = estimate_period_from_transient(settle, key=phase_variable)

    # One representative cycle, sampled on the normalised grid, seeds HB.
    tail_start = settle.t[-1] - period
    times = tail_start + period * np.arange(num_t1) / num_t1
    rough_cycle = settle.sample(times)

    hb = harmonic_balance_autonomous(
        dae_unforced,
        frequency_guess=1.0 / period,
        initial=rough_cycle,
        phase_condition=phase_condition,
        phase_variable=phase_variable,
        num_samples=num_t1,
        forcing_time=t0,
    )
    condition = as_phase_condition(phase_condition, phase_variable)
    residual = condition.residual(hb.samples)
    scale = float(np.max(np.abs(hb.samples[:, phase_variable]))) or 1.0
    if abs(residual) > 1e-6 * scale * num_t1:
        raise SimulationError(
            f"initial condition violates the phase condition "
            f"(residual {residual:.3e}); HB did not converge cleanly"
        )
    return hb.samples, hb.frequency
