"""Two-tone quasiperiodic signals (paper §3, eqs. 1-2, Figs 1-3).

The running example::

    y(t) = sin(2 pi t / T1) * sin(2 pi t / T2),  T1 = 0.02 s, T2 = 1 s

and its bi-periodic bivariate form

    yhat(t1, t2) = sin(2 pi t1 / T1) * sin(2 pi t2 / T2)

with ``y(t) = yhat(t, t)``.
"""

from __future__ import annotations

import numpy as np

from repro.constants import TWO_PI
from repro.utils.validation import check_positive

#: The paper's fast period (50 Hz tone).
T1_PAPER = 0.02
#: The paper's slow period (1 Hz tone).
T2_PAPER = 1.0
#: Points per fast sinusoid used for the paper's Fig 1 (750 samples total).
POINTS_PER_CYCLE_PAPER = 15


def two_tone_signal(t, period1=T1_PAPER, period2=T2_PAPER):
    """The univariate two-tone signal ``y(t)`` of paper eq. (1)."""
    check_positive(period1, "period1")
    check_positive(period2, "period2")
    t = np.asarray(t, dtype=float)
    return np.sin(TWO_PI * t / period1) * np.sin(TWO_PI * t / period2)


def two_tone_bivariate(t1, t2, period1=T1_PAPER, period2=T2_PAPER):
    """The bivariate form ``yhat(t1, t2)`` of paper eq. (2).

    Bi-periodic: ``yhat(t1 + T1, t2 + T2) = yhat(t1, t2)``; setting
    ``t1 = t2 = t`` recovers :func:`two_tone_signal`.
    """
    check_positive(period1, "period1")
    check_positive(period2, "period2")
    t1 = np.asarray(t1, dtype=float)
    t2 = np.asarray(t2, dtype=float)
    return np.sin(TWO_PI * t1 / period1) * np.sin(TWO_PI * t2 / period2)


def transient_sample_count(period1=T1_PAPER, period2=T2_PAPER,
                           points_per_cycle=POINTS_PER_CYCLE_PAPER):
    """Samples needed to resolve one slow period by brute-force sampling.

    Paper §3: "If each fast sinusoid is sampled at n points, the total
    number of time-steps needed for one period of the slow modulation is
    n * T2 / T1" — 750 for the paper's numbers.
    """
    check_positive(period1, "period1")
    check_positive(period2, "period2")
    return int(round(points_per_cycle * period2 / period1))


def bivariate_sample_count(points_per_cycle=POINTS_PER_CYCLE_PAPER):
    """Samples for the bivariate grid: ``n x n`` (225 for the paper)."""
    return int(points_per_cycle) ** 2
