"""Representation-cost measurements for multi-time forms.

Quantifies the paper's §3 claims: the bivariate form of an AM signal needs
far fewer samples (Fig 2 vs Fig 1), while the *unwarped* bivariate form of
an FM signal undulates ~``k/(2 pi)`` times along t2 and cannot be sampled
compactly (Fig 5) — unlike its warped counterpart (Fig 6).
"""

from __future__ import annotations

import numpy as np

from repro.signals.multitone import two_tone_bivariate, two_tone_signal
from repro.utils.validation import as_1d_array


def undulation_count(values):
    """Number of sign changes of the derivative along a sampled line.

    A direct, discretisation-robust proxy for "how many undulations" a
    waveform has — each full oscillation contributes two extrema.
    """
    values = as_1d_array(values, "values")
    diffs = np.diff(values)
    signs = np.sign(diffs)
    nonzero = signs[signs != 0]
    if nonzero.size < 2:
        return 0
    return int(np.sum(nonzero[1:] != nonzero[:-1]))


def grid_undulation_count(grid_values, axis=0):
    """Maximum undulation count over all grid lines along ``axis``.

    ``grid_values`` is a 2-D array; for the paper's Fig 5 vs Fig 6
    comparison pass the bivariate samples and ``axis=0`` (t2 direction).
    """
    grid_values = np.asarray(grid_values, dtype=float)
    if grid_values.ndim != 2:
        raise ValueError(f"grid_values must be 2-D, got {grid_values.shape}")
    lines = grid_values.T if axis == 0 else grid_values
    return max(undulation_count(line) for line in lines)


def reconstruction_error_two_tone(points_per_axis, period1=0.02, period2=1.0,
                                  num_eval=2000):
    """Error of reconstructing ``y(t)`` from a sampled bivariate grid.

    Samples ``yhat`` on a ``points_per_axis x points_per_axis`` bi-periodic
    grid, rebuilds the univariate signal along the diagonal path through
    trigonometric interpolation, and returns the max abs error against the
    closed form.  Demonstrates quantitatively that ~15 points per axis
    (225 total) suffice where direct sampling needs 750.
    """
    from repro.spectral.fourier import samples_to_coefficients
    from repro.spectral.grid import collocation_grid, harmonic_indices

    n = int(points_per_axis)
    if n % 2 != 1:
        raise ValueError(f"points_per_axis must be odd, got {n}")
    grid1 = collocation_grid(n, period1)
    grid2 = collocation_grid(n, period2)
    values = two_tone_bivariate(
        grid1[None, :], grid2[:, None], period1, period2
    )
    # 2-D trigonometric interpolation via separable FFTs.
    coeffs = samples_to_coefficients(
        samples_to_coefficients(values, axis=1), axis=0
    )
    idx = harmonic_indices(n)

    t = np.linspace(0.0, period2, num_eval)
    phase1 = np.exp(2j * np.pi * np.multiply.outer(t / period1, idx))
    phase2 = np.exp(2j * np.pi * np.multiply.outer(t / period2, idx))
    # y(t) = sum_{ij} C[i, j] e^{2 pi i t/T2} e^{2 pi j t/T1}
    reconstructed = np.einsum("ti,ij,tj->t", phase2, coeffs, phase1).real
    exact = two_tone_signal(t, period1, period2)
    return float(np.max(np.abs(reconstructed - exact)))
