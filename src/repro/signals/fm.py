"""The prototypical FM signal and its bivariate forms (paper §3, eqs. 3-11).

    x(t) = cos(2 pi f0 t + k cos(2 pi f2 t)),   f0 >> f2

* ``xhat1`` (eq. 5): the *unwarped* bivariate form — bi-periodic but with
  ~k/(2 pi) undulations along t2, impossible to sample compactly (Fig 5).
* ``xhat2`` (eq. 6) + ``phi`` (eq. 7): the *warped* form — a plain cosine
  in ``t1`` with all FM absorbed into the warping; compact (Fig 6).
* ``xhat3``/``phi3`` (eq. 11): the alternative obtained from the
  derivative phase condition of eq. (9), demonstrating the
  order-``f2`` ambiguity of the local frequency.
"""

from __future__ import annotations

import numpy as np

from repro.constants import TWO_PI
from repro.utils.validation import check_positive

#: The paper's FM example parameters (Fig 4).
F0_PAPER = 1e6
F2_PAPER = 20e3
K_PAPER = 8.0 * np.pi


def fm_signal(t, f0=F0_PAPER, f2=F2_PAPER, k=K_PAPER):
    """FM waveform ``x(t)`` of paper eq. (3)."""
    check_positive(f0, "f0")
    check_positive(f2, "f2")
    t = np.asarray(t, dtype=float)
    return np.cos(TWO_PI * f0 * t + k * np.cos(TWO_PI * f2 * t))


def fm_instantaneous_frequency(t, f0=F0_PAPER, f2=F2_PAPER, k=K_PAPER):
    """Instantaneous frequency ``f(t) = f0 - k f2 sin(2 pi f2 t)`` (eq. 4)."""
    t = np.asarray(t, dtype=float)
    return f0 - k * f2 * np.sin(TWO_PI * f2 * t)


def fm_unwarped_bivariate(t1, t2, f0=F0_PAPER, f2=F2_PAPER, k=K_PAPER):
    """Unwarped bivariate ``xhat1(t1, t2)`` of paper eq. (5).

    ``x(t) = xhat1(t, t)``; periodic in ``t1`` (period ``1/f0``) and ``t2``
    (period ``1/f2``), but with ~``k/(2 pi)`` undulations along ``t2``.
    """
    t1 = np.asarray(t1, dtype=float)
    t2 = np.asarray(t2, dtype=float)
    return np.cos(TWO_PI * f0 * t1 + k * np.cos(TWO_PI * f2 * t2))


def fm_warped_bivariate(t1, t2=None):
    """Warped bivariate ``xhat2(t1, t2) = cos(2 pi t1)`` of paper eq. (6).

    Constant along ``t2`` (the argument is accepted for signature symmetry
    and broadcasting).  ``t1`` is the *warped* time in cycles.
    """
    t1 = np.asarray(t1, dtype=float)
    value = np.cos(TWO_PI * t1)
    if t2 is not None:
        value = np.broadcast_arrays(value, np.asarray(t2, dtype=float))[0]
    return value


def fm_warping_phi(t, f0=F0_PAPER, f2=F2_PAPER, k=K_PAPER):
    """Warping function ``phi(t) = f0 t + (k/2 pi) cos(2 pi f2 t)`` (eq. 7).

    Its derivative is exactly :func:`fm_instantaneous_frequency`, and
    ``x(t) = xhat2(phi(t), t)`` (paper eq. 8).
    """
    t = np.asarray(t, dtype=float)
    return f0 * t + (k / TWO_PI) * np.cos(TWO_PI * f2 * t)


def fm_alternative_bivariate(t1, t2, f2=F2_PAPER):
    """Alternative warped form ``xhat3(t1, t2) = cos(2 pi t1 + 2 pi f2 t2)``.

    Paper eq. (11), produced by the derivative phase condition of eq. (9).
    Still compactly sampleable: exactly one undulation along each axis.
    """
    t1 = np.asarray(t1, dtype=float)
    t2 = np.asarray(t2, dtype=float)
    return np.cos(TWO_PI * t1 + TWO_PI * f2 * t2)


def fm_alternative_phi(t, f0=F0_PAPER, f2=F2_PAPER, k=K_PAPER):
    """Alternative warping ``phi3(t) = f0 t + (k/2 pi) cos(2 pi f2 t) - f2 t``.

    Paper eq. (11).  Note ``d phi3/dt`` differs from the instantaneous
    frequency by exactly ``-f2`` — the order-``f2`` ambiguity of any local
    frequency definition (§3 discussion).
    """
    t = np.asarray(t, dtype=float)
    return (f0 - f2) * t + (k / TWO_PI) * np.cos(TWO_PI * f2 * t)
