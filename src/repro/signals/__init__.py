"""Signal toolkit for the paper's §3 examples (Figs 1-6).

Closed-form two-tone AM and prototypical FM signals, their unwarped and
warped bivariate representations, and the sampling-cost analysis that
motivates the whole multi-time approach.
"""

from repro.signals.multitone import (
    two_tone_signal,
    two_tone_bivariate,
    transient_sample_count,
    bivariate_sample_count,
)
from repro.signals.fm import (
    fm_signal,
    fm_instantaneous_frequency,
    fm_unwarped_bivariate,
    fm_warped_bivariate,
    fm_warping_phi,
    fm_alternative_bivariate,
    fm_alternative_phi,
)
from repro.signals.cost import (
    undulation_count,
    grid_undulation_count,
    reconstruction_error_two_tone,
)

__all__ = [
    "two_tone_signal",
    "two_tone_bivariate",
    "transient_sample_count",
    "bivariate_sample_count",
    "fm_signal",
    "fm_instantaneous_frequency",
    "fm_unwarped_bivariate",
    "fm_warped_bivariate",
    "fm_warping_phi",
    "fm_alternative_bivariate",
    "fm_alternative_phi",
    "undulation_count",
    "grid_undulation_count",
    "reconstruction_error_two_tone",
]
