"""Collocation grids and harmonic index bookkeeping."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_odd, check_positive


def collocation_grid(num_samples, period=1.0):
    """Uniform periodic collocation grid of ``num_samples`` (odd) points.

    Points lie on ``[0, period)``; the endpoint is excluded because it is
    identified with 0.
    """
    check_odd(num_samples, "num_samples")
    check_positive(period, "period")
    return period * np.arange(num_samples) / num_samples


def harmonic_indices(num_samples):
    """Signed harmonic indices ``-M .. M`` in *centered* order.

    For ``num_samples = 2M + 1`` returns ``[-M, ..., -1, 0, 1, ..., M]``.
    This is the ordering used by :func:`samples_to_coefficients`.
    """
    order = check_odd(num_samples, "num_samples")
    half = order // 2
    return np.arange(-half, half + 1)
