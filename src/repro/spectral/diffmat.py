"""Fourier spectral differentiation.

For an odd number of uniform samples the differentiation matrix is exact on
the space of trigonometric polynomials the grid can represent — the key
property exploited by the WaMPDE collocation along the warped time axis.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_odd, check_positive


def fourier_differentiation_matrix(num_samples, period=1.0):
    """Dense spectral differentiation matrix ``D`` for odd ``num_samples``.

    ``(D @ x_samples)`` equals the exact derivative of the trigonometric
    interpolant of ``x_samples`` at the grid points.

    The classical closed form for odd ``N`` on a period-``P`` grid is::

        D[j, k] = (2*pi/P) * (-1)**(j-k) / (2*sin(pi*(j-k)/N)),  j != k
        D[j, j] = 0
    """
    num = check_odd(num_samples, "num_samples")
    check_positive(period, "period")
    j = np.arange(num)
    diff = j[:, None] - j[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        matrix = np.where(
            diff == 0,
            0.0,
            0.5 * (-1.0) ** diff / np.sin(np.pi * diff / num),
        )
    return (2.0 * np.pi / period) * matrix


def spectral_derivative(samples, period=1.0, order=1, axis=-1):
    """Differentiate periodic ``samples`` along ``axis`` via the FFT.

    Parameters
    ----------
    samples:
        Uniform periodic samples (odd count along ``axis``).
    period:
        Period of the sampled signal.
    order:
        Derivative order (>= 1).
    axis:
        Axis along which to differentiate.
    """
    samples = np.asarray(samples, dtype=float)
    num = check_odd(samples.shape[axis], "number of samples")
    check_positive(period, "period")
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    freqs = np.fft.fftfreq(num, d=period / num)  # cycles per unit time
    multiplier = (2j * np.pi * freqs) ** order
    shape = [1] * samples.ndim
    shape[axis] = num
    spectrum = np.fft.fft(samples, axis=axis) * multiplier.reshape(shape)
    return np.fft.ifft(spectrum, axis=axis).real
