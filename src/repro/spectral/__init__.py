"""Spectral (Fourier) kernel for periodic collocation.

All multi-time solvers in this library discretise periodic time axes on
uniform grids of an odd number of points ``N = 2M + 1`` and manipulate the
corresponding degree-``M`` trigonometric interpolants.  Odd ``N`` avoids the
ambiguous Nyquist mode, so differentiation and interpolation are *exact* on
the represented trigonometric space.
"""

from repro.spectral.grid import collocation_grid, harmonic_indices
from repro.spectral.fourier import (
    fourier_coefficients,
    fourier_synthesis,
    coefficients_to_samples,
    samples_to_coefficients,
)
from repro.spectral.diffmat import fourier_differentiation_matrix, spectral_derivative
from repro.spectral.interpolation import (
    trig_interpolate,
    TrigInterpolant,
    BiTrigInterpolant,
)

__all__ = [
    "collocation_grid",
    "harmonic_indices",
    "fourier_coefficients",
    "fourier_synthesis",
    "coefficients_to_samples",
    "samples_to_coefficients",
    "fourier_differentiation_matrix",
    "spectral_derivative",
    "trig_interpolate",
    "TrigInterpolant",
    "BiTrigInterpolant",
]
