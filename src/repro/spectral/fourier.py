"""Conversions between periodic samples and Fourier coefficients.

Conventions
-----------
A real (or complex) signal sampled at ``N = 2M + 1`` uniform points over one
period ``P`` is represented by the degree-``M`` trigonometric interpolant

    x(t) = sum_{i=-M}^{M} X_i * exp(1j * 2*pi*i * t / P)

``samples_to_coefficients`` returns ``X_i`` in *centered* order (index ``-M``
first, matching :func:`repro.spectral.grid.harmonic_indices`);
``coefficients_to_samples`` inverts it exactly.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_odd


def samples_to_coefficients(samples, axis=-1):
    """Fourier coefficients (centered order) of uniformly sampled data.

    Parameters
    ----------
    samples:
        Array of samples on a :func:`collocation_grid`; the periodic axis is
        selected by ``axis`` and must have odd length.
    axis:
        Axis holding the periodic samples.

    Returns
    -------
    numpy.ndarray
        Complex coefficients, same shape as ``samples``, centered order.
    """
    samples = np.asarray(samples)
    check_odd(samples.shape[axis], "number of samples")
    coeffs = np.fft.fft(samples, axis=axis) / samples.shape[axis]
    return np.fft.fftshift(coeffs, axes=axis)


def coefficients_to_samples(coefficients, axis=-1, real=True):
    """Inverse of :func:`samples_to_coefficients`.

    Parameters
    ----------
    coefficients:
        Centered-order Fourier coefficients (odd length along ``axis``).
    axis:
        Axis holding the harmonics.
    real:
        When True, the imaginary part (which is round-off for coefficients
        of a real signal) is discarded.
    """
    coefficients = np.asarray(coefficients, dtype=complex)
    check_odd(coefficients.shape[axis], "number of coefficients")
    shifted = np.fft.ifftshift(coefficients, axes=axis)
    samples = np.fft.ifft(shifted, axis=axis) * coefficients.shape[axis]
    if real:
        return samples.real
    return samples


def fourier_coefficients(samples, axis=-1):
    """Alias of :func:`samples_to_coefficients` (descriptive public name)."""
    return samples_to_coefficients(samples, axis=axis)


def fourier_synthesis(coefficients, times, period=1.0):
    """Evaluate the trigonometric interpolant at arbitrary ``times``.

    Parameters
    ----------
    coefficients:
        1-D centered-order coefficients (odd length ``2M + 1``).
    times:
        Scalar or array of evaluation times.
    period:
        Period of the represented signal.

    Returns
    -------
    numpy.ndarray
        Real part of the interpolant at ``times`` (shape of ``times``).
    """
    coefficients = np.asarray(coefficients, dtype=complex)
    if coefficients.ndim != 1:
        raise ValueError(
            f"fourier_synthesis expects 1-D coefficients, got shape "
            f"{coefficients.shape}"
        )
    num = check_odd(coefficients.size, "number of coefficients")
    half = num // 2
    indices = np.arange(-half, half + 1)
    times = np.asarray(times, dtype=float)
    phases = np.exp(2j * np.pi * np.multiply.outer(times, indices) / period)
    return (phases @ coefficients).real
