"""Trigonometric (band-limited) interpolation of periodic samples."""

from __future__ import annotations

import numpy as np

from repro.spectral.fourier import fourier_synthesis, samples_to_coefficients
from repro.utils.validation import check_odd, check_positive


def trig_interpolate(samples, times, period=1.0):
    """Evaluate the trigonometric interpolant of ``samples`` at ``times``.

    ``samples`` must lie on the odd-length collocation grid for ``period``.
    The result agrees with ``samples`` exactly at grid points and is the
    unique degree-``M`` trigonometric polynomial through them.
    """
    coeffs = samples_to_coefficients(np.asarray(samples, dtype=float))
    return fourier_synthesis(coeffs, times, period=period)


class BiTrigInterpolant:
    """Trigonometric interpolation on a bi-periodic tensor grid.

    Exact (spectral) in *both* axes — the right evaluator for bi-periodic
    MPDE/WaMPDE quasiperiodic solutions, where linear interpolation along
    the slow axis would dominate the error budget.

    Parameters
    ----------
    samples:
        Grid values of shape ``(N2, N1)`` (odd sizes): ``samples[i2, i1]``
        is the value at ``(t1 = i1*P1/N1, t2 = i2*P2/N2)``.
    period1, period2:
        Axis periods.
    """

    def __init__(self, samples, period1=1.0, period2=1.0):
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2:
            raise ValueError(
                f"BiTrigInterpolant expects 2-D samples, got {samples.shape}"
            )
        check_odd(samples.shape[0], "N2 (rows)")
        check_odd(samples.shape[1], "N1 (columns)")
        check_positive(period1, "period1")
        check_positive(period2, "period2")
        self.period1 = float(period1)
        self.period2 = float(period2)
        # 2-D Fourier coefficients, centered order on both axes.
        self._coefficients = samples_to_coefficients(
            samples_to_coefficients(samples, axis=1), axis=0
        )
        half1 = samples.shape[1] // 2
        half2 = samples.shape[0] // 2
        self._idx1 = np.arange(-half1, half1 + 1)
        self._idx2 = np.arange(-half2, half2 + 1)

    def __call__(self, t1, t2):
        """Evaluate at broadcastable ``t1``/``t2`` (wrapped periodically)."""
        t1 = np.asarray(t1, dtype=float)
        t2 = np.asarray(t2, dtype=float)
        t1b, t2b = np.broadcast_arrays(t1, t2)
        phase1 = np.exp(
            2j * np.pi * np.multiply.outer(t1b.ravel() / self.period1, self._idx1)
        )
        phase2 = np.exp(
            2j * np.pi * np.multiply.outer(t2b.ravel() / self.period2, self._idx2)
        )
        values = np.einsum(
            "ti,ij,tj->t", phase2, self._coefficients, phase1
        ).real
        result = values.reshape(t1b.shape)
        return result if result.ndim else float(result)


class TrigInterpolant:
    """Callable trigonometric interpolant of one period of samples.

    Precomputes Fourier coefficients once so repeated evaluations (e.g. along
    a warped path) stay cheap.

    Parameters
    ----------
    samples:
        1-D array of odd length on the collocation grid.
    period:
        Period of the underlying signal.
    """

    def __init__(self, samples, period=1.0):
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1:
            raise ValueError(
                f"TrigInterpolant expects 1-D samples, got shape {samples.shape}"
            )
        check_odd(samples.size, "number of samples")
        check_positive(period, "period")
        self.period = float(period)
        self._coefficients = samples_to_coefficients(samples)

    @property
    def coefficients(self):
        """Centered-order Fourier coefficients of the interpolant."""
        return self._coefficients.copy()

    def __call__(self, times):
        """Evaluate the interpolant at scalar or array ``times``."""
        return fourier_synthesis(self._coefficients, times, period=self.period)

    def derivative(self, times):
        """Evaluate the first derivative of the interpolant at ``times``."""
        num = self._coefficients.size
        half = num // 2
        indices = np.arange(-half, half + 1)
        dcoeffs = self._coefficients * (2j * np.pi * indices / self.period)
        return fourier_synthesis(dcoeffs, times, period=self.period)
