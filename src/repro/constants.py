"""Physical and numerical constants used across the library."""

from __future__ import annotations

import math

#: 2*pi, used everywhere frequencies and angular frequencies are converted.
TWO_PI = 2.0 * math.pi

#: Vacuum permittivity [F/m]; used by parallel-plate varactor helpers.
EPSILON_0 = 8.8541878128e-12

#: Boltzmann constant [J/K]; used by the diode model.
BOLTZMANN = 1.380649e-23

#: Elementary charge [C]; used by the diode model.
ELEMENTARY_CHARGE = 1.602176634e-19

#: Default thermal voltage k*T/q at 300 K [V].
THERMAL_VOLTAGE_300K = BOLTZMANN * 300.0 / ELEMENTARY_CHARGE

#: Default absolute tolerance for Newton iterations on circuit residuals.
DEFAULT_NEWTON_ATOL = 1e-10

#: Default relative tolerance for Newton iterations.
DEFAULT_NEWTON_RTOL = 1e-9

#: Default maximum Newton iterations.
DEFAULT_NEWTON_MAXITER = 50
