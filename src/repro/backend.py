"""Array-backend abstraction (``xp``) for the batched ensemble hot path.

The lock-step ensemble march (PR 4/9) is expressed entirely as whole-grid
``(B, n)`` / ``(B, n, n)`` array operations.  This module makes the array
library behind those operations swappable — the Melvin-python idiom of
running the same NumPy-style code on GPU by exchanging one ``xp`` module
handle:

* :class:`NumpyBackend` — the default; every helper is an identity or a
  plain NumPy call, so default-backend runs are bit-identical to code
  that used ``np.*`` directly.
* :class:`CupyBackend` — opt-in (``backend="cupy"`` or ``REPRO_XP=cupy``)
  and gated on CuPy being importable; the batched factorisation runs as
  stacked device kernels (each whole-batch array op is one fused
  ``getrf/getrs``-style launch over the ``B`` axis).
* :class:`StrictHostBackend` — a *fake device* for tests and CI: arrays
  are wrapped so any implicit round-trip through host ``np.*`` (a bare
  ``np.asarray`` / ufunc call on a "device" array) raises instead of
  silently transferring.  Numerically it is NumPy, so trajectories agree
  with the default backend to solver tolerance while proving the hot
  path stays on the backend's ``xp``.

Selection mirrors :func:`repro.kernels.backends.resolve_mode`: ``None`` /
``"auto"`` is rewritten by the ``REPRO_XP`` environment variable (default
``numpy``); an explicitly requested backend that is unavailable raises
:class:`~repro.errors.ConfigurationError` instead of silently degrading.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ArrayBackend",
    "BatchedLinalg",
    "CupyBackend",
    "NumpyBackend",
    "StrictHostBackend",
    "NUMPY",
    "XP_NAMES",
    "array_namespace",
    "probe_cupy",
    "resolve_backend",
]

#: Recognised backend names (``"auto"`` defers to ``$REPRO_XP``).
XP_NAMES = ("auto", "numpy", "strict", "cupy")


# ---------------------------------------------------------------------------
# Batched dense factorisation
# ---------------------------------------------------------------------------


class BatchedLinalg:
    """Batched dense LU factor/solve over a stacked ``(B, n, n)`` axis.

    A vectorised Doolittle factorisation with partial pivoting: the
    ``k``-loop runs over the ``n`` columns only, every operation inside it
    is a whole-batch array op, so on a device backend each iteration is a
    handful of fused kernels over all ``B`` blocks (the ``getrf``-style
    batched pattern) and on NumPy it is ``O(n)`` python dispatches instead
    of ``O(B)`` per-block ``scipy`` calls.  No inverses are ever
    materialised — :meth:`lu_solve` is a permutation gather plus
    forward/back substitution.
    """

    def __init__(self, xp):
        self.xp = xp

    def lu_factor(self, stack):
        """Factor a ``(B, n, n)`` stack in place of per-block LU calls.

        Returns ``(lu, perm)`` where ``lu`` holds the combined L (unit
        diagonal, below) and U (on/above) factors and ``perm`` is the
        ``(B, n)`` row permutation applied to each block (and to be
        applied to each right-hand side).

        Raises
        ------
        numpy.linalg.LinAlgError
            If any block in the stack is singular or produces non-finite
            factors — matching the whole-batch failure semantics of the
            dense compiled kernel, which the ensemble chord converts to a
            :class:`~repro.errors.SingularJacobianError` (dt halving).
        """
        xp = self.xp
        a = xp.array(stack)
        batch, n = a.shape[0], a.shape[1]
        bidx = xp.arange(batch)
        perm = xp.arange(n) * xp.ones((batch, 1), dtype=int)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            for k in range(n):
                # Partial pivoting: per-block argmax over |column k|.
                p = xp.argmax(xp.abs(a[:, k:, k]), axis=1) + k
                rows_k = a[bidx, k]
                rows_p = a[bidx, p]
                a[bidx, k] = rows_p
                a[bidx, p] = rows_k
                perm_k = perm[bidx, k]
                perm[bidx, k] = perm[bidx, p]
                perm[bidx, p] = perm_k
                if k + 1 < n:
                    pivot = a[:, k, k]
                    a[:, k + 1:, k] = a[:, k + 1:, k] / pivot[:, None]
                    a[:, k + 1:, k + 1:] = (
                        a[:, k + 1:, k + 1:]
                        - a[:, k + 1:, k:k + 1] * a[:, k:k + 1, k + 1:]
                    )
        diag = a[bidx[:, None], xp.arange(n)[None, :], xp.arange(n)[None, :]]
        ok = bool(xp.all(xp.isfinite(a))) and bool(xp.all(diag != 0.0))
        if not ok:
            raise np.linalg.LinAlgError(
                "singular (or non-finite) block in batched factorisation"
            )
        return a, perm

    def lu_solve(self, lu, perm, rhs):
        """Solve every block for a ``(B, n)`` right-hand-side stack."""
        xp = self.xp
        n = rhs.shape[1]
        bidx = xp.arange(rhs.shape[0])
        x = rhs[bidx[:, None], perm]
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            for k in range(1, n):
                x[:, k] = x[:, k] - xp.sum(lu[:, k, :k] * x[:, :k], axis=1)
            for k in range(n - 1, -1, -1):
                if k + 1 < n:
                    x[:, k] = x[:, k] - xp.sum(
                        lu[:, k, k + 1:] * x[:, k + 1:], axis=1
                    )
                x[:, k] = x[:, k] / lu[:, k, k]
        return x


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class ArrayBackend:
    """An array module (``xp``) plus the transfer/factorisation policy.

    Subclasses set :attr:`name`, :attr:`xp` and :attr:`is_device`; the
    batched linear algebra defaults to the generic vectorised
    :class:`BatchedLinalg` over ``xp``.
    """

    name = "abstract"
    is_device = False
    #: Scenario-chunk size for device-resident marches (``None`` = run the
    #: whole batch in one march).  Overridable via ``REPRO_XP_BLOCK``.
    block_size = None

    def __init__(self, xp):
        self.xp = xp
        self.linalg = BatchedLinalg(xp)
        env_block = os.environ.get("REPRO_XP_BLOCK")
        if env_block:
            self.block_size = max(int(env_block), 1)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"

    # -- transfers ---------------------------------------------------------

    def asarray(self, values, dtype=float):
        """Coerce ``values`` (host or backend) to a backend array."""
        return self.xp.asarray(values, dtype=dtype)

    def from_host(self, values):
        """Move a host (NumPy) array onto the backend."""
        return self.xp.asarray(values)

    def to_host(self, values):
        """View/move a backend array back to host NumPy (may alias)."""
        return np.asarray(values)

    def to_host_copy(self, values):
        """Host NumPy copy of a backend array (never aliases)."""
        return np.array(self.to_host(values))

    # -- policy ------------------------------------------------------------

    def ensemble_shard_size(self, kernel_mode):
        """Scenarios per service shard for this backend.

        ``None`` disables sharding (the whole batch runs as one
        device-resident march — fragmenting it into slivers would waste
        the device).  Host backends shard so the process pool can spread
        scenarios across cores: compiled kernels amortise per-step
        dispatch, so they take bigger shards than the python lock-step.
        """
        if self.is_device:
            return None
        return 8 if kernel_mode == "python" else 64


class NumpyBackend(ArrayBackend):
    """The default host backend — plain NumPy, bit-identical semantics."""

    name = "numpy"
    is_device = False

    def __init__(self):
        super().__init__(np)

    def to_host(self, values):
        return values if isinstance(values, np.ndarray) else np.asarray(values)


#: Process-wide default backend.
NUMPY = NumpyBackend()


def probe_cupy():
    """Return the imported ``cupy`` module, or ``None`` if unavailable.

    Re-evaluated on every call (no caching) so tests masking
    ``sys.modules`` are seen immediately — mirroring
    :func:`repro.kernels.backends.probe_numba`.
    """
    try:
        import cupy  # noqa: PLC0415 - optional dependency probe
    except Exception:
        return None
    return cupy


class CupyBackend(ArrayBackend):
    """CuPy device backend (opt-in, gated on CuPy being importable).

    The generic :class:`BatchedLinalg` already runs as stacked device
    kernels under CuPy — every whole-batch op inside the ``k``-loop is one
    fused launch over the ``B`` axis, the batched ``getrf/getrs`` access
    pattern without a host round-trip.
    """

    name = "cupy"
    is_device = True

    def __init__(self):
        cupy = probe_cupy()
        if cupy is None:
            raise ConfigurationError(
                "backend='cupy' requested but cupy is not importable; "
                "install cupy or use backend='numpy'"
            )
        super().__init__(cupy)

    def to_host(self, values):
        if isinstance(values, np.ndarray):
            return values
        return self.xp.asnumpy(values)


# ---------------------------------------------------------------------------
# Strict host backend (fake device for tests / CI)
# ---------------------------------------------------------------------------


def _unwrap(value):
    if isinstance(value, StrictHostArray):
        return value._a
    if isinstance(value, tuple):
        return tuple(_unwrap(v) for v in value)
    if isinstance(value, list):
        return [_unwrap(v) for v in value]
    return value


def _wrap(value):
    if isinstance(value, np.ndarray):
        return StrictHostArray(value)
    if isinstance(value, tuple):
        return tuple(_wrap(v) for v in value)
    if isinstance(value, list):
        return [_wrap(v) for v in value]
    return value


class StrictHostArray:
    """A NumPy array posing as a device array.

    Arithmetic, indexing and the strict ``xp`` module all work (they
    delegate to NumPy on the wrapped buffer), but any *implicit* host
    conversion — ``np.asarray(a)``, a bare ``np.*`` ufunc on the wrapper,
    ``float(np.sum(a))``-style silent round-trips — fails loudly:

    * ``__array__`` raises, so ``np.asarray`` / ``np.array`` on a strict
      array is a :class:`TypeError` instead of a hidden transfer;
    * ``__array_ufunc__ = None`` makes NumPy ufuncs return
      ``NotImplemented``, which routes binary ops with host operands
      through the wrapper's reflected methods (mixing a host parameter
      stack into device math stays legal and on-backend).

    Explicit synchronisation (``backend.to_host``, ``float(scalar)``)
    remains available — that is the point: transfers must be spelled out.
    """

    __slots__ = ("_a",)
    __array_ufunc__ = None
    __array_priority__ = 1000

    def __init__(self, array):
        self._a = np.asarray(array)

    def __array__(self, *args, **kwargs):
        raise TypeError(
            "implicit host transfer of a strict backend array; use "
            "backend.to_host(...) for an explicit synchronisation"
        )

    # -- metadata ----------------------------------------------------------

    @property
    def shape(self):
        return self._a.shape

    @property
    def ndim(self):
        return self._a.ndim

    @property
    def size(self):
        return self._a.size

    @property
    def dtype(self):
        return self._a.dtype

    @property
    def T(self):
        return StrictHostArray(self._a.T)

    def __len__(self):
        return len(self._a)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"strict({self._a!r})"

    # -- explicit conversions / methods -----------------------------------

    def copy(self):
        return StrictHostArray(self._a.copy())

    def astype(self, dtype):
        return StrictHostArray(self._a.astype(dtype))

    def reshape(self, *shape):
        return StrictHostArray(self._a.reshape(*shape))

    def ravel(self):
        return StrictHostArray(self._a.ravel())

    def fill(self, value):
        self._a.fill(_unwrap(value))

    def item(self):
        return self._a.item()

    def sum(self, *args, **kwargs):
        return _wrap(self._a.sum(*_unwrap(args), **kwargs))

    def max(self, *args, **kwargs):
        return _wrap(self._a.max(*_unwrap(args), **kwargs))

    def min(self, *args, **kwargs):
        return _wrap(self._a.min(*_unwrap(args), **kwargs))

    def mean(self, *args, **kwargs):
        return _wrap(self._a.mean(*_unwrap(args), **kwargs))

    def all(self, *args, **kwargs):
        return _wrap(self._a.all(*_unwrap(args), **kwargs))

    def any(self, *args, **kwargs):
        return _wrap(self._a.any(*_unwrap(args), **kwargs))

    def __float__(self):
        return float(self._a)

    def __int__(self):
        return int(self._a)

    def __bool__(self):
        return bool(self._a)

    # -- indexing ----------------------------------------------------------

    def __getitem__(self, key):
        return _wrap(self._a[_unwrap(key)])

    def __setitem__(self, key, value):
        self._a[_unwrap(key)] = _unwrap(value)

    # -- arithmetic --------------------------------------------------------

    def _binary(self, other, op):
        return _wrap(op(self._a, _unwrap(other)))

    def _rbinary(self, other, op):
        return _wrap(op(_unwrap(other), self._a))

    def _ibinary(self, other, op):
        op(self._a, _unwrap(other), out=self._a)
        return self

    def __add__(self, o):
        return self._binary(o, np.add)

    def __radd__(self, o):
        return self._rbinary(o, np.add)

    def __iadd__(self, o):
        return self._ibinary(o, np.add)

    def __sub__(self, o):
        return self._binary(o, np.subtract)

    def __rsub__(self, o):
        return self._rbinary(o, np.subtract)

    def __isub__(self, o):
        return self._ibinary(o, np.subtract)

    def __mul__(self, o):
        return self._binary(o, np.multiply)

    def __rmul__(self, o):
        return self._rbinary(o, np.multiply)

    def __imul__(self, o):
        return self._ibinary(o, np.multiply)

    def __truediv__(self, o):
        return self._binary(o, np.divide)

    def __rtruediv__(self, o):
        return self._rbinary(o, np.divide)

    def __itruediv__(self, o):
        return self._ibinary(o, np.divide)

    def __pow__(self, o):
        return self._binary(o, np.power)

    def __rpow__(self, o):
        return self._rbinary(o, np.power)

    def __matmul__(self, o):
        return self._binary(o, np.matmul)

    def __rmatmul__(self, o):
        return self._rbinary(o, np.matmul)

    def __mod__(self, o):
        return self._binary(o, np.mod)

    def __rmod__(self, o):
        return self._rbinary(o, np.mod)

    def __neg__(self):
        return StrictHostArray(-self._a)

    def __pos__(self):
        return StrictHostArray(+self._a)

    def __abs__(self):
        return StrictHostArray(np.abs(self._a))

    def __invert__(self):
        return StrictHostArray(~self._a)

    def __and__(self, o):
        return self._binary(o, np.logical_and)

    def __or__(self, o):
        return self._binary(o, np.logical_or)

    def __eq__(self, o):
        return self._binary(o, np.equal)

    def __ne__(self, o):
        return self._binary(o, np.not_equal)

    def __lt__(self, o):
        return self._binary(o, np.less)

    def __le__(self, o):
        return self._binary(o, np.less_equal)

    def __gt__(self, o):
        return self._binary(o, np.greater)

    def __ge__(self, o):
        return self._binary(o, np.greater_equal)

    __hash__ = None


class _StrictModule:
    """``xp`` namespace for the strict backend.

    A generic delegating module: every callable NumPy attribute is
    wrapped to unwrap strict-array arguments, run the NumPy function, and
    wrap ndarray results back into :class:`StrictHostArray`; scalars and
    non-array results pass through (explicit host scalars are fine — it
    is the *array* round-trips that must be spelled out).
    """

    def __init__(self):
        self._cache = {}

    def __getattr__(self, name):
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        attr = getattr(np, name)
        if not callable(attr):
            return attr

        def call(*args, **kwargs):
            out = kwargs.pop("out", None)
            if out is not None:
                kwargs["out"] = _unwrap(out)
            result = attr(*_unwrap(args), **{
                k: _unwrap(v) for k, v in kwargs.items()
            })
            if out is not None:
                return out
            return _wrap(result)

        call.__name__ = name
        self._cache[name] = call
        return call


class StrictHostBackend(ArrayBackend):
    """Fake device backend: NumPy numerics, loud implicit transfers.

    Used by the backend-parity tests and the CI backend-smoke job
    (``REPRO_XP=strict``): an ensemble hot path that funnels a "device"
    array through bare ``np.*`` raises immediately instead of silently
    round-tripping through the host.
    """

    name = "strict"
    is_device = True

    def __init__(self):
        super().__init__(_STRICT_XP)

    def from_host(self, values):
        if isinstance(values, StrictHostArray):
            return values
        return StrictHostArray(np.asarray(values))

    def to_host(self, values):
        if isinstance(values, StrictHostArray):
            return values._a
        return np.asarray(values)


# ---------------------------------------------------------------------------
# Resolution and dispatch
# ---------------------------------------------------------------------------


def resolve_backend(requested):
    """Resolve a backend request to ``(backend, meta)``.

    Mirrors :func:`repro.kernels.backends.resolve_mode`: ``None`` and
    ``"auto"`` defer to ``$REPRO_XP`` (default ``numpy``); an explicitly
    named backend that is unavailable raises
    :class:`~repro.errors.ConfigurationError`.  ``meta`` records the
    request provenance for ``stats["backend"]``:
    ``{"requested": <name>, "source": "default"|"env"|"option"|"instance"}``.

    An :class:`ArrayBackend` (or duck-typed object with ``xp`` and
    ``linalg`` attributes) passes through untouched, so tests can inject
    fake device backends.
    """
    if isinstance(requested, ArrayBackend) or (
        requested is not None
        and not isinstance(requested, str)
        and hasattr(requested, "xp")
        and hasattr(requested, "linalg")
    ):
        name = getattr(requested, "name", type(requested).__name__)
        return requested, {"requested": str(name), "source": "instance"}
    if requested is not None and not isinstance(requested, str):
        raise ConfigurationError(
            f"backend must be a name from {XP_NAMES} or an ArrayBackend, "
            f"got {requested!r}"
        )

    name = "auto" if requested is None else str(requested)
    source = "option" if requested not in (None, "auto") else "default"
    if name == "auto":
        env = os.environ.get("REPRO_XP", "").strip()
        if env:
            name, source = env, "env"
        else:
            name = "numpy"
    if name not in XP_NAMES or name == "auto":
        raise ConfigurationError(
            f"unknown array backend {name!r}; expected one of {XP_NAMES}"
        )

    meta = {"requested": name, "source": source}
    if name == "numpy":
        return NUMPY, meta
    if name == "strict":
        return StrictHostBackend(), meta
    return CupyBackend(), meta


def array_namespace(*arrays):
    """The ``xp`` module the given arrays live on (NumPy when in doubt).

    The dispatch hook for batch evaluators: a stacked DAE's ``*_batch``
    method calls ``xp = array_namespace(states)`` and computes with
    ``xp.*``, so the same code serves host and device arrays.
    """
    for a in arrays:
        if isinstance(a, StrictHostArray):
            return _STRICT_XP
        xp = getattr(a, "__backend_xp__", None)
        if xp is not None:
            return xp
        module = type(a).__module__
        if module.startswith("cupy"):
            cupy = probe_cupy()
            if cupy is not None:
                return cupy
    return np


#: One shared strict module so ``array_namespace`` returns a stable handle.
_STRICT_XP = _StrictModule()
