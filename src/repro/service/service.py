"""The simulation service: submit/status/cancel/result over a worker pool.

``SimulationService`` is the front end of the job layer:

* **submit** an :class:`~repro.api.requests.AnalysisRequest`, get a
  :class:`~repro.service.jobs.Job` back immediately;
* an **exact cache hit** (same content key as a finished job) replays the
  stored serialized result — bit-identical, no solver work;
* a **family seed hit** warm-starts the run from a cached settled state
  (see :class:`~repro.service.cache.WarmStartCache`);
* **shardable** requests (ensemble members, independent sweep points)
  fan out across a spawn-context process pool and are merged on
  completion; everything else runs as one job;
* **streaming** jobs publish serialized partial results at the PR-6
  checkpoint cadence (:mod:`repro.service.streaming`).

``workers=0`` (the default) runs every job synchronously in-process —
same states, same cache, deterministic, no subprocesses — which is what
tests and the thin CLI client use unless parallelism is requested.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import queue as stdlib_queue
import threading
from concurrent.futures import ProcessPoolExecutor

from repro.service.cache import WarmStartCache
from repro.service.jobs import Job, JobState
from repro.service.queue import JobQueue
from repro.service.streaming import decode_stream_item
from repro.service.workers import execute_payload


class SimulationService:
    """Process-based job layer over :func:`repro.api.run`.

    Parameters
    ----------
    workers:
        Worker processes.  ``0`` runs jobs inline (synchronously) in the
        submitting process.
    cache:
        A :class:`~repro.service.cache.WarmStartCache` to share between
        services, or ``None`` for a private one.
    stream_every:
        Checkpoint/stream cadence (accepted steps) for jobs submitted
        with ``stream=True``.
    """

    def __init__(self, workers=0, cache=None, stream_every=10):
        self.workers = max(int(workers), 0)
        self.cache = cache if cache is not None else WarmStartCache()
        self.queue = JobQueue()
        self.stream_every = int(stream_every)
        self._pool = None
        self._manager = None
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self._closed = False

    # -- infrastructure --------------------------------------------------

    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                context = multiprocessing.get_context("spawn")
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                )
            return self._pool

    def _ensure_manager(self):
        with self._lock:
            if self._manager is None:
                self._manager = multiprocessing.get_context(
                    "spawn"
                ).Manager()
            return self._manager

    @staticmethod
    def _picklable(request):
        """Whether the request can cross the process boundary.

        Requests carrying closures (lambda factories) cannot; they run
        inline instead of in the pool.
        """
        try:
            pickle.dumps(request)
            return True
        except Exception:
            return False

    # -- submission ------------------------------------------------------

    def submit(self, request, stream=False):
        """Enqueue ``request``; returns its :class:`Job` immediately.

        With ``workers=0`` the call blocks until the job finishes (the
        job still reports states/results uniformly).
        """
        if self._closed:
            raise RuntimeError("service is closed")
        job_id = f"job-{next(self._counter)}"
        job = Job(
            job_id, request,
            cache_key=request.cache_key(),
            seed_key=request.seed_key(),
        )
        self.queue.add(job)

        if job.cache_key is not None:
            cached = self.cache.load_result(job.cache_key)
            if cached is not None:
                job.cache_hit = True
                job.finish(cached)
                return job

        warm = self.cache.load_seed(job.seed_key)
        if warm is not None:
            job.warm_hit = True

        if stream:
            if self.workers:
                job.stream_queue = self._ensure_manager().Queue()
            else:
                job.stream_queue = stdlib_queue.Queue()

        if self.workers == 0 or not self._picklable(request):
            self._run_inline(job, warm)
            return job

        shards = request.shards()
        if shards and len(shards) > 1:
            self._run_sharded(job, shards)
        else:
            self._run_pooled(job, warm)
        return job

    # -- execution strategies --------------------------------------------

    def _stream_args(self, job):
        if job.stream_queue is None:
            return {"stream_queue": None, "stream_every": 0}
        return {
            "stream_queue": job.stream_queue,
            "stream_every": self.stream_every,
        }

    def _finalize(self, job, result):
        """Store the finished result in the cache and complete the job."""
        if job.state == JobState.CANCELLED:
            return
        if job.cache_key is not None:
            self.cache.store_result(job.cache_key, result)
        seed = job.request.extract_warm_start(result)
        if seed is not None and job.seed_key is not None:
            seed.source_key = job.cache_key or ""
            self.cache.store_seed(job.seed_key, seed)
        job.finish(result)

    def _run_inline(self, job, warm):
        job.mark_running()
        try:
            result = execute_payload(
                job.request, warm_start=warm, **self._stream_args(job)
            )
        except Exception as exc:
            job.fail(exc)
            return
        self._finalize(job, result)

    def _run_pooled(self, job, warm):
        pool = self._ensure_pool()
        future = pool.submit(
            execute_payload, job.request, warm, **self._stream_args(job)
        )
        job._futures.append(future)
        job.mark_running()

        def on_done(fut):
            if job.state == JobState.CANCELLED:
                return
            error = None if fut.cancelled() else fut.exception()
            if fut.cancelled():
                job.cancel()
            elif error is not None:
                job.fail(error)
            else:
                self._finalize(job, fut.result())

        future.add_done_callback(on_done)

    def _run_sharded(self, job, shards):
        pool = self._ensure_pool()
        job.shard_count = len(shards)
        futures = [pool.submit(execute_payload, shard) for shard in shards]
        job._futures.extend(futures)
        job.mark_running()

        def collect():
            results = []
            for future in futures:
                if job.state == JobState.CANCELLED:
                    return
                try:
                    results.append(future.result())
                except Exception as exc:
                    for pending in futures:
                        pending.cancel()
                    job.fail(exc)
                    return
            try:
                merged = job.request.merge(results)
            except Exception as exc:
                job.fail(exc)
                return
            self._finalize(job, merged)

        threading.Thread(
            target=collect, name=f"{job.job_id}-collector", daemon=True
        ).start()

    # -- client surface --------------------------------------------------

    def status(self, job_id):
        """Plain-data status snapshot of one job."""
        return self.queue.get(job_id).describe()

    def result(self, job_id, timeout=None):
        """Block for the job's result (raises its error on failure)."""
        return self.queue.result(job_id, timeout)

    def cancel(self, job_id):
        """Cancel unstarted work; running solves cannot be interrupted."""
        return self.queue.get(job_id).cancel()

    def stream(self, job_id, poll=0.1):
        """Iterate ``(step, t, partial_result)`` for a streaming job.

        Yields partials as they arrive and returns once the job is
        terminal and the queue is drained.  The partial at step ``k`` is
        the stored trajectory prefix at that step — bit-identical with
        the corresponding prefix of the final result.
        """
        job = self.queue.get(job_id)
        if job.stream_queue is None:
            raise ValueError(
                f"{job_id} was not submitted with stream=True"
            )
        while True:
            try:
                item = job.stream_queue.get(timeout=poll)
            except stdlib_queue.Empty:
                if job.finished:
                    break
                continue
            yield decode_stream_item(item)
        while True:
            try:
                item = job.stream_queue.get_nowait()
            except stdlib_queue.Empty:
                break
            yield decode_stream_item(item)

    def cache_stats(self):
        """Warm-start cache counters (see :meth:`WarmStartCache.stats`)."""
        return self.cache.stats()

    # -- lifecycle -------------------------------------------------------

    def close(self):
        """Shut down the pool/manager; finished jobs stay readable."""
        self._closed = True
        with self._lock:
            pool, self._pool = self._pool, None
            manager, self._manager = self._manager, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        if manager is not None:
            manager.shutdown()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
