"""Content-keyed warm-start cache for the simulation service.

Two kinds of entries, looked up by the content keys of
:mod:`repro.service.keys`:

* **result entries** (exact key) — the full serialized result of a
  finished job.  Resubmitting a bit-identical request replays the stored
  payload through :func:`repro.api.serialize.from_jsonable`, so the
  returned result is bit-identical with the original run's at zero solver
  cost.
* **seed entries** (family key) — a :class:`WarmStart` extracted from a
  finished result: a settled periodic orbit, a final state, frozen
  chord-factorisation metadata and the solver-core parameter snapshot.  A
  *different* request of the same family (same DAE/analysis/structure,
  different window or tolerance) starts from the seed instead of the cold
  DC → settle → HB pipeline.

Entries are stored in serialized form: immutable by construction (no
aliasing into live solver arrays) and exactly what job streaming puts on
the wire.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.api.serialize import (
    SerializableMixin,
    SerializationError,
    from_jsonable,
    to_jsonable,
)


@dataclass
class WarmStart(SerializableMixin):
    """Warm-start seed consumed by the engines' ``warm_start=`` seams.

    The engines duck-type this (they read attributes, they never import
    the service layer): ``samples``/``omega0`` seed periodic analyses,
    ``x0`` seeds transients, ``factor_meta``/``solver_state`` pre-adopt a
    frozen chord factorisation and the solver-core parameter snapshot.
    Any field may be ``None``; engines fall back to their cold path for
    whatever is missing.
    """

    samples: object = None
    omega0: object = None
    x0: object = None
    factor_meta: object = None
    solver_state: object = None
    source_key: str = ""


class WarmStartCache:
    """Thread-safe LRU cache of serialized results and warm-start seeds.

    Parameters
    ----------
    max_results:
        Exact-replay result entries retained (these hold full
        trajectories and dominate the footprint).
    max_seeds:
        :class:`WarmStart` seed entries retained.
    """

    def __init__(self, max_results=32, max_seeds=128):
        self.max_results = int(max_results)
        self.max_seeds = int(max_seeds)
        self._results = OrderedDict()
        self._seeds = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.seed_hits = 0
        self.seed_misses = 0

    # -- result entries (exact replay) ----------------------------------

    def store_result(self, key, result):
        """Serialize and retain ``result`` under ``key``.

        Returns ``False`` (and stores nothing) when ``key`` is ``None``
        or the result has no serial form — unserializable results simply
        aren't cacheable.
        """
        if key is None:
            return False
        try:
            payload = to_jsonable(result)
        except SerializationError:
            return False
        with self._lock:
            self._results[key] = payload
            self._results.move_to_end(key)
            while len(self._results) > self.max_results:
                self._results.popitem(last=False)
        return True

    def load_result(self, key):
        """Rebuild the result stored under ``key``, or ``None``.

        Every call decodes the stored payload afresh, so callers can
        mutate the returned object without corrupting the cache.
        """
        if key is None:
            return None
        with self._lock:
            payload = self._results.get(key)
            if payload is None:
                self.misses += 1
                return None
            self._results.move_to_end(key)
            self.hits += 1
        return from_jsonable(payload)

    # -- seed entries (family warm starts) ------------------------------

    def store_seed(self, key, warm):
        """Retain a :class:`WarmStart` under a family ``key``."""
        if key is None or warm is None:
            return False
        try:
            payload = to_jsonable(warm)
        except SerializationError:
            return False
        with self._lock:
            self._seeds[key] = payload
            self._seeds.move_to_end(key)
            while len(self._seeds) > self.max_seeds:
                self._seeds.popitem(last=False)
        return True

    def load_seed(self, key):
        """The :class:`WarmStart` stored under ``key``, or ``None``."""
        if key is None:
            return None
        with self._lock:
            payload = self._seeds.get(key)
            if payload is None:
                self.seed_misses += 1
                return None
            self._seeds.move_to_end(key)
            self.seed_hits += 1
        return from_jsonable(payload)

    # -- bookkeeping -----------------------------------------------------

    def stats(self):
        """Counter snapshot (sizes, hit/miss totals)."""
        with self._lock:
            return {
                "results": len(self._results),
                "seeds": len(self._seeds),
                "hits": self.hits,
                "misses": self.misses,
                "seed_hits": self.seed_hits,
                "seed_misses": self.seed_misses,
            }

    def clear(self):
        with self._lock:
            self._results.clear()
            self._seeds.clear()
