"""Job registry with blocking result retrieval.

A thin, thread-safe ordered registry of :class:`~repro.service.jobs.Job`
objects.  Submission order is preserved (useful for status displays and
for draining in tests); waiting is delegated to each job's own event so
many threads can block on different jobs without a global condition
storm.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class JobQueue:
    """Ordered, thread-safe collection of submitted jobs."""

    def __init__(self):
        self._jobs = OrderedDict()
        self._lock = threading.Lock()

    def add(self, job):
        with self._lock:
            if job.job_id in self._jobs:
                raise ValueError(f"duplicate job id {job.job_id!r}")
            self._jobs[job.job_id] = job
        return job

    def get(self, job_id):
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job

    def result(self, job_id, timeout=None):
        """Block until ``job_id`` finishes; return its result.

        Raises the job's error on failure, ``TimeoutError`` on timeout.
        """
        job = self.get(job_id)
        if not job.wait(timeout):
            raise TimeoutError(
                f"{job_id} still {job.state} after {timeout}s"
            )
        return job.outcome()

    def states(self):
        """``{job_id: state}`` in submission order."""
        with self._lock:
            return {job_id: job.state for job_id, job in self._jobs.items()}

    def jobs(self):
        with self._lock:
            return list(self._jobs.values())

    def __len__(self):
        with self._lock:
            return len(self._jobs)

    def __contains__(self, job_id):
        with self._lock:
            return job_id in self._jobs
