"""Content-keyed hashing for the warm-start cache.

A cache key must depend on *what* is being solved — the DAE structure and
parameters, the analysis window and the solver options — and on nothing
else: not object identity, not netlist construction order, not which
process built the request.  :func:`content_key` therefore hashes the
canonical JSON of the request's tagged serial form
(:mod:`repro.api.serialize`), after a canonicalization pass that removes
representation artifacts:

* **circuits** hash by their *sorted* device serial forms — two
  structurally identical circuits built in different ``add()`` orders
  produce equal keys (the node unknowns they compile to are a set, not a
  sequence);
* dict keys are sorted by the JSON serializer itself;
* arrays hash by dtype/shape/raw bytes, so numerically identical inputs
  agree to the bit.

Requests that cannot be serialized (factory callables, closure-based
DAEs) have no content key; :func:`content_key` returns ``None`` for them
and the service simply skips caching those jobs.
"""

from __future__ import annotations

from repro.api.serialize import (
    SerializationError,
    TAG,
    canonical_json,
    digest,
    to_jsonable,
)

#: Serialized kinds whose payload lists devices in construction order.
_CIRCUIT_KINDS = ("circuit",)


def canonicalize(data):
    """Normalize a jsonable tree so equivalent content compares equal.

    Circuit payloads get their device lists sorted by canonical JSON;
    everything else passes through structurally unchanged (dict key order
    is already immaterial — the canonical JSON writer sorts keys).
    """
    if isinstance(data, list):
        return [canonicalize(v) for v in data]
    if not isinstance(data, dict):
        return data
    out = {k: canonicalize(v) for k, v in data.items()}
    if out.get(TAG) in _CIRCUIT_KINDS:
        state = out.get("state")
        if isinstance(state, dict) and isinstance(state.get("devices"), list):
            state["devices"] = sorted(state["devices"], key=canonical_json)
    return out


def content_key(obj, scope=""):
    """sha256 content key of any serializable object, or ``None``.

    Parameters
    ----------
    obj:
        The object to key — typically an
        :class:`~repro.api.requests.AnalysisRequest`.
    scope:
        Optional namespace mixed into the key (e.g. ``"seed"`` for
        warm-start family keys), so differently-purposed keys never
        collide even for equal payloads.
    """
    try:
        data = canonicalize(to_jsonable(obj))
    except SerializationError:
        return None
    if scope:
        data = {"scope": scope, "payload": data}
    return digest(data)
