"""Streaming of partial results out of running jobs.

Reuses the two protocols the library already has instead of inventing a
wire format:

* engines take periodic :class:`~repro.resilience.checkpoint.Checkpoint`
  snapshots (PR 6) — a :class:`StreamSink` rides the checkpoint cadence
  by acting as the manager's *callable path*, converting each snapshot's
  stored trajectory prefix into the engine's partial-result object (the
  same shape ``on_failure="truncate"`` attaches to errors) and putting
  its serialized form on a queue;
* the payload on the queue is the tagged JSON of
  :mod:`repro.api.serialize`, so a streamed prefix decodes to a regular
  result object whose arrays are bit-identical with the corresponding
  prefix of the final result.
"""

from __future__ import annotations

import numpy as np

from repro.api.serialize import from_jsonable, to_jsonable


def partial_result_from_checkpoint(checkpoint, variable_names):
    """The engine's partial-result object for a mid-run checkpoint.

    Mirrors exactly what each engine attaches as ``partial_result`` when
    a march dies: the stored trajectory prefix, never the in-flight step.
    Returns ``None`` for checkpoint kinds with no partial-result shape.
    """
    payload = checkpoint.payload
    if checkpoint.kind == "transient":
        from repro.transient.results import TransientResult

        return TransientResult(
            np.asarray(payload["stored_t"], dtype=float),
            np.asarray(payload["stored_x"], dtype=float),
            variable_names,
            dict(payload["stats"]),
        )
    if checkpoint.kind in ("wampde_envelope", "wampde_envelope_adaptive"):
        from repro.wampde.envelope import WampdeEnvelopeResult

        return WampdeEnvelopeResult(
            np.asarray(payload["stored_t2"], dtype=float),
            np.asarray(payload["stored_omega"], dtype=float),
            np.asarray(payload["stored_samples"], dtype=float),
            variable_names,
            dict(payload["stats"]),
        )
    if checkpoint.kind == "mpde_envelope":
        from repro.mpde.envelope import MpdeEnvelopeResult

        return MpdeEnvelopeResult(
            np.asarray(payload["stored_t2"], dtype=float),
            np.asarray(payload["stored"], dtype=float),
            float(payload.get("period1", 0.0) or 0.0),
            variable_names,
            dict(payload["stats"]),
        )
    return None


class StreamSink:
    """Callable checkpoint sink feeding a queue of serialized partials.

    Instances are picklable (the queue is a multiprocessing manager
    proxy when the job runs in a worker process), so the sink can be
    installed as ``options.checkpoint_path`` on the far side of the
    process boundary.
    """

    def __init__(self, queue, variable_names):
        self.queue = queue
        self.variable_names = tuple(variable_names)

    def __call__(self, checkpoint):
        partial = partial_result_from_checkpoint(
            checkpoint, self.variable_names
        )
        if partial is None:
            return
        self.queue.put({
            "step": int(checkpoint.step),
            "t": float(checkpoint.t),
            "partial": to_jsonable(partial),
        })


def decode_stream_item(item):
    """``(step, t, partial_result)`` from one queued stream payload."""
    return item["step"], item["t"], from_jsonable(item["partial"])
