"""Worker-side execution of analysis requests.

:func:`execute_payload` is the single function the service ships to its
process pool (it must stay module-level so the pool can pickle it by
reference).  Transport is plain pickle — requests, warm-start seeds and
results are ordinary objects of this library — while content keys,
caching and streaming use the tagged JSON of :mod:`repro.api.serialize`.
"""

from __future__ import annotations

import dataclasses

from repro.service.streaming import StreamSink


def _with_streaming(request, sink, every):
    """A copy of ``request`` whose engine options stream checkpoints.

    Only engines with the PR-6 checkpoint seams (``checkpoint_every`` /
    ``checkpoint_path`` options) can stream; other requests are returned
    unchanged and simply produce no partials.
    """
    options = getattr(request, "options", None)
    if options is None or not hasattr(options, "checkpoint_every"):
        return request
    options = dataclasses.replace(
        options, checkpoint_every=int(every), checkpoint_path=sink
    )
    return dataclasses.replace(request, options=options)


def execute_payload(request, warm_start=None, stream_queue=None,
                    stream_every=0):
    """Run one request (or shard) and return its result object.

    Parameters
    ----------
    request:
        An :class:`~repro.api.requests.AnalysisRequest`.
    warm_start:
        Optional :class:`~repro.service.cache.WarmStart` seed.
    stream_queue:
        Queue-like object (``put(item)``) receiving serialized partial
        results while the run progresses; ``None`` disables streaming.
    stream_every:
        Checkpoint/stream cadence in accepted steps (with streaming on).
    """
    from repro.api.requests import run

    if stream_queue is not None and stream_every > 0:
        names = getattr(getattr(request, "dae", None), "variable_names", None)
        if names:
            sink = StreamSink(stream_queue, names)
            request = _with_streaming(request, sink, stream_every)
    return run(request, warm_start=warm_start)
