"""Job objects: one submitted analysis request and its lifecycle.

States move strictly forward::

    PENDING -> RUNNING -> DONE
                       -> FAILED
    PENDING/RUNNING ---> CANCELLED

A cache-hit submission jumps straight from PENDING to DONE with
``cache_hit=True``.  Jobs are thread-safe: the service's collector
threads finish them while user threads wait in :meth:`Job.wait`.
"""

from __future__ import annotations

import threading


class JobState:
    """String constants for the job lifecycle."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a job can no longer leave.
    TERMINAL = frozenset({DONE, FAILED, CANCELLED})


class Job:
    """One submitted request tracked by the service.

    Attributes
    ----------
    job_id:
        Service-unique identifier (``"job-3"``).
    request:
        The submitted :class:`~repro.api.requests.AnalysisRequest`.
    cache_key, seed_key:
        Content keys computed at submission (either may be ``None``).
    cache_hit:
        ``True`` when the result was replayed from the warm-start cache.
    warm_hit:
        ``True`` when the run was seeded from a cached family seed.
    shard_count:
        Number of sub-requests the job fanned out to (0 = ran whole).
    """

    def __init__(self, job_id, request, cache_key=None, seed_key=None):
        self.job_id = job_id
        self.request = request
        self.cache_key = cache_key
        self.seed_key = seed_key
        self.state = JobState.PENDING
        self.result = None
        self.error = None
        self.cache_hit = False
        self.warm_hit = False
        self.shard_count = 0
        self.stream_queue = None
        self._futures = []
        self._lock = threading.Lock()
        self._finished = threading.Event()

    # -- transitions -----------------------------------------------------

    def mark_running(self):
        with self._lock:
            if self.state == JobState.PENDING:
                self.state = JobState.RUNNING

    def finish(self, result):
        with self._lock:
            if self.state in JobState.TERMINAL:
                return
            self.state = JobState.DONE
            self.result = result
        self._finished.set()

    def fail(self, error):
        with self._lock:
            if self.state in JobState.TERMINAL:
                return
            self.state = JobState.FAILED
            self.error = error
        self._finished.set()

    def cancel(self):
        """Cancel unstarted work; returns ``True`` if the job ended
        cancelled (work already finished keeps its result)."""
        cancelled_all = True
        for future in self._futures:
            if not future.cancel() and not future.done():
                cancelled_all = False
        with self._lock:
            if self.state in JobState.TERMINAL:
                return self.state == JobState.CANCELLED
            if not cancelled_all:
                # Something is still running; the collector thread will
                # observe the cancelled flag via this state.
                pass
            self.state = JobState.CANCELLED
        self._finished.set()
        return True

    # -- inspection ------------------------------------------------------

    @property
    def finished(self):
        return self.state in JobState.TERMINAL

    def wait(self, timeout=None):
        """Block until terminal; returns ``True`` unless it timed out."""
        return self._finished.wait(timeout)

    def outcome(self):
        """The result, raising the failure/cancellation instead."""
        if self.state == JobState.FAILED:
            raise self.error
        if self.state == JobState.CANCELLED:
            raise RuntimeError(f"{self.job_id} was cancelled")
        return self.result

    def describe(self):
        """Status snapshot (plain data, JSON-friendly)."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "kind": getattr(self.request, "kind", None),
            "cache_hit": self.cache_hit,
            "warm_hit": self.warm_hit,
            "shards": self.shard_count,
        }

    def __repr__(self):
        return f"Job({self.job_id!r}, state={self.state!r})"
