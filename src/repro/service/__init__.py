"""Simulation-as-a-service job layer.

Public surface (all lazily imported to keep ``import repro`` light):

* :class:`~repro.service.service.SimulationService` — worker-pool front
  end: ``submit(request) -> Job``, status/cancel/result, streaming of
  partial results, warm-start caching.
* :class:`~repro.service.cache.WarmStartCache` /
  :class:`~repro.service.cache.WarmStart` — content-keyed cache of
  settled results and solver warm states.
* :func:`~repro.service.keys.content_key` — canonical content hash of
  any serializable repro object (see :mod:`repro.api.serialize`).
"""

from __future__ import annotations

_LAZY = {
    "SimulationService": "repro.service.service",
    "Job": "repro.service.jobs",
    "JobState": "repro.service.jobs",
    "JobQueue": "repro.service.queue",
    "WarmStart": "repro.service.cache",
    "WarmStartCache": "repro.service.cache",
    "content_key": "repro.service.keys",
    "canonicalize": "repro.service.keys",
}

__all__ = sorted(_LAZY)


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.service' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
