"""Serializable analysis requests and the unified ``run()`` dispatcher.

Every analysis the library offers is describable as a request dataclass:
the target system, the window/grid, and an engine options object.  One
request is one unit of work with a uniform surface —

* ``run(warm_start=None)`` executes it in-process and returns the
  engine's native result object (every result supports
  ``to_dict``/``from_dict``, see :mod:`repro.api.serialize`);
* ``cache_key()`` is the exact content key (``None`` when the request
  carries unserializable parts such as factory callables);
* ``seed_key()`` is the warm-start *family* key: requests that share it
  can reuse each other's settled state even when windows or tolerances
  differ;
* ``extract_warm_start(result)`` distils a finished result into the
  :class:`~repro.service.cache.WarmStart` future runs seed from;
* ``shards()``/``merge(results)`` split independent sub-requests for the
  service's worker pool and recombine their results.

The CLI and :class:`repro.service.SimulationService` both speak this
vocabulary; the classic ``solve_*``/``simulate_*`` entry points remain as
the engine layer underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.api.serialize import (
    SerializableMixin,
    SerializationError,
    from_jsonable,
)
from repro.errors import SimulationError


def _content_key(obj, scope=""):
    from repro.service.keys import content_key

    return content_key(obj, scope=scope)


def _warm_start(**fields):
    from repro.service.cache import WarmStart

    return WarmStart(**fields)


@dataclass(eq=False)
class AnalysisRequest(SerializableMixin):
    """Base class of the request vocabulary (see module doc)."""

    #: Stable analysis tag, mixed into content keys.
    kind = "analysis"

    def run(self, warm_start=None):
        """Execute in-process; returns the engine's result object."""
        raise NotImplementedError

    def cache_key(self):
        """Exact content key, or ``None`` when unserializable."""
        return _content_key(self, scope=f"request/{self.kind}")

    def seed_key(self):
        """Warm-start family key, or ``None`` when the analysis has no
        reusable settled state (or the request is unserializable)."""
        return None

    def extract_warm_start(self, result):
        """Distil ``result`` into a warm-start seed, or ``None``."""
        return None

    def shards(self):
        """Independent sub-requests for a worker pool, or ``None``.

        ``None`` means the request is indivisible (or its pieces are
        order-dependent, like continuation sweeps) and runs as one job.
        """
        return None

    def merge(self, results):
        """Recombine shard results (same order as :meth:`shards`)."""
        raise NotImplementedError

    @staticmethod
    def _warm_fields(result):
        """``factor_meta``/``solver_state`` exported in ``result.stats``."""
        warm = {}
        stats = getattr(result, "stats", None)
        if isinstance(stats, dict):
            warm = stats.get("warm") or {}
        return warm.get("factor_meta"), warm.get("solver_state")


@dataclass(eq=False)
class TransientRequest(AnalysisRequest):
    """``simulate_transient`` as a request."""

    dae: object = None
    x0: object = None
    t_start: float = 0.0
    t_stop: float = 0.0
    options: object = None

    kind = "transient"

    def run(self, warm_start=None):
        from repro.transient.engine import simulate_transient

        return simulate_transient(
            self.dae, self.x0, self.t_start, self.t_stop, self.options,
            warm_start=warm_start,
        )

    def extract_warm_start(self, result):
        factor_meta, solver_state = self._warm_fields(result)
        return _warm_start(
            x0=np.array(result.x[-1], dtype=float),
            factor_meta=factor_meta,
            solver_state=solver_state,
        )


@dataclass(eq=False)
class EnvelopeRequest(AnalysisRequest):
    """WaMPDE envelope run, with its initial-condition pipeline folded in.

    When ``initial_samples``/``omega0`` are not given (and no warm-start
    seed supplies them), the request runs the paper's §4.1 initialisation
    — DC point → settling transient → autonomous HB on ``unforced_dae``
    — which is exactly the expensive prefix the warm-start cache
    amortises across submissions.
    """

    dae: object = None
    t2_start: float = 0.0
    t2_stop: float = 0.0
    num_steps: int = 0
    initial_samples: object = None
    omega0: object = None
    unforced_dae: object = None
    num_t1: int = 25
    period_guess: object = None
    settle_cycles: int = 40
    steps_per_cycle: int = 60
    options: object = None
    resume_from: object = None

    kind = "envelope"

    def _options(self):
        from repro.wampde.envelope import WampdeEnvelopeOptions

        return self.options or WampdeEnvelopeOptions()

    def _initial(self, warm_start):
        """Starting ``(samples, omega0)``, running the §4.1 pipeline only
        when neither the request nor the warm seed supplies them."""
        samples, omega0 = self.initial_samples, self.omega0
        if samples is None and warm_start is not None:
            if getattr(warm_start, "samples", None) is not None:
                return None, omega0  # engine fills both from the seed
        if samples is None:
            if self.unforced_dae is None:
                raise SimulationError(
                    "EnvelopeRequest needs initial_samples, a warm-start "
                    "seed, or an unforced_dae + period_guess to build one"
                )
            from repro.wampde.initial_condition import (
                oscillator_initial_condition,
            )

            opts = self._options()
            samples, omega0 = oscillator_initial_condition(
                self.unforced_dae,
                num_t1=self.num_t1,
                phase_condition=opts.phase_condition,
                phase_variable=opts.phase_variable,
                period_guess=self.period_guess,
                settle_cycles=self.settle_cycles,
                steps_per_cycle=self.steps_per_cycle,
            )
        return samples, omega0

    def run(self, warm_start=None):
        from repro.wampde.envelope import solve_wampde_envelope

        samples, omega0 = self._initial(warm_start)
        return solve_wampde_envelope(
            self.dae, samples, omega0, self.t2_start, self.t2_stop,
            self.num_steps, self._options(), resume_from=self.resume_from,
            warm_start=warm_start,
        )

    def seed_key(self):
        opts = self._options()
        return _content_key(
            {
                "dae": self.dae,
                "unforced_dae": self.unforced_dae,
                "num_t1": self.num_t1,
                "phase_condition": opts.phase_condition,
                "phase_variable": opts.phase_variable,
            },
            scope=f"seed/{self.kind}",
        )

    def extract_warm_start(self, result):
        factor_meta, solver_state = self._warm_fields(result)
        return _warm_start(
            samples=np.array(result.samples[0], dtype=float),
            omega0=float(result.omega[0]),
            factor_meta=factor_meta,
            solver_state=solver_state,
        )


@dataclass(eq=False)
class HBRequest(AnalysisRequest):
    """Harmonic balance (forced or autonomous) as a request."""

    dae: object = None
    mode: str = "forced"
    period: object = None
    frequency_guess: object = None
    num_samples: int = 31
    initial: object = None
    phase_condition: object = "fourier"
    phase_variable: int = 0
    forcing_time: float = 0.0
    newton_options: object = None
    solver_options: object = None

    kind = "hb"

    def run(self, warm_start=None):
        from repro.steadystate.harmonic_balance import (
            harmonic_balance_autonomous,
            harmonic_balance_forced,
        )

        if self.mode == "forced":
            return harmonic_balance_forced(
                self.dae, self.period, num_samples=self.num_samples,
                initial=self.initial, newton_options=self.newton_options,
                solver_options=self.solver_options, warm_start=warm_start,
            )
        if self.mode == "autonomous":
            return harmonic_balance_autonomous(
                self.dae, self.frequency_guess, initial=self.initial,
                phase_condition=self.phase_condition,
                phase_variable=self.phase_variable,
                num_samples=self.num_samples,
                newton_options=self.newton_options,
                forcing_time=self.forcing_time,
                solver_options=self.solver_options, warm_start=warm_start,
            )
        raise SimulationError(
            f"HBRequest.mode must be 'forced' or 'autonomous', "
            f"got {self.mode!r}"
        )

    def seed_key(self):
        return _content_key(
            {
                "dae": self.dae,
                "mode": self.mode,
                "phase_condition": self.phase_condition,
                "phase_variable": self.phase_variable,
            },
            scope=f"seed/{self.kind}",
        )

    def extract_warm_start(self, result):
        return _warm_start(
            samples=np.array(result.samples, dtype=float),
            omega0=float(result.frequency),
        )


@dataclass(eq=False)
class QuasiperiodicRequest(AnalysisRequest):
    """Bi-periodic WaMPDE boundary-value problem as a request."""

    dae: object = None
    period2: float = 0.0
    initial_samples: object = None
    omega0: object = None
    num_t2: int = 15
    options: object = None

    kind = "quasiperiodic"

    def run(self, warm_start=None):
        from repro.wampde.quasiperiodic import solve_wampde_quasiperiodic

        return solve_wampde_quasiperiodic(
            self.dae, self.period2, self.initial_samples, self.omega0,
            num_t2=self.num_t2, options=self.options,
            warm_start=warm_start,
        )

    def seed_key(self):
        return _content_key(
            {"dae": self.dae, "num_t2": self.num_t2},
            scope=f"seed/{self.kind}",
        )

    def extract_warm_start(self, result):
        return _warm_start(
            samples=np.array(result.samples, dtype=float),
            omega0=np.array(result.omega, dtype=float),
        )


@dataclass(eq=False)
class EnsembleRequest(AnalysisRequest):
    """Lock-step ensemble transient, shardable across scenario blocks.

    ``run()`` uses the vectorised lock-step engine
    (:func:`repro.transient.ensemble.simulate_transient_ensemble`); the
    service may instead execute :meth:`shards` — scenario-block
    sub-requests sized by the resolved array backend
    (:meth:`repro.backend.ArrayBackend.ensemble_shard_size`) — across
    its worker pool and :meth:`merge` the trajectories.  Device backends
    return no shards at all: the whole batch is one device-resident
    march, and fragmenting it into slivers would waste the device.
    Fixed-step shards land on the same time grid, so both paths agree
    within solver tolerance.
    """

    dae: object = None  # an EnsembleDAE
    x0: object = None  # (B, n) or (n,) broadcast
    t_start: float = 0.0
    t_stop: float = 0.0
    options: object = None

    kind = "ensemble"

    def run(self, warm_start=None):
        from repro.transient.ensemble import simulate_transient_ensemble

        x0 = self.x0
        if x0 is None and warm_start is not None:
            x0 = getattr(warm_start, "x0", None)
        if x0 is None:
            raise SimulationError(
                "EnsembleRequest needs x0 (directly or via warm_start)"
            )
        return simulate_transient_ensemble(
            self.dae, x0, self.t_start, self.t_stop, self.options
        )

    def extract_warm_start(self, result):
        return _warm_start(x0=np.array(result.x[-1], dtype=float))

    def _shard_size(self):
        """Scenarios per shard for the request's resolved backend.

        ``None`` disables sharding — either the backend is a device (the
        whole batch belongs in one march) or the backend string is
        invalid (``run()`` then surfaces the configuration error instead
        of the service masking it at shard time).
        """
        from repro.backend import resolve_backend
        from repro.errors import ConfigurationError

        opts = self.options
        kernel = getattr(opts, "kernel", "auto") if opts is not None \
            else "auto"
        try:
            backend, _ = resolve_backend(getattr(opts, "backend", None))
        except ConfigurationError:
            return None
        return backend.ensemble_shard_size(kernel)

    def shards(self):
        from repro.errors import ValidationError

        opts = self.options
        if opts is not None and getattr(opts, "adaptive", False):
            return None  # adaptive shards land on different grids
        if self.x0 is None:
            return None  # warm-start-seeded x0 is resolved at run() time
        batch = int(getattr(self.dae, "batch_size", 0) or 0)
        size = self._shard_size()
        if size is None or batch <= size:
            return None
        subset = getattr(self.dae, "subset", None)
        if subset is None:
            return None
        x0 = np.asarray(self.x0, dtype=float)
        shards = []
        for start in range(0, batch, size):
            indices = np.arange(start, min(start + size, batch))
            try:
                dae = subset(indices)
            except ValidationError:
                return None  # stacked DAE without a scenario-slice hook
            shard_x0 = x0[indices] if x0.ndim == 2 else x0
            shards.append(replace(self, dae=dae, x0=shard_x0))
        return shards

    def merge(self, results):
        from repro.transient.ensemble import merge_ensemble_results

        return merge_ensemble_results(results)


@dataclass(eq=False)
class SweepRequest(AnalysisRequest):
    """Oscillator tuning-curve sweep as a request.

    ``dae_factory``/``stacked_factory`` are callables, so a SweepRequest
    generally has no content key (``cache_key()`` → ``None``) and is not
    cached; module-level factories still cross process boundaries by
    pickle, so sharding across workers works.  Only the
    ``method="ensemble"`` sweep shards (its points are independent);
    continuation sweeps are sequentially seeded and run as one job.
    """

    dae_factory: object = None
    values: object = None
    period_guess: float = 0.0
    num_t1: int = 25
    variable: int = 0
    phase_condition: object = "fourier"
    method: str = "continuation"
    on_failure: str = "raise"
    stacked_factory: object = None
    #: Array backend name for the ensemble settle transient (``None``
    #: resolves the default; see :func:`repro.backend.resolve_backend`).
    backend: object = None

    kind = "sweep"

    def run(self, warm_start=None):
        from repro.steadystate.sweep import oscillator_frequency_sweep

        return oscillator_frequency_sweep(
            self.dae_factory, self.values, self.period_guess,
            num_t1=self.num_t1, variable=self.variable,
            phase_condition=self.phase_condition, method=self.method,
            on_failure=self.on_failure,
            stacked_factory=self.stacked_factory,
            backend=self.backend,
        )

    #: Sweep points per worker shard.  Chunks (not single points) keep
    #: each worker on the batched lock-step path with its ``stacked_factory``
    #: intact instead of degrading every shard to a one-member ensemble.
    SHARD_BLOCK = 8

    def shards(self):
        if self.method != "ensemble":
            return None  # continuation points are sequentially seeded
        values = np.asarray(self.values, dtype=float).ravel()
        if values.size <= self.SHARD_BLOCK:
            return None
        return [
            replace(self, values=values[i:i + self.SHARD_BLOCK])
            for i in range(0, values.size, self.SHARD_BLOCK)
        ]

    def merge(self, results):
        from repro.steadystate.sweep import FrequencySweepResult

        return FrequencySweepResult(
            values=np.concatenate([r.values for r in results]),
            frequencies=np.concatenate([r.frequencies for r in results]),
            amplitudes=np.concatenate([r.amplitudes for r in results]),
            solver_stats=[s for r in results for s in r.solver_stats],
        )


def run(request, warm_start=None):
    """Execute any :class:`AnalysisRequest` in-process.

    The single entry point the CLI and the service both dispatch
    through; equivalent to ``request.run(warm_start=warm_start)`` plus a
    type check.
    """
    if not isinstance(request, AnalysisRequest):
        raise TypeError(
            f"run() takes an AnalysisRequest, got {type(request).__name__}"
        )
    return request.run(warm_start=warm_start)


def request_from_dict(data):
    """Rebuild a request encoded by ``request.to_dict()``."""
    obj = from_jsonable(data)
    if not isinstance(obj, AnalysisRequest):
        raise SerializationError(
            f"payload decodes to {type(obj).__name__}, not an "
            f"AnalysisRequest"
        )
    return obj
