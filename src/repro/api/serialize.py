"""Tagged JSON-safe codec for requests, results and cache payloads.

Everything that crosses a process boundary in the service layer — analysis
requests, result payloads, streamed partial results, cache entries — is
reduced to *plain JSON-compatible data* by :func:`to_jsonable` and rebuilt
by :func:`from_jsonable`.  The encoding is

* **lossless for floats and arrays** — ``numpy`` arrays are stored as
  base64 of their raw bytes (plus dtype/shape), so a round-trip
  reconstructs them *bit for bit*.  This is what makes the warm-start
  cache's replay of a stored result bit-identical with the original run;
* **self-describing** — non-JSON values are wrapped in a dict carrying the
  reserved ``"__repro__"`` tag, and library objects (results, options,
  DAEs, devices, waveforms) are encoded as their class path plus attribute
  state;
* **closed over this library** — decoding only instantiates classes from
  the ``repro`` package (and rebuilds numpy arrays).  Arbitrary class
  paths are rejected, so a payload cannot smuggle in foreign types.

Callables (lambdas, :class:`~repro.dae.function_dae.FunctionDAE` closures,
factory functions) have no stable serial form and raise
:class:`SerializationError`; request classes that carry factories document
that they serialize only when built from serializable parts.
"""

from __future__ import annotations

import base64
import functools
import hashlib
import importlib
import json
import types

import numpy as np

#: Reserved tag key marking an encoded non-JSON value.
TAG = "__repro__"


class SerializationError(TypeError):
    """Raised when a value has no stable serial form (e.g. a callable)."""


# -- registered codecs -------------------------------------------------------
#
# Classes whose attribute state is not a faithful description (compiled
# caches, __slots__ helpers) register an explicit (encode, decode) pair
# keyed by a stable kind tag.  Encoders return a jsonable-able state dict;
# decoders rebuild the instance from the decoded state.

_CODECS = {}
_CODECS_BY_CLASS = {}
_BUILTINS_REGISTERED = False


def register_codec(cls, kind, encode, decode):
    """Register an explicit codec for ``cls`` under tag ``kind``."""
    _CODECS[kind] = (cls, encode, decode)
    _CODECS_BY_CLASS[cls] = (kind, encode, decode)


def _ensure_builtin_codecs():
    # Deferred: the builtin codecs import circuit/DAE modules, which may
    # themselves import this module for SerializableMixin — registering
    # lazily at first encode/decode keeps the import graph acyclic.
    global _BUILTINS_REGISTERED
    if not _BUILTINS_REGISTERED:
        _BUILTINS_REGISTERED = True
        _register_builtin_codecs()


def _class_path(cls):
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve_class(path):
    module_name, _, qualname = path.partition(":")
    root = module_name.split(".", 1)[0]
    if root != "repro":
        raise SerializationError(
            f"refusing to decode class {path!r}: only repro.* classes "
            f"may appear in serialized payloads"
        )
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not isinstance(obj, type):
        raise SerializationError(f"{path!r} does not name a class")
    return obj


def to_jsonable(obj):
    """Encode ``obj`` as plain JSON-compatible data (see module doc)."""
    _ensure_builtin_codecs()
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        return float(obj)
    if isinstance(obj, (complex, np.complexfloating)):
        return {TAG: "complex", "re": float(obj.real), "im": float(obj.imag)}
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        if arr.dtype.hasobject:
            raise SerializationError("object-dtype arrays are not serializable")
        return {
            TAG: "ndarray",
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "data": base64.b64encode(arr.tobytes()).decode("ascii"),
        }
    if isinstance(obj, tuple):
        return {TAG: "tuple", "items": [to_jsonable(v) for v in obj]}
    if isinstance(obj, list):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and TAG not in obj:
            return {k: to_jsonable(v) for k, v in obj.items()}
        return {
            TAG: "dict",
            "items": [[to_jsonable(k), to_jsonable(v)] for k, v in obj.items()],
        }
    codec = _CODECS_BY_CLASS.get(type(obj))
    if codec is not None:
        kind, encode, _decode = codec
        return {TAG: kind, "state": to_jsonable(encode(obj))}
    if isinstance(
        obj,
        (types.FunctionType, types.LambdaType, types.MethodType,
         types.BuiltinFunctionType, functools.partial),
    ) or isinstance(obj, type):
        # Bare functions/lambdas/closures cannot round-trip; callable
        # *instances* (waveforms, DAEs) fall through to the object codec.
        raise SerializationError(
            f"cannot serialize callable {obj!r}; requests that carry "
            f"factories/closures must be run in-process"
        )
    cls = type(obj)
    if cls.__module__.split(".", 1)[0] == "repro" and hasattr(obj, "__dict__"):
        return {
            TAG: "object",
            "class": _class_path(cls),
            "state": {k: to_jsonable(v) for k, v in vars(obj).items()},
        }
    raise SerializationError(
        f"cannot serialize {cls.__module__}.{cls.__qualname__} instances"
    )


def from_jsonable(data):
    """Rebuild the value encoded by :func:`to_jsonable`."""
    _ensure_builtin_codecs()
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [from_jsonable(v) for v in data]
    if not isinstance(data, dict):
        raise SerializationError(f"cannot decode {type(data).__name__}")
    kind = data.get(TAG)
    if kind is None:
        return {k: from_jsonable(v) for k, v in data.items()}
    if kind == "ndarray":
        raw = base64.b64decode(data["data"])
        arr = np.frombuffer(raw, dtype=np.dtype(data["dtype"]))
        return arr.reshape(data["shape"]).copy()
    if kind == "tuple":
        return tuple(from_jsonable(v) for v in data["items"])
    if kind == "complex":
        return complex(data["re"], data["im"])
    if kind == "dict":
        return {
            from_jsonable(k): from_jsonable(v) for k, v in data["items"]
        }
    if kind == "object":
        cls = _resolve_class(data["class"])
        state = {k: from_jsonable(v) for k, v in data["state"].items()}
        obj = cls.__new__(cls)
        obj.__dict__.update(state)
        return obj
    codec = _CODECS.get(kind)
    if codec is not None:
        _cls, _encode, decode = codec
        return decode(from_jsonable(data["state"]))
    raise SerializationError(f"unknown serialized kind {kind!r}")


def canonical_json(data):
    """Deterministic JSON text of a jsonable tree (sorted keys)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def digest(data):
    """sha256 hex digest of a jsonable tree's canonical JSON."""
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


class SerializableMixin:
    """Uniform ``to_dict()``/``from_dict()`` via the tagged codec.

    Mixed into every request and result class.  ``to_dict`` produces
    plain JSON-compatible data; ``from_dict`` rebuilds the instance and
    checks it decodes to the expected class (so e.g.
    ``TransientResult.from_dict`` refuses an envelope payload).
    """

    def to_dict(self):
        """Plain JSON-compatible dict encoding this object losslessly."""
        return to_jsonable(self)

    @classmethod
    def from_dict(cls, data):
        """Rebuild an instance from :meth:`to_dict` output."""
        obj = from_jsonable(data)
        if not isinstance(obj, cls):
            raise SerializationError(
                f"payload decodes to {type(obj).__name__}, "
                f"expected {cls.__name__}"
            )
        return obj


def _register_builtin_codecs():
    # Circuit: the generic path would encode the internal name *set*
    # (unordered) — encode the device list and rebuild through add(), so
    # the round-trip re-runs the netlist's own validation.
    from repro.circuits.netlist import Circuit

    def _encode_circuit(circuit):
        return {"title": circuit.title, "devices": list(circuit.devices)}

    def _decode_circuit(state):
        circuit = Circuit(state["title"])
        for device in state["devices"]:
            circuit.add(device)
        return circuit

    register_codec(Circuit, "circuit", _encode_circuit, _decode_circuit)

    # CircuitDAE: holds compiled gather/scatter caches and __slots__
    # helper objects; its netlist is the full description — recompile.
    from repro.circuits.mna import CircuitDAE

    register_codec(
        CircuitDAE,
        "circuit_dae",
        lambda dae: {"circuit": dae.circuit},
        lambda state: CircuitDAE(state["circuit"]),
    )

    # EnsembleDAE: plain attributes, but the generic object path would
    # reject it when a member list is absent and the stacked DAE is a
    # CircuitDAE (nested codec) — route members/stacked through the
    # regular encoder explicitly.
    from repro.dae.ensemble import EnsembleDAE

    def _encode_ensemble(ensemble):
        return {
            "batch_size": ensemble.batch_size,
            "n": ensemble.n,
            "variable_names": ensemble.variable_names,
            "members": ensemble._members,
            "stacked": ensemble._stacked,
        }

    def _decode_ensemble(state):
        return EnsembleDAE(
            state["batch_size"], state["n"], state["variable_names"],
            members=state["members"], stacked=state["stacked"],
        )

    register_codec(
        EnsembleDAE, "ensemble_dae", _encode_ensemble, _decode_ensemble
    )
