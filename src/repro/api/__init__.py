"""repro.api — one serializable request/result surface for every analysis.

Every analysis this library performs is described by an
:class:`~repro.api.requests.AnalysisRequest` dataclass —
:class:`TransientRequest`, :class:`EnvelopeRequest`, :class:`HBRequest`,
:class:`QuasiperiodicRequest`, :class:`EnsembleRequest`,
:class:`SweepRequest` — and executed by the single dispatcher
:func:`run`.  The CLI and the :mod:`repro.service` job layer both build
requests and hand them to :func:`run`; the historical
``solve_*``/``simulate_*`` entry points remain as the engine layer the
dispatcher calls into.

Requests and results share one serialization protocol
(:mod:`repro.api.serialize`): ``to_dict()`` produces plain
JSON-compatible data (arrays as base64 bytes — bit-exact round-trips),
``from_dict()`` rebuilds the object, and
:func:`repro.service.keys.content_key` hashes the canonical form for the
warm-start cache.

>>> from repro import api
>>> request = api.EnvelopeRequest(dae=forced, unforced_dae=unforced,
...                               t2_stop=60e-6, num_steps=600)
>>> result = api.run(request)                       # doctest: +SKIP
>>> api.request_from_dict(request.to_dict()) == request
True

Submodules are imported lazily: importing :mod:`repro.api` (e.g. for
``repro.api.serialize``) never pulls in the engines, so low-level modules
may import the serializer without creating a cycle.
"""

from __future__ import annotations

_LAZY = {
    "AnalysisRequest": "repro.api.requests",
    "TransientRequest": "repro.api.requests",
    "EnvelopeRequest": "repro.api.requests",
    "HBRequest": "repro.api.requests",
    "QuasiperiodicRequest": "repro.api.requests",
    "EnsembleRequest": "repro.api.requests",
    "SweepRequest": "repro.api.requests",
    "run": "repro.api.requests",
    "request_from_dict": "repro.api.requests",
    "SerializableMixin": "repro.api.serialize",
    "SerializationError": "repro.api.serialize",
    "to_jsonable": "repro.api.serialize",
    "from_jsonable": "repro.api.serialize",
}

__all__ = sorted(_LAZY)


def __getattr__(name):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
