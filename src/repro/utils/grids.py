"""Compatibility shim: the grid constructors live in :mod:`repro.grids`.

This module used to hold ``uniform_grid``/``periodic_grid``/``log_grid``
while :mod:`repro.grids` held the collocation stacking helpers; the two
were folded together (all grid construction now has one home).  Import
from :mod:`repro.grids` in new code.
"""

from __future__ import annotations

from repro.grids import log_grid, periodic_grid, uniform_grid

__all__ = ["uniform_grid", "periodic_grid", "log_grid"]
