"""Grid construction helpers shared by the spectral and PDE code."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_positive


def uniform_grid(start, stop, num):
    """Uniform grid of ``num`` points including both endpoints.

    Equivalent to :func:`numpy.linspace` but validates its arguments.
    """
    if num < 2:
        raise ValidationError(f"uniform_grid needs num >= 2, got {num}")
    if not stop > start:
        raise ValidationError(f"uniform_grid needs stop > start, got [{start}, {stop}]")
    return np.linspace(start, stop, num)


def periodic_grid(period, num):
    """Uniform grid of ``num`` points on ``[0, period)`` (endpoint excluded).

    This is the natural collocation grid for periodic spectral methods: the
    point at ``t = period`` is identified with ``t = 0`` and therefore not
    repeated.
    """
    check_positive(period, "period")
    if num < 1:
        raise ValidationError(f"periodic_grid needs num >= 1, got {num}")
    return period * np.arange(num) / num


def log_grid(start, stop, num):
    """Logarithmically spaced grid; both endpoints must be positive."""
    check_positive(start, "start")
    check_positive(stop, "stop")
    if num < 2:
        raise ValidationError(f"log_grid needs num >= 2, got {num}")
    if not stop > start:
        raise ValidationError(f"log_grid needs stop > start, got [{start}, {stop}]")
    return np.geomspace(start, stop, num)
