"""Minimal ASCII line plots, for eyeballing waveforms in a terminal.

The paper's figures are line plots and surfaces; without matplotlib, the
examples and benches use these character plots to show *shape* (FM density
changes, settling, amplitude modulation) directly in the console.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_1d_array


def ascii_plot(x, y, width=72, height=16, title=None, xlabel=None, ylabel=None):
    """Render ``y`` versus ``x`` as an ASCII line plot.

    Parameters
    ----------
    x, y:
        1-D arrays of equal length.
    width, height:
        Character-cell dimensions of the plotting area.
    title, xlabel, ylabel:
        Optional annotations.

    Returns
    -------
    str
        Multi-line string; print it to display the plot.
    """
    x = as_1d_array(x, "x")
    y = as_1d_array(y, "y")
    if x.size != y.size:
        raise ValueError(f"x and y must have equal length, got {x.size} vs {y.size}")
    if x.size == 0:
        return "(empty plot)"

    x_min, x_max = float(np.min(x)), float(np.max(x))
    y_min, y_max = float(np.min(y)), float(np.max(y))
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    cols = np.clip(((x - x_min) / x_span * (width - 1)).round().astype(int), 0, width - 1)
    rows = np.clip(((y - y_min) / y_span * (height - 1)).round().astype(int), 0, height - 1)
    for col, row in zip(cols, rows):
        grid[height - 1 - row][col] = "*"

    lines = []
    if title:
        lines.append(title)
    label = f"{y_max:.4g}"
    pad = max(len(label), len(f"{y_min:.4g}"))
    for i, row_chars in enumerate(grid):
        if i == 0:
            prefix = f"{y_max:.4g}".rjust(pad)
        elif i == height - 1:
            prefix = f"{y_min:.4g}".rjust(pad)
        else:
            prefix = " " * pad
        lines.append(prefix + " |" + "".join(row_chars))
    lines.append(" " * pad + " +" + "-" * width)
    footer = f"{x_min:.4g}".ljust(width // 2) + f"{x_max:.4g}".rjust(width - width // 2)
    lines.append(" " * (pad + 2) + footer)
    if xlabel:
        lines.append(" " * (pad + 2) + xlabel.center(width))
    if ylabel:
        lines.insert(1 if title else 0, f"[y: {ylabel}]")
    return "\n".join(lines)
