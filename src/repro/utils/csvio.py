"""Tiny CSV writer/reader used by benches to persist figure data."""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np


def write_csv(path, headers, columns):
    """Write named columns to ``path`` as CSV.

    Parameters
    ----------
    path:
        Output file path; parent directories are created.
    headers:
        Sequence of column names.
    columns:
        Sequence of equal-length 1-D arrays, one per header.
    """
    columns = [np.asarray(col).ravel() for col in columns]
    if len(headers) != len(columns):
        raise ValueError(
            f"got {len(headers)} headers but {len(columns)} columns"
        )
    lengths = {col.size for col in columns}
    if len(lengths) > 1:
        raise ValueError(f"columns have unequal lengths: {sorted(lengths)}")

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in zip(*columns):
            writer.writerow([repr(float(cell)) for cell in row])
    return path


def read_csv(path):
    """Read a CSV written by :func:`write_csv`.

    Returns
    -------
    tuple
        ``(headers, columns)`` where ``columns`` is a list of float arrays.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        headers = next(reader)
        rows = [[float(cell) for cell in row] for row in reader if row]
    if rows:
        columns = [np.array(col) for col in zip(*rows)]
    else:
        columns = [np.array([]) for _ in headers]
    return headers, columns
