"""Small argument-validation helpers.

All helpers raise :class:`repro.errors.ValidationError` with a message that
names the offending argument, so call sites stay one-liners.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.errors import ValidationError


def check_finite(value, name="value"):
    """Raise unless ``value`` (scalar or array) contains only finite numbers."""
    arr = np.asarray(value)
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return value


def check_positive(value, name="value"):
    """Raise unless scalar ``value`` is a finite number > 0."""
    if not isinstance(value, numbers.Real) or not np.isfinite(value) or value <= 0:
        raise ValidationError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_nonnegative(value, name="value"):
    """Raise unless scalar ``value`` is a finite number >= 0."""
    if not isinstance(value, numbers.Real) or not np.isfinite(value) or value < 0:
        raise ValidationError(
            f"{name} must be a non-negative finite number, got {value!r}"
        )
    return value


def check_in_range(value, low, high, name="value"):
    """Raise unless ``low <= value <= high``."""
    if not isinstance(value, numbers.Real) or not (low <= value <= high):
        raise ValidationError(f"{name} must lie in [{low}, {high}], got {value!r}")
    return value


def check_odd(value, name="value"):
    """Raise unless ``value`` is an odd integer."""
    if not isinstance(value, numbers.Integral) or value % 2 != 1:
        raise ValidationError(f"{name} must be an odd integer, got {value!r}")
    return int(value)


def as_1d_array(value, name="value", dtype=float):
    """Return ``value`` as a 1-D numpy array, raising on higher dimensions."""
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def as_2d_array(value, name="value", dtype=float):
    """Return ``value`` as a 2-D numpy array, raising otherwise."""
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got shape {arr.shape}")
    return arr
