"""Wall-clock timing helper used by the benchmark harness."""

from __future__ import annotations

import time


class WallTimer:
    """Context manager measuring elapsed wall-clock time in seconds.

    Example
    -------
    >>> with WallTimer() as timer:
    ...     sum(range(1000))
    499500
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self):
        self._start = None
        self.elapsed = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.elapsed = time.perf_counter() - self._start
        return False

    def restart(self):
        """Reset the start time; useful for manual lap timing."""
        self._start = time.perf_counter()
        self.elapsed = 0.0
