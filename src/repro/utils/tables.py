"""Plain-text table rendering for benchmark and example output.

The benchmark harness reports the same rows/series the paper's figures show;
since the environment has no plotting library, results are printed as aligned
text tables (and optionally written to CSV via :mod:`repro.utils.csvio`).
"""

from __future__ import annotations

import numbers


def _format_cell(value, float_format):
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, numbers.Integral):
        return str(int(value))
    if isinstance(value, numbers.Real):
        return float_format.format(float(value))
    return str(value)


def format_table(headers, rows, float_format="{:.6g}", title=None):
    """Render ``rows`` (sequences) under ``headers`` as an aligned text table.

    Parameters
    ----------
    headers:
        Sequence of column names.
    rows:
        Iterable of row sequences; each row must have ``len(headers)`` cells.
    float_format:
        :meth:`str.format` spec applied to real-valued cells.
    title:
        Optional title printed above the table.

    Returns
    -------
    str
        The rendered table, ending without a trailing newline.
    """
    headers = [str(h) for h in headers]
    text_rows = []
    for row in rows:
        cells = [_format_cell(cell, float_format) for cell in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(headers)} columns"
            )
        text_rows.append(cells)

    widths = [len(h) for h in headers]
    for cells in text_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells):
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(cells) for cells in text_rows)
    return "\n".join(lines)
