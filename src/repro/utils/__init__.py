"""Shared utilities: argument validation, timing, grids, text output."""

from repro.utils.validation import (
    check_finite,
    check_positive,
    check_nonnegative,
    check_in_range,
    check_odd,
    as_1d_array,
    as_2d_array,
)
from repro.utils.timing import WallTimer
from repro.utils.tables import format_table
from repro.utils.ascii_plot import ascii_plot
from repro.utils.csvio import write_csv, read_csv

#: Grid constructors that moved to :mod:`repro.grids`; resolved lazily so
#: importing this package never triggers the spectral import chain that
#: :mod:`repro.grids` pulls in (avoiding an import cycle through
#: ``repro.spectral.grid`` → ``repro.utils.validation``).
_MOVED_TO_REPRO_GRIDS = ("uniform_grid", "periodic_grid", "log_grid")


def __getattr__(name):
    if name in _MOVED_TO_REPRO_GRIDS:
        import repro.grids

        return getattr(repro.grids, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "check_finite",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_odd",
    "as_1d_array",
    "as_2d_array",
    "WallTimer",
    "uniform_grid",
    "periodic_grid",
    "log_grid",
    "format_table",
    "ascii_plot",
    "write_csv",
    "read_csv",
]
