"""Shared utilities: argument validation, timing, grids, text output."""

from repro.utils.validation import (
    check_finite,
    check_positive,
    check_nonnegative,
    check_in_range,
    check_odd,
    as_1d_array,
    as_2d_array,
)
from repro.utils.timing import WallTimer
from repro.utils.grids import uniform_grid, periodic_grid, log_grid
from repro.utils.tables import format_table
from repro.utils.ascii_plot import ascii_plot
from repro.utils.csvio import write_csv, read_csv

__all__ = [
    "check_finite",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_odd",
    "as_1d_array",
    "as_2d_array",
    "WallTimer",
    "uniform_grid",
    "periodic_grid",
    "log_grid",
    "format_table",
    "ascii_plot",
    "write_csv",
    "read_csv",
]
