"""Phase conditions for autonomous periodic problems.

An autonomous system is invariant under time shifts: if ``xhat(t1)`` solves
the periodic problem, so does ``xhat(t1 + D)`` for any ``D`` (paper §4).
Newton therefore sees a singular Jacobian unless one scalar *phase
condition* pins the shift.  The paper's eq. (20) fixes the imaginary part
of one Fourier coefficient; §3 (eq. 9) discusses time-domain alternatives.
All of these are linear functionals of the collocation samples, which is
what this module encodes.

A condition applies to one system variable's samples ``x_k`` on an odd
``N``-point uniform grid over one (possibly warped) period, and contributes

    residual  = w . x_k - target      (one scalar equation)
    gradient  = w                     (constant row for the Jacobian border)
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import PhaseConditionError
from repro.spectral.diffmat import fourier_differentiation_matrix
from repro.utils.validation import check_odd


class PhaseCondition(ABC):
    """A linear functional pinning the phase of one variable's samples.

    Parameters
    ----------
    variable:
        Index of the system variable the condition applies to.
    target:
        Right-hand side of the scalar equation.
    """

    def __init__(self, variable=0, target=0.0):
        self.variable = int(variable)
        self.target = float(target)

    @abstractmethod
    def weights(self, num_samples):
        """Weight vector ``w`` (length ``num_samples``) of the functional."""

    def residual(self, samples):
        """Scalar residual for ``samples`` of shape ``(N, n_vars)``."""
        samples = np.asarray(samples, dtype=float)
        w = self.weights(samples.shape[0])
        return float(w @ samples[:, self.variable] - self.target)

    def gradient(self, num_samples, n_vars):
        """Row vector of length ``num_samples * n_vars`` (point-major order)."""
        w = self.weights(num_samples)
        row = np.zeros(num_samples * n_vars)
        row[self.variable::n_vars] = w
        return row


class ValueAnchor(PhaseCondition):
    """Pin ``x_k(t1 = sample_index / N) = target``.

    The simplest time-domain phase condition; ``target`` must be a value the
    waveform actually attains or Newton cannot satisfy it.
    """

    def __init__(self, variable=0, target=0.0, sample_index=0):
        super().__init__(variable, target)
        self.sample_index = int(sample_index)

    def weights(self, num_samples):
        check_odd(num_samples, "num_samples")
        if not 0 <= self.sample_index < num_samples:
            raise PhaseConditionError(
                f"sample_index {self.sample_index} out of range for "
                f"{num_samples} samples"
            )
        w = np.zeros(num_samples)
        w[self.sample_index] = 1.0
        return w


class DerivativeAnchor(PhaseCondition):
    """Pin the t1-derivative: ``d x_k / d t1 (t1=grid point) = target``.

    With ``target = 0`` this anchors an extremum of the waveform at the
    grid point — the time-domain phase condition used for the paper's VCO
    runs (a "time-domain equivalent of (20)", §5).  Always satisfiable,
    since every periodic waveform has extrema.
    """

    def __init__(self, variable=0, target=0.0, sample_index=0):
        super().__init__(variable, target)
        self.sample_index = int(sample_index)

    def weights(self, num_samples):
        check_odd(num_samples, "num_samples")
        if not 0 <= self.sample_index < num_samples:
            raise PhaseConditionError(
                f"sample_index {self.sample_index} out of range for "
                f"{num_samples} samples"
            )
        diffmat = fourier_differentiation_matrix(num_samples, period=1.0)
        return diffmat[self.sample_index].copy()


class FourierImagAnchor(PhaseCondition):
    """Pin ``Im{ X_k[l] } = target`` — the paper's eq. (20) verbatim.

    ``X_k[l]`` is the ``l``-th Fourier coefficient of variable ``k``'s
    t1-dependence.  With ``target = 0`` the ``l``-th harmonic is forced to
    cosine phase.
    """

    def __init__(self, variable=0, harmonic=1, target=0.0):
        super().__init__(variable, target)
        if harmonic == 0:
            raise PhaseConditionError(
                "harmonic 0 has identically zero imaginary part for real "
                "signals; choose |harmonic| >= 1"
            )
        self.harmonic = int(harmonic)

    def weights(self, num_samples):
        check_odd(num_samples, "num_samples")
        half = num_samples // 2
        if abs(self.harmonic) > half:
            raise PhaseConditionError(
                f"harmonic {self.harmonic} not representable with "
                f"{num_samples} samples (max {half})"
            )
        j = np.arange(num_samples)
        # X_l = (1/N) sum_j x_j exp(-2i pi l j / N); Im{X_l} is the weights
        # below dotted with the samples.
        return -np.sin(2.0 * np.pi * self.harmonic * j / num_samples) / num_samples


def as_phase_condition(spec, variable=0):
    """Coerce ``spec`` into a :class:`PhaseCondition`.

    Accepts an existing condition, or one of the strings ``"derivative"``,
    ``"value"``, ``"fourier"`` (built with default parameters on
    ``variable``).
    """
    if isinstance(spec, PhaseCondition):
        return spec
    if spec == "derivative":
        return DerivativeAnchor(variable=variable)
    if spec == "value":
        return ValueAnchor(variable=variable)
    if spec == "fourier":
        return FourierImagAnchor(variable=variable)
    raise PhaseConditionError(
        f"unknown phase condition {spec!r}; use 'derivative', 'value', "
        f"'fourier' or a PhaseCondition instance"
    )
