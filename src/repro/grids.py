"""Shared grid and state-stacking helpers for the collocation solvers.

Every collocation engine (harmonic balance, the quasiperiodic solvers, the
envelope steppers) flattens ``(points, variables)`` sample grids into the
point-major vectors Newton iterates on, and works on the normalised
``t1 in [0, 1)`` spectral grid with centred harmonic indices.  These
helpers used to be copy-pasted per module; they live here once now.
"""

from __future__ import annotations

import numpy as np

from repro.spectral.grid import collocation_grid, harmonic_indices


def stack_states(samples):
    """Flatten a ``(num_points, n_vars)`` grid to a point-major vector.

    Point-major means all variables of collocation point 0 first, then all
    variables of point 1, etc. — the unknown ordering every collocation
    Jacobian in this library uses.
    """
    return np.asarray(samples, dtype=float).ravel()


def unstack_states(vector, num_points, n_vars):
    """Inverse of :func:`stack_states`: reshape to ``(num_points, n_vars)``."""
    return np.asarray(vector, dtype=float).reshape(num_points, n_vars)


def t1_grid(num_t1):
    """Normalised t1 collocation grid (period 1, endpoint excluded)."""
    return collocation_grid(num_t1, 1.0)


def harmonic_axis(num_t1):
    """Centred harmonic indices for a given t1 sample count."""
    return harmonic_indices(num_t1)
