"""Shared grid construction and state-stacking helpers.

Every collocation engine (harmonic balance, the quasiperiodic solvers, the
envelope steppers) flattens ``(points, variables)`` sample grids into the
point-major vectors Newton iterates on, and works on the normalised
``t1 in [0, 1)`` spectral grid with centred harmonic indices.  The basic
1-D grid constructors (``uniform_grid`` and friends) used to live in a
second module, :mod:`repro.utils.grids`; they are folded in here so all
grid construction has one home (the old location re-exports for
compatibility).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.spectral.grid import collocation_grid, harmonic_indices


def stack_states(samples):
    """Flatten a ``(num_points, n_vars)`` grid to a point-major vector.

    Point-major means all variables of collocation point 0 first, then all
    variables of point 1, etc. — the unknown ordering every collocation
    Jacobian in this library uses.
    """
    return np.asarray(samples, dtype=float).ravel()


def unstack_states(vector, num_points, n_vars):
    """Inverse of :func:`stack_states`: reshape to ``(num_points, n_vars)``."""
    return np.asarray(vector, dtype=float).reshape(num_points, n_vars)


def t1_grid(num_t1):
    """Normalised t1 collocation grid (period 1, endpoint excluded)."""
    return collocation_grid(num_t1, 1.0)


def harmonic_axis(num_t1):
    """Centred harmonic indices for a given t1 sample count."""
    return harmonic_indices(num_t1)


def uniform_grid(start, stop, num):
    """Uniform grid of ``num`` points including both endpoints.

    Equivalent to :func:`numpy.linspace` but validates its arguments.
    """
    if num < 2:
        raise ValidationError(f"uniform_grid needs num >= 2, got {num}")
    if not stop > start:
        raise ValidationError(
            f"uniform_grid needs stop > start, got [{start}, {stop}]"
        )
    return np.linspace(start, stop, num)


def periodic_grid(period, num):
    """Uniform grid of ``num`` points on ``[0, period)`` (endpoint excluded).

    This is the natural collocation grid for periodic spectral methods: the
    point at ``t = period`` is identified with ``t = 0`` and therefore not
    repeated.
    """
    if not (np.isfinite(period) and period > 0):
        raise ValidationError(
            f"period must be a positive finite number, got {period!r}"
        )
    if num < 1:
        raise ValidationError(f"periodic_grid needs num >= 1, got {num}")
    return period * np.arange(num) / num


def log_grid(start, stop, num):
    """Logarithmically spaced grid; both endpoints must be positive."""
    if not (np.isfinite(start) and start > 0):
        raise ValidationError(
            f"start must be a positive finite number, got {start!r}"
        )
    if not (np.isfinite(stop) and stop > 0):
        raise ValidationError(
            f"stop must be a positive finite number, got {stop!r}"
        )
    if num < 2:
        raise ValidationError(f"log_grid needs num >= 2, got {num}")
    if not stop > start:
        raise ValidationError(
            f"log_grid needs stop > start, got [{start}, {stop}]"
        )
    return np.geomspace(start, stop, num)
