"""Transient simulation driver.

The inner loop is built around *reuse*:

* the step Jacobian ``alpha * dQ + beta * dF`` is assembled through a
  :class:`repro.linalg.transient_assembler.TransientStepAssembler` whose
  structure is computed once per run from the DAE's structural masks;
* the per-step Newton solve runs through the shared
  :class:`repro.linalg.solver_core.SolverCore` — the same driver the
  collocation engines use — defaulting to the stale-Jacobian chord policy
  (:class:`repro.linalg.newton.StaleJacobianNewton`): one factorisation is
  reused across Newton iterations *and* accepted steps, refreshed only on
  slow convergence or a step-size change, with a damped full-Newton
  fallback whose freshly factorised Jacobian the chord policy adopts;
* in fixed-step runs the forcing ``b(t)`` is evaluated for the whole grid
  in one batched call up front, and each accepted step reuses the ``q`` /
  ``f`` values of its final Newton residual for the integrator history
  instead of re-evaluating them.

:func:`simulate_transient_with_sensitivity` additionally propagates the
forward sensitivity ``dX/dx0`` (and optionally the period derivative)
alongside the state — the single-sweep monodromy used by
:mod:`repro.steadystate.shooting`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError, SimulationError
from repro.kernels.registry import constant_forcing_row
from repro.kernels.sweep import prepare_transient_runner
from repro.linalg.lu_cache import FrozenFactorization
from repro.linalg.newton import NewtonOptions, NewtonResult
from repro.linalg.solver_core import (
    FunctionSystem,
    SolverCore,
    SolverCoreOptions,
    SolverOptionsMixin,
)
from repro.linalg.transient_assembler import TransientStepAssembler
from repro.resilience.checkpoint import Checkpoint, CheckpointManager
from repro.transient.integrators import get_integrator
from repro.transient.results import TransientResult
from repro.utils.validation import check_positive

#: Forcing grids beyond this many steps are evaluated per step instead of
#: being precomputed (memory guard for extreme horizons).
_MAX_FORCING_GRID = 4_000_000

#: Accepted-step capacity of one compiled adaptive chunk (bounds the
#: kernel's out_t/out_x allocation; checkpoint cadence cuts chunks
#: shorter anyway).
_ADAPTIVE_CHUNK = 65_536


@dataclass
class TransientOptions(SolverOptionsMixin):
    """Configuration for :func:`simulate_transient`.

    The ``newton``/``linear_solver``/``threads``/``ladder`` fields come
    from the shared
    :class:`~repro.linalg.solver_core.SolverOptionsMixin` (``threads``
    is accepted for interface uniformity; the transient step assembler
    is not threaded).

    Attributes
    ----------
    integrator:
        ``"be"``, ``"trap"`` or ``"bdf2"`` (or an Integrator instance).
    dt:
        Fixed step size (required when ``adaptive`` is False).
    adaptive:
        Enable proportional step control from a predictor-corrector error
        estimate.
    rtol, atol:
        Local-error weights for the adaptive controller.
    dt_min, dt_max:
        Step bounds for the adaptive controller.
    newton:
        Options for the per-step Newton solve.  The default keeps
        ``raise_on_failure=False`` so the engine owns failure handling:
        a diverged step halves ``dt`` and retries, and when the controller
        hits ``dt_min`` a :class:`~repro.errors.SimulationError` carrying
        the step index, time and last Newton residual is raised — Newton
        divergence is never silently swallowed.
    max_steps:
        Hard limit on accepted steps (guards against runaway loops).
    store_every:
        Keep every k-th accepted point (1 = keep all).
    stale_jacobian:
        Use the chord/modified-Newton policy (factorisation reuse across
        iterations and steps).  Disable to recover one fresh Jacobian per
        Newton iteration.
    refresh_contraction:
        Chord policy knob: refactorise when the residual contracts slower
        than this factor per iteration.
    linear_solver:
        Optional ``(matrix, rhs) -> x`` callable for the Newton linear
        solves (e.g. :class:`repro.linalg.gmres.GmresLinearSolver` with a
        frozen-LU preconditioner for large circuits).  Implies full-Newton
        iterations (a fresh Jacobian per iteration, assembled through the
        pattern-reuse :class:`~repro.linalg.transient_assembler.\
TransientStepAssembler`); if the solver exposes ``invalidate()`` it is
        called on significant step-size changes.
    ladder:
        Recovery-ladder spec forwarded to the step
        :class:`~repro.linalg.solver_core.SolverCore` (``None`` — the
        historical policy; ``"extended"`` — Jacobian refresh, GMRES retry
        and pseudo-transient continuation appended; or an explicit rung
        tuple, see :class:`~repro.linalg.solver_core.SolverCoreOptions`).
    checkpoint_every:
        Accepted steps between resumable snapshots (0 disables periodic
        snapshots; a failing run still attaches a final checkpoint to its
        :class:`~repro.errors.SimulationError`).
    checkpoint_path:
        Optional file path the latest snapshot is spooled to (atomic
        write-and-rename), for crash recovery across processes.
    """

    newton: NewtonOptions = field(
        default_factory=lambda: NewtonOptions(raise_on_failure=False)
    )
    integrator: object = "trap"
    dt: float | None = None
    adaptive: bool = False
    rtol: float = 1e-6
    atol: float = 1e-9
    dt_min: float = 1e-18
    dt_max: float = np.inf
    max_steps: int = 20_000_000
    store_every: int = 1
    stale_jacobian: bool = True
    refresh_contraction: float = 0.05
    checkpoint_every: int = 0
    checkpoint_path: object = None


class _StepController:
    """Per-run Newton machinery shared by all steps of one transient run.

    Owns the pattern-reuse Jacobian assembler and a
    :class:`repro.linalg.solver_core.SolverCore` carrying the whole Newton
    policy — the same core every collocation engine uses: chord with a
    damped full-Newton fallback (the engine default), full Newton with an
    optional custom linear solver, dt-jump invalidation via
    ``note_parameters``, and the uniform
    :class:`~repro.linalg.solver_core.SolverStats` surfaced as
    ``result.stats["solver"]``.  The controller itself only adapts the
    step residual/Jacobian closures and the engine's failure semantics
    (a step must *return* non-convergence so the dt controller can react).
    """

    def __init__(self, dae, opts):
        self.dae = dae
        self.opts = opts
        self.assembler = TransientStepAssembler(
            dae.dq_structure(), dae.df_structure()
        )
        mode = (
            "chord"
            if opts.stale_jacobian and opts.linear_solver is None
            else "full"
        )
        self.core = SolverCore(SolverCoreOptions(
            mode=mode,
            newton=opts.newton,
            linear_solver=opts.linear_solver,
            contraction=opts.refresh_contraction,
            # The engine's historical dt policy: drop frozen factors when
            # the integrator weight alpha ~ 1/dt jumps by more than 25%.
            invalidate_rtol=0.25,
            threads=getattr(opts, "threads", None),
            ladder=getattr(opts, "ladder", None),
        ))
        self._last_alpha = None
        # (alpha, beta, x) of the most recent step-Jacobian assembly — the
        # metadata a checkpoint stores instead of the (unpicklable)
        # factorisation itself.  Refreshed inside the jacobian closure, so
        # it tracks exactly the matrix the chord policy holds factors of.
        self._jac_meta = None

    @property
    def fallbacks(self):
        """Steps that fell back to damped full Newton."""
        return self.core.stats.fallbacks

    def factorizations(self):
        """Total factorisations across the core's backends."""
        return self.core.stats.factorizations

    def invalidate(self):
        self.core.invalidate()

    def adopt(self, factorization):
        """Adopt an exact, externally factorised step Jacobian (chord)."""
        self.core.adopt_factorization(factorization)

    def factor_metadata(self):
        """Checkpointable description of the frozen chord factorisation.

        Returns ``(alpha, beta, x)`` — enough to re-assemble and
        refactorise the exact matrix the chord policy currently holds —
        or ``None`` when no factors are frozen (full mode, or right after
        an invalidation), in which case a resumed run starts unfactored
        exactly like the live run would have continued.
        """
        chord = self.core._chord
        if chord is not None and chord._have and self._jac_meta is not None:
            alpha, beta, x = self._jac_meta
            return (float(alpha), float(beta), np.array(x))
        return None

    def solver_snapshot(self):
        """Checkpointable solver-core bookkeeping (stats + parameters)."""
        return {
            "stats": self.core.stats.as_dict(),
            "params": dict(self.core._params),
            "last_alpha": self._last_alpha,
        }

    def restore(self, snapshot, factor_meta):
        """Rebuild the controller state captured by a checkpoint.

        Factorising the re-assembled matrix is deterministic (SuperLU/
        LAPACK on identical input), so after this call the chord policy
        makes bit-for-bit the decisions of the uninterrupted run.
        """
        stats = self.core.stats
        for key, value in snapshot["stats"].items():
            setattr(stats, key, value)
        self.core._params.update(snapshot["params"])
        self._last_alpha = snapshot["last_alpha"]
        if factor_meta is not None and self.core._chord is not None:
            alpha, beta, x = factor_meta
            matrix = self.assembler.refresh(
                alpha, self.dae.dq_dx(x), beta, self.dae.df_dx(x)
            )
            self.core.adopt_factorization(FrozenFactorization().factor(matrix))
            self._jac_meta = (alpha, beta, np.array(x, dtype=float))

    def solve_step(self, integrator, history, t_new, b_new, x_guess):
        """Solve one implicit step towards ``t_new``.

        Returns ``(result, q_new, fb_new, alpha, beta)`` where ``q_new`` /
        ``fb_new`` are ``q(x)`` and ``f(x) - b(t_new)`` at the final Newton
        iterate — exactly the history entries the next step consumes.
        """
        dae = self.dae
        alpha, rhs_const, beta = integrator.residual_terms(dae, history, t_new)
        if alpha != self._last_alpha:
            # Fixed-step runs keep one alpha; skip the (kwargs) call on
            # the unchanged common case.
            self.core.note_parameters(alpha=alpha)
            self._last_alpha = alpha
        stash = [None, None]

        def residual(x_trial):
            q, fv = dae.qf(x_trial)
            fb = fv - b_new
            stash[0] = q
            stash[1] = fb
            r = alpha * q
            r += rhs_const
            r += beta * fb
            return r

        assembler = self.assembler
        controller = self

        def jacobian(x_trial):
            controller._jac_meta = (
                alpha, beta, np.array(x_trial, dtype=float)
            )
            return assembler.refresh(
                alpha, dae.dq_dx(x_trial), beta, dae.df_dx(x_trial)
            )

        try:
            # The fallback restarts from the last accepted state rather
            # than the (possibly bad) predictor.
            result = self.core.solve(
                FunctionSystem(residual, jacobian), x_guess,
                fallback_z0=history[-1][1],
            )
        except ConvergenceError as exc:
            # Includes SingularJacobianError: a singular or non-finite step
            # Jacobian at some trial iterate is treated as a step failure —
            # a smaller dt makes the step matrix more diagonally dominant —
            # and surfaces as a SimulationError with step/time context if
            # the controller runs out of dt.
            result = NewtonResult(
                np.asarray(history[-1][1], dtype=float), False,
                exc.iterations or 0,
                float("nan") if exc.residual_norm is None
                else exc.residual_norm,
            )
        return result, stash[0], stash[1], alpha, beta


def _forcing_grid(dae, t_start, t_stop, dt, max_points=None):
    """Uniform step times and batched forcing values for a fixed-step run."""
    if max_points is None:
        max_points = _MAX_FORCING_GRID
    span = t_stop - t_start
    n_steps = max(int(np.ceil(span / dt - 1e-9)), 1)
    if n_steps > max_points:
        return None, None
    times = t_start + dt * np.arange(1, n_steps + 1)
    times[-1] = t_stop
    return times, dae.b_batch(times)


def _extrapolate(history, t_new):
    """Polynomial predictor through the last accepted states.

    Used as the Newton initial guess only — it changes how fast Newton
    reaches the step's solution, never the solution itself.
    """
    if len(history) >= 3:
        (ta, xa, _, _), (tb, xb, _, _), (tc, xc, _, _) = history[-3:]
        if ta != tb and tb != tc and ta != tc:
            la = (t_new - tb) * (t_new - tc) / ((ta - tb) * (ta - tc))
            lb = (t_new - ta) * (t_new - tc) / ((tb - ta) * (tb - tc))
            lc = (t_new - ta) * (t_new - tb) / ((tc - ta) * (tc - tb))
            return la * xa + lb * xb + lc * xc
    if len(history) >= 2:
        (t1, x1, _, _), (t2, x2, _, _) = history[-2:]
        if t2 != t1:
            return x2 + (x2 - x1) * ((t_new - t2) / (t2 - t1))
    return history[-1][1]


def simulate_transient(dae, x0, t_start, t_stop, options=None,
                       resume_from=None, warm_start=None):
    """Integrate ``d/dt q(x) + f(x) = b(t)`` from ``t_start`` to ``t_stop``.

    Parameters
    ----------
    dae:
        A :class:`~repro.dae.base.SemiExplicitDAE`.
    x0:
        Initial state; assumed consistent (use
        :func:`repro.steadystate.dc.dc_operating_point` to get one).
        Ignored when ``resume_from`` is given.
    t_start, t_stop:
        Simulation window, ``t_stop > t_start``.  A resumed run must be
        called with the window of the original run.
    options:
        :class:`TransientOptions`.  ``checkpoint_every``/
        ``checkpoint_path`` control periodic snapshots; any
        :class:`~repro.errors.SimulationError` raised mid-run carries a
        final snapshot as ``exc.checkpoint`` and the accepted trajectory
        prefix as ``exc.partial_result``.
    resume_from:
        A :class:`~repro.resilience.Checkpoint` (or a path to one saved
        on disk) produced by a previous run with the same ``dae``,
        window and options.  The run continues from the snapshot and —
        because the snapshot carries the integrator history, controller
        parameters and frozen-factorisation metadata — produces a
        trajectory bit-identical with the uninterrupted run's.
    warm_start:
        Optional warm-start seed (duck-typed, typically
        :class:`repro.service.cache.WarmStart`): supplies ``x0`` when it
        is passed as ``None`` and pre-adopts a previously exported solver
        state plus frozen step-Jacobian metadata, so the run starts with
        chord factors in hand.  :meth:`SolverCore.note_parameters` still
        drops them on an ``alpha`` jump, so a badly matched seed degrades
        to a cold start.  Ignored when ``resume_from`` is given.

    Returns
    -------
    TransientResult
    """
    opts = options or TransientOptions()
    integrator = get_integrator(opts.integrator)
    if not t_stop > t_start:
        raise SimulationError(
            f"t_stop must exceed t_start, got [{t_start}, {t_stop}]"
        )
    if not opts.adaptive:
        if opts.dt is None:
            raise SimulationError("fixed-step transient requires options.dt")
        check_positive(opts.dt, "options.dt")

    controller = _StepController(dae, opts)
    manager = CheckpointManager(
        every=opts.checkpoint_every, path=opts.checkpoint_path
    )

    if resume_from is not None:
        if isinstance(resume_from, (str, os.PathLike)):
            resume_from = Checkpoint.load(resume_from)
        if resume_from.kind != "transient":
            raise SimulationError(
                f"cannot resume a transient run from a "
                f"{resume_from.kind!r} checkpoint"
            )
        payload = resume_from.payload
        t = float(resume_from.t)
        dt = float(resume_from.dt)
        history = [
            (float(ht), np.array(hx), np.array(hq), np.array(hfb))
            for ht, hx, hq, hfb in payload["history"]
        ]
        x = history[-1][1].copy()
        stored_t = list(payload["stored_t"])
        stored_x = [np.array(v) for v in payload["stored_x"]]
        stats = dict(payload["stats"])
        accepted_since_store = payload["accepted_since_store"]
        controller.restore(payload["solver"], payload.get("factor_meta"))
        t_grid = b_grid = None
        grid_idx = payload["grid_idx"]
        if payload["grid_active"] and not opts.adaptive:
            t_grid, b_grid = _forcing_grid(
                dae, t_start, t_stop, float(opts.dt)
            )
    else:
        if x0 is None and warm_start is not None:
            x0 = getattr(warm_start, "x0", None)
        if x0 is None:
            raise SimulationError(
                "x0 is required (directly or via warm_start)"
            )
        x = np.array(x0, dtype=float).ravel()
        if x.size != dae.n:
            raise SimulationError(
                f"initial state has length {x.size}, DAE has {dae.n} unknowns"
            )

        t = float(t_start)
        dt = (
            float(opts.dt) if opts.dt is not None
            else (t_stop - t_start) / 1000.0
        )
        if opts.adaptive:
            # The first step has no predictor and therefore no error
            # control; start tiny and let the controller grow the step
            # geometrically.
            dt = min(dt, (t_stop - t_start) * 1e-6)
            dt = max(dt, opts.dt_min)

        # History entries: (t, x, q, f - b) — integrators consume these.
        history = [(t, x.copy(), dae.q(x), dae.f(x) - dae.b(t))]

        # Fixed-step fast path: whole forcing grid in one batched call.
        t_grid = b_grid = None
        grid_idx = 0
        if not opts.adaptive:
            t_grid, b_grid = _forcing_grid(dae, t_start, t_stop, dt)

        stored_t = [t]
        stored_x = [x.copy()]
        stats = {
            "steps": 0,
            "rejected_steps": 0,
            "newton_iterations": 0,
            "newton_failures": 0,
            "newton_fallbacks": 0,
            "jacobian_factorizations": 0,
        }
        accepted_since_store = 0
        if warm_start is not None:
            warm_state = getattr(warm_start, "solver_state", None)
            if warm_state:
                controller.core.adopt_warm_state(warm_state)
            warm_meta = getattr(warm_start, "factor_meta", None)
            if warm_meta is not None and controller.core._chord is not None:
                w_alpha, w_beta, w_x = warm_meta
                matrix = controller.assembler.refresh(
                    w_alpha, dae.dq_dx(w_x), w_beta, dae.df_dx(w_x)
                )
                controller.core.adopt_factorization(
                    FrozenFactorization().factor(matrix)
                )
                controller._jac_meta = (
                    w_alpha, w_beta, np.array(w_x, dtype=float)
                )

    # Compiled fast path (ROADMAP item 1).  Resolution runs even for
    # ineligible runs so an explicitly requested unavailable backend
    # raises eagerly instead of silently running the python loop.
    b_const = None
    if opts.adaptive:
        b_const = constant_forcing_row(dae, float(t_start))
        if b_const is None:
            kernel_blocked = (
                "adaptive compiled sweeps need time-invariant forcing; "
                "this DAE's b(t) varies"
            )
        else:
            kernel_blocked = None
    elif t_grid is None:
        kernel_blocked = (
            "no precomputed forcing grid (horizon exceeds the batch "
            "limit or a resumed run had abandoned the grid)"
        )
    else:
        kernel_blocked = None
    kernel_runner, kernel_info = prepare_transient_runner(
        dae, opts, integrator, blocked=kernel_blocked
    )
    stats["kernel"] = kernel_info
    kernel_steps0 = stats["steps"]  # nonzero on resumed runs

    def take_checkpoint():
        # Reads the enclosing locals at call time, so it always snapshots
        # the last *accepted* state (failed attempts never advance them).
        return Checkpoint(
            kind="transient",
            step=stats["steps"],
            t=t,
            dt=dt,
            payload={
                "history": [
                    (float(ht), np.array(hx), np.array(hq), np.array(hfb))
                    for ht, hx, hq, hfb in history
                ],
                "stored_t": list(stored_t),
                "stored_x": [np.array(v) for v in stored_x],
                "accepted_since_store": accepted_since_store,
                "stats": dict(stats),
                "grid_active": t_grid is not None,
                "grid_idx": grid_idx,
                "t_start": float(t_start),
                "t_stop": float(t_stop),
                "solver": controller.solver_snapshot(),
                "factor_meta": controller.factor_metadata(),
            },
        )

    def fail(message, step_dt, result=None):
        # Every mid-run failure carries full structured context: where the
        # engine died, a salvageable trajectory prefix, and a resumable
        # snapshot of the last accepted state.
        kernel_info["python_steps"] = (
            stats["steps"] - kernel_steps0 - kernel_info["compiled_steps"]
        )
        stats_out = dict(stats)
        stats_out["newton_fallbacks"] = controller.fallbacks
        stats_out["jacobian_factorizations"] = controller.factorizations()
        stats_out["solver"] = controller.core.stats.as_dict()
        partial = TransientResult(
            np.asarray(stored_t),
            np.asarray(stored_x),
            dae.variable_names,
            stats_out,
        )
        raise SimulationError(
            message,
            step=stats["steps"],
            time=t,
            dt=step_dt,
            residual_norm=(
                result.residual_norm if result is not None else None
            ),
            iterations=result.iterations if result is not None else None,
            checkpoint=manager.take(take_checkpoint),
            partial_result=partial,
        )

    def _kernel_march():
        # Fused fixed-step march: N grid steps per call into the
        # compiled sweep, zero python in between.  Chunks end exactly at
        # checkpoint cadence points and at max_steps, and after every
        # chunk the python-side controller is resynchronised, so
        # checkpoints, warm exports and counters stay truthful.  Any
        # non-zero status hands the offending step (and the rest of the
        # run) back to the python loop below — the recovery ladder and
        # failure semantics are untouched.
        nonlocal t, x, dt, history, grid_idx, accepted_since_store
        nonlocal kernel_runner
        runner = kernel_runner
        tg = np.ascontiguousarray(t_grid, dtype=float)
        bg = np.ascontiguousarray(b_grid, dtype=float)
        runner.load(history, controller)
        core_stats = controller.core.stats
        while (t < t_stop - 1e-15 * max(abs(t_stop), 1.0)
               and grid_idx < tg.shape[0]):
            cap = opts.max_steps - stats["steps"]
            if cap <= 0:
                fail(
                    f"exceeded max_steps={opts.max_steps} at t={t:.6e}",
                    dt,
                )
            end = min(tg.shape[0], grid_idx + cap)
            if manager.every:
                boundary = manager.every - stats["steps"] % manager.every
                end = min(end, grid_idx + boundary)
            status = runner.run(tg, bg, grid_idx, end)
            done = int(runner.counters[0])
            stats["newton_iterations"] += int(runner.counters[1])
            core_stats.solves += int(runner.counters[4])
            core_stats.iterations += int(runner.counters[1])
            core_stats.residual_evaluations += int(runner.counters[2])
            core_stats.factorizations += int(runner.counters[3])
            core_stats.jacobian_refreshes += int(runner.counters[3])
            core_stats.wall_time_s += runner.last_wall
            runner.reset_counters()
            if done:
                out = runner.out_x
                last = grid_idx + done
                if opts.store_every == 1:
                    stored_t.extend(tg[grid_idx:last])
                    stored_x.extend(out[:done].copy())
                    accepted_since_store = 0
                else:
                    for j in range(done):
                        accepted_since_store += 1
                        tj = tg[grid_idx + j]
                        if (accepted_since_store >= opts.store_every
                                or tj >= t_stop):
                            stored_t.append(tj)
                            stored_x.append(out[j].copy())
                            accepted_since_store = 0
                t = tg[last - 1]
                prev = tg[last - 2] if last >= 2 else t_start
                dt = min(float(tg[last - 1] - prev), opts.dt_max)
                history = runner.export_history()
                x = history[-1][1].copy()
                grid_idx = last
                stats["steps"] += done
                kernel_info["compiled_steps"] += done
                runner.sync_controller(controller, dae)
                manager.offer(stats["steps"], take_checkpoint)
                if stats["steps"] >= opts.max_steps:
                    fail(
                        f"exceeded max_steps={opts.max_steps} "
                        f"at t={t:.6e}",
                        dt,
                    )
            else:
                runner.sync_controller(controller, dae)
            if status != 0:
                kernel_info["reason"] = (
                    f"compiled sweep returned status {status} at step "
                    f"{stats['steps']}; python recovery ladder resumed"
                )
                kernel_runner = None
                return

    def _kernel_adaptive_march():
        # Adaptive twin of _kernel_march: the in-kernel local-error dt
        # controller (constant forcing row) runs whole chunks between
        # accepted-step checkpoints.  The live dt crosses the boundary in
        # runner.reg[2] both ways, and a status-4 underflow exits
        # *without* committing the final shrink, so the python replay of
        # the offending attempt reproduces the exact failure.
        nonlocal t, x, dt, history, accepted_since_store
        nonlocal kernel_runner
        runner = kernel_runner
        b_row = np.ascontiguousarray(b_const, dtype=float)
        runner.load(history, controller)
        runner.reg[2] = dt
        core_stats = controller.core.stats
        while t < t_stop - 1e-15 * max(abs(t_stop), 1.0):
            cap = opts.max_steps - stats["steps"]
            if cap <= 0:
                fail(
                    f"exceeded max_steps={opts.max_steps} at t={t:.6e}",
                    dt,
                )
            chunk = min(cap, _ADAPTIVE_CHUNK)
            if manager.every:
                boundary = manager.every - stats["steps"] % manager.every
                chunk = min(chunk, boundary)
            status = runner.run_adaptive(b_row, t_stop, chunk)
            done = int(runner.counters[0])
            stats["newton_iterations"] += int(runner.counters[1])
            stats["rejected_steps"] += int(runner.counters[5])
            core_stats.solves += int(runner.counters[4])
            core_stats.iterations += int(runner.counters[1])
            core_stats.residual_evaluations += int(runner.counters[2])
            core_stats.factorizations += int(runner.counters[3])
            core_stats.jacobian_refreshes += int(runner.counters[3])
            core_stats.wall_time_s += runner.last_wall
            runner.reset_counters()
            dt = float(runner.reg[2])
            if done:
                if opts.store_every == 1:
                    stored_t.extend(runner.out_t[:done])
                    stored_x.extend(runner.out_x[:done].copy())
                    accepted_since_store = 0
                else:
                    for j in range(done):
                        accepted_since_store += 1
                        tj = float(runner.out_t[j])
                        if (accepted_since_store >= opts.store_every
                                or tj >= t_stop):
                            stored_t.append(tj)
                            stored_x.append(runner.out_x[j].copy())
                            accepted_since_store = 0
                t = float(runner.out_t[done - 1])
                history = runner.export_history()
                x = history[-1][1].copy()
                stats["steps"] += done
                kernel_info["compiled_steps"] += done
                runner.sync_controller(controller, dae)
                manager.offer(stats["steps"], take_checkpoint)
                if stats["steps"] >= opts.max_steps:
                    fail(
                        f"exceeded max_steps={opts.max_steps} "
                        f"at t={t:.6e}",
                        dt,
                    )
            else:
                runner.sync_controller(controller, dae)
            if status != 0:
                kernel_info["reason"] = (
                    f"compiled adaptive sweep returned status {status} at "
                    f"step {stats['steps']}; python adaptive loop resumed"
                )
                kernel_runner = None
                return

    if kernel_runner is not None:
        if opts.adaptive:
            _kernel_adaptive_march()
        elif t_grid is not None:
            _kernel_march()

    while t < t_stop - 1e-15 * max(abs(t_stop), 1.0):
        if t_grid is not None:
            t_new = t_grid[grid_idx]
            b_new = b_grid[grid_idx]
            dt = t_new - t
        else:
            dt = min(dt, t_stop - t)
            t_new = t + dt
            b_new = dae.b(t_new)

        x_guess = _extrapolate(history, t_new)
        result, q_new, fb_new, _alpha, _beta = controller.solve_step(
            integrator, history, t_new, b_new, x_guess
        )
        stats["newton_iterations"] += result.iterations

        if not result.converged:
            stats["newton_failures"] += 1
            dt *= 0.5
            # The step grid is no longer uniform; fall back to per-step
            # forcing evaluation for the rest of the run.
            t_grid = b_grid = None
            if dt < opts.dt_min:
                fail(
                    f"step size underflow at step {stats['steps']}, "
                    f"t={t:.6e}: Newton diverged with dt={2 * dt:.3e} "
                    f"(residual norm {result.residual_norm:.3e} after "
                    f"{result.iterations} iterations)",
                    2 * dt,
                    result,
                )
            continue

        x_new = result.x

        if opts.adaptive:
            x_pred = _predict(history, t_new)
            if x_pred is not None:
                scale = opts.atol + opts.rtol * np.maximum(
                    np.abs(x_new), np.abs(x)
                )
                err = float(
                    np.sqrt(np.mean(((x_new - x_pred) / scale) ** 2))
                )
                # The predictor is itself order >= 1 accurate; treat the
                # discrepancy as the local error of the lower order.
                if err > 1.0:
                    stats["rejected_steps"] += 1
                    dt = max(
                        dt * max(0.2, 0.9 * err ** (-1.0 / (integrator.order + 1))),
                        opts.dt_min,
                    )
                    if dt <= opts.dt_min:
                        fail(
                            f"step size underflow at step {stats['steps']}, "
                            f"t={t:.6e}: local-error control rejected "
                            f"dt={dt:.3e} (error estimate {err:.3e})",
                            dt,
                            result,
                        )
                    continue
                growth = 0.9 * err ** (-1.0 / (integrator.order + 1)) if err > 0 else 5.0
                dt_next = dt * min(5.0, max(0.2, growth))
            else:
                dt_next = dt
        else:
            dt_next = dt

        # Accept the step.
        t = t_new
        x = x_new
        history.append((t, x.copy(), q_new, fb_new))
        if len(history) > max(integrator.steps, 2) + 1:
            history.pop(0)
        if t_grid is not None:
            grid_idx += 1

        stats["steps"] += 1
        accepted_since_store += 1
        if accepted_since_store >= opts.store_every or t >= t_stop:
            stored_t.append(t)
            stored_x.append(x.copy())
            accepted_since_store = 0

        dt = min(dt_next, opts.dt_max)
        manager.offer(stats["steps"], take_checkpoint)
        if stats["steps"] >= opts.max_steps:
            fail(
                f"exceeded max_steps={opts.max_steps} at t={t:.6e}", dt
            )

    kernel_info["python_steps"] = (
        stats["steps"] - kernel_steps0 - kernel_info["compiled_steps"]
    )
    stats["newton_fallbacks"] = controller.fallbacks
    stats["jacobian_factorizations"] = controller.factorizations()
    stats["solver"] = controller.core.stats.as_dict()
    if controller.core.recovery:
        stats["recovery"] = controller.core.recovery.as_dict()
    stats["warm"] = {
        "factor_meta": controller.factor_metadata(),
        "solver_state": controller.core.export_warm_state(),
    }

    return TransientResult(
        np.asarray(stored_t),
        np.asarray(stored_x),
        dae.variable_names,
        stats,
    )


@dataclass
class TransientSensitivityResult:
    """Outcome of :func:`simulate_transient_with_sensitivity`.

    Attributes
    ----------
    result:
        The :class:`~repro.transient.results.TransientResult` of the sweep.
    sensitivity:
        ``(n, k)`` forward sensitivity ``dX(t_stop)/dx0 @ s0`` (the
        monodromy matrix when ``s0`` is the identity over one period).
    period_sensitivity:
        ``(n,)`` derivative of the final state with respect to the sweep
        length ``T = t_stop - t_start`` under the convention that the whole
        uniform step grid scales with ``T`` (``dt = T / steps``); ``None``
        unless requested.
    """

    result: TransientResult
    sensitivity: np.ndarray
    period_sensitivity: np.ndarray = None


def simulate_transient_with_sensitivity(dae, x0, t_start, t_stop,
                                        options=None, s0=None,
                                        period_sensitivity=False):
    """Fixed-step transient with forward sensitivity propagation.

    Integrates ``S(t) = dX(t)/dx0`` alongside the state in the *same*
    sweep: each accepted step evaluates the exact step Jacobian once at the
    converged state, factorises it once, and solves all ``n`` sensitivity
    right-hand sides (plus the optional period column) against that single
    factorisation.  Differentiating the discrete step residual gives

        (alpha dQ_new + beta dF_new) S_new = - sum_i (w_q[i] dQ_i
                                                      + w_f[i] dF_i) S_i

    with the history weights of
    :meth:`repro.transient.integrators.Integrator.history_weights`, so the
    result is the exact Jacobian of the *discrete* flow map — this is what
    makes one shooting-Newton iteration cost one transient sweep instead of
    ``n + 1``.  The factorisation is also adopted as the next step's chord
    Jacobian, so the state solve gets a perfectly fresh Newton matrix for
    free.

    Parameters
    ----------
    dae, x0, t_start, t_stop:
        As for :func:`simulate_transient`.
    options:
        :class:`TransientOptions`; must describe a fixed-step run.
    s0:
        Optional ``(n, k)`` initial sensitivity (default: identity).
    period_sensitivity:
        Also propagate the derivative of the state with respect to the
        sweep length ``T`` (grid scaling ``dt = T / steps``); forcing time
        derivatives are obtained by central differences on ``b``.

    Returns
    -------
    TransientSensitivityResult
    """
    opts = options or TransientOptions()
    if opts.adaptive:
        raise SimulationError(
            "sensitivity propagation requires a fixed-step run"
        )
    if opts.dt is None:
        raise SimulationError("sensitivity propagation requires options.dt")
    check_positive(opts.dt, "options.dt")
    integrator = get_integrator(opts.integrator)
    if not t_stop > t_start:
        raise SimulationError(
            f"t_stop must exceed t_start, got [{t_start}, {t_stop}]"
        )

    n = dae.n
    x = np.array(x0, dtype=float).ravel()
    if x.size != n:
        raise SimulationError(
            f"initial state has length {x.size}, DAE has {n} unknowns"
        )
    if s0 is None:
        S = np.eye(n)
    else:
        S = np.array(s0, dtype=float)
        if S.shape[0] != n:
            raise SimulationError(
                f"s0 must have {n} rows, got shape {S.shape}"
            )

    t = float(t_start)
    dt = float(opts.dt)
    span = t_stop - t_start

    t_grid, b_grid = _forcing_grid(dae, t_start, t_stop, dt)
    if t_grid is None:
        raise SimulationError(
            f"sensitivity sweep of {(t_stop - t_start) / dt:.3g} steps "
            f"exceeds the {_MAX_FORCING_GRID} step grid limit; use fewer, "
            f"coarser steps (sensitivities do not need more resolution "
            f"than the state)"
        )
    controller = _StepController(dae, opts)
    factor = FrozenFactorization()

    bp_grid = bp0 = None
    if period_sensitivity:
        # Forcing time-derivatives on the grid (and at t_start) by central
        # differences; exact zero for autonomous systems.
        h = dt * 1e-3
        all_times = np.concatenate(([t_start], t_grid))
        bp_all = (dae.b_batch(all_times + h) - dae.b_batch(all_times - h)) \
            / (2.0 * h)
        bp0, bp_grid = bp_all[0], bp_all[1:]

    history = [(t, x.copy(), dae.q(x), dae.f(x) - dae.b(t))]
    # Parallel per-point data: (dQ, dF, S, s_T, b') aligned with `history`.
    sens_history = [(
        dae.dq_dx(x), dae.df_dx(x), S,
        np.zeros(n) if period_sensitivity else None,
        bp0,
    )]

    stored_t = [t]
    stored_x = [x.copy()]
    stats = {
        "steps": 0,
        "rejected_steps": 0,
        "newton_iterations": 0,
        "newton_failures": 0,
        "newton_fallbacks": 0,
        "jacobian_factorizations": 0,
    }
    accepted_since_store = 0
    history_cap = max(integrator.steps, 2) + 1

    for k in range(t_grid.size):
        t_new = t_grid[k]
        b_new = b_grid[k]
        x_guess = _extrapolate(history, t_new)
        result, q_new, fb_new, alpha, beta = controller.solve_step(
            integrator, history, t_new, b_new, x_guess
        )
        stats["newton_iterations"] += result.iterations
        if not result.converged:
            stats["newton_failures"] += 1
            raise SimulationError(
                f"sensitivity sweep cannot adapt its step: Newton diverged "
                f"at step {stats['steps']}, t={t:.6e}, dt={dt:.3e} "
                f"(residual norm {result.residual_norm:.3e}); increase the "
                f"number of steps",
                step=stats["steps"],
                time=t,
                dt=dt,
                residual_norm=result.residual_norm,
                iterations=result.iterations,
            )
        x_new = result.x

        # Exact step Jacobian at the converged state: one factorisation
        # serves the sensitivity right-hand sides *and* the next step's
        # chord Newton.
        dq_new = dae.dq_dx(x_new)
        df_new = dae.df_dx(x_new)
        factor.factor(
            controller.assembler.refresh(alpha, dq_new, beta, df_new)
        )
        stats["jacobian_factorizations"] += 1
        controller.adopt(factor)

        weights = integrator.history_weights(history, t_new)
        used = sens_history[-len(weights):]
        rhs = None
        rhs_t = None
        coef_q = alpha * q_new
        for (w_q, w_f), (dq_i, df_i, s_i, st_i, bp_i), \
                (t_i, _x_i, q_i, _fb_i) in zip(
                    weights, used, history[-len(weights):]):
            w_mat = w_q * dq_i
            if w_f:
                w_mat = w_mat + w_f * df_i
            rhs = w_mat @ s_i if rhs is None else rhs + w_mat @ s_i
            if period_sensitivity:
                term = w_mat @ st_i
                rhs_t = term if rhs_t is None else rhs_t + term
                coef_q = coef_q + w_q * q_i
                if w_f:
                    rhs_t = rhs_t - (w_f * (t_i - t_start) / span) * bp_i
        s_new = -factor.solve(rhs)
        st_new = None
        bp_new = None
        if period_sensitivity:
            bp_new = bp_grid[k]
            rhs_t = rhs_t - coef_q / span \
                - (beta * (t_new - t_start) / span) * bp_new
            st_new = -factor.solve(rhs_t)

        # Accept.
        t = float(t_new)
        x = x_new
        history.append((t, x.copy(), q_new, fb_new))
        sens_history.append((dq_new, df_new, s_new, st_new, bp_new))
        if len(history) > history_cap:
            history.pop(0)
            sens_history.pop(0)
        S = s_new

        stats["steps"] += 1
        accepted_since_store += 1
        if accepted_since_store >= opts.store_every or t >= t_stop:
            stored_t.append(t)
            stored_x.append(x.copy())
            accepted_since_store = 0

    stats["newton_fallbacks"] = controller.fallbacks
    stats["jacobian_factorizations"] += controller.factorizations()
    stats["solver"] = controller.core.stats.as_dict()
    if controller.core.recovery:
        stats["recovery"] = controller.core.recovery.as_dict()

    result = TransientResult(
        np.asarray(stored_t),
        np.asarray(stored_x),
        dae.variable_names,
        stats,
    )
    return TransientSensitivityResult(
        result, S, sens_history[-1][3] if period_sensitivity else None
    )


def _predict(history, t_new):
    """Linear extrapolation from the last two accepted points (or None)."""
    if len(history) < 2:
        return None
    (t1, x1, _q1, _fb1), (t2, x2, _q2, _fb2) = history[-2], history[-1]
    if t2 == t1:
        return None
    slope = (x2 - x1) / (t2 - t1)
    return x2 + slope * (t_new - t2)
