"""Transient simulation driver."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.linalg.lu_cache import ReusableLUSolver
from repro.linalg.newton import NewtonOptions, newton_solve
from repro.transient.integrators import get_integrator
from repro.transient.results import TransientResult
from repro.utils.validation import check_positive


@dataclass
class TransientOptions:
    """Configuration for :func:`simulate_transient`.

    Attributes
    ----------
    integrator:
        ``"be"``, ``"trap"`` or ``"bdf2"`` (or an Integrator instance).
    dt:
        Fixed step size (required when ``adaptive`` is False).
    adaptive:
        Enable proportional step control from a predictor-corrector error
        estimate.
    rtol, atol:
        Local-error weights for the adaptive controller.
    dt_min, dt_max:
        Step bounds for the adaptive controller.
    newton:
        Options for the per-step Newton solve.
    max_steps:
        Hard limit on accepted steps (guards against runaway loops).
    store_every:
        Keep every k-th accepted point (1 = keep all).
    """

    integrator: object = "trap"
    dt: float | None = None
    adaptive: bool = False
    rtol: float = 1e-6
    atol: float = 1e-9
    dt_min: float = 1e-18
    dt_max: float = np.inf
    newton: NewtonOptions = field(
        default_factory=lambda: NewtonOptions(raise_on_failure=False)
    )
    max_steps: int = 20_000_000
    store_every: int = 1


def simulate_transient(dae, x0, t_start, t_stop, options=None):
    """Integrate ``d/dt q(x) + f(x) = b(t)`` from ``t_start`` to ``t_stop``.

    Parameters
    ----------
    dae:
        A :class:`~repro.dae.base.SemiExplicitDAE`.
    x0:
        Initial state; assumed consistent (use
        :func:`repro.steadystate.dc.dc_operating_point` to get one).
    t_start, t_stop:
        Simulation window, ``t_stop > t_start``.
    options:
        :class:`TransientOptions`.

    Returns
    -------
    TransientResult
    """
    opts = options or TransientOptions()
    integrator = get_integrator(opts.integrator)
    if not t_stop > t_start:
        raise SimulationError(
            f"t_stop must exceed t_start, got [{t_start}, {t_stop}]"
        )
    if not opts.adaptive:
        if opts.dt is None:
            raise SimulationError("fixed-step transient requires options.dt")
        check_positive(opts.dt, "options.dt")

    x = np.array(x0, dtype=float).ravel()
    if x.size != dae.n:
        raise SimulationError(
            f"initial state has length {x.size}, DAE has {dae.n} unknowns"
        )

    t = float(t_start)
    dt = float(opts.dt) if opts.dt is not None else (t_stop - t_start) / 1000.0
    if opts.adaptive:
        # The first step has no predictor and therefore no error control;
        # start tiny and let the controller grow the step geometrically.
        dt = min(dt, (t_stop - t_start) * 1e-6)
        dt = max(dt, opts.dt_min)

    # History entries: (t, x, q, f - b) — integrators consume these.
    history = [(t, x.copy(), dae.q(x), dae.f(x) - dae.b(t))]

    # One solver instance for the whole run: sparse-Jacobian DAEs get CSC
    # conversion + factorisation reuse; small dense systems pass through to
    # the plain LAPACK solve.
    linear_solver = ReusableLUSolver()

    stored_t = [t]
    stored_x = [x.copy()]
    stats = {
        "steps": 0,
        "rejected_steps": 0,
        "newton_iterations": 0,
        "newton_failures": 0,
    }
    accepted_since_store = 0

    while t < t_stop - 1e-15 * max(abs(t_stop), 1.0):
        dt = min(dt, t_stop - t)
        t_new = t + dt
        alpha, rhs_const, beta = integrator.residual_terms(dae, history, t_new)
        b_new = dae.b(t_new)

        def residual(x_trial):
            return (
                alpha * dae.q(x_trial)
                + rhs_const
                + beta * (dae.f(x_trial) - b_new)
            )

        def jacobian(x_trial):
            return alpha * dae.dq_dx(x_trial) + beta * dae.df_dx(x_trial)

        result = newton_solve(
            residual, jacobian, x, options=opts.newton,
            linear_solver=linear_solver,
        )
        stats["newton_iterations"] += result.iterations

        if not result.converged:
            stats["newton_failures"] += 1
            dt *= 0.5
            if dt < opts.dt_min:
                raise SimulationError(
                    f"step size underflow at t={t:.6e} "
                    f"(Newton failed, dt={dt:.3e})"
                )
            continue

        x_new = result.x

        if opts.adaptive:
            x_pred = _predict(history, t_new)
            if x_pred is not None:
                scale = opts.atol + opts.rtol * np.maximum(
                    np.abs(x_new), np.abs(x)
                )
                err = float(
                    np.sqrt(np.mean(((x_new - x_pred) / scale) ** 2))
                )
                # The predictor is itself order >= 1 accurate; treat the
                # discrepancy as the local error of the lower order.
                if err > 1.0:
                    stats["rejected_steps"] += 1
                    dt = max(
                        dt * max(0.2, 0.9 * err ** (-1.0 / (integrator.order + 1))),
                        opts.dt_min,
                    )
                    if dt <= opts.dt_min:
                        raise SimulationError(
                            f"step size underflow at t={t:.6e} (LTE control)"
                        )
                    continue
                growth = 0.9 * err ** (-1.0 / (integrator.order + 1)) if err > 0 else 5.0
                dt_next = dt * min(5.0, max(0.2, growth))
            else:
                dt_next = dt
        else:
            dt_next = dt

        # Accept the step.
        t = t_new
        x = x_new
        history.append((t, x.copy(), dae.q(x), dae.f(x) - dae.b(t)))
        if len(history) > max(integrator.steps, 2) + 1:
            history.pop(0)

        stats["steps"] += 1
        accepted_since_store += 1
        if accepted_since_store >= opts.store_every or t >= t_stop:
            stored_t.append(t)
            stored_x.append(x.copy())
            accepted_since_store = 0

        dt = min(dt_next, opts.dt_max)
        if stats["steps"] >= opts.max_steps:
            raise SimulationError(
                f"exceeded max_steps={opts.max_steps} at t={t:.6e}"
            )

    return TransientResult(
        np.asarray(stored_t),
        np.asarray(stored_x),
        dae.variable_names,
        stats,
    )


def _predict(history, t_new):
    """Linear extrapolation from the last two accepted points (or None)."""
    if len(history) < 2:
        return None
    (t1, x1, _q1, _fb1), (t2, x2, _q2, _fb2) = history[-2], history[-1]
    if t2 == t1:
        return None
    slope = (x2 - x1) / (t2 - t1)
    return x2 + slope * (t_new - t2)
