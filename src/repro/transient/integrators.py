"""Implicit integration formulas for charge-oriented DAEs.

Each integrator turns one time step into a nonlinear residual

    R(x_new) = (d/dt q)|_discrete + f(x_new) - b(t_new) = 0

plus its Jacobian, to be solved by Newton.  The discrete ``d/dt q`` uses
only charges ``q`` (never raw states), the standard charge-conserving
formulation for circuit DAEs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod



class Integrator(ABC):
    """One-step (or two-step) implicit formula.

    Attributes
    ----------
    order:
        Classical order of accuracy.
    steps:
        Number of history points required (1 for BE/TRAP, 2 for BDF2).
    """

    order: int
    steps: int
    name: str

    @abstractmethod
    def residual_terms(self, dae, history, t_new, dt_ratio=1.0):
        """Return ``(alpha, rhs_const, beta)`` describing the step residual.

        The step residual has the canonical affine-in-``q``/`f`` form::

            R(x) = alpha * q(x) + rhs_const + beta * (f(x) - b(t_new))

        where ``alpha`` [1/s] multiplies the new charge, ``rhs_const`` is a
        constant vector collecting history terms (including any weighted old
        ``f - b``), and ``beta`` weights the new static terms (1 for BE/BDF2,
        1/2 for trapezoidal).

        Parameters
        ----------
        dae:
            The :class:`~repro.dae.base.SemiExplicitDAE`.
        history:
            List of ``(t, x, q, fb)`` tuples, newest last, where ``fb`` is
            ``f(x) - b(t)`` at that point (needed by trapezoidal).
        t_new:
            Time being stepped to.
        dt_ratio:
            Unused by one-step methods; BDF2 uses the actual history times.
        """

    @abstractmethod
    def history_weights(self, history, t_new):
        """Weights of the history terms inside ``rhs_const``.

        Returns a list of ``(w_q, w_f)`` pairs, one per consumed history
        point and aligned with ``history[-len(pairs):]``, such that the
        ``rhs_const`` of :meth:`residual_terms` decomposes *exactly* as::

            rhs_const = sum_i  w_q[i] * q_i  +  w_f[i] * fb_i

        Differentiating the step residual with respect to the initial
        state therefore gives the forward-sensitivity recursion

            (alpha dQ_new + beta dF_new) S_new
                = - sum_i (w_q[i] dQ_i + w_f[i] dF_i) S_i

        which the single-sweep monodromy propagation of
        :func:`repro.transient.engine.simulate_transient_with_sensitivity`
        solves with the step's already-factored Jacobian.  (The forcing
        ``b`` hidden inside ``fb_i = f_i - b(t_i)`` does not depend on the
        initial state, so only ``dF_i`` appears.)
        """


class BackwardEuler(Integrator):
    """First-order, L-stable; heavily damps both error and real dynamics."""

    order = 1
    steps = 1
    name = "be"

    def residual_terms(self, dae, history, t_new, dt_ratio=1.0):
        t_old, _x_old, q_old, _fb_old = history[-1]
        dt = t_new - t_old
        alpha = 1.0 / dt
        rhs_const = -q_old / dt
        return alpha, rhs_const, 1.0

    def history_weights(self, history, t_new):
        dt = t_new - history[-1][0]
        return [(-1.0 / dt, 0.0)]


class Trapezoidal(Integrator):
    """Second-order, A-stable; the workhorse for oscillatory circuits."""

    order = 2
    steps = 1
    name = "trap"

    def residual_terms(self, dae, history, t_new, dt_ratio=1.0):
        t_old, _x_old, q_old, fb_old = history[-1]
        dt = t_new - t_old
        alpha = 1.0 / dt
        rhs_const = -q_old / dt + 0.5 * fb_old
        return alpha, rhs_const, 0.5

    def history_weights(self, history, t_new):
        dt = t_new - history[-1][0]
        return [(-1.0 / dt, 0.5)]


class Bdf2(Integrator):
    """Second-order BDF (Gear-2), variable-step form; L-stable-ish.

    Falls back to backward Euler while only one history point exists.
    """

    order = 2
    steps = 2
    name = "bdf2"

    def residual_terms(self, dae, history, t_new, dt_ratio=1.0):
        if len(history) < 2:
            return BackwardEuler().residual_terms(dae, history, t_new)
        (t2, _x2, q2, _), (t1, _x1, q1, _) = history[-2], history[-1]
        # Derivative of the quadratic through (t2,q2),(t1,q1),(t_new,q_new)
        # evaluated at t_new.
        d_new = (2.0 * t_new - t1 - t2) / ((t_new - t1) * (t_new - t2))
        d_1 = (t_new - t2) / ((t1 - t_new) * (t1 - t2))
        d_2 = (t_new - t1) / ((t2 - t_new) * (t2 - t1))
        alpha = d_new
        rhs_const = d_1 * q1 + d_2 * q2
        return alpha, rhs_const, 1.0

    def history_weights(self, history, t_new):
        if len(history) < 2:
            return BackwardEuler().history_weights(history, t_new)
        (t2, _x2, _q2, _), (t1, _x1, _q1, _) = history[-2], history[-1]
        d_1 = (t_new - t2) / ((t1 - t_new) * (t1 - t2))
        d_2 = (t_new - t1) / ((t2 - t_new) * (t2 - t1))
        return [(d_2, 0.0), (d_1, 0.0)]


#: Registry of integrators by short name.
INTEGRATORS = {
    "be": BackwardEuler,
    "trap": Trapezoidal,
    "bdf2": Bdf2,
}


def get_integrator(spec):
    """Coerce a name or instance into an :class:`Integrator`."""
    if isinstance(spec, Integrator):
        return spec
    try:
        return INTEGRATORS[str(spec).lower()]()
    except KeyError:
        raise ValueError(
            f"unknown integrator {spec!r}; choose from {sorted(INTEGRATORS)}"
        ) from None
