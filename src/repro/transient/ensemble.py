"""Lock-step transient simulation of scenario ensembles.

:func:`simulate_transient_ensemble` advances all ``B`` scenarios of an
:class:`repro.dae.ensemble.EnsembleDAE` on one shared fixed-step grid from
a single Python loop.  The per-step work is the same as
:func:`repro.transient.engine.simulate_transient`'s — predictor, chord
Newton, history recycling — but every piece carries a leading scenario
axis:

* residuals and Jacobian blocks come from one vectorised ``(B, n)`` /
  ``(B, n, n)`` ensemble evaluation per iterate instead of ``B`` separate
  calls;
* the step matrix is the block diagonal of the per-scenario
  ``alpha*dQ + dF`` blocks, assembled by one pattern-reuse
  :class:`~repro.linalg.transient_assembler.TransientStepAssembler` in
  batch mode and factorised by one batched
  :class:`~repro.linalg.lu_cache.BlockFactorization`;
* Newton convergence is judged **per scenario**: scenarios that have
  converged freeze in place while the rest keep iterating, and the chord
  refresh policy (a vectorised mirror of
  :class:`~repro.linalg.newton.StaleJacobianNewton`) refactorises all
  blocks together when any active scenario contracts too slowly;
* a scenario that diverges under the lock-step chord iteration is rescued
  *individually* — its member DAE is handed to a standard
  :class:`~repro.transient.engine._StepController`, i.e. the same
  :class:`~repro.linalg.solver_core.SolverCore` chord-with-fallback policy
  a single-scenario run uses — so one pathological scenario never stalls
  the ensemble.

Because Python/NumPy dispatch dominates small-system transient loops (see
ROADMAP), batching B scenarios makes the ensemble run in far less than
B times the single-run wall time; the ``ensemble_sweep`` bench entry
ratchets that speedup.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api.serialize import SerializableMixin
from repro.backend import NUMPY, resolve_backend
from repro.dae.ensemble import EnsembleDAE
from repro.errors import SimulationError, SingularJacobianError
from repro.kernels.sweep import (
    maybe_kernelize_batch,
    prepare_ensemble_runner,
)
from repro.kernels.backends import resolve_mode
from repro.linalg.lu_cache import BlockFactorization
from repro.linalg.solver_core import SolverStats
from repro.linalg.transient_assembler import TransientStepAssembler
from repro.transient.engine import (
    _MAX_FORCING_GRID,
    TransientOptions,
    _StepController,
    _extrapolate,
)
from repro.transient.integrators import get_integrator
from repro.transient.results import TransientResult
from repro.utils.validation import check_positive


class EnsembleTransientResult(SerializableMixin):
    """Lock-step time series of a scenario ensemble.

    Attributes
    ----------
    t:
        Shared accepted time points, shape ``(T,)``.
    x:
        States, shape ``(T, B, n)`` — ``x[:, b]`` is scenario ``b``'s
        trajectory.
    variable_names:
        Member-level labels, length ``n``.
    stats:
        Aggregate counters plus per-scenario detail:
        ``stats["solver_per_scenario"]`` holds one
        :class:`~repro.linalg.solver_core.SolverStats` dict per scenario
        (lock-step scenarios share residual evaluations, Jacobian
        refreshes, factorisations and wall time; iterations and fallbacks
        are tracked per scenario).
    """

    def __init__(self, t, x, variable_names, stats=None):
        self.t = np.asarray(t, dtype=float)
        self.x = np.asarray(x, dtype=float)
        if self.x.ndim != 3 or self.x.shape[0] != self.t.size:
            raise ValueError(
                f"states must be (T, B, n) aligned with t, got {self.x.shape}"
            )
        self.variable_names = tuple(variable_names)
        self.stats = dict(stats or {})

    @property
    def batch_size(self):
        """Number of scenarios ``B``."""
        return self.x.shape[1]

    @property
    def n(self):
        """Unknowns per scenario."""
        return self.x.shape[2]

    def member(self, index):
        """Scenario ``index``'s trajectory as a plain TransientResult."""
        stats = {
            key: value for key, value in self.stats.items()
            if np.isscalar(value)
        }
        per_scenario = self.stats.get("solver_per_scenario")
        if per_scenario is not None:
            stats["solver"] = dict(per_scenario[index])
        return TransientResult(
            self.t, self.x[:, index], self.variable_names, stats
        )

    def __len__(self):
        return self.t.size


class _EnsembleChord:
    """Vectorised chord Newton over the scenario axis.

    A lock-step mirror of :class:`repro.linalg.newton.StaleJacobianNewton`:
    one batched block factorisation is reused across iterations and
    accepted steps; convergence, line-search damping and contraction
    monitoring are all per scenario.  A scenario whose update goes
    non-finite under *fresh* factors is abandoned to the caller's
    per-scenario fallback instead of poisoning the whole batch.
    """

    def __init__(self, options, contraction, refresh_every_iteration=False,
                 backend=None):
        self.options = options
        self.contraction = float(contraction)
        self.refresh_every_iteration = bool(refresh_every_iteration)
        self.backend = NUMPY if backend is None else backend
        self.factor = BlockFactorization(backend=self.backend)
        self._have = False
        self.stats = {
            "factorizations": 0,
            "iterations": 0,
            "residual_evaluations": 0,
            "jacobian_refreshes": 0,
        }

    def invalidate(self):
        """Drop the stored factors; the next solve refactorises."""
        self._have = False

    def _refactor(self, jacobian, states, iterations=0,
                  residual_norm=float("nan")):
        try:
            self.factor.factor(jacobian(states))
        except (RuntimeError, np.linalg.LinAlgError) as exc:
            self._have = False
            raise SingularJacobianError(
                f"ensemble chord refactorisation failed: {exc}",
                iterations=iterations,
                residual_norm=residual_norm,
            ) from exc
        self._have = True
        self.stats["factorizations"] += 1
        self.stats["jacobian_refreshes"] += 1

    def solve(self, residual, jacobian, states0):
        """Iterate all scenarios from ``states0`` (``(B, n)``).

        Returns ``(states, converged, iterations)`` where ``converged``
        and ``iterations`` are per-scenario ``(B,)`` arrays.  Scenarios
        with ``converged[b] = False`` are left at their best iterate for
        the caller's fallback.
        """
        opts = self.options
        atol = opts.atol
        stats = self.stats
        # Array payloads (states, residuals, updates) live on the backend;
        # convergence masks and norms are small (B,) vectors synchronised
        # to the host explicitly — the chord policy branches on them.
        backend = self.backend
        xp = backend.xp
        to_host = backend.to_host
        dev = backend.from_host
        states = xp.array(states0, dtype=float)
        batch = states.shape[0]
        iterations = np.zeros(batch, dtype=int)

        residuals = residual(states)
        stats["residual_evaluations"] += 1
        norms = to_host(xp.max(xp.abs(residuals), axis=1))
        converged = norms <= atol
        num_left = batch - int(converged.sum())
        if num_left == 0:
            return states, converged, iterations
        abandoned = np.zeros(batch, dtype=bool)

        fresh = False
        if self.refresh_every_iteration or not self._have:
            self._refactor(jacobian, states,
                           residual_norm=float(norms.max()))
            fresh = True

        iteration = 0
        while iteration < opts.max_iterations and num_left:
            active = ~(converged | abandoned)
            all_active = num_left == batch
            iteration += 1
            stats["iterations"] += 1
            if all_active:
                iterations += 1
            else:
                iterations[active] += 1
            if self.refresh_every_iteration and iteration > 1:
                self._refactor(jacobian, states, iterations=iteration,
                               residual_norm=float(norms.max()))
                fresh = True

            updates = self.factor.solve(residuals)
            finite = to_host(xp.all(xp.isfinite(updates), axis=1))
            if not finite.all() and not finite[active].all():
                if not fresh:
                    self._refactor(jacobian, states, iterations=iteration,
                                   residual_norm=float(norms.max()))
                    fresh = True
                    iterations[active] -= 1
                    stats["iterations"] -= 1
                    iteration -= 1
                    continue
                # Fresh factors and still non-finite: hand those scenarios
                # to the per-scenario fallback, keep iterating the rest.
                abandoned |= active & ~finite
                active = active & finite
                all_active = False
                num_left = int(active.sum())
                if not num_left:
                    break

            # Converged/abandoned scenarios freeze in place; the masked
            # update keeps their rows (and history stash rows) consistent.
            if all_active:
                trial = states - updates
            else:
                trial = xp.where(
                    dev(active)[:, None], states - updates, states
                )
            trial_residuals = residual(trial)
            stats["residual_evaluations"] += 1
            trial_norms = to_host(xp.max(xp.abs(trial_residuals), axis=1))

            improved = (trial_norms < norms) | (trial_norms <= atol)
            if not improved.all():
                uphill = active & ~improved
                if uphill.any():
                    if not fresh:
                        # Blame staleness first: refactorise at the
                        # current iterates and retry the iteration for
                        # everyone.
                        self._refactor(jacobian, states, iterations=iteration,
                                       residual_norm=float(norms.max()))
                        fresh = True
                        iterations[active] -= 1
                        stats["iterations"] -= 1
                        iteration -= 1
                        continue
                    # Fresh factors and still no descent: per-scenario
                    # damped line search, keeping the smallest trial when
                    # the budget is exhausted (mirrors newton_solve / the
                    # serial chord).
                    step = np.where(active, 1.0, 0.0)
                    need = uphill.copy()
                    for halving in range(opts.max_step_halvings):
                        step[need] *= 0.5
                        trial = xp.where(
                            dev(active)[:, None],
                            states - dev(step)[:, None] * updates, states,
                        )
                        trial_residuals = residual(trial)
                        stats["residual_evaluations"] += 1
                        trial_norms = to_host(
                            xp.max(xp.abs(trial_residuals), axis=1)
                        )
                        need = uphill & ~(
                            np.isfinite(trial_norms) & (trial_norms < norms)
                        )
                        if not need.any():
                            break

            update_small = to_host(xp.all(
                xp.abs(trial - states)
                <= opts.rtol * xp.maximum(xp.abs(trial), 1.0),
                axis=1,
            ))
            slow = trial_norms > self.contraction * norms
            states, residuals, norms = trial, trial_residuals, trial_norms
            newly = active & (
                (norms <= atol) | (update_small & np.isfinite(norms))
            )
            if newly.any():
                converged = converged | newly
                active = ~(converged | abandoned)
                num_left = int(active.sum())
                if not num_left:
                    break
            if not fresh and (slow & active).any():
                self._refactor(jacobian, states, iterations=iteration,
                               residual_norm=float(norms.max()))
                fresh = True

        if not converged.all():
            # Failed scenarios invalidate the shared factors: the caller
            # retries (fallback or smaller dt) and wants a fresh start.
            self.invalidate()
        return states, converged, iterations


class _EnsembleStepController:
    """Per-run ensemble Newton machinery (assembler, chord, fallback).

    The vectorised chord loop handles the common case; scenarios it
    cannot converge are retried one by one through the standard serial
    :class:`~repro.transient.engine._StepController` (the shared
    ``SolverCore`` chord-with-fallback policy) using their member DAEs.
    """

    def __init__(self, ensemble, opts, backend=None):
        if opts.linear_solver is not None:
            raise SimulationError(
                "ensemble transients use the batched block factorisation; "
                "custom linear solvers are a single-scenario option"
            )
        self.ensemble = ensemble
        self.opts = opts
        self.backend = NUMPY if backend is None else backend
        self.assembler = TransientStepAssembler(
            ensemble.dq_structure(), ensemble.df_structure(),
            batch=ensemble.batch_size, backend=backend,
        )
        self.chord = _EnsembleChord(
            opts.newton, opts.refresh_contraction,
            refresh_every_iteration=not opts.stale_jacobian,
            backend=self.backend,
        )
        self._alpha = None
        self.iterations = np.zeros(ensemble.batch_size, dtype=int)
        self.fallbacks = np.zeros(ensemble.batch_size, dtype=int)
        self._member_controllers = {}

    def factorizations(self):
        """Batched factorisations plus any per-scenario fallback ones."""
        count = self.chord.stats["factorizations"]
        for controller in self._member_controllers.values():
            count += controller.factorizations()
        return count

    def invalidate(self):
        self.chord.invalidate()

    def _notify_alpha(self, alpha):
        """Drop frozen factors when the integrator weight jumps (dt change)."""
        old, self._alpha = self._alpha, alpha
        if old is not None and abs(alpha - old) > 0.25 * abs(old):
            self.invalidate()

    def _member_controller(self, index):
        controller = self._member_controllers.get(index)
        if controller is None:
            controller = _StepController(
                self.ensemble.member(index), self.opts
            )
            self._member_controllers[index] = controller
        return controller

    def solve_step(self, integrator, history, t_new, b_new, x_guess):
        """Advance every scenario one implicit step towards ``t_new``.

        Returns ``(states, converged, q_new, fb_new)`` with the usual
        history payload; ``converged`` is the per-scenario mask after the
        fallback pass.
        """
        ensemble = self.ensemble
        alpha, rhs_const, beta = integrator.residual_terms(
            ensemble, history, t_new
        )
        self._notify_alpha(alpha)
        stash = [None, None]

        def residual(states):
            charges, statics = ensemble.qf_rows(states)
            balance = statics - b_new
            stash[0] = charges
            stash[1] = balance
            out = alpha * charges
            out += rhs_const
            out += beta * balance
            return out

        assembler = self.assembler

        def jacobian(states):
            return assembler.refresh(
                alpha, ensemble.dq_rows(states), beta,
                ensemble.df_rows(states),
            )

        try:
            states, converged, iterations = self.chord.solve(
                residual, jacobian, x_guess
            )
        except SingularJacobianError:
            # A singular batched refactorisation fails the whole step; the
            # engine reacts with a smaller dt, which makes every block
            # more diagonally dominant.
            batch = ensemble.batch_size
            return (
                self.backend.xp.array(history[-1][1], dtype=float),
                np.zeros(batch, dtype=bool),
                history[-1][2], history[-1][3],
            )
        self.iterations += iterations

        if not converged.all() and ensemble.has_members:
            # Per-scenario rescue through the standard serial controller
            # (always on the host — rescue rows synchronise explicitly).
            to_host = self.backend.to_host
            q_rows, fb_rows = stash
            for index in np.nonzero(~converged)[0]:
                self.fallbacks[index] += 1
                controller = self._member_controller(index)
                member_history = [
                    (t_i, to_host(x_i)[index], to_host(q_i)[index],
                     to_host(fb_i)[index])
                    for (t_i, x_i, q_i, fb_i) in history
                ]
                result, q_member, fb_member, _a, _b = controller.solve_step(
                    integrator, member_history, t_new,
                    to_host(b_new)[index], to_host(x_guess)[index],
                )
                self.iterations[index] += result.iterations
                if result.converged:
                    states[index] = result.x
                    q_rows[index] = q_member
                    fb_rows[index] = fb_member
                    converged[index] = True

        return states, converged, stash[0], stash[1]


def simulate_transient_ensemble(ensemble, x0, t_start, t_stop, options=None):
    """Integrate all scenarios of an ensemble on one fixed-step grid.

    Parameters
    ----------
    ensemble:
        An :class:`repro.dae.ensemble.EnsembleDAE` (a plain
        :class:`~repro.dae.base.SemiExplicitDAE` is wrapped as a
        single-scenario ensemble).
    x0:
        Per-scenario initial states, shape ``(B, n)`` (a single ``(n,)``
        vector is broadcast to every scenario).
    t_start, t_stop:
        Shared simulation window.
    options:
        :class:`~repro.transient.engine.TransientOptions`; must describe a
        fixed-step run (the lock-step grid has one dt for every scenario)
        and use the default (direct, batched) linear solver.

    Returns
    -------
    EnsembleTransientResult

    Notes
    -----
    Trajectories match ``B`` independent
    :func:`~repro.transient.engine.simulate_transient` runs within Newton
    tolerance — the discretisation is identical; only the iteration
    grouping differs.  A Newton failure halves the shared dt (after the
    per-scenario fallback), so one stiff scenario slows the grid for all;
    split pathological scenarios into their own ensemble if that matters.
    """
    if not isinstance(ensemble, EnsembleDAE):
        ensemble = EnsembleDAE.from_stacked(ensemble, 1, members=[ensemble])
    opts = options or TransientOptions()
    integrator = get_integrator(opts.integrator)
    if opts.adaptive:
        raise SimulationError(
            "ensemble transients are fixed-step (one lock-step grid); run "
            "adaptive scenarios individually"
        )
    if opts.dt is None:
        raise SimulationError("ensemble transient requires options.dt")
    check_positive(opts.dt, "options.dt")
    if not t_stop > t_start:
        raise SimulationError(
            f"t_stop must exceed t_start, got [{t_start}, {t_stop}]"
        )

    batch, n = ensemble.batch_size, ensemble.n
    states = np.array(x0, dtype=float)
    if states.ndim == 1:
        states = np.broadcast_to(states, (batch, states.size)).copy()
    if states.shape != (batch, n):
        raise SimulationError(
            f"initial states must have shape {(batch, n)}, got {states.shape}"
        )

    # Array-backend routing (see repro.backend): the march runs on the
    # resolved backend's xp; requests a device backend cannot serve
    # (member loops, sparse step patterns) fall back to the host with the
    # cause recorded in stats["backend"]["fallback"].
    backend, meta = resolve_backend(getattr(opts, "backend", None))
    backend_info = {
        "requested": meta["requested"],
        "source": meta["source"],
        "name": backend.name,
    }
    if backend.is_device:
        fallback = None
        if ensemble._stacked is None:
            fallback = (
                "member-loop ensembles evaluate member DAEs on the host"
            )
        else:
            union = ensemble.dq_structure() | ensemble.df_structure()
            if not (n <= TransientStepAssembler.DENSE_LIMIT
                    or union.mean() > 0.5):
                fallback = (
                    "sparse step assembly is host-only (member pattern "
                    "exceeds the dense batched-factorisation cap)"
                )
        if fallback is not None:
            backend = NUMPY
            backend_info["name"] = backend.name
            backend_info["fallback"] = fallback

    # Device backends chunk very large ensembles into backend-sized
    # blocks (REPRO_XP_BLOCK / ArrayBackend.block_size): B=1024 runs as a
    # handful of device-resident marches on one shared grid instead of
    # hundreds of serial small-B passes.
    block = backend.block_size if backend.is_device else None
    if block and batch > block and (
        ensemble._members is not None
        or hasattr(ensemble._stacked, "subset_scenarios")
    ):
        pieces = []
        for start in range(0, batch, block):
            indices = np.arange(start, min(start + block, batch))
            pieces.append(_run_lockstep(
                ensemble.subset(indices), states[indices], t_start,
                t_stop, opts, integrator, backend, dict(backend_info),
            ))
        return _merge_chunked(pieces, backend_info)
    return _run_lockstep(
        ensemble, states, t_start, t_stop, opts, integrator, backend,
        backend_info,
    )


def _run_lockstep(ensemble, states, t_start, t_stop, opts, integrator,
                  backend, backend_info):
    """One lock-step march of a (possibly chunked) ensemble.

    ``states`` is the validated host ``(B, n)`` initial stack; ``backend``
    is already resolved (host fallbacks applied).  On a device backend the
    whole march — batch evaluation, step assembly, batched factorisation,
    chord updates — stays on ``backend.xp``; only convergence masks,
    stored trajectory snapshots and per-scenario rescues synchronise to
    the host.
    """
    batch, n = ensemble.batch_size, ensemble.n
    is_device = backend.is_device

    # Compiled batched evaluations for every python-handled iterate
    # (handed-back steps, per-scenario rescues): on by default under
    # "auto"; kernel="python" pins the NumPy reference path.  Compiled
    # kernels are host-only — device marches skip kernelisation.
    if ensemble._stacked is not None and is_device:
        requested = getattr(opts, "kernel", "auto")
        batch_eval_info = {
            "requested": "auto" if requested is None else str(requested),
            "mode": "python",
            "reason": "device backends evaluate batches through xp",
        }
    elif ensemble._stacked is not None:
        stacked, batch_eval_info = maybe_kernelize_batch(
            ensemble._stacked, getattr(opts, "kernel", "auto"),
            expected_batch=batch,
        )
        if stacked is not ensemble._stacked:
            ensemble = EnsembleDAE(
                batch, n, ensemble.variable_names,
                members=ensemble._members, stacked=stacked,
            )
    else:
        requested = getattr(opts, "kernel", "auto")
        # Still resolve so an explicitly requested unavailable backend
        # raises instead of silently looping members in python.
        resolve_mode(requested)
        batch_eval_info = {
            "requested": "auto" if requested is None else str(requested),
            "mode": "python",
            "reason": "member-loop ensembles stay on the python path",
        }

    t = float(t_start)
    dt = float(opts.dt)
    controller = _EnsembleStepController(
        ensemble, opts, backend=backend if is_device else None
    )

    if is_device:
        states = backend.from_host(states)
    charges, statics = ensemble.qf_rows(states)
    b_start = ensemble.b_rows(t)
    if is_device:
        b_start = backend.from_host(b_start)
    history = [(t, states.copy(), charges, statics - b_start)]

    # Fixed-step fast path: the whole (T, B, n) forcing grid up front.
    span = t_stop - t_start
    n_steps = max(int(np.ceil(span / dt - 1e-9)), 1)
    t_grid = b_grid = None
    grid_idx = 0
    if n_steps * batch <= _MAX_FORCING_GRID:
        t_grid = t_start + dt * np.arange(1, n_steps + 1)
        t_grid[-1] = t_stop
        b_grid = ensemble.b_rows_grid(t_grid)
        if is_device:
            b_grid = backend.from_host(b_grid)

    # Fused compiled march over the shared grid: whole chunks per call,
    # zero python per step.  Steps the in-kernel vectorised chord cannot
    # fully converge hand back to the python loop below, whose
    # per-scenario rescue path is unchanged.
    if is_device:
        blocked = (
            f"{backend.name} device marches stay xp-resident; compiled "
            f"kernels are host-only"
        )
    elif t_grid is None:
        blocked = (
            "no precomputed forcing grid (horizon exceeds the batch "
            "limit); compiled ensemble sweeps march the shared grid"
        )
    else:
        blocked = None
    kernel_runner, kernel_info = prepare_ensemble_runner(
        ensemble, opts, integrator, blocked=blocked,
    )
    kernel_info["batch_eval"] = batch_eval_info
    if kernel_runner is not None:
        t_grid = np.ascontiguousarray(t_grid, dtype=float)
        b_grid = np.ascontiguousarray(b_grid, dtype=float)

    # Machine-readable routing verdict: which execution path serves this
    # march, and why.
    if is_device:
        backend_info["routing"] = "device-march"
        backend_info["reason"] = (
            f"lock-step march is resident on the {backend.name} backend; "
            f"batched factorisation and chord updates stay on device"
        )
    elif kernel_runner is not None:
        backend_info["routing"] = "compiled-kernel"
        backend_info["reason"] = (
            f"compiled {kernel_info['mode']} ensemble sweep marches the "
            f"shared grid (host fast path)"
        )
    else:
        backend_info["routing"] = "python-lockstep"
        backend_info["reason"] = kernel_info.get("reason") or (
            "vectorised NumPy lock-step march"
        )

    copy_host = backend.to_host_copy if is_device else (lambda a: a.copy())
    run_start = time.perf_counter()
    stored_t = [t]
    stored_x = [copy_host(states)]
    stats = {
        "steps": 0,
        "newton_iterations": 0,
        "newton_failures": 0,
        "newton_fallbacks": 0,
        "jacobian_factorizations": 0,
        "scenarios": batch,
        "kernel": kernel_info,
        "backend": backend_info,
    }
    accepted_since_store = 0
    history_cap = max(integrator.steps, 2) + 1

    def _kernel_march():
        """Advance through the compiled batched sweep; False on handback.

        Counter mapping mirrors the python march exactly: the kernel
        reports per-call chord totals plus per-scenario iteration counts
        (``iters_b``), which land in the same ``chord.stats`` /
        ``controller.iterations`` slots the vectorised python chord
        fills.  After a handback the python loop replays the failing
        step (rescue included) and the march re-enters on the next one.
        """
        nonlocal t, states, dt, grid_idx, accepted_since_store, history
        runner = kernel_runner
        chord_stats = controller.chord.stats
        while grid_idx < n_steps:
            runner.load(history, controller)
            runner.reset_counters()
            end = min(n_steps, grid_idx + (opts.max_steps - stats["steps"]))
            status = runner.run(t_grid, b_grid, grid_idx, end)
            done = int(runner.counters[0])
            chord_stats["iterations"] += int(runner.counters[1])
            chord_stats["residual_evaluations"] += int(runner.counters[2])
            chord_stats["factorizations"] += int(runner.counters[3])
            chord_stats["jacobian_refreshes"] += int(runner.counters[3])
            controller.iterations += runner.iters_b
            kernel_info["compiled_steps"] += done
            runner.sync_controller(controller)
            if done:
                out = runner.out_x
                if opts.store_every == 1:
                    stored_t.extend(
                        float(v) for v in t_grid[grid_idx:grid_idx + done]
                    )
                    stored_x.extend(out[j].copy() for j in range(done))
                    accepted_since_store = 0
                else:
                    for j in range(done):
                        accepted_since_store += 1
                        tj = float(t_grid[grid_idx + j])
                        if (accepted_since_store >= opts.store_every
                                or tj >= t_stop):
                            stored_t.append(tj)
                            stored_x.append(out[j].copy())
                            accepted_since_store = 0
                grid_idx += done
                t = float(t_grid[grid_idx - 1])
                prev = t_grid[grid_idx - 2] if grid_idx >= 2 else t_start
                dt = float(t_grid[grid_idx - 1] - prev)
                history = runner.export_history()
                states = history[-1][1].copy()
                stats["steps"] += done
                if stats["steps"] >= opts.max_steps:
                    raise SimulationError(
                        f"exceeded max_steps={opts.max_steps} at t={t:.6e}",
                        step=stats["steps"],
                        time=t,
                        dt=dt,
                        partial_result=EnsembleTransientResult(
                            stored_t,
                            stored_x,
                            ensemble.variable_names,
                            stats=dict(stats),
                        ),
                    )
            if status != 0:
                kernel_info["reason"] = (
                    f"compiled ensemble sweep returned status {status} at "
                    f"step {stats['steps']}; python lock-step march handled "
                    f"the failing step"
                )
                return False
        return True

    while t < t_stop - 1e-15 * max(abs(t_stop), 1.0):
        if kernel_runner is not None and t_grid is not None:
            if _kernel_march():
                break
        if t_grid is not None:
            t_new = t_grid[grid_idx]
            b_new = b_grid[grid_idx]
            dt = t_new - t
        else:
            dt = min(dt, t_stop - t)
            t_new = t + dt
            b_new = ensemble.b_rows(t_new)
            if is_device:
                b_new = backend.from_host(b_new)

        x_guess = _extrapolate(history, t_new)
        new_states, converged, q_new, fb_new = controller.solve_step(
            integrator, history, t_new, b_new, x_guess
        )

        if not converged.all():
            stats["newton_failures"] += 1
            dt *= 0.5
            # The shared grid is no longer uniform; per-step forcing from
            # here on.
            t_grid = b_grid = None
            if dt < opts.dt_min:
                failed = np.nonzero(~converged)[0]
                raise SimulationError(
                    f"step size underflow at step {stats['steps']}, "
                    f"t={t:.6e}: Newton diverged for scenario(s) "
                    f"{failed.tolist()} with dt={2 * dt:.3e}",
                    step=stats["steps"],
                    time=t,
                    dt=2 * dt,
                    partial_result=EnsembleTransientResult(
                        stored_t,
                        stored_x,
                        ensemble.variable_names,
                        stats=dict(stats),
                    ),
                )
            continue

        t = float(t_new)
        states = new_states
        history.append((t, states.copy(), q_new, fb_new))
        if len(history) > history_cap:
            history.pop(0)
        if t_grid is not None:
            grid_idx += 1

        stats["steps"] += 1
        accepted_since_store += 1
        if accepted_since_store >= opts.store_every or t >= t_stop:
            stored_t.append(t)
            stored_x.append(copy_host(states))
            accepted_since_store = 0
        if stats["steps"] >= opts.max_steps:
            raise SimulationError(
                f"exceeded max_steps={opts.max_steps} at t={t:.6e}",
                step=stats["steps"],
                time=t,
                dt=dt,
                partial_result=EnsembleTransientResult(
                    stored_t,
                    stored_x,
                    ensemble.variable_names,
                    stats=dict(stats),
                ),
            )

    kernel_info["python_steps"] = (
        stats["steps"] - kernel_info.get("compiled_steps", 0)
    )
    chord_stats = controller.chord.stats
    stats["newton_iterations"] = int(controller.iterations.sum())
    stats["newton_fallbacks"] = int(controller.fallbacks.sum())
    stats["jacobian_factorizations"] = controller.factorizations()
    shared = {
        "solves": stats["steps"],
        "residual_evaluations": chord_stats["residual_evaluations"],
        "jacobian_refreshes": chord_stats["jacobian_refreshes"],
        "factorizations": stats["jacobian_factorizations"],
        # Lock-step wall time is shared: every scenario's steps happen
        # inside the same loop iterations.
        "wall_time_s": time.perf_counter() - run_start,
    }
    stats["solver"] = SolverStats(
        iterations=stats["newton_iterations"],
        fallbacks=stats["newton_fallbacks"],
        **shared,
    ).as_dict()
    # Lock-step scenarios share refreshes/factorisations/residual sweeps;
    # iterations and fallbacks are genuinely per scenario.
    stats["solver_per_scenario"] = [
        SolverStats(
            iterations=int(controller.iterations[b]),
            fallbacks=int(controller.fallbacks[b]),
            **shared,
        ).as_dict()
        for b in range(batch)
    ]

    return EnsembleTransientResult(
        np.asarray(stored_t),
        np.asarray(stored_x),
        ensemble.variable_names,
        stats,
    )


def merge_ensemble_results(results):
    """Merge scenario-sharded lock-step results into one ensemble result.

    The public face of the chunk merger used by
    :meth:`repro.api.requests.EnsembleRequest.merge`: every shard must
    have marched the same fixed-step grid (scenario slices of one
    request always do, unless a shard halved its dt after a Newton
    failure — surfaced as :class:`~repro.errors.SimulationError`).
    """
    results = list(results)
    backend_info = dict(results[0].stats.get("backend") or {})
    return _merge_chunked(results, backend_info)


def _merge_chunked(results, backend_info):
    """Stitch backend-sized chunk marches back into one ensemble result.

    Chunks run the same fixed-step grid; a chunk that halved its dt (a
    Newton failure) left the shared grid and cannot be merged — that is
    surfaced as a :class:`~repro.errors.SimulationError` rather than a
    silently interpolated answer.
    """
    first = results[0]
    t = first.t
    for r in results[1:]:
        if r.t.shape != t.shape or not np.array_equal(r.t, t):
            raise SimulationError(
                "scenario chunks diverged from the shared lock-step grid "
                "(a chunk halved dt after a Newton failure); re-run with "
                "a smaller options.dt or a larger backend block size"
            )
    x = np.concatenate([r.x for r in results], axis=1)
    stats = dict(first.stats)
    for key in ("newton_iterations", "newton_failures", "newton_fallbacks",
                "jacobian_factorizations", "scenarios"):
        stats[key] = sum(int(r.stats.get(key, 0)) for r in results)
    stats["solver_per_scenario"] = [
        entry
        for r in results
        for entry in r.stats.get("solver_per_scenario", [])
    ]
    solver = dict(first.stats.get("solver") or {})
    if solver:
        for key in ("iterations", "fallbacks", "residual_evaluations",
                    "jacobian_refreshes", "factorizations", "solves"):
            solver[key] = sum(
                int((r.stats.get("solver") or {}).get(key, 0))
                for r in results
            )
        # Chunks march sequentially on one device: wall time adds up.
        solver["wall_time_s"] = sum(
            float((r.stats.get("solver") or {}).get("wall_time_s", 0.0))
            for r in results
        )
        stats["solver"] = solver
    merged_backend = dict(backend_info)
    merged_backend["chunks"] = len(results)
    for key in ("routing", "reason"):
        value = (first.stats.get("backend") or {}).get(key)
        if value is not None:
            merged_backend[key] = value
    stats["backend"] = merged_backend
    return EnsembleTransientResult(t, x, first.variable_names, stats)
