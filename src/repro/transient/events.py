"""Post-hoc event extraction from sampled waveforms."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_1d_array


def zero_crossings(t, y, direction=+1):
    """Times where ``y`` crosses zero, found by linear interpolation.

    Parameters
    ----------
    t, y:
        Equal-length sample arrays; ``t`` must be increasing.
    direction:
        ``+1`` for rising crossings only, ``-1`` for falling only,
        ``0`` for both.

    Returns
    -------
    numpy.ndarray
        Crossing times, possibly empty.  Exact zeros at sample points are
        reported once.
    """
    t = as_1d_array(t, "t")
    y = as_1d_array(y, "y")
    if t.size != y.size:
        raise ValueError(f"t and y must have equal length, got {t.size} vs {y.size}")
    if t.size < 2:
        return np.array([])

    y_left = y[:-1]
    y_right = y[1:]
    crosses = (y_left * y_right < 0) | ((y_left == 0) & (y_right != 0))
    if direction > 0:
        crosses &= y_right > y_left
    elif direction < 0:
        crosses &= y_right < y_left

    idx = np.nonzero(crosses)[0]
    if idx.size == 0:
        return np.array([])
    frac = y_left[idx] / (y_left[idx] - y_right[idx])
    return t[idx] + frac * (t[idx + 1] - t[idx])


def rising_level_crossings(t, y, level):
    """Times where ``y`` rises through ``level``."""
    return zero_crossings(t, np.asarray(y, dtype=float) - level, direction=+1)
