"""Containers for transient simulation output."""

from __future__ import annotations

import numpy as np

from repro.api.serialize import SerializableMixin
from repro.transient.events import zero_crossings


class TransientResult(SerializableMixin):
    """Time series produced by :func:`repro.transient.engine.simulate_transient`.

    Attributes
    ----------
    t:
        Accepted time points, shape ``(m,)`` (includes the initial point).
    x:
        States at those points, shape ``(m, n)``.
    variable_names:
        Labels matching the state columns.
    stats:
        Dict of counters (steps, newton iterations, rejected steps, ...).

    Like every result class, supports the uniform serialization protocol:
    ``to_dict()`` / ``from_dict()`` round-trip bit-identically (see
    :mod:`repro.api.serialize`).
    """

    def __init__(self, t, x, variable_names, stats=None):
        self.t = np.asarray(t, dtype=float)
        self.x = np.asarray(x, dtype=float)
        if self.x.shape[0] != self.t.size:
            raise ValueError(
                f"time axis has {self.t.size} points but states have "
                f"{self.x.shape[0]} rows"
            )
        self.variable_names = tuple(variable_names)
        self.stats = dict(stats or {})

    @property
    def n(self):
        """Number of state variables."""
        return self.x.shape[1]

    def __len__(self):
        return self.t.size

    def column(self, key):
        """A single variable's trace, by name or index."""
        if isinstance(key, str):
            key = self.variable_names.index(key)
        return self.x[:, key]

    def __getitem__(self, key):
        return self.column(key)

    def sample(self, times, key=None):
        """Linear interpolation of one variable (or all) at ``times``.

        Parameters
        ----------
        times:
            Where to sample; must lie within the simulated range.
        key:
            Variable name/index; ``None`` returns shape ``(len(times), n)``.
        """
        times = np.asarray(times, dtype=float)
        if key is not None:
            return np.interp(times, self.t, self.column(key))
        return np.stack(
            [np.interp(times, self.t, self.x[:, j]) for j in range(self.n)],
            axis=-1,
        )

    def crossing_times(self, key, level=0.0, direction=+1):
        """Times where a variable crosses ``level`` (linear interpolation)."""
        return zero_crossings(
            self.t, self.column(key) - level, direction=direction
        )

    def final_state(self):
        """State at the last accepted time point."""
        return self.x[-1].copy()
