"""Transient (initial-value) simulation of DAE systems.

This is the conventional "numerical ODE methods" baseline the paper compares
against: implicit one/two-step integration of ``d/dt q(x) + f(x) = b(t)``
with a Newton solve per time step.  Its well-known weakness on oscillators —
unbounded phase-error growth (paper §2) — is exactly what the Fig 12 bench
measures.
"""

from repro.transient.integrators import (
    BackwardEuler,
    Trapezoidal,
    Bdf2,
    INTEGRATORS,
)
from repro.transient.engine import (
    TransientOptions,
    TransientSensitivityResult,
    simulate_transient,
    simulate_transient_with_sensitivity,
)
from repro.transient.ensemble import (
    EnsembleTransientResult,
    merge_ensemble_results,
    simulate_transient_ensemble,
)
from repro.transient.results import TransientResult
from repro.transient.events import zero_crossings, rising_level_crossings

__all__ = [
    "BackwardEuler",
    "Trapezoidal",
    "Bdf2",
    "INTEGRATORS",
    "TransientOptions",
    "TransientSensitivityResult",
    "simulate_transient",
    "simulate_transient_ensemble",
    "merge_ensemble_results",
    "simulate_transient_with_sensitivity",
    "TransientResult",
    "EnsembleTransientResult",
    "zero_crossings",
    "rising_level_crossings",
]
