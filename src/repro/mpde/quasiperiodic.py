"""Bi-periodic MPDE boundary-value solver (AM-quasiperiodic steady state)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.api.serialize import SerializableMixin
from repro.errors import SimulationError
from repro.linalg.collocation import CollocationJacobianAssembler
from repro.linalg.newton import NewtonOptions
from repro.linalg.solver_core import (
    CollocationSystem,
    SolverOptionsMixin,
    core_from_options,
)
from repro.linalg.sparse_tools import kron_diffmat
from repro.spectral.diffmat import fourier_differentiation_matrix
from repro.spectral.grid import collocation_grid
from repro.utils.validation import check_odd
from repro.wampde.bivariate import BivariateWaveform


@dataclass
class MpdeQuasiperiodicOptions(SolverOptionsMixin):
    """Configuration for :func:`solve_mpde_quasiperiodic`.

    The ``newton``/``linear_solver``/``threads``/``ladder`` fields come
    from the shared
    :class:`~repro.linalg.solver_core.SolverOptionsMixin`;
    ``newton_mode`` selects the
    :class:`repro.linalg.solver_core.SolverCore` Newton policy.
    """

    newton: NewtonOptions = field(
        default_factory=lambda: NewtonOptions(atol=1e-9, max_iterations=60)
    )
    newton_mode: str = "full"


class MpdeQuasiperiodicResult(SerializableMixin):
    """Bi-periodic MPDE solution.

    Attributes
    ----------
    t1, t2:
        Collocation grids on ``[0, T1)`` and ``[0, T2)``.
    samples:
        Shape ``(N1, N0, n)``.
    variable_names:
        Labels for the trailing axis.
    """

    def __init__(self, t1, t2, period1, period2, samples, variable_names,
                 newton_iterations, stats=None):
        self.t1 = np.asarray(t1, dtype=float)
        self.t2 = np.asarray(t2, dtype=float)
        self.period1 = float(period1)
        self.period2 = float(period2)
        self.samples = np.asarray(samples, dtype=float)
        self.variable_names = tuple(variable_names)
        self.newton_iterations = int(newton_iterations)
        self.stats = dict(stats or {})

    def bivariate(self, key):
        """Bivariate waveform (t2 axis wrapped for interpolation).

        Evaluation through this container is spectral in t1 but linear in
        t2; use :meth:`interpolant` for full bi-spectral accuracy.
        """
        if isinstance(key, str):
            key = self.variable_names.index(key)
        t2_ext = np.concatenate([self.t2, [self.period2]])
        data = np.vstack([self.samples[:, :, key], self.samples[:1, :, key]])
        return BivariateWaveform(
            t2_ext,
            data,
            name=self.variable_names[key],
            t1_period=self.period1,
        )

    def interpolant(self, key):
        """Bi-periodic trigonometric interpolant (spectral in both axes)."""
        from repro.spectral import BiTrigInterpolant

        if isinstance(key, str):
            key = self.variable_names.index(key)
        return BiTrigInterpolant(
            self.samples[:, :, key], self.period1, self.period2
        )

    def reconstruct(self, key, times):
        """Univariate ``x(t) = xhat(t mod T1, t mod T2)`` (paper Fig 3 path)."""
        times = np.asarray(times, dtype=float)
        return self.interpolant(key)(times, times)


class _BiperiodicSystem(CollocationSystem):
    """Bi-periodic MPDE collocation system for the shared solver core.

    The residual is ``(D1 + D2) q(x) + f(x) - b`` over the flattened
    ``(N1, N0)`` tensor grid; the Jacobian is assembled pattern-reuse from
    the dense point-coupling matrix of ``D1 + D2``.
    """

    def __init__(self, dae, forcing, n0, n1, b_grid):
        self.dae = dae
        self.n0 = n0
        self.n1 = n1
        self.n = dae.n
        block = n0 * self.n
        diffmat1 = fourier_differentiation_matrix(n0, forcing.period1)
        diffmat2 = fourier_differentiation_matrix(n1, forcing.period2)
        d1_all = sp.kron(
            sp.identity(n1, format="csr"),
            kron_diffmat(diffmat1, self.n, ordering="point"),
            format="csr",
        )
        d2_all = kron_diffmat(diffmat2, block, ordering="point")
        self.d_sum = (d1_all + d2_all).tocsr()
        # Dense point-coupling matrix of d_sum for the pattern-reuse
        # assembler.
        self.coupling = (
            np.kron(np.eye(n1), diffmat1)
            + np.kron(diffmat2, np.eye(n0))
        )
        self.assembler = CollocationJacobianAssembler(
            n1 * n0,
            self.n,
            dq_mask=dae.dq_structure(),
            df_mask=dae.df_structure(),
            coupling_mask=self.coupling != 0.0,
        )
        self.b_flat = np.asarray(b_grid, dtype=float).ravel()

    def residual(self, z):
        states = z.reshape(self.n1 * self.n0, self.n)
        q_flat = self.dae.q_batch(states).ravel()
        f_flat = self.dae.f_batch(states).ravel()
        return self.d_sum @ q_flat + f_flat - self.b_flat

    def jacobian(self, z):
        states = z.reshape(self.n1 * self.n0, self.n)
        dq = self.dae.dq_dx_batch(states)
        df = self.dae.df_dx_batch(states)
        return self.assembler.refresh(self.coupling, dq, diag_inner=df)

    def structure(self):
        return {"num_points": self.n1 * self.n0, "n_vars": self.n,
                "num_border": 0, "size": self.n1 * self.n0 * self.n}


def solve_mpde_quasiperiodic(dae, forcing, num_t1=15, num_t2=15,
                             initial=None, options=None):
    """Solve the bi-periodic MPDE collocation system.

    Parameters
    ----------
    dae:
        System providing ``q``/``f`` and Jacobians (its own ``b`` is
        ignored; the bivariate ``forcing`` replaces it).
    forcing:
        A :class:`~repro.mpde.forcing.BivariateForcing`.
    num_t1, num_t2:
        Odd collocation counts along the fast/slow axes.
    initial:
        Optional ``(N1, N0, n)`` or ``(n,)`` starting guess (a DC point is
        broadcast across the grid).

    Returns
    -------
    MpdeQuasiperiodicResult
    """
    opts = options or MpdeQuasiperiodicOptions()
    n0 = check_odd(num_t1, "num_t1")
    n1 = check_odd(num_t2, "num_t2")
    n = dae.n
    if forcing.n != n:
        raise SimulationError(
            f"forcing has length {forcing.n}, DAE has {n} unknowns"
        )

    t1_grid = collocation_grid(n0, forcing.period1)
    t2_grid = collocation_grid(n1, forcing.period2)
    b_grid = forcing.grid(t1_grid, t2_grid)  # (N1, N0, n)

    block = n0 * n
    total = n1 * block

    if initial is None:
        z0 = np.zeros(total)
    else:
        initial = np.asarray(initial, dtype=float)
        if initial.shape == (n,):
            z0 = np.tile(initial, n1 * n0)
        elif initial.shape == (n1, n0, n):
            z0 = initial.ravel().copy()
        else:
            raise SimulationError(
                f"initial must have shape ({n},) or ({n1}, {n0}, {n}), "
                f"got {initial.shape}"
            )

    core = core_from_options(opts)
    result = core.solve(_BiperiodicSystem(dae, forcing, n0, n1, b_grid), z0)
    samples = result.x.reshape(n1, n0, n)
    return MpdeQuasiperiodicResult(
        t1_grid,
        t2_grid,
        forcing.period1,
        forcing.period2,
        samples,
        dae.variable_names,
        result.iterations,
        core.stats.as_dict(),
    )
