"""The (unwarped) MPDE — the non-autonomous ancestor of the WaMPDE.

The Multirate Partial Differential Equation [BWLBG96, Roy97, Roy99]
replaces a DAE driven by widely separated rates with

    dq(xhat)/dt1 + dq(xhat)/dt2 + f(xhat) = bhat(t1, t2)

where ``bhat`` is a bivariate form of the forcing.  It captures
AM-quasiperiodicity compactly (paper Figs 1-2) but *cannot* represent FM
from autonomous components (paper §3, Fig 5) — that limitation is exactly
what the WaMPDE's warping fixes, and the two solvers here make the
contrast measurable.
"""

from repro.mpde.forcing import BivariateForcing, additive_two_tone_forcing
from repro.mpde.quasiperiodic import (
    MpdeQuasiperiodicResult,
    solve_mpde_quasiperiodic,
)
from repro.mpde.envelope import MpdeEnvelopeResult, solve_mpde_envelope

__all__ = [
    "BivariateForcing",
    "additive_two_tone_forcing",
    "MpdeQuasiperiodicResult",
    "solve_mpde_quasiperiodic",
    "MpdeEnvelopeResult",
    "solve_mpde_envelope",
]
