"""MPDE envelope: time-step in t2, spectral collocation in t1.

Identical in structure to the WaMPDE envelope but without warping — the
t1 axis has the *fixed* period of the fast forcing, there is no frequency
unknown and no phase condition.  Useful for envelope-modulated
(AM-transient) responses of driven circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.linalg.collocation import CollocationJacobianAssembler
from repro.linalg.lu_cache import ReusableLUSolver
from repro.linalg.newton import NewtonOptions, newton_solve
from repro.linalg.sparse_tools import kron_diffmat
from repro.spectral.diffmat import fourier_differentiation_matrix
from repro.spectral.grid import collocation_grid
from repro.utils.validation import check_odd
from repro.wampde.bivariate import BivariateWaveform


@dataclass
class MpdeEnvelopeOptions:
    """Configuration for :func:`solve_mpde_envelope`."""

    integrator: str = "trap"
    newton: NewtonOptions = field(
        default_factory=lambda: NewtonOptions(atol=1e-9, max_iterations=30)
    )
    store_every: int = 1


class MpdeEnvelopeResult:
    """MPDE envelope output: ``xhat`` samples marching along t2.

    Attributes
    ----------
    t2:
        Stored slow-time points.
    samples:
        Shape ``(m, N0, n)``.
    """

    def __init__(self, t2, samples, period1, variable_names, stats=None):
        self.t2 = np.asarray(t2, dtype=float)
        self.samples = np.asarray(samples, dtype=float)
        self.period1 = float(period1)
        self.variable_names = tuple(variable_names)
        self.stats = dict(stats or {})

    def bivariate(self, key):
        """Bivariate waveform of one variable."""
        if isinstance(key, str):
            key = self.variable_names.index(key)
        return BivariateWaveform(
            self.t2,
            self.samples[:, :, key],
            name=self.variable_names[key],
            t1_period=self.period1,
        )

    def reconstruct(self, key, times):
        """Univariate ``x(t) = xhat(t mod T1, t)``."""
        times = np.asarray(times, dtype=float)
        waveform = self.bivariate(key)
        return waveform(np.mod(times, self.period1), times)


def solve_mpde_envelope(dae, forcing, initial_samples, t2_start, t2_stop,
                        num_steps, options=None):
    """March the MPDE in t2 from initial t1-cycle data.

    Parameters
    ----------
    dae:
        System providing ``q``/``f``; ``forcing`` replaces its ``b``.
    forcing:
        :class:`~repro.mpde.forcing.BivariateForcing`; only its t1-period
        and values at the stepped ``t2`` matter here.
    initial_samples:
        ``(N0, n)`` t1-cycle at ``t2_start``.
    t2_start, t2_stop, num_steps:
        Uniform slow-time stepping window.

    Returns
    -------
    MpdeEnvelopeResult
    """
    opts = options or MpdeEnvelopeOptions()
    initial_samples = np.asarray(initial_samples, dtype=float)
    if initial_samples.ndim != 2:
        raise SimulationError(
            f"initial_samples must be (N0, n), got {initial_samples.shape}"
        )
    n0, n = initial_samples.shape
    check_odd(n0, "N0 (t1 samples)")
    if n != dae.n:
        raise SimulationError(
            f"initial_samples has {n} variables, DAE has {dae.n}"
        )
    if opts.integrator not in ("trap", "be"):
        raise SimulationError(
            f"integrator must be 'trap' or 'be', got {opts.integrator!r}"
        )
    use_trap = opts.integrator == "trap"

    t1_grid = collocation_grid(n0, forcing.period1)
    diffmat = fourier_differentiation_matrix(n0, forcing.period1)
    d_big = kron_diffmat(diffmat, n, ordering="point")
    h = (t2_stop - t2_start) / num_steps
    # Fixed-pattern Jacobian assembly + factorisation reuse across all
    # steps of the march (see repro.linalg.collocation).
    assembler = CollocationJacobianAssembler(
        n0, n, dq_mask=dae.dq_structure(), df_mask=dae.df_structure()
    )
    linear_solver = ReusableLUSolver()

    def b_at(t2_value):
        return np.stack([forcing(t1, t2_value) for t1 in t1_grid]).ravel()

    def fast_terms(states, t2_value):
        q_flat = dae.q_batch(states).ravel()
        f_flat = dae.f_batch(states).ravel()
        return d_big @ q_flat + f_flat - b_at(t2_value), q_flat

    x_samples = initial_samples.copy()
    t2 = float(t2_start)
    rhs_old, q_old = fast_terms(x_samples, t2)

    stored_t2 = [t2]
    stored = [x_samples.copy()]
    stats = {"steps": 0, "newton_iterations": 0}
    since_store = 0

    for step in range(num_steps):
        t2_new = t2_start + (step + 1) * h
        b_new = b_at(t2_new)

        def residual(z):
            states = z.reshape(n0, n)
            q_flat = dae.q_batch(states).ravel()
            f_flat = dae.f_batch(states).ravel()
            fast = d_big @ q_flat + f_flat - b_new
            if use_trap:
                return (q_flat - q_old) / h + 0.5 * (fast + rhs_old)
            return (q_flat - q_old) / h + fast

        def jacobian(z):
            states = z.reshape(n0, n)
            dq = dae.dq_dx_batch(states)
            df = dae.df_dx_batch(states)
            beta = 0.5 if use_trap else 1.0
            # dq/h + beta * (d_big @ dq + df), via data-only refresh;
            # scipy's sparse "/ h" is "* (1/h)" — matched bit for bit.
            return assembler.refresh(
                diffmat,
                dq,
                diag_inner=df,
                outer_coeff=beta,
                diag_outer=dq * (1.0 / h),
            )

        result = newton_solve(
            residual,
            jacobian,
            x_samples.ravel(),
            options=opts.newton,
            linear_solver=linear_solver,
        )
        stats["newton_iterations"] += result.iterations
        x_samples = result.x.reshape(n0, n)
        t2 = t2_new
        rhs_old, q_old = fast_terms(x_samples, t2)
        stats["steps"] += 1
        since_store += 1
        if since_store >= opts.store_every or step == num_steps - 1:
            stored_t2.append(t2)
            stored.append(x_samples.copy())
            since_store = 0

    return MpdeEnvelopeResult(
        np.asarray(stored_t2),
        np.asarray(stored),
        forcing.period1,
        dae.variable_names,
        stats,
    )
