"""MPDE envelope: time-step in t2, spectral collocation in t1.

Identical in structure to the WaMPDE envelope but without warping — the
t1 axis has the *fixed* period of the fast forcing, there is no frequency
unknown and no phase condition.  Useful for envelope-modulated
(AM-transient) responses of driven circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.serialize import SerializableMixin
from repro.errors import ConvergenceError, SimulationError
from repro.linalg.collocation import CollocationJacobianAssembler
from repro.linalg.lu_cache import FrozenFactorization
from repro.linalg.newton import NewtonOptions
from repro.linalg.solver_core import (
    CollocationSystem,
    SolverOptionsMixin,
    core_from_options,
)
from repro.linalg.sparse_tools import kron_diffmat
from repro.resilience.checkpoint import Checkpoint, CheckpointManager
from repro.spectral.diffmat import fourier_differentiation_matrix
from repro.spectral.grid import collocation_grid
from repro.utils.validation import check_odd
from repro.wampde.bivariate import BivariateWaveform


@dataclass
class MpdeEnvelopeOptions(SolverOptionsMixin):
    """Configuration for :func:`solve_mpde_envelope`.

    The ``newton``/``linear_solver``/``threads``/``ladder`` fields come
    from the shared
    :class:`~repro.linalg.solver_core.SolverOptionsMixin`; ``newton_mode``
    mirrors :class:`repro.wampde.envelope.WampdeEnvelopeOptions` — chord
    mode (default) carries one factorised step Jacobian across envelope
    steps via :class:`repro.linalg.solver_core.SolverCore`.
    ``checkpoint_every``/``checkpoint_path`` enable periodic resume
    checkpoints exactly as in the WaMPDE driver.
    """

    newton: NewtonOptions = field(
        default_factory=lambda: NewtonOptions(atol=1e-9, max_iterations=30)
    )
    integrator: str = "trap"
    newton_mode: str = "chord"
    store_every: int = 1
    checkpoint_every: int = 0
    checkpoint_path: object = None


class MpdeEnvelopeResult(SerializableMixin):
    """MPDE envelope output: ``xhat`` samples marching along t2.

    Attributes
    ----------
    t2:
        Stored slow-time points.
    samples:
        Shape ``(m, N0, n)``.
    """

    def __init__(self, t2, samples, period1, variable_names, stats=None):
        self.t2 = np.asarray(t2, dtype=float)
        self.samples = np.asarray(samples, dtype=float)
        self.period1 = float(period1)
        self.variable_names = tuple(variable_names)
        self.stats = dict(stats or {})

    def bivariate(self, key):
        """Bivariate waveform of one variable."""
        if isinstance(key, str):
            key = self.variable_names.index(key)
        return BivariateWaveform(
            self.t2,
            self.samples[:, :, key],
            name=self.variable_names[key],
            t1_period=self.period1,
        )

    def reconstruct(self, key, times):
        """Univariate ``x(t) = xhat(t mod T1, t)``."""
        times = np.asarray(times, dtype=float)
        waveform = self.bivariate(key)
        return waveform(np.mod(times, self.period1), times)


class _MpdeEnvelopeStepper(CollocationSystem):
    """Per-step collocation system handed to the shared solver core."""

    def __init__(self, dae, n0, forcing, beta, options):
        self.dae = dae
        self.n0 = n0
        self.n = dae.n
        self.beta = beta
        self.diffmat = fourier_differentiation_matrix(n0, forcing.period1)
        self.d_big = kron_diffmat(self.diffmat, self.n, ordering="point")
        # Fixed-pattern Jacobian assembly + factorisation reuse across all
        # steps of the march (see repro.linalg.collocation).
        self.assembler = CollocationJacobianAssembler(
            n0,
            self.n,
            dq_mask=dae.dq_structure(),
            df_mask=dae.df_structure(),
        )
        self.core = core_from_options(options)
        # Per-step configuration consumed by residual()/jacobian().
        self._b_new = None
        self._q_old = None
        self._rhs_old = None
        self._h = None
        # (z, h) of the most recent Jacobian assembly — checkpoint metadata
        # standing in for the (unpicklable) frozen factorisation.
        self._jac_meta = None

    def residual(self, z):
        states = z.reshape(self.n0, self.n)
        q_flat = self.dae.q_batch(states).ravel()
        f_flat = self.dae.f_batch(states).ravel()
        fast = self.d_big @ q_flat + f_flat - self._b_new
        if self.beta != 1.0:
            return (
                (q_flat - self._q_old) / self._h
                + 0.5 * (fast + self._rhs_old)
            )
        return (q_flat - self._q_old) / self._h + fast

    def jacobian(self, z):
        self._jac_meta = (np.array(z, dtype=float), self._h)
        states = z.reshape(self.n0, self.n)
        dq = self.dae.dq_dx_batch(states)
        df = self.dae.df_dx_batch(states)
        # dq/h + beta * (d_big @ dq + df), via data-only refresh;
        # scipy's sparse "/ h" is "* (1/h)" — matched bit for bit.
        return self.assembler.refresh(
            self.diffmat,
            dq,
            diag_inner=df,
            outer_coeff=self.beta,
            diag_outer=dq * (1.0 / self._h),
        )

    def structure(self):
        return {"num_points": self.n0, "n_vars": self.n,
                "num_border": 0, "size": self.n0 * self.n}

    def step(self, x_samples, q_old, rhs_old, b_new, h):
        """One implicit t2 step; returns ``(x_new, iterations)``."""
        self._b_new = b_new
        self._q_old = q_old
        self._rhs_old = rhs_old
        self._h = h
        self.core.note_parameters(h=h)
        result = self.core.solve(self, x_samples.ravel())
        return result.x.reshape(self.n0, self.n), result.iterations

    def factor_metadata(self):
        """``(z, h)`` of the held chord factors, or ``None`` (see WaMPDE)."""
        chord = self.core._chord
        if chord is not None and chord._have and self._jac_meta is not None:
            z, h = self._jac_meta
            return (np.array(z, dtype=float), float(h))
        return None

    def solver_snapshot(self):
        """Checkpointable solver-core bookkeeping (stats + parameters)."""
        return {
            "stats": self.core.stats.as_dict(),
            "params": dict(self.core._params),
        }

    def restore(self, snapshot, factor_meta):
        """Rebuild the stepper state captured by a checkpoint."""
        stats = self.core.stats
        for key, value in snapshot["stats"].items():
            setattr(stats, key, value)
        self.core._params.update(snapshot["params"])
        if factor_meta is not None and self.core._chord is not None:
            z, h = factor_meta
            self._h = float(h)
            matrix = self.jacobian(np.asarray(z, dtype=float))
            self.core.adopt_factorization(FrozenFactorization().factor(matrix))


def solve_mpde_envelope(dae, forcing, initial_samples, t2_start, t2_stop,
                        num_steps, options=None, resume_from=None):
    """March the MPDE in t2 from initial t1-cycle data.

    Parameters
    ----------
    dae:
        System providing ``q``/``f``; ``forcing`` replaces its ``b``.
    forcing:
        :class:`~repro.mpde.forcing.BivariateForcing`; only its t1-period
        and values at the stepped ``t2`` matter here.
    initial_samples:
        ``(N0, n)`` t1-cycle at ``t2_start``.
    t2_start, t2_stop, num_steps:
        Uniform slow-time stepping window.
    resume_from:
        A :class:`~repro.resilience.checkpoint.Checkpoint` (or a path to
        one) from an earlier, interrupted run with identical arguments;
        the march continues from the checkpointed step.

    Returns
    -------
    MpdeEnvelopeResult
    """
    opts = options or MpdeEnvelopeOptions()
    initial_samples = np.asarray(initial_samples, dtype=float)
    if initial_samples.ndim != 2:
        raise SimulationError(
            f"initial_samples must be (N0, n), got {initial_samples.shape}"
        )
    n0, n = initial_samples.shape
    check_odd(n0, "N0 (t1 samples)")
    if n != dae.n:
        raise SimulationError(
            f"initial_samples has {n} variables, DAE has {dae.n}"
        )
    if opts.integrator not in ("trap", "be"):
        raise SimulationError(
            f"integrator must be 'trap' or 'be', got {opts.integrator!r}"
        )
    beta = 0.5 if opts.integrator == "trap" else 1.0

    t1_points = collocation_grid(n0, forcing.period1)
    h = (t2_stop - t2_start) / num_steps
    stepper = _MpdeEnvelopeStepper(dae, n0, forcing, beta, opts)

    def b_at(t2_value):
        return np.stack([forcing(t1, t2_value) for t1 in t1_points]).ravel()

    def fast_terms(states, t2_value):
        q_flat = dae.q_batch(states).ravel()
        f_flat = dae.f_batch(states).ravel()
        return stepper.d_big @ q_flat + f_flat - b_at(t2_value), q_flat

    manager = CheckpointManager(
        every=int(getattr(opts, "checkpoint_every", 0) or 0),
        path=getattr(opts, "checkpoint_path", None),
    )
    if resume_from is not None:
        checkpoint = (
            resume_from
            if isinstance(resume_from, Checkpoint)
            else Checkpoint.load(resume_from)
        )
        if checkpoint.kind != "mpde_envelope":
            raise SimulationError(
                f"cannot resume an MPDE envelope march from a "
                f"{checkpoint.kind!r} checkpoint"
            )
        payload = checkpoint.payload
        x_samples = np.array(payload["x_samples"], dtype=float)
        t2 = float(payload["t2"])
        stored_t2 = list(payload["stored_t2"])
        stored = [np.array(s, dtype=float) for s in payload["stored"]]
        stats = dict(payload["stats"])
        since_store = int(payload["since_store"])
        start_step = int(checkpoint.step)
        stepper.restore(payload["solver"], payload["factor_meta"])
    else:
        x_samples = initial_samples.copy()
        t2 = float(t2_start)
        stored_t2 = [t2]
        stored = [x_samples.copy()]
        stats = {"steps": 0, "newton_iterations": 0}
        since_store = 0
        start_step = 0
    rhs_old, q_old = fast_terms(x_samples, t2)

    def take_checkpoint():
        return Checkpoint(
            kind="mpde_envelope",
            step=stats["steps"],
            t=t2,
            dt=h,
            payload={
                "x_samples": x_samples.copy(),
                "t2": t2,
                "stored_t2": list(stored_t2),
                "stored": [s.copy() for s in stored],
                "stats": dict(stats),
                "since_store": since_store,
                "t2_start": t2_start,
                "t2_stop": t2_stop,
                "num_steps": num_steps,
                "solver": stepper.solver_snapshot(),
                "factor_meta": stepper.factor_metadata(),
            },
        )

    for step in range(start_step, num_steps):
        t2_new = t2_start + (step + 1) * h
        try:
            x_samples, iterations = stepper.step(
                x_samples, q_old, rhs_old, b_at(t2_new), h
            )
        except ConvergenceError as exc:
            partial_stats = dict(stats)
            partial_stats["solver"] = stepper.core.stats.as_dict()
            raise SimulationError(
                f"MPDE envelope step {step + 1} failed to converge at "
                f"t2={t2_new:.6e}: {exc}",
                step=stats["steps"],
                time=t2,
                dt=h,
                iterations=exc.iterations,
                residual_norm=exc.residual_norm,
                checkpoint=manager.take(take_checkpoint),
                partial_result=MpdeEnvelopeResult(
                    stored_t2, stored, forcing.period1,
                    dae.variable_names, partial_stats,
                ),
            ) from exc
        stats["newton_iterations"] += iterations
        t2 = t2_new
        rhs_old, q_old = fast_terms(x_samples, t2)
        stats["steps"] += 1
        since_store += 1
        if since_store >= opts.store_every or step == num_steps - 1:
            stored_t2.append(t2)
            stored.append(x_samples.copy())
            since_store = 0
        manager.offer(stats["steps"], take_checkpoint)

    stats["solver"] = stepper.core.stats.as_dict()
    if stepper.core.recovery:
        stats["recovery"] = stepper.core.recovery.as_dict()
    return MpdeEnvelopeResult(
        np.asarray(stored_t2),
        np.asarray(stored),
        forcing.period1,
        dae.variable_names,
        stats,
    )
