"""Bivariate forcing functions ``bhat(t1, t2)`` for the MPDE.

The MPDE requires the circuit's forcing split by rate: fast components
become functions of ``t1``, slow ones of ``t2``.  Evaluating the original
``b`` along the diagonal ``t1 = t2 = t`` must recover the univariate
forcing (paper eq. 14 with trivial warping).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


class BivariateForcing:
    """Callable ``(t1, t2) -> b`` vector with period metadata.

    Parameters
    ----------
    func:
        Callable taking scalar ``(t1, t2)`` and returning a length-``n``
        vector.
    period1, period2:
        Periods along the fast and slow axes.
    n:
        Length of the returned vector.
    """

    def __init__(self, func, period1, period2, n):
        if not callable(func):
            raise ValidationError("BivariateForcing needs a callable")
        if not (period1 > 0 and period2 > 0):
            raise ValidationError(
                f"periods must be positive, got ({period1!r}, {period2!r})"
            )
        self._func = func
        self.period1 = float(period1)
        self.period2 = float(period2)
        self.n = int(n)

    def __call__(self, t1, t2):
        value = np.asarray(self._func(float(t1), float(t2)), dtype=float)
        if value.shape != (self.n,):
            raise ValidationError(
                f"forcing returned shape {value.shape}, expected ({self.n},)"
            )
        return value

    def diagonal(self, t):
        """Univariate forcing ``b(t) = bhat(t, t)``."""
        return self(t, t)

    def grid(self, t1_points, t2_points):
        """Sample on a tensor grid → shape ``(len(t2), len(t1), n)``."""
        t1_points = np.asarray(t1_points, dtype=float)
        t2_points = np.asarray(t2_points, dtype=float)
        out = np.empty((t2_points.size, t1_points.size, self.n))
        for i2, t2 in enumerate(t2_points):
            for i1, t1 in enumerate(t1_points):
                out[i2, i1] = self(t1, t2)
        return out


def additive_two_tone_forcing(fast_part, slow_part, period1, period2, n):
    """Forcing of the form ``bhat(t1, t2) = fast(t1) + slow(t2)``.

    The common case (paper's mixer-style examples): each part is a callable
    returning a length-``n`` vector.
    """

    def func(t1, t2):
        return np.asarray(fast_part(t1), dtype=float) + np.asarray(
            slow_part(t2), dtype=float
        )

    return BivariateForcing(func, period1, period2, n)
