"""Tests for the (unwarped) MPDE solvers."""

import numpy as np
import pytest

from repro.constants import TWO_PI
from repro.dae import LinearRCDae
from repro.errors import SimulationError, ValidationError
from repro.mpde import (
    BivariateForcing,
    additive_two_tone_forcing,
    solve_mpde_envelope,
    solve_mpde_quasiperiodic,
)


def rc_two_tone(f1=50.0, f2=1.0, a1=1.0, a2=0.5):
    """Linear RC driven by two tones: closed-form AM-quasiperiodic output."""
    dae = LinearRCDae(resistance=1.0, capacitance=0.02)

    def fast(t1):
        return np.array([a1 * np.cos(TWO_PI * f1 * t1)])

    def slow(t2):
        return np.array([a2 * np.cos(TWO_PI * f2 * t2)])

    forcing = additive_two_tone_forcing(fast, slow, 1.0 / f1, 1.0 / f2, 1)

    def exact(t):
        # Superposition of the two single-tone steady states.
        g, c = 1.0, 0.02
        out = 0.0
        for amp, freq in ((a1, f1), (a2, f2)):
            w = TWO_PI * freq
            denominator = g**2 + (w * c) ** 2
            out = out + amp * (
                g * np.cos(w * t) + w * c * np.sin(w * t)
            ) / denominator
        return out

    return dae, forcing, exact


class TestBivariateForcing:
    def test_diagonal_recovers_univariate(self):
        _dae, forcing, _exact = rc_two_tone()
        t = 0.123
        expected = forcing(t, t)
        np.testing.assert_allclose(forcing.diagonal(t), expected)

    def test_grid_shape(self):
        _dae, forcing, _ = rc_two_tone()
        grid = forcing.grid(np.zeros(3), np.zeros(5))
        assert grid.shape == (5, 3, 1)

    def test_rejects_noncallable(self):
        with pytest.raises(ValidationError):
            BivariateForcing("nope", 1.0, 1.0, 1)

    def test_rejects_bad_periods(self):
        with pytest.raises(ValidationError):
            BivariateForcing(lambda a, b: np.zeros(1), -1.0, 1.0, 1)

    def test_rejects_wrong_vector_length(self):
        forcing = BivariateForcing(lambda a, b: np.zeros(2), 1.0, 1.0, 1)
        with pytest.raises(ValidationError, match="shape"):
            forcing(0.0, 0.0)


class TestMpdeQuasiperiodic:
    def test_linear_rc_matches_closed_form(self):
        """The MPDE solution along the diagonal equals the exact
        two-tone steady state of the linear RC filter."""
        dae, forcing, exact = rc_two_tone()
        result = solve_mpde_quasiperiodic(dae, forcing, num_t1=9, num_t2=9)
        t = np.linspace(0.0, 1.0, 400)
        np.testing.assert_allclose(
            result.reconstruct(0, t), exact(t), atol=1e-6
        )

    def test_solution_grid_shape(self):
        dae, forcing, _ = rc_two_tone()
        result = solve_mpde_quasiperiodic(dae, forcing, num_t1=9, num_t2=7)
        assert result.samples.shape == (7, 9, 1)

    def test_initial_dc_broadcast(self):
        dae, forcing, _ = rc_two_tone()
        result = solve_mpde_quasiperiodic(
            dae, forcing, num_t1=9, num_t2=7, initial=np.array([0.3])
        )
        assert result.newton_iterations >= 1

    def test_rejects_mismatched_forcing(self):
        dae, _forcing, _ = rc_two_tone()
        bad = BivariateForcing(lambda a, b: np.zeros(3), 1.0, 1.0, 3)
        with pytest.raises(SimulationError):
            solve_mpde_quasiperiodic(dae, bad, num_t1=9, num_t2=9)

    def test_bivariate_periodic_in_t2(self):
        dae, forcing, _ = rc_two_tone()
        result = solve_mpde_quasiperiodic(dae, forcing, num_t1=9, num_t2=9)
        biv = result.bivariate(0)
        t1 = np.linspace(0, forcing.period1, 5)
        np.testing.assert_allclose(
            biv(t1, 0.0), biv(t1, forcing.period2), atol=1e-9
        )

    def test_nonlinear_mixer_against_transient(self):
        """End-to-end on the diode mixer: MPDE vs brute-force transient."""
        from repro.circuits.library import rc_diode_mixer_circuit
        from repro.steadystate import dc_operating_point
        from repro.transient import TransientOptions, simulate_transient

        dae = rc_diode_mixer_circuit().to_dae()
        n = dae.n
        f_rf, f_lo = 1e5, 1e3

        def fast(t1):
            b = np.zeros(n)
            b[-1] = 0.6 + 0.05 * np.sin(TWO_PI * f_rf * t1)
            return b

        def slow(t2):
            b = np.zeros(n)
            b[-1] = 0.4 * np.sin(TWO_PI * f_lo * t2)
            return b

        forcing = additive_two_tone_forcing(fast, slow, 1 / f_rf, 1 / f_lo, n)
        x_dc = dc_operating_point(dae)
        result = solve_mpde_quasiperiodic(
            dae, forcing, num_t1=15, num_t2=15, initial=x_dc
        )
        transient = simulate_transient(
            dae, x_dc, 0.0, 2.5e-3,
            TransientOptions(integrator="trap", dt=1 / f_rf / 40),
        )
        times = np.linspace(1.5e-3, 2.4e-3, 300)
        rec = result.reconstruct("v(out)", times)
        ref = transient.sample(times, "v(out)")
        spread = ref.max() - ref.min()
        assert np.max(np.abs(rec - ref)) < 0.05 * spread


class TestMpdeEnvelope:
    def test_settles_to_quasiperiodic(self):
        """Envelope started at DC converges to the QP solution."""
        dae, forcing, exact = rc_two_tone()
        initial = np.zeros((9, 1))
        result = solve_mpde_envelope(
            dae, forcing, initial, 0.0, 3.0, 300
        )
        # After ~RC settling, the reconstruction matches the closed form.
        t = np.linspace(2.0, 2.9, 200)
        np.testing.assert_allclose(
            result.reconstruct(0, t), exact(t), atol=2e-3
        )

    def test_rejects_bad_initial(self):
        dae, forcing, _ = rc_two_tone()
        with pytest.raises(SimulationError):
            solve_mpde_envelope(dae, forcing, np.zeros(9), 0.0, 1.0, 10)

    def test_rejects_bad_integrator(self):
        from repro.mpde.envelope import MpdeEnvelopeOptions

        dae, forcing, _ = rc_two_tone()
        with pytest.raises(SimulationError, match="integrator"):
            solve_mpde_envelope(
                dae, forcing, np.zeros((9, 1)), 0.0, 1.0, 10,
                MpdeEnvelopeOptions(integrator="euler"),
            )

    def test_be_variant_runs(self):
        from repro.mpde.envelope import MpdeEnvelopeOptions

        dae, forcing, _ = rc_two_tone()
        result = solve_mpde_envelope(
            dae, forcing, np.zeros((9, 1)), 0.0, 0.5, 50,
            MpdeEnvelopeOptions(integrator="be"),
        )
        assert result.samples.shape[0] == 51
