"""Tests for the shared grid/stacking helpers (repro.grids)."""

import numpy as np
import pytest

from repro.grids import harmonic_axis, stack_states, t1_grid, unstack_states


class TestStacking:
    def test_stack_is_point_major(self):
        samples = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        np.testing.assert_array_equal(
            stack_states(samples), [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        )

    def test_unstack_round_trip(self):
        rng = np.random.default_rng(3)
        samples = rng.standard_normal((7, 3))
        np.testing.assert_array_equal(
            unstack_states(stack_states(samples), 7, 3), samples
        )

    def test_stack_accepts_lists(self):
        assert stack_states([[1, 2], [3, 4]]).dtype == float

    def test_unstack_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            unstack_states(np.zeros(5), 2, 3)


class TestSpectralAxes:
    def test_t1_grid_normalised(self):
        grid = t1_grid(5)
        np.testing.assert_allclose(grid, np.arange(5) / 5)

    def test_harmonic_axis_centred(self):
        np.testing.assert_array_equal(harmonic_axis(5), [-2, -1, 0, 1, 2])

    def test_reexports_match_wampde_envelope(self):
        # Backwards-compatible aliases must stay the same objects.
        from repro.wampde import envelope

        assert envelope.t1_grid is t1_grid
        assert envelope.harmonic_axis is harmonic_axis

    def test_hb_stack_helpers_are_shared(self):
        from repro.steadystate import harmonic_balance as hb

        assert hb._stack is stack_states
        assert hb._unstack is unstack_states
