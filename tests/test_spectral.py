"""Tests for the spectral kernel (fourier, diffmat, interpolation, grid)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.spectral import (
    TrigInterpolant,
    collocation_grid,
    coefficients_to_samples,
    fourier_differentiation_matrix,
    fourier_synthesis,
    harmonic_indices,
    samples_to_coefficients,
    spectral_derivative,
    trig_interpolate,
)

odd_sizes = st.integers(min_value=1, max_value=20).map(lambda m: 2 * m + 1)


class TestGrid:
    def test_collocation_grid_excludes_endpoint(self):
        grid = collocation_grid(5, 1.0)
        assert grid[-1] < 1.0
        np.testing.assert_allclose(np.diff(grid), 0.2)

    def test_collocation_grid_rejects_even(self):
        with pytest.raises(ValidationError):
            collocation_grid(4, 1.0)

    def test_harmonic_indices_centered(self):
        np.testing.assert_array_equal(harmonic_indices(5), [-2, -1, 0, 1, 2])

    def test_harmonic_indices_rejects_even(self):
        with pytest.raises(ValidationError):
            harmonic_indices(6)


class TestFourierRoundtrip:
    @given(odd_sizes)
    def test_roundtrip_identity(self, num):
        rng = np.random.default_rng(num)
        samples = rng.normal(size=num)
        coeffs = samples_to_coefficients(samples)
        back = coefficients_to_samples(coeffs)
        np.testing.assert_allclose(back, samples, atol=1e-12)

    def test_pure_cosine_coefficients(self):
        num = 9
        grid = collocation_grid(num, 1.0)
        samples = np.cos(2 * np.pi * grid)
        coeffs = samples_to_coefficients(samples)
        half = num // 2
        # cos(2 pi t) = (e^{i2pi t} + e^{-i2pi t})/2 -> 0.5 at indices +-1.
        np.testing.assert_allclose(coeffs[half + 1], 0.5, atol=1e-12)
        np.testing.assert_allclose(coeffs[half - 1], 0.5, atol=1e-12)
        others = np.delete(coeffs, [half - 1, half + 1])
        np.testing.assert_allclose(others, 0.0, atol=1e-12)

    def test_pure_sine_coefficients(self):
        num = 9
        grid = collocation_grid(num, 1.0)
        coeffs = samples_to_coefficients(np.sin(2 * np.pi * grid))
        half = num // 2
        np.testing.assert_allclose(coeffs[half + 1], -0.5j, atol=1e-12)
        np.testing.assert_allclose(coeffs[half - 1], 0.5j, atol=1e-12)

    def test_multidimensional_axis(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=(4, 7))
        coeffs = samples_to_coefficients(samples, axis=1)
        back = coefficients_to_samples(coeffs, axis=1)
        np.testing.assert_allclose(back, samples, atol=1e-12)

    def test_rejects_even_samples(self):
        with pytest.raises(ValidationError):
            samples_to_coefficients(np.zeros(8))

    def test_synthesis_matches_samples_at_grid(self):
        num = 11
        grid = collocation_grid(num, 2.0)
        rng = np.random.default_rng(1)
        samples = rng.normal(size=num)
        coeffs = samples_to_coefficients(samples)
        np.testing.assert_allclose(
            fourier_synthesis(coeffs, grid, period=2.0), samples, atol=1e-10
        )

    def test_synthesis_rejects_2d_coefficients(self):
        with pytest.raises(ValueError, match="1-D"):
            fourier_synthesis(np.zeros((3, 3)), 0.0)

    def test_synthesis_scalar_time(self):
        coeffs = samples_to_coefficients(np.ones(5))
        value = fourier_synthesis(coeffs, 0.3)
        assert np.isclose(float(value), 1.0)


class TestDifferentiationMatrix:
    @pytest.mark.parametrize("num,period", [(5, 1.0), (15, 1.0), (9, 0.02)])
    def test_exact_on_sinusoid(self, num, period):
        grid = collocation_grid(num, period)
        diffmat = fourier_differentiation_matrix(num, period)
        y = np.sin(2 * np.pi * grid / period)
        dy_exact = (2 * np.pi / period) * np.cos(2 * np.pi * grid / period)
        np.testing.assert_allclose(diffmat @ y, dy_exact, atol=1e-8 / period)

    def test_exact_on_high_harmonic(self):
        num = 15  # supports harmonics up to 7
        grid = collocation_grid(num, 1.0)
        diffmat = fourier_differentiation_matrix(num, 1.0)
        y = np.cos(2 * np.pi * 7 * grid)
        dy = -(2 * np.pi * 7) * np.sin(2 * np.pi * 7 * grid)
        np.testing.assert_allclose(diffmat @ y, dy, atol=1e-8)

    def test_annihilates_constants(self):
        diffmat = fourier_differentiation_matrix(11, 3.0)
        np.testing.assert_allclose(diffmat @ np.ones(11), 0.0, atol=1e-12)

    def test_antisymmetric(self):
        diffmat = fourier_differentiation_matrix(9, 1.0)
        np.testing.assert_allclose(diffmat, -diffmat.T, atol=1e-12)

    def test_period_scaling(self):
        d1 = fourier_differentiation_matrix(7, 1.0)
        d2 = fourier_differentiation_matrix(7, 2.0)
        np.testing.assert_allclose(d1, 2.0 * d2, atol=1e-12)

    def test_rejects_even(self):
        with pytest.raises(ValidationError):
            fourier_differentiation_matrix(8, 1.0)

    @given(odd_sizes)
    def test_matches_fft_derivative(self, num):
        rng = np.random.default_rng(num + 1)
        samples = rng.normal(size=num)
        diffmat = fourier_differentiation_matrix(num, 1.5)
        via_matrix = diffmat @ samples
        via_fft = spectral_derivative(samples, period=1.5)
        np.testing.assert_allclose(via_matrix, via_fft, atol=1e-8 * num)


class TestSpectralDerivative:
    def test_second_derivative(self):
        num = 21
        grid = collocation_grid(num, 1.0)
        y = np.sin(2 * np.pi * grid)
        d2 = spectral_derivative(y, period=1.0, order=2)
        np.testing.assert_allclose(d2, -(2 * np.pi) ** 2 * y, atol=1e-7)

    def test_rejects_order_zero(self):
        with pytest.raises(ValueError):
            spectral_derivative(np.zeros(5), order=0)


class TestTrigInterpolation:
    def test_matches_at_grid_points(self):
        num = 9
        grid = collocation_grid(num, 1.0)
        rng = np.random.default_rng(2)
        samples = rng.normal(size=num)
        np.testing.assert_allclose(
            trig_interpolate(samples, grid), samples, atol=1e-10
        )

    def test_exact_for_bandlimited(self):
        num = 11
        grid = collocation_grid(num, 1.0)
        samples = np.cos(2 * np.pi * 3 * grid + 0.4)
        t_fine = np.linspace(0, 1, 137)
        expected = np.cos(2 * np.pi * 3 * t_fine + 0.4)
        np.testing.assert_allclose(
            trig_interpolate(samples, t_fine), expected, atol=1e-10
        )

    def test_interpolant_periodicity(self):
        interp = TrigInterpolant(np.arange(5, dtype=float), period=2.0)
        t = np.array([0.3, 0.7])
        np.testing.assert_allclose(interp(t), interp(t + 2.0), atol=1e-10)

    def test_interpolant_derivative(self):
        num = 15
        grid = collocation_grid(num, 1.0)
        interp = TrigInterpolant(np.sin(2 * np.pi * grid), period=1.0)
        t = np.linspace(0, 1, 50)
        np.testing.assert_allclose(
            interp.derivative(t), 2 * np.pi * np.cos(2 * np.pi * t), atol=1e-8
        )

    def test_interpolant_rejects_2d(self):
        with pytest.raises(ValueError):
            TrigInterpolant(np.zeros((3, 3)))

    def test_coefficients_copy(self):
        interp = TrigInterpolant(np.arange(5, dtype=float))
        coeffs = interp.coefficients
        coeffs[:] = 0
        assert not np.allclose(interp.coefficients, 0)
