"""Checkpoint/restart tests: snapshots, cadence, and bit-identical
resume across the transient and envelope engines.

The resume contract is strict: a run interrupted mid-march and resumed
from its checkpoint must reproduce the uninterrupted run's trajectory
*bit for bit* (``np.array_equal``, not ``allclose``) — the snapshot
carries the integrator history, the controller's registered parameters
and the frozen-factorisation metadata, and LU of an identical matrix is
deterministic.
"""

import pickle

import numpy as np
import pytest

from repro.constants import TWO_PI
from repro.dae import LinearRCDae, VanDerPolDae
from repro.errors import SimulationError
from repro.linalg.newton import NewtonOptions
from repro.mpde import additive_two_tone_forcing, solve_mpde_envelope
from repro.mpde.envelope import MpdeEnvelopeOptions
from repro.resilience.checkpoint import Checkpoint, CheckpointManager
from repro.transient import TransientOptions, simulate_transient
from repro.wampde import (
    WampdeEnvelopeOptions,
    solve_wampde_envelope,
    solve_wampde_envelope_adaptive,
)


class TestCheckpointObject:
    def test_save_load_round_trip(self, tmp_path):
        checkpoint = Checkpoint(
            kind="transient", step=7, t=1.25, dt=0.5,
            payload={"x": np.arange(3.0), "stats": {"steps": 7}},
        )
        path = tmp_path / "run.ckpt"
        checkpoint.save(path)
        loaded = Checkpoint.load(path)
        assert loaded.kind == "transient"
        assert loaded.step == 7
        assert loaded.t == 1.25
        assert loaded.dt == 0.5
        np.testing.assert_array_equal(loaded.payload["x"], np.arange(3.0))

    def test_load_rejects_foreign_pickle(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(TypeError, match="Checkpoint"):
            Checkpoint.load(path)

    def test_atomic_save_leaves_no_temp_files(self, tmp_path):
        checkpoint = Checkpoint(kind="transient", step=1, t=0.0, dt=0.1)
        checkpoint.save(tmp_path / "a.ckpt")
        checkpoint.save(tmp_path / "a.ckpt")  # overwrite in place
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.ckpt"]


class TestCheckpointManager:
    def test_cadence_and_retention(self):
        manager = CheckpointManager(every=3, keep=2)
        taken = []
        for step in range(1, 11):
            made = manager.offer(
                step,
                lambda step=step: Checkpoint(
                    kind="transient", step=step, t=float(step), dt=1.0
                ),
            )
            if made is not None:
                taken.append(made.step)
        assert taken == [3, 6, 9]
        assert manager.taken == 3
        assert [c.step for c in manager.checkpoints] == [6, 9]
        assert manager.last.step == 9

    def test_disabled_cadence_never_materialises(self):
        manager = CheckpointManager(every=0)
        calls = []

        def factory():
            calls.append(1)
            return Checkpoint(kind="transient", step=1, t=0.0, dt=1.0)

        for step in range(1, 50):
            assert manager.offer(step, factory) is None
        assert not calls
        assert manager.last is None

    def test_take_spools_to_disk(self, tmp_path):
        path = tmp_path / "latest.ckpt"
        manager = CheckpointManager(every=0, path=path)
        manager.take(
            lambda: Checkpoint(kind="transient", step=4, t=2.0, dt=0.5)
        )
        assert Checkpoint.load(path).step == 4


class TestTransientResume:
    def run_options(self, **kwargs):
        return TransientOptions(integrator="trap", dt=1e-2, **kwargs)

    def test_fixed_step_resume_is_bit_identical(self):
        dae = VanDerPolDae(mu=3.0)
        x0 = [2.0, 0.0]
        reference = simulate_transient(dae, x0, 0.0, 8.0, self.run_options())

        with pytest.raises(SimulationError, match="max_steps") as info:
            simulate_transient(
                dae, x0, 0.0, 8.0, self.run_options(max_steps=300)
            )
        exc = info.value
        assert exc.checkpoint is not None
        assert exc.checkpoint.kind == "transient"
        assert exc.checkpoint.step == 300
        assert exc.partial_result is not None
        assert exc.partial_result.t[-1] < 8.0

        resumed = simulate_transient(
            dae, x0, 0.0, 8.0, self.run_options(),
            resume_from=exc.checkpoint,
        )
        assert np.array_equal(resumed.t, reference.t)
        assert np.array_equal(resumed.x, reference.x)

    def test_adaptive_resume_is_bit_identical(self):
        dae = VanDerPolDae(mu=3.0)
        x0 = [2.0, 0.0]
        options = TransientOptions(
            integrator="trap", dt=1e-2, adaptive=True
        )
        reference = simulate_transient(dae, x0, 0.0, 8.0, options)
        with pytest.raises(SimulationError, match="max_steps") as info:
            simulate_transient(
                dae, x0, 0.0, 8.0,
                TransientOptions(
                    integrator="trap", dt=1e-2, adaptive=True,
                    max_steps=200,
                ),
            )
        resumed = simulate_transient(
            dae, x0, 0.0, 8.0, options, resume_from=info.value.checkpoint
        )
        assert np.array_equal(resumed.t, reference.t)
        assert np.array_equal(resumed.x, reference.x)

    def test_resume_from_spooled_path(self, tmp_path):
        dae = VanDerPolDae(mu=3.0)
        x0 = [2.0, 0.0]
        path = tmp_path / "transient.ckpt"
        reference = simulate_transient(dae, x0, 0.0, 8.0, self.run_options())
        simulate_transient(
            dae, x0, 0.0, 8.0,
            self.run_options(checkpoint_every=300, checkpoint_path=path),
        )
        # Periodic cadence fired at steps 300 and 600 of 800; the spool
        # holds the latest, so resuming replays the final 200 steps.
        assert Checkpoint.load(path).step == 600
        resumed = simulate_transient(
            dae, x0, 0.0, 8.0, self.run_options(), resume_from=str(path)
        )
        assert np.array_equal(resumed.t, reference.t)
        assert np.array_equal(resumed.x, reference.x)

    def test_resume_rejects_wrong_kind(self):
        checkpoint = Checkpoint(
            kind="wampde_envelope", step=0, t=0.0, dt=0.1
        )
        with pytest.raises(SimulationError, match="wampde_envelope"):
            simulate_transient(
                VanDerPolDae(mu=1.0), [2.0, 0.0], 0.0, 1.0,
                self.run_options(), resume_from=checkpoint,
            )


class TestWampdeEnvelopeResume:
    def test_fixed_march_resume_is_bit_identical(
        self, vdp_limit_cycle, tmp_path
    ):
        dae, hb = vdp_limit_cycle
        path = tmp_path / "envelope.ckpt"
        reference = solve_wampde_envelope(
            dae, hb.samples, hb.frequency, 0.0, 15.0, 30
        )
        solve_wampde_envelope(
            dae, hb.samples, hb.frequency, 0.0, 15.0, 30,
            WampdeEnvelopeOptions(
                checkpoint_every=16, checkpoint_path=path
            ),
        )
        checkpoint = Checkpoint.load(path)
        assert checkpoint.kind == "wampde_envelope"
        assert checkpoint.step == 16
        resumed = solve_wampde_envelope(
            dae, hb.samples, hb.frequency, 0.0, 15.0, 30,
            resume_from=checkpoint,
        )
        assert np.array_equal(resumed.t2, reference.t2)
        assert np.array_equal(resumed.omega, reference.omega)
        assert np.array_equal(resumed.samples, reference.samples)
        assert (
            resumed.stats["newton_iterations"]
            == reference.stats["newton_iterations"]
        )

    def test_step_failure_carries_checkpoint_and_partial(
        self, vdp_limit_cycle
    ):
        dae, hb = vdp_limit_cycle
        # An unreachable atol with rtol=0 (so the relative-update check
        # cannot declare victory) and a one-iteration budget fails every
        # ladder rung deterministically.
        options = WampdeEnvelopeOptions(
            newton=NewtonOptions(atol=1e-30, rtol=0.0, max_iterations=1)
        )
        with pytest.raises(SimulationError, match="failed to converge") as info:
            solve_wampde_envelope(
                dae, hb.samples, hb.frequency, 0.0, 15.0, 30, options
            )
        exc = info.value
        assert exc.checkpoint is not None
        assert exc.checkpoint.kind == "wampde_envelope"
        assert exc.step == 0
        assert exc.iterations is not None
        assert exc.partial_result is not None
        assert "solver" in exc.partial_result.stats

    def test_adaptive_resume_is_bit_identical(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        reference = solve_wampde_envelope_adaptive(
            dae, hb.samples, hb.frequency, 0.0, 60.0
        )
        # The coasting controller covers [0, 60] in ~7 steps; cap at 4 to
        # interrupt genuinely mid-march.
        with pytest.raises(SimulationError, match="max_steps") as info:
            solve_wampde_envelope_adaptive(
                dae, hb.samples, hb.frequency, 0.0, 60.0, max_steps=4
            )
        exc = info.value
        assert exc.checkpoint is not None
        assert exc.checkpoint.kind == "wampde_envelope_adaptive"
        assert exc.partial_result is not None
        resumed = solve_wampde_envelope_adaptive(
            dae, hb.samples, hb.frequency, 0.0, 60.0,
            resume_from=exc.checkpoint,
        )
        assert np.array_equal(resumed.t2, reference.t2)
        assert np.array_equal(resumed.omega, reference.omega)
        assert np.array_equal(resumed.samples, reference.samples)

    def test_resume_rejects_wrong_kind(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        checkpoint = Checkpoint(kind="transient", step=0, t=0.0, dt=0.1)
        with pytest.raises(SimulationError, match="transient"):
            solve_wampde_envelope(
                dae, hb.samples, hb.frequency, 0.0, 15.0, 30,
                resume_from=checkpoint,
            )
        with pytest.raises(SimulationError, match="transient"):
            solve_wampde_envelope_adaptive(
                dae, hb.samples, hb.frequency, 0.0, 15.0,
                resume_from=checkpoint,
            )


class TestMpdeEnvelopeResume:
    def setup_problem(self):
        dae = LinearRCDae(resistance=1.0, capacitance=0.02)
        f1, f2 = 50.0, 1.0

        def fast(t1):
            return np.array([np.cos(TWO_PI * f1 * t1)])

        def slow(t2):
            return np.array([0.5 * np.cos(TWO_PI * f2 * t2)])

        forcing = additive_two_tone_forcing(fast, slow, 1.0 / f1, 1.0 / f2, 1)
        return dae, forcing

    def test_resume_is_bit_identical(self, tmp_path):
        dae, forcing = self.setup_problem()
        initial = np.zeros((9, 1))
        path = tmp_path / "mpde.ckpt"
        reference = solve_mpde_envelope(dae, forcing, initial, 0.0, 1.0, 60)
        solve_mpde_envelope(
            dae, forcing, initial, 0.0, 1.0, 60,
            MpdeEnvelopeOptions(checkpoint_every=25, checkpoint_path=path),
        )
        checkpoint = Checkpoint.load(path)
        assert checkpoint.kind == "mpde_envelope"
        assert checkpoint.step == 50
        resumed = solve_mpde_envelope(
            dae, forcing, initial, 0.0, 1.0, 60, resume_from=checkpoint
        )
        assert np.array_equal(resumed.t2, reference.t2)
        assert np.array_equal(resumed.samples, reference.samples)

    def test_step_failure_carries_checkpoint_and_partial(self):
        dae, forcing = self.setup_problem()
        options = MpdeEnvelopeOptions(
            newton=NewtonOptions(atol=1e-30, rtol=0.0, max_iterations=1)
        )
        with pytest.raises(SimulationError, match="failed to converge") as info:
            solve_mpde_envelope(
                dae, forcing, np.zeros((9, 1)), 0.0, 1.0, 60, options
            )
        exc = info.value
        assert exc.checkpoint is not None
        assert exc.checkpoint.kind == "mpde_envelope"
        assert exc.iterations is not None
        assert exc.partial_result is not None

    def test_resume_rejects_wrong_kind(self):
        dae, forcing = self.setup_problem()
        checkpoint = Checkpoint(kind="transient", step=0, t=0.0, dt=0.1)
        with pytest.raises(SimulationError, match="transient"):
            solve_mpde_envelope(
                dae, forcing, np.zeros((9, 1)), 0.0, 1.0, 60,
                resume_from=checkpoint,
            )
