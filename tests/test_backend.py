"""Tests for the array-backend abstraction (:mod:`repro.backend`).

Three layers: the batched dense factorisation (vectorised LU vs NumPy
references), backend resolution/dispatch semantics, and end-to-end
ensemble parity — the default NumPy backend must stay bit-identical to
the pre-backend engine, and the strict fake-device backend (NumPy
numerics behind loud-transfer wrappers) must agree within solver
tolerance while catching any implicit host round-trip in the hot path.
"""

import numpy as np
import pytest
from dataclasses import replace

from repro.backend import (
    NUMPY,
    BatchedLinalg,
    StrictHostArray,
    StrictHostBackend,
    array_namespace,
    probe_cupy,
    resolve_backend,
)
from repro.circuits.library import MemsVcoDae, VcoParams
from repro.dae import VanDerPolDae, ensemble_from_factory
from repro.errors import ConfigurationError
from repro.linalg.lu_cache import BlockFactorization
from repro.transient import TransientOptions, simulate_transient_ensemble


VCS = np.array([0.9, 1.3, 1.7, 2.1])


def vco_ensemble():
    def factory(vc):
        return MemsVcoDae(
            replace(VcoParams.vacuum(), control_offset=vc),
            constant_control=True,
        )

    def stacked(values):
        return MemsVcoDae(
            replace(VcoParams.vacuum(), control_offset=np.asarray(values)),
            constant_control=True,
        )

    return ensemble_from_factory(factory, VCS, stacked)


def vdp_ensemble(batch):
    mus = np.linspace(0.1, 0.7, batch)
    return ensemble_from_factory(
        lambda mu: VanDerPolDae(mu=mu), mus,
        lambda stack: VanDerPolDae(mu=np.asarray(stack)),
    )


class TestBatchedLinalg:
    @pytest.mark.parametrize("n", [1, 2, 5, 17, 33, 64])
    def test_factor_solve_matches_numpy(self, n, rng):
        batch = 7
        a = rng.standard_normal((batch, n, n)) + n * np.eye(n)
        b = rng.standard_normal((batch, n))
        linalg = BatchedLinalg(np)
        lu, perm = linalg.lu_factor(a.copy())
        x = linalg.lu_solve(lu, perm, b)
        want = np.stack([np.linalg.solve(a[i], b[i]) for i in range(batch)])
        np.testing.assert_allclose(x, want, rtol=1e-9, atol=1e-12)

    def test_pivoting_handles_zero_leading_diagonal(self):
        a = np.array([[[0.0, 1.0], [1.0, 0.0]]])
        b = np.array([[2.0, 3.0]])
        linalg = BatchedLinalg(np)
        x = linalg.lu_solve(*linalg.lu_factor(a.copy()), b)
        np.testing.assert_allclose(x[0], [3.0, 2.0], rtol=1e-14)

    def test_singular_member_raises_for_whole_batch(self, rng):
        # Mirrors the dense np.linalg path (and the compiled kernel):
        # one singular scenario fails the whole factorisation, and the
        # step controller reacts by halving dt for everyone.
        a = rng.standard_normal((3, 4, 4)) + 4 * np.eye(4)
        a[1, :, 2] = a[1, :, 0]  # exactly dependent columns
        linalg = BatchedLinalg(np)
        with pytest.raises(np.linalg.LinAlgError):
            linalg.lu_factor(a.copy())

    def test_nonfinite_factor_raises(self):
        a = np.ones((1, 3, 3))
        a[0, 1, 1] = np.inf
        with pytest.raises(np.linalg.LinAlgError):
            BatchedLinalg(np).lu_factor(a.copy())


class TestBlockFactorization:
    def test_dense_block_uses_batched_mode_up_to_64(self, rng):
        n = 64
        blocks = rng.standard_normal((3, n, n)) + n * np.eye(n)
        rhs = rng.standard_normal((3, n))
        factor = BlockFactorization()
        factor.factor(blocks)
        assert factor._mode == "batched"
        # No materialised inverses anywhere: the factorisation keeps LU
        # factors + permutations only.
        assert not any("inv" in key for key in vars(factor))
        x = factor.solve(rhs)
        want = np.stack(
            [np.linalg.solve(blocks[i], rhs[i]) for i in range(3)]
        )
        np.testing.assert_allclose(x, want, rtol=1e-9, atol=1e-12)

    def test_dense_cap_is_64(self):
        assert BlockFactorization.DENSE_LIMIT == 64
        assert BlockFactorization.INVERSE_LIMIT == 64  # compat alias

    def test_above_cap_falls_back_to_per_block_lu(self, rng):
        n = BlockFactorization.DENSE_LIMIT + 1
        blocks = rng.standard_normal((2, n, n)) + n * np.eye(n)
        factor = BlockFactorization()
        factor.factor(blocks)
        assert factor._mode == "lu"
        rhs = rng.standard_normal((2, n))
        want = np.stack(
            [np.linalg.solve(blocks[i], rhs[i]) for i in range(2)]
        )
        np.testing.assert_allclose(
            factor.solve(rhs), want, rtol=1e-9, atol=1e-12
        )


class TestResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_XP", raising=False)
        backend, meta = resolve_backend(None)
        assert backend is NUMPY
        assert meta == {"requested": "numpy", "source": "default"}

    def test_env_overrides_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_XP", "strict")
        backend, meta = resolve_backend("auto")
        assert isinstance(backend, StrictHostBackend)
        assert meta == {"requested": "strict", "source": "env"}

    def test_explicit_option_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_XP", "strict")
        backend, meta = resolve_backend("numpy")
        assert backend is NUMPY
        assert meta["source"] == "option"

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="backend"):
            resolve_backend("tpu")

    def test_instance_passthrough(self):
        fake = StrictHostBackend()
        backend, meta = resolve_backend(fake)
        assert backend is fake
        assert meta["source"] == "instance"

    @pytest.mark.skipif(probe_cupy(), reason="cupy present: explicit "
                        "requests resolve instead of raising")
    def test_cupy_unavailable_raises(self):
        with pytest.raises(ConfigurationError, match="cupy"):
            resolve_backend("cupy")


class TestStrictHostArray:
    def test_implicit_transfer_is_loud(self):
        dev = StrictHostBackend().from_host(np.arange(3.0))
        with pytest.raises(TypeError, match="implicit host transfer"):
            np.asarray(dev)
        # Ufunc entry is cut off too (__array_ufunc__ = None).
        with pytest.raises(TypeError, match="does not support ufuncs"):
            np.add(dev, 1.0)

    def test_mixed_arithmetic_stays_wrapped(self):
        dev = StrictHostBackend().from_host(np.arange(3.0))
        out = (2.0 * dev + np.ones(3)) / 4.0
        assert isinstance(out, StrictHostArray)
        np.testing.assert_allclose(
            StrictHostBackend().to_host(out), [0.25, 0.75, 1.25]
        )

    def test_array_namespace_dispatch(self):
        dev = StrictHostBackend().from_host(np.zeros(2))
        assert array_namespace(np.zeros(2)) is np
        xp = array_namespace(dev)
        assert isinstance(xp.zeros(2), StrictHostArray)


class TestEnsembleParity:
    OPTS = dict(dt=2e-8, kernel="python")

    def run_vco(self, **overrides):
        opts = TransientOptions(**{**self.OPTS, **overrides})
        return simulate_transient_ensemble(
            vco_ensemble(), np.zeros((VCS.size, 4)), 0.0, 2e-6, opts
        )

    def test_explicit_numpy_is_bit_identical_to_default(self):
        default = self.run_vco()
        explicit = self.run_vco(backend="numpy")
        assert np.array_equal(default.x, explicit.x)
        assert default.stats["backend"]["name"] == "numpy"
        assert explicit.stats["backend"]["source"] == "option"

    def test_strict_backend_matches_numpy(self):
        # The strict backend runs NumPy numerics behind loud-transfer
        # wrappers, so agreement is exact; any implicit host round-trip
        # in the hot path would raise instead.
        host = self.run_vco()
        strict = self.run_vco(backend="strict")
        np.testing.assert_allclose(
            strict.x, host.x, rtol=1e-9, atol=1e-12
        )
        info = strict.stats["backend"]
        assert info["name"] == "strict"
        assert info["routing"] == "device-march"

    def test_stats_backend_reported_on_every_run(self):
        for overrides in ({}, {"backend": "numpy"}, {"backend": "strict"},
                          {"kernel": "auto"}):
            result = self.run_vco(**overrides)
            info = result.stats["backend"]
            assert set(info) >= {"requested", "source", "name",
                                 "routing", "reason"}
            assert info["routing"] in (
                "device-march", "compiled-kernel", "python-lockstep"
            )
            assert isinstance(info["reason"], str) and info["reason"]

    @pytest.mark.skipif(not probe_cupy(), reason="cupy not installed")
    def test_cupy_backend_matches_numpy(self):
        host = self.run_vco()
        gpu = self.run_vco(backend="cupy")
        np.testing.assert_allclose(gpu.x, host.x, rtol=1e-7, atol=1e-10)
        assert gpu.stats["backend"]["name"] == "cupy"


class TestLargeBatch:
    def test_large_b_lockstep_smoke(self):
        batch = 256
        ensemble = vdp_ensemble(batch)
        x0 = np.tile([2.0, 0.0], (batch, 1))
        result = simulate_transient_ensemble(
            ensemble, x0, 0.0, 1.0,
            TransientOptions(dt=0.02, kernel="python"),
        )
        assert result.x.shape[1:] == (batch, 2)
        stats = result.stats
        assert stats["scenarios"] == batch
        # Per-scenario convergence masks: every scenario carries its own
        # solver counters, and on this smooth problem all converge.
        per = stats["solver_per_scenario"]
        assert len(per) == batch
        assert all(entry["iterations"] > 0 for entry in per)
        assert stats["newton_failures"] == 0
        assert np.all(np.isfinite(result.x))

    def test_chunked_device_march_matches_host(self, monkeypatch):
        batch = 64
        monkeypatch.setenv("REPRO_XP_BLOCK", "16")
        ensemble = vdp_ensemble(batch)
        x0 = np.tile([2.0, 0.0], (batch, 1))
        opts = dict(dt=0.02, kernel="python")
        host = simulate_transient_ensemble(
            ensemble, x0, 0.0, 1.0, TransientOptions(**opts)
        )
        chunked = simulate_transient_ensemble(
            ensemble, x0, 0.0, 1.0,
            TransientOptions(backend="strict", **opts),
        )
        info = chunked.stats["backend"]
        assert info["chunks"] == 4
        np.testing.assert_allclose(
            chunked.x, host.x, rtol=1e-9, atol=1e-12
        )
        assert (
            len(chunked.stats["solver_per_scenario"])
            == len(host.stats["solver_per_scenario"])
        )


class TestShardsFromBackend:
    def _request(self, batch, **options):
        from repro import api

        ensemble = vdp_ensemble(batch)
        x0 = np.tile([2.0, 0.0], (batch, 1))
        return api.EnsembleRequest(
            dae=ensemble, x0=x0, t_start=0.0, t_stop=0.1,
            options=TransientOptions(dt=0.02, **options),
        )

    def test_python_kernel_shards_in_blocks_of_8(self):
        shards = self._request(20, kernel="python").shards()
        assert [s.dae.batch_size for s in shards] == [8, 8, 4]
        # Chunks carry their scenario slice of x0.
        assert shards[-1].x0.shape == (4, 2)

    def test_compiled_kernel_takes_larger_shards(self):
        assert self._request(60, kernel="auto").shards() is None
        shards = self._request(130, kernel="auto").shards()
        assert [s.dae.batch_size for s in shards] == [64, 64, 2]

    def test_device_backend_never_shards(self):
        request = self._request(300, kernel="python", backend="strict")
        assert request.shards() is None

    def test_merge_round_trips(self):
        from repro import api

        request = self._request(20, kernel="python")
        reference = api.run(request)
        merged = request.merge([api.run(s) for s in request.shards()])
        np.testing.assert_allclose(
            merged.x, reference.x, rtol=1e-9, atol=1e-12
        )
        assert merged.stats["backend"]["chunks"] == 3
        assert isinstance(request, api.EnsembleRequest)
