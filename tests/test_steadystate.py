"""Tests for DC, shooting and harmonic balance."""

import numpy as np
import pytest

from repro.circuits import Circuit, Resistor, VoltageSource
from repro.circuits.devices import Diode
from repro.circuits.waveforms import DC
from repro.dae import LinearRCDae
from repro.errors import ConvergenceError
from repro.steadystate import (
    dc_operating_point,
    estimate_period_from_transient,
    harmonic_balance_autonomous,
    harmonic_balance_forced,
    shooting_autonomous,
    shooting_periodic,
)
from repro.transient import TransientOptions, simulate_transient


class TestDcOperatingPoint:
    def test_linear_circuit(self):
        dae = LinearRCDae(resistance=2.0, amplitude=3.0, omega=1.0)
        x = dc_operating_point(dae, t0=0.0)
        # f(x) = b(0): v/R = 3 -> v = 6.
        np.testing.assert_allclose(x, [6.0], atol=1e-9)

    def test_diode_resistor(self):
        ckt = Circuit()
        ckt.add(VoltageSource("V1", "in", "0", DC(5.0)))
        ckt.add(Diode("D1", "in", "out"))
        ckt.add(Resistor("R1", "out", "0", 1e3))
        dae = ckt.to_dae()
        x = dc_operating_point(dae)
        v_in = x[dae.variable_names.index("v(in)")]
        v_out = x[dae.variable_names.index("v(out)")]
        assert np.isclose(v_in, 5.0)
        # Diode drop should be a few hundred mV.
        assert 4.0 < v_out < 5.0
        # KCL: diode current equals resistor current.
        diode = ckt.device("D1")
        assert np.isclose(diode.current(v_in - v_out), v_out / 1e3, rtol=1e-6)

    def test_oscillator_equilibrium(self, vdp):
        x = dc_operating_point(vdp)
        np.testing.assert_allclose(x, [0.0, 0.0], atol=1e-12)

    def test_vco_mechanical_equilibrium(self):
        from repro.circuits.library import MemsVcoDae, VcoParams

        params = VcoParams.vacuum()
        dae = MemsVcoDae(params, constant_control=True)
        x = dc_operating_point(dae)
        np.testing.assert_allclose(
            x[2], params.static_displacement(1.5), rtol=1e-9
        )

    def test_failure_raises_convergence_error(self):
        from repro.dae import FunctionDAE

        # f has no root: f(x) = exp(x) + 1, b = 0.
        impossible = FunctionDAE(
            1,
            q=lambda x: x,
            f=lambda x: np.array([np.exp(np.clip(x[0], -700, 700)) + 1.0]),
            b=lambda t: np.zeros(1),
            dq_dx=lambda x: np.eye(1),
            df_dx=lambda x: np.array(
                [[np.exp(np.clip(x[0], -700, 700))]]
            ),
        )
        with pytest.raises(ConvergenceError):
            dc_operating_point(impossible)


class TestPeriodEstimation:
    def test_estimates_vdp_period(self, vdp):
        result = simulate_transient(
            vdp, [2.0, 0.0], 0.0, 60.0,
            TransientOptions(integrator="trap", dt=0.02),
        )
        period = estimate_period_from_transient(result, key=0)
        expected = 2 * np.pi / vdp.small_mu_angular_frequency()
        assert abs(period - expected) / expected < 0.01

    def test_raises_without_oscillation(self):
        from repro.dae import ForcedDecayDae

        dae = ForcedDecayDae(rate=1.0)
        result = simulate_transient(
            dae, [1.0], 0.0, 5.0, TransientOptions(dt=0.05)
        )
        with pytest.raises(ConvergenceError):
            estimate_period_from_transient(result, key=0)


class TestShooting:
    def test_forced_rc_steady_state(self):
        dae = LinearRCDae(resistance=1.0, capacitance=1.0, amplitude=1.0,
                          omega=2 * np.pi)
        result = shooting_periodic(dae, [0.0], period=1.0,
                                   steps_per_period=200)
        np.testing.assert_allclose(
            result.x0[0], dae.steady_state_response(0.0), atol=1e-4
        )

    def test_forced_monodromy_stable(self):
        dae = LinearRCDae(resistance=1.0, capacitance=1.0, omega=2 * np.pi)
        result = shooting_periodic(dae, [0.0], period=1.0,
                                   steps_per_period=100)
        multipliers = np.abs(result.floquet_multipliers())
        # exp(-T/RC) = exp(-1) ~ 0.368
        np.testing.assert_allclose(multipliers, [np.exp(-1.0)], rtol=1e-2)

    def test_autonomous_vdp_period(self, vdp):
        settle = simulate_transient(
            vdp, [2.0, 0.0], 0.0, 60.0,
            TransientOptions(integrator="trap", dt=0.02),
        )
        guess = estimate_period_from_transient(settle, key=0)
        result = shooting_autonomous(
            vdp, settle.final_state(), guess,
            anchor_index=1, anchor_value=0.0,
        )
        expected = 2 * np.pi / vdp.small_mu_angular_frequency()
        assert abs(result.period - expected) / expected < 2e-3

    def test_autonomous_floquet_has_unit_multiplier(self, vdp):
        settle = simulate_transient(
            vdp, [2.0, 0.0], 0.0, 60.0,
            TransientOptions(integrator="trap", dt=0.02),
        )
        guess = estimate_period_from_transient(settle, key=0)
        result = shooting_autonomous(
            vdp, settle.final_state(), guess,
            anchor_index=1, anchor_value=0.0,
        )
        multipliers = np.abs(result.floquet_multipliers())
        # Autonomous orbit: one multiplier at 1 (phase), one inside (stable).
        assert np.isclose(multipliers.max(), 1.0, atol=0.02)
        assert multipliers.min() < 0.9

    def test_sample_orbit_shape(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        from repro.steadystate import ShootingResult

        result = ShootingResult(hb.samples[0], hb.period, np.eye(2), 0)
        orbit = result.sample_orbit(dae, 11, steps_per_period=200)
        assert orbit.shape == (11, 2)
        np.testing.assert_allclose(orbit[0], hb.samples[0], atol=1e-6)


class TestHarmonicBalanceForced:
    def test_rc_lowpass_matches_closed_form(self):
        dae = LinearRCDae(resistance=2.0, capacitance=0.3, amplitude=1.0,
                          omega=2 * np.pi)
        hb = harmonic_balance_forced(dae, period=1.0, num_samples=15)
        grid = np.arange(15) / 15
        np.testing.assert_allclose(
            hb.samples[:, 0], dae.steady_state_response(grid), atol=1e-9
        )

    def test_interpolant_evaluation(self):
        dae = LinearRCDae(omega=2 * np.pi)
        hb = harmonic_balance_forced(dae, period=1.0, num_samples=15)
        t = np.linspace(0, 1, 37)
        np.testing.assert_allclose(
            hb.evaluate(t)[:, 0], dae.steady_state_response(t), atol=1e-9
        )

    def test_rejects_wrong_initial_shape(self):
        dae = LinearRCDae(omega=2 * np.pi)
        with pytest.raises(ValueError, match="initial"):
            harmonic_balance_forced(
                dae, period=1.0, num_samples=15, initial=np.zeros((3, 1))
            )

    def test_diode_rectifier_dc_shift(self):
        """A driven diode-RC rectifier's HB solution has positive mean."""
        from repro.circuits.library import rc_diode_mixer_circuit

        dae = rc_diode_mixer_circuit(
            lo_amplitude=0.0, rf_amplitude=0.3, rf_frequency=1e4
        ).to_dae()
        x_dc = dc_operating_point(dae)
        hb = harmonic_balance_forced(
            dae, period=1e-4, num_samples=31,
            initial=np.tile(x_dc, (31, 1)),
        )
        v_out = hb.samples[:, dae.variable_names.index("v(out)")]
        assert v_out.mean() > 0.01


class TestHarmonicBalanceAutonomous:
    def test_vdp_frequency(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        expected = vdp.small_mu_angular_frequency(
        ) if False else dae.small_mu_angular_frequency() / (2 * np.pi)
        assert abs(hb.frequency - expected) / expected < 2e-3

    def test_vdp_amplitude_near_two(self, vdp_limit_cycle):
        _dae, hb = vdp_limit_cycle
        amplitude = hb.samples[:, 0].max() - hb.samples[:, 0].min()
        assert abs(amplitude - 4.0) < 0.1  # peak-to-peak ~ 2*2

    def test_phase_condition_satisfied(self, vdp_limit_cycle):
        from repro.phase_conditions import FourierImagAnchor

        _dae, hb = vdp_limit_cycle
        condition = FourierImagAnchor(variable=0)  # the default (eq. 20)
        assert abs(condition.residual(hb.samples)) < 1e-6

    def test_rejects_bad_initial_shape(self, vdp):
        with pytest.raises(ValueError, match="initial"):
            harmonic_balance_autonomous(
                vdp, 0.16, np.zeros((5, 2)), num_samples=15
            )

    def test_solution_satisfies_time_domain_ode(self, vdp_limit_cycle):
        """Spot-check: HB samples satisfy the ODE in collocation form."""
        from repro.spectral import fourier_differentiation_matrix

        dae, hb = vdp_limit_cycle
        num = hb.num_samples
        diffmat = fourier_differentiation_matrix(num, period=1.0)
        nu = hb.frequency
        dq = nu * diffmat @ hb.samples  # q = x for vdP
        residual = dq + np.stack([dae.f(s) for s in hb.samples])
        assert np.max(np.abs(residual)) < 1e-6
