"""Tests for the unified collocation solver core.

Covers the :class:`repro.linalg.solver_core.SolverCore` policy machinery
itself (stats accounting against a hand-instrumented run, parameter-jump
invalidation, the threaded assembler refresh) and the chord-vs-full
equivalence of every ported call site: both envelope engines, forced and
autonomous harmonic balance, both quasiperiodic solvers and the DC
operating point.
"""

import numpy as np
import pytest

from repro.constants import TWO_PI
from repro.dae import LinearRCDae
from repro.linalg.lu_cache import ReusableLUSolver
from repro.linalg.newton import NewtonOptions
from repro.linalg.solver_core import (
    CollocationSystem,
    FunctionSystem,
    SolverCore,
    SolverCoreOptions,
    SolverStats,
)
from repro.mpde import additive_two_tone_forcing
from repro.steadystate import (
    dc_operating_point,
    harmonic_balance_autonomous,
    harmonic_balance_forced,
)
from repro.steadystate.dc import DcOptions


def quadratic_system(n=3):
    """Small well-conditioned nonlinear system with a known root."""
    a = np.diag(np.arange(2.0, 2.0 + n))

    def residual(x):
        return a @ x + 0.1 * x**3 - np.ones(n)

    def jacobian(x):
        return a + np.diag(0.3 * x**2)

    return residual, jacobian


class CubicRCDae(LinearRCDae):
    """RC low-pass with a cubic conductance — minimally nonlinear, so the
    collocation Jacobian actually changes between Newton iterates."""

    def f(self, x):
        return np.array([x[0] / self.resistance + 0.5 * x[0] ** 3])

    def df_dx(self, x):
        return np.array([[1.0 / self.resistance + 1.5 * x[0] ** 2]])


def forced_vdp(base_frequency, amp=0.5):
    """Van der Pol with slow additive forcing (drives real Newton work)."""
    from repro.dae import VanDerPolDae

    slow_freq = base_frequency / 40.0

    class RampedVdp(VanDerPolDae):
        def b(self, t):
            return np.array([0.0, amp * np.sin(TWO_PI * slow_freq * t)])

        def b_batch(self, times):
            times = np.asarray(times, dtype=float).ravel()
            out = np.zeros((times.size, 2))
            out[:, 1] = amp * np.sin(TWO_PI * slow_freq * times)
            return out

    return RampedVdp(mu=0.2)


def rc_two_tone(f1=50.0, f2=1.0, nonlinear=False):
    cls = CubicRCDae if nonlinear else LinearRCDae
    dae = cls(resistance=1.0, capacitance=0.02)

    def fast(t1):
        return np.array([np.cos(TWO_PI * f1 * t1)])

    def slow(t2):
        return np.array([0.5 * np.cos(TWO_PI * f2 * t2)])

    forcing = additive_two_tone_forcing(fast, slow, 1.0 / f1, 1.0 / f2, 1)
    return dae, forcing


class TestSolverCorePolicy:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            SolverCore(SolverCoreOptions(mode="quasi"))

    def test_rejects_unknown_linear_solver(self):
        with pytest.raises(ValueError, match="linear_solver"):
            SolverCore(SolverCoreOptions(linear_solver="cholesky"))

    def test_custom_linear_solver_implies_full_mode(self):
        core = SolverCore(SolverCoreOptions(
            mode="chord", linear_solver=ReusableLUSolver()
        ))
        assert core.mode == "full"

    def test_chord_mode_reported(self):
        assert SolverCore(SolverCoreOptions(mode="chord")).mode == "chord"

    def test_full_solve_matches_root(self):
        residual, jacobian = quadratic_system()
        core = SolverCore()
        result = core.solve(FunctionSystem(residual, jacobian), np.zeros(3))
        assert result.converged
        np.testing.assert_allclose(residual(result.x), 0.0, atol=1e-9)

    def test_chord_solve_matches_full(self):
        residual, jacobian = quadratic_system()
        full = SolverCore().solve(
            FunctionSystem(residual, jacobian), np.zeros(3)
        )
        chord = SolverCore(SolverCoreOptions(mode="chord")).solve(
            FunctionSystem(residual, jacobian), np.zeros(3)
        )
        assert chord.converged
        np.testing.assert_allclose(chord.x, full.x, atol=1e-8)

    def test_chord_carries_factorization_across_solves(self):
        residual, jacobian = quadratic_system()
        core = SolverCore(SolverCoreOptions(mode="chord"))
        system = FunctionSystem(residual, jacobian)
        core.solve(system, np.zeros(3))
        first = core.stats.factorizations
        # Re-solving from a nearby point reuses the stored factors.
        core.solve(system, core.solve(system, np.zeros(3)).x + 1e-3)
        assert core.stats.factorizations == first

    def test_note_parameters_invalidates_on_jump(self):
        residual, jacobian = quadratic_system()
        core = SolverCore(SolverCoreOptions(mode="chord"))
        system = FunctionSystem(residual, jacobian)
        core.note_parameters(h=1.0)
        core.solve(system, np.zeros(3))
        baseline = core.stats.factorizations
        core.note_parameters(h=1.01)  # smooth drift: factors kept
        core.solve(system, np.full(3, 0.01))
        assert core.stats.factorizations == baseline
        core.note_parameters(h=10.0)  # jump: factors dropped
        core.solve(system, np.full(3, 0.01))
        assert core.stats.factorizations == baseline + 1

    def test_threads_pushed_into_system_assembler(self):
        """options.threads must reach the system's exposed assembler."""
        from repro.linalg.collocation import CollocationJacobianAssembler

        residual, jacobian = quadratic_system()
        system = FunctionSystem(residual, jacobian)
        system.assembler = CollocationJacobianAssembler(3, 1)
        core = SolverCore(SolverCoreOptions(threads=5))
        core.solve(system, np.zeros(3))
        assert system.assembler.threads == 5

    def test_function_system_structure_report(self):
        system = FunctionSystem(
            lambda z: z, lambda z: np.eye(z.size), structure={"size": 4}
        )
        assert system.structure() == {"size": 4}
        assert CollocationSystem().structure() == {}


class TestStatsAccounting:
    def test_counters_match_hand_instrumented_run(self):
        """SolverCore's uniform counters must agree with direct counting."""
        residual, jacobian = quadratic_system()
        calls = {"residual": 0, "jacobian": 0}

        class Counting(CollocationSystem):
            def residual(self, z):
                calls["residual"] += 1
                return residual(z)

            def jacobian(self, z):
                calls["jacobian"] += 1
                return jacobian(z)

        core = SolverCore()
        result = core.solve(Counting(), np.zeros(3))
        stats = core.stats
        assert stats.solves == 1
        assert stats.iterations == result.iterations
        assert stats.residual_evaluations == calls["residual"]
        assert stats.jacobian_refreshes == calls["jacobian"]
        # Full Newton through ReusableLUSolver: every iteration's dense
        # solve factors once (small-matrix direct path).
        assert stats.factorizations == core._linear_solver.stats[
            "factorizations"
        ]
        assert stats.factorizations >= result.iterations
        assert stats.fallbacks == 0
        assert stats.wall_time_s > 0.0

    def test_chord_counters_accumulate_across_solves(self):
        residual, jacobian = quadratic_system()
        core = SolverCore(SolverCoreOptions(mode="chord"))
        system = FunctionSystem(residual, jacobian)
        r1 = core.solve(system, np.zeros(3))
        r2 = core.solve(system, r1.x + 1e-3)
        assert core.stats.solves == 2
        assert core.stats.iterations == r1.iterations + r2.iterations

    def test_as_dict_and_summary_round_trip(self):
        stats = SolverStats(solves=2, iterations=7, factorizations=1)
        rebuilt = SolverStats(**stats.as_dict())
        assert rebuilt == stats
        text = rebuilt.summary()
        assert "7 Newton iterations" in text and "1 factorizations" in text


class TestReusableLUStats:
    def test_sparse_factorization_counted_once_per_value_set(self):
        import scipy.sparse as sp

        solver = ReusableLUSolver()
        matrix = sp.csc_matrix(np.diag([2.0, 3.0, 4.0]))
        rhs = np.ones(3)
        solver(matrix, rhs)
        solver(matrix, rhs)  # identical values: no refactorisation
        assert solver.stats["factorizations"] == 1
        assert solver.stats["solves"] == 2


class TestThreadedRefresh:
    def test_threaded_refresh_bit_identical(self):
        """threads > 1 must reproduce the serial refresh exactly."""
        from repro.linalg.collocation import CollocationJacobianAssembler

        rng = np.random.default_rng(7)
        m, n = 15, 3
        coupling = rng.standard_normal((m, m))
        dq = rng.standard_normal((m, n, n))
        df = rng.standard_normal((m, n, n))
        serial = CollocationJacobianAssembler(m, n)
        threaded = CollocationJacobianAssembler(m, n, threads=4)
        threaded._THREAD_MIN_ENTRIES = 1  # force the threaded path
        a = serial.refresh(coupling, dq, diag_inner=df,
                           coupling_scale=1.7, outer_coeff=0.55,
                           diag_outer=dq * (1.0 / 0.3))
        b = threaded.refresh(coupling, dq, diag_inner=df,
                             coupling_scale=1.7, outer_coeff=0.55,
                             diag_outer=dq * (1.0 / 0.3))
        assert (a != b).nnz == 0
        np.testing.assert_array_equal(a.toarray(), b.toarray())

    def test_small_refresh_stays_serial(self):
        from repro.linalg.collocation import CollocationJacobianAssembler

        assembler = CollocationJacobianAssembler(3, 1, threads=8)
        coupling = np.arange(9.0).reshape(3, 3)
        dq = np.ones((3, 1, 1))
        assembler.refresh(coupling, dq)
        assert assembler._executor is None  # below _THREAD_MIN_ENTRIES


def _solver_distance(a, b):
    return float(np.max(np.abs(np.asarray(a) - np.asarray(b))))


class TestChordVsFullPerSolver:
    """Chord and full Newton must agree within solver tolerance on every
    ported call site, with chord factorising measurably less on the
    stepped engines."""

    def test_wampde_envelope(self, vdp_limit_cycle):
        from repro.wampde import WampdeEnvelopeOptions, solve_wampde_envelope

        _dae, hb = vdp_limit_cycle
        dae = forced_vdp(hb.frequency)
        runs = {}
        for mode in ("full", "chord"):
            env = solve_wampde_envelope(
                dae, hb.samples, hb.frequency, 0.0, 20.0, 40,
                WampdeEnvelopeOptions(newton_mode=mode),
            )
            runs[mode] = env
        assert _solver_distance(
            runs["full"].omega, runs["chord"].omega
        ) < 1e-6 * hb.frequency
        assert _solver_distance(
            runs["full"].samples, runs["chord"].samples
        ) < 1e-6
        full_facts = runs["full"].stats["solver"]["factorizations"]
        chord_facts = runs["chord"].stats["solver"]["factorizations"]
        # The headline of the port: the chord envelope factorises an order
        # of magnitude less across the march (ISSUE acceptance criterion).
        assert chord_facts < full_facts
        assert chord_facts <= max(full_facts // 5, 2)

    def test_mpde_envelope(self):
        from repro.mpde import solve_mpde_envelope
        from repro.mpde.envelope import MpdeEnvelopeOptions

        dae, forcing = rc_two_tone(nonlinear=True)
        runs = {}
        for mode in ("full", "chord"):
            runs[mode] = solve_mpde_envelope(
                dae, forcing, np.zeros((9, 1)), 0.0, 1.0, 100,
                MpdeEnvelopeOptions(newton_mode=mode),
            )
        assert _solver_distance(
            runs["full"].samples, runs["chord"].samples
        ) < 1e-7
        assert (
            runs["chord"].stats["solver"]["factorizations"]
            < runs["full"].stats["solver"]["factorizations"]
        )

    def test_harmonic_balance_forced(self):
        dae = LinearRCDae(resistance=2.0, capacitance=0.3, amplitude=1.0,
                          omega=TWO_PI)
        results = {
            mode: harmonic_balance_forced(
                dae, period=1.0, num_samples=15,
                solver_options=SolverCoreOptions(mode=mode),
            )
            for mode in ("full", "chord")
        }
        assert _solver_distance(
            results["full"].samples, results["chord"].samples
        ) < 1e-9
        assert results["chord"].stats["factorizations"] >= 1

    def test_hb_honours_solver_options_newton(self):
        """Newton budgets set on solver_options must not be discarded."""
        from repro.errors import ConvergenceError

        dae = CubicRCDae(resistance=2.0, capacitance=0.3, amplitude=1.0,
                         omega=TWO_PI)
        # Loose reference run needs several iterations...
        reference = harmonic_balance_forced(dae, period=1.0, num_samples=15)
        assert reference.newton_iterations > 1
        # ... so a 1-iteration budget carried via solver_options must fail.
        with pytest.raises(ConvergenceError):
            harmonic_balance_forced(
                dae, period=1.0, num_samples=15,
                solver_options=SolverCoreOptions(
                    newton=NewtonOptions(max_iterations=1)
                ),
            )

    def test_harmonic_balance_autonomous(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        results = {
            mode: harmonic_balance_autonomous(
                dae, hb.frequency, hb.samples, num_samples=25,
                solver_options=SolverCoreOptions(mode=mode),
            )
            for mode in ("full", "chord")
        }
        assert abs(
            results["full"].frequency - results["chord"].frequency
        ) < 1e-7 * hb.frequency
        assert _solver_distance(
            results["full"].samples, results["chord"].samples
        ) < 1e-6

    def test_mpde_quasiperiodic(self):
        from repro.mpde import solve_mpde_quasiperiodic
        from repro.mpde.quasiperiodic import MpdeQuasiperiodicOptions

        dae, forcing = rc_two_tone()
        results = {
            mode: solve_mpde_quasiperiodic(
                dae, forcing, num_t1=9, num_t2=9,
                options=MpdeQuasiperiodicOptions(newton_mode=mode),
            )
            for mode in ("full", "chord")
        }
        assert _solver_distance(
            results["full"].samples, results["chord"].samples
        ) < 1e-8
        assert results["chord"].stats["solves"] == 1

    def test_wampde_quasiperiodic(self, vdp_limit_cycle):
        from repro.wampde import solve_wampde_quasiperiodic
        from repro.wampde.quasiperiodic import WampdeQuasiperiodicOptions

        dae, hb = vdp_limit_cycle
        results = {
            mode: solve_wampde_quasiperiodic(
                dae, 10.0, hb.samples, hb.frequency, num_t2=5,
                options=WampdeQuasiperiodicOptions(newton_mode=mode),
            )
            for mode in ("full", "chord")
        }
        assert _solver_distance(
            results["full"].omega, results["chord"].omega
        ) < 1e-6 * hb.frequency
        assert _solver_distance(
            results["full"].samples, results["chord"].samples
        ) < 1e-6

    def test_dc_operating_point(self):
        from repro.circuits.library import rc_diode_mixer_circuit

        dae = rc_diode_mixer_circuit().to_dae()
        x_full = dc_operating_point(
            dae, options=DcOptions(newton_mode="full")
        )
        x_chord = dc_operating_point(
            dae, options=DcOptions(newton_mode="chord")
        )
        assert _solver_distance(x_full, x_chord) < 1e-8


class TestEnvelopeGmresOption:
    def test_wampde_envelope_with_gmres_linear_solver(self, vdp_limit_cycle):
        """The named 'gmres' linear solver (frozen-LU preconditioner) must
        reproduce the direct-LU envelope within solver tolerance."""
        from repro.wampde import WampdeEnvelopeOptions, solve_wampde_envelope

        dae, hb = vdp_limit_cycle
        lu = solve_wampde_envelope(
            dae, hb.samples, hb.frequency, 0.0, 5.0, 10,
            WampdeEnvelopeOptions(),
        )
        gmres = solve_wampde_envelope(
            dae, hb.samples, hb.frequency, 0.0, 5.0, 10,
            WampdeEnvelopeOptions(linear_solver="gmres"),
        )
        assert _solver_distance(lu.omega, gmres.omega) < 1e-6 * hb.frequency
        assert _solver_distance(lu.samples, gmres.samples) < 1e-6


class TestChordFallback:
    def test_failed_chord_falls_back_to_full_newton(self):
        """A pathologically stale chord start must still converge (via the
        damped full-Newton fallback) and count the fallback."""
        calls = {"n": 0}

        def residual(x):
            return np.array([np.arctan(x[0]) - 0.2])

        def jacobian(x):
            calls["n"] += 1
            # First Jacobian is garbage (nearly singular): the chord policy
            # iterates uphill with it, refreshes, and ultimately the core
            # falls back to damped full Newton.
            if calls["n"] == 1:
                return np.array([[1e-14]])
            return np.array([[1.0 / (1.0 + x[0] ** 2)]])

        core = SolverCore(SolverCoreOptions(
            mode="chord",
            newton=NewtonOptions(atol=1e-12, max_iterations=8),
        ))
        result = core.solve(
            FunctionSystem(residual, jacobian), np.array([5.0])
        )
        assert result.converged
        np.testing.assert_allclose(result.x[0], np.tan(0.2), atol=1e-9)
        # The chord iterations burned before the fallback must be counted
        # on top of the fallback's own (result.iterations).
        assert core.stats.fallbacks == 1
        chord_burn = core._chord.stats["iterations"]
        assert chord_burn > 0
        assert core.stats.iterations == chord_burn + result.iterations


class TestFallbackFactorAdoption:
    """The chord policy must *adopt* the damped full-Newton fallback's
    freshly factorised Jacobian instead of discarding it (ROADMAP item)."""

    @staticmethod
    def _linear_sparse_problem(matrix, rhs):
        import scipy.sparse as sp

        csc = sp.csc_matrix(matrix)

        def residual(z):
            return csc @ z - rhs

        def jacobian(z):
            return csc.copy()

        return residual, jacobian

    @staticmethod
    def _core_after_fallback(rng):
        """Drive a chord core through refactor-then-fail into the fallback.

        max_iterations=1 lets full Newton solve the linear system exactly
        while the chord attempt (one stale step, internal refresh, budget
        exhausted) is forced onto the fallback path.
        """
        n = 40
        a1 = np.diag(np.arange(2.0, 2.0 + n)) \
            + 0.1 * rng.standard_normal((n, n))
        core = SolverCore(SolverCoreOptions(
            mode="chord",
            newton=NewtonOptions(atol=1e-9, max_iterations=1,
                                 raise_on_failure=False),
        ))
        res1, jac1 = TestFallbackFactorAdoption._linear_sparse_problem(
            a1, np.ones(n)
        )
        assert core.solve(FunctionSystem(res1, jac1), np.zeros(n)).converged
        assert core.stats.fallbacks == 0

        # A very different matrix: the stale factors cannot contract, the
        # single-iteration budget expires, the fallback solves it fresh.
        a2 = 3.0 * a1 + np.diag(np.arange(n))
        res2, jac2 = TestFallbackFactorAdoption._linear_sparse_problem(
            a2, rng.standard_normal(n)
        )
        result = core.solve(FunctionSystem(res2, jac2), np.zeros(n))
        assert result.converged
        assert core.stats.fallbacks == 1
        return core, res2, jac2, a2

    def test_chord_reuses_adopted_factors_after_fallback(self, rng):
        core, res2, jac2, a2 = self._core_after_fallback(rng)
        before = core.stats.factorizations

        # Same matrix, new right-hand side: the adopted fallback factors
        # are exact, so the next chord solve must not refactorise at all —
        # one fewer refactorisation on the fallback path than the old
        # discard-and-refresh behaviour.
        rhs3 = rng.standard_normal(a2.shape[0])
        res3, jac3 = self._linear_sparse_problem(a2, rhs3)
        result = core.solve(FunctionSystem(res3, jac3), np.zeros(a2.shape[0]))
        assert result.converged
        np.testing.assert_allclose(result.x, np.linalg.solve(a2, rhs3),
                                   atol=1e-7)
        assert core.stats.factorizations == before
        assert core.stats.fallbacks == 1  # no new fallback either

    def test_export_frozen_snapshots(self, rng):
        import scipy.sparse as sp

        from repro.linalg.lu_cache import ReusableLUSolver as Solver

        solver = Solver()
        assert solver.export_frozen() is None  # nothing factored yet

        n = 40
        a = sp.csc_matrix(np.diag(np.arange(1.0, 1.0 + n)))
        b = rng.standard_normal(n)
        solver(a, b)
        frozen = solver.export_frozen()
        assert frozen is not None
        np.testing.assert_allclose(frozen.solve(b), b / np.arange(1.0, 1.0 + n),
                                   atol=1e-12)

        dense = Solver()
        a_dense = np.diag(np.arange(1.0, 1.0 + n))
        dense(a_dense, b)
        frozen_dense = dense.export_frozen()
        np.testing.assert_allclose(frozen_dense.solve(b),
                                   np.linalg.solve(a_dense, b), atol=1e-12)

        small = Solver()
        small(np.eye(4), np.ones(4))  # small-dense direct path: no factors
        assert small.export_frozen() is None


class TestFallbackStartPoint:
    def test_full_mode_fallback_requires_fallback_z0(self):
        calls = {"n": 0}

        def residual(z):
            calls["n"] += 1
            # Non-contracting plateau from the bad start, trivial from the
            # good one.
            if abs(z[0]) > 50.0:
                return np.array([1e6])
            return z - 1.0

        def jacobian(z):
            return np.eye(1)

        opts = SolverCoreOptions(
            mode="full",
            newton=NewtonOptions(max_iterations=3, max_step_halvings=2,
                                 raise_on_failure=False),
        )
        bad = np.array([100.0])
        good = np.array([0.0])
        # Without a fallback point the failure is returned as-is.
        result = SolverCore(opts).solve(
            FunctionSystem(residual, jacobian), bad
        )
        assert not result.converged
        # With one, the fallback rescues the solve (and is counted).
        core = SolverCore(opts)
        result = core.solve(
            FunctionSystem(residual, jacobian), bad, fallback_z0=good
        )
        assert result.converged
        np.testing.assert_allclose(result.x, [1.0], atol=1e-8)
        assert core.stats.fallbacks == 1


class TestAutoThreadDefault:
    def test_large_assembler_threads_by_default(self):
        from repro.linalg.collocation import CollocationJacobianAssembler

        # Comfortably past _THREAD_AUTO_ENTRIES candidate off-entries.
        big = CollocationJacobianAssembler(300, 16)
        assert big.threads > 1 or (__import__("os").cpu_count() or 1) == 1
        # Small refreshes stay serial under the auto policy.
        small = CollocationJacobianAssembler(5, 2)
        assert small.threads == 1
        # The explicit opt-out still wins.
        opted_out = CollocationJacobianAssembler(300, 16, threads=1)
        assert opted_out.threads == 1

    def test_explicit_threads_1_opt_out_pushed_by_core(self):
        from repro.linalg.collocation import CollocationJacobianAssembler

        residual, jacobian = quadratic_system()
        system = FunctionSystem(residual, jacobian)
        system.assembler = CollocationJacobianAssembler(3, 1, threads=7)
        core = SolverCore(SolverCoreOptions(threads=1))
        core.solve(system, np.zeros(3))
        assert system.assembler.threads == 1
