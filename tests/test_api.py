"""Tests for the unified request/result API (:mod:`repro.api`).

Covers the serialization protocol (``to_dict``/``from_dict`` round-trips
bit-identically), the content-key scheme (construction-order
independence for circuits), the ``run()`` dispatcher, warm-start
adoption, and CLI-vs-API parity: the ``vco`` subcommand and a
programmatic :class:`EnvelopeRequest` must produce bit-identical
trajectories.
"""

import numpy as np
import pytest

from repro import api
from repro.api.serialize import SerializationError, to_jsonable
from repro.circuits.devices import Capacitor, CurrentSource, Resistor
from repro.circuits.netlist import Circuit
from repro.dae import VanDerPolDae
from repro.service.keys import content_key
from repro.transient import TransientOptions, simulate_transient


def _rc_circuit(order):
    """An RC one-pole built with its devices added in ``order``."""
    devices = {
        "R1": Resistor("R1", "n1", "0", resistance=1e3),
        "C1": Capacitor("C1", "n1", "0", capacitance=1e-9),
        "I1": CurrentSource("I1", "0", "n1", waveform=1e-3),
    }
    circuit = Circuit("rc")
    for name in order:
        circuit.add(devices[name])
    return circuit


def _vdp_transient_request(t_stop=4.0):
    return api.TransientRequest(
        dae=VanDerPolDae(mu=0.2), x0=np.array([2.0, 0.0]),
        t_start=0.0, t_stop=t_stop,
        options=TransientOptions(integrator="trap", dt=0.02),
    )


class TestResultRoundTrip:
    def test_transient_result_bit_identical(self):
        result = api.run(_vdp_transient_request())
        clone = type(result).from_dict(result.to_dict())
        assert np.array_equal(clone.t, result.t)
        assert np.array_equal(clone.x, result.x)
        assert clone.variable_names == result.variable_names
        # stats carries arrays (the warm-start snapshot); compare the
        # canonical serial forms instead of dict equality.
        from repro.api.serialize import canonical_json

        assert (canonical_json(to_jsonable(clone.stats))
                == canonical_json(to_jsonable(result.stats)))

    def test_result_has_stats_dict(self):
        result = api.run(_vdp_transient_request())
        assert isinstance(result.stats, dict)
        assert "solver" in result.stats

    def test_request_round_trip(self):
        request = api.EnvelopeRequest(
            dae=VanDerPolDae(mu=0.2), t2_stop=10.0, num_steps=20,
            initial_samples=np.ones((25, 2)), omega0=0.16,
        )
        clone = api.request_from_dict(request.to_dict())
        assert isinstance(clone, api.EnvelopeRequest)
        assert np.array_equal(clone.initial_samples,
                              request.initial_samples)
        assert clone.omega0 == request.omega0
        assert clone.num_steps == request.num_steps

    def test_request_from_dict_rejects_non_request(self):
        with pytest.raises(SerializationError, match="AnalysisRequest"):
            api.request_from_dict(to_jsonable({"a": 1}))

    def test_lambda_factory_not_serializable(self):
        request = api.SweepRequest(
            dae_factory=lambda v: VanDerPolDae(mu=v),
            values=np.array([0.1, 0.2]), period_guess=6.28,
        )
        assert request.cache_key() is None
        with pytest.raises(SerializationError):
            request.to_dict()


class TestContentKeys:
    def test_circuit_key_order_independent(self):
        key_a = content_key(_rc_circuit(["R1", "C1", "I1"]))
        key_b = content_key(_rc_circuit(["I1", "R1", "C1"]))
        assert key_a is not None  # guard: None == None is not a pass
        assert key_a == key_b

    def test_circuit_key_sees_parameter_change(self):
        base = content_key(_rc_circuit(["R1", "C1", "I1"]))
        other = Circuit("rc")
        other.add(Resistor("R1", "n1", "0", resistance=2e3))
        other.add(Capacitor("C1", "n1", "0", capacitance=1e-9))
        other.add(CurrentSource("I1", "0", "n1", waveform=1e-3))
        assert base is not None
        assert content_key(other) != base

    def test_scope_namespaces_keys(self):
        circuit = _rc_circuit(["R1", "C1", "I1"])
        assert (content_key(circuit, scope="request/x")
                != content_key(circuit, scope="seed/x"))

    def test_request_keys_stable_across_instances(self):
        assert (_vdp_transient_request().cache_key()
                == _vdp_transient_request().cache_key())
        assert _vdp_transient_request().cache_key() is not None

    def test_different_windows_different_cache_same_seed(self):
        a = api.EnvelopeRequest(
            dae=VanDerPolDae(mu=0.2), t2_stop=10.0, num_steps=20,
            unforced_dae=VanDerPolDae(mu=0.2), period_guess=6.28,
        )
        b = api.EnvelopeRequest(
            dae=VanDerPolDae(mu=0.2), t2_stop=15.0, num_steps=30,
            unforced_dae=VanDerPolDae(mu=0.2), period_guess=6.28,
        )
        assert a.cache_key() != b.cache_key()
        assert a.seed_key() is not None
        assert a.seed_key() == b.seed_key()


class TestRunDispatcher:
    def test_rejects_non_request(self):
        with pytest.raises(TypeError, match="AnalysisRequest"):
            api.run({"kind": "transient"})

    def test_transient_request_matches_engine_call(self):
        request = _vdp_transient_request()
        via_api = api.run(request)
        direct = simulate_transient(
            VanDerPolDae(mu=0.2), np.array([2.0, 0.0]), 0.0, 4.0,
            TransientOptions(integrator="trap", dt=0.02),
        )
        assert np.array_equal(via_api.t, direct.t)
        assert np.array_equal(via_api.x, direct.x)

    def test_hb_request_rejects_unknown_mode(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="mode"):
            api.run(api.HBRequest(dae=VanDerPolDae(mu=0.2), mode="wrong"))


class TestWarmStart:
    def test_transient_warm_run_skips_factorization(self):
        request = _vdp_transient_request()
        cold = api.run(request)
        assert cold.stats["solver"]["factorizations"] >= 1
        seed = request.extract_warm_start(cold)
        assert seed is not None
        warm = api.run(
            api.TransientRequest(
                dae=VanDerPolDae(mu=0.2), x0=None, t_start=4.0, t_stop=8.0,
                options=TransientOptions(integrator="trap", dt=0.02),
            ),
            warm_start=seed,
        )
        # The warm run continues from the cold run's final state and
        # adopts its frozen factorisation: zero new factorizations.
        assert warm.stats["solver"]["factorizations"] == 0
        assert np.array_equal(warm.x[0], cold.x[-1])

    def test_envelope_seed_skips_initial_condition(self):
        request = api.EnvelopeRequest(
            dae=VanDerPolDae(mu=0.2), t2_stop=10.0, num_steps=20,
            unforced_dae=VanDerPolDae(mu=0.2), period_guess=6.28,
        )
        cold = api.run(request)
        seed = request.extract_warm_start(cold)
        assert seed.samples is not None and seed.omega0 is not None
        warm = api.run(request, warm_start=seed)
        # Same oscillator, same grid: the seeded solve lands on the same
        # envelope within solver tolerance.
        np.testing.assert_allclose(warm.omega, cold.omega, rtol=1e-6)


class TestCliApiParity:
    def test_vco_csv_bit_identical_with_api(self, capsys, tmp_path):
        """The CLI and a hand-built EnvelopeRequest agree to the bit."""
        from repro.circuits.library import MemsVcoDae, T_NOMINAL, VcoParams
        from repro.cli import main
        from repro.wampde import WampdeEnvelopeOptions

        cli_dir = tmp_path / "cli"
        cli_dir.mkdir()
        assert main([
            "vco", "--variant", "vacuum",
            "--horizon", "5e-6", "--steps", "50", "--csv", str(cli_dir),
        ]) == 0
        capsys.readouterr()

        params = VcoParams.vacuum()
        env = api.run(api.EnvelopeRequest(
            dae=MemsVcoDae(params), t2_start=0.0, t2_stop=5e-6,
            num_steps=50,
            unforced_dae=MemsVcoDae(params, constant_control=True),
            num_t1=25, period_guess=T_NOMINAL,
            options=WampdeEnvelopeOptions(),
        ))
        from repro.utils import write_csv

        api_dir = tmp_path / "api"
        api_dir.mkdir()
        write_csv(api_dir / "vco_vacuum_frequency.csv",
                  ["t2_s", "frequency_hz"], [env.t2, env.omega])
        assert ((cli_dir / "vco_vacuum_frequency.csv").read_bytes()
                == (api_dir / "vco_vacuum_frequency.csv").read_bytes())

    def test_workers_flag_parsed(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["vco", "--workers", "4"])
        assert args.workers == 4
