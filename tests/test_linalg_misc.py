"""Tests for bordered systems, sparse tools, GMRES, Jacobian checking."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConvergenceError
from repro.linalg import (
    BorderedSystem,
    DirectLinearSolver,
    GmresLinearSolver,
    block_diagonal_expand,
    finite_difference_jacobian,
    jacobian_error,
    kron_diffmat,
)
from repro.spectral import fourier_differentiation_matrix


class TestBorderedSystem:
    def test_solution_matches_dense(self, rng):
        n, k = 6, 2
        core = rng.normal(size=(n, n)) + 5 * np.eye(n)
        cols = rng.normal(size=(n, k))
        rows = rng.normal(size=(k, n))
        corner = rng.normal(size=(k, k)) + 3 * np.eye(k)
        system = BorderedSystem(sp.csr_matrix(core), cols, rows, corner)
        rhs = rng.normal(size=n + k)
        solution = system.solve(rhs)
        full = np.block([[core, cols], [rows, corner]])
        np.testing.assert_allclose(solution, np.linalg.solve(full, rhs), atol=1e-9)

    def test_single_border(self, rng):
        n = 4
        core = np.eye(n) * 2.0
        col = rng.normal(size=(n, 1))
        row = rng.normal(size=(1, n))
        system = BorderedSystem(core, col, row, [[1.0]])
        assert system.size == n + 1
        rhs = np.ones(n + 1)
        solution = system.solve(rhs)
        full = np.block([[core, col], [row, np.array([[1.0]])]])
        np.testing.assert_allclose(solution, np.linalg.solve(full, rhs), atol=1e-10)

    def test_rejects_wrong_rhs_length(self):
        system = BorderedSystem(np.eye(3), np.ones((3, 1)), np.ones((1, 3)), [[1.0]])
        with pytest.raises(ValueError, match="length"):
            system.solve(np.ones(3))

    def test_rejects_inconsistent_shapes(self):
        with pytest.raises(ValueError, match="shape"):
            BorderedSystem(np.eye(3), np.ones((2, 1)), np.ones((1, 3)), [[1.0]])


class TestSparseTools:
    def test_block_diagonal_expand_structure(self):
        blocks = [np.full((2, 2), fill) for fill in (1.0, 2.0, 3.0)]
        result = block_diagonal_expand(blocks).toarray()
        assert result.shape == (6, 6)
        np.testing.assert_allclose(result[2:4, 2:4], 2.0)
        np.testing.assert_allclose(result[0:2, 2:4], 0.0)

    def test_block_diagonal_rejects_empty(self):
        with pytest.raises(ValueError):
            block_diagonal_expand([])

    def test_block_diagonal_rejects_mixed_shapes(self):
        with pytest.raises(ValueError, match="shape"):
            block_diagonal_expand([np.eye(2), np.eye(3)])

    def test_kron_point_ordering_applies_diffmat_per_variable(self):
        num, n_vars = 5, 2
        diffmat = fourier_differentiation_matrix(num, 1.0)
        big = kron_diffmat(diffmat, n_vars, ordering="point")
        grid = np.arange(num) / num
        # Build point-major stacked [x0(t_j), x1(t_j)] with distinct signals.
        x0 = np.sin(2 * np.pi * grid)
        x1 = np.cos(2 * np.pi * grid)
        stacked = np.empty(num * n_vars)
        stacked[0::2] = x0
        stacked[1::2] = x1
        result = big @ stacked
        np.testing.assert_allclose(result[0::2], diffmat @ x0, atol=1e-10)
        np.testing.assert_allclose(result[1::2], diffmat @ x1, atol=1e-10)

    def test_kron_variable_ordering(self):
        num, n_vars = 5, 3
        diffmat = fourier_differentiation_matrix(num, 1.0)
        big = kron_diffmat(diffmat, n_vars, ordering="variable")
        assert big.shape == (num * n_vars, num * n_vars)
        x = np.random.default_rng(0).normal(size=num)
        stacked = np.concatenate([x, 2 * x, 3 * x])
        result = big @ stacked
        np.testing.assert_allclose(result[:num], diffmat @ x, atol=1e-10)

    def test_kron_rejects_unknown_ordering(self):
        with pytest.raises(ValueError, match="ordering"):
            kron_diffmat(np.eye(3), 2, ordering="bogus")

    def test_kron_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            kron_diffmat(np.ones((2, 3)), 2)


class TestLinearSolvers:
    def test_direct_solver_dense_and_sparse(self, rng):
        a = rng.normal(size=(5, 5)) + 5 * np.eye(5)
        rhs = rng.normal(size=5)
        solver = DirectLinearSolver()
        np.testing.assert_allclose(
            solver(a, rhs), np.linalg.solve(a, rhs), atol=1e-10
        )
        np.testing.assert_allclose(
            solver(sp.csr_matrix(a), rhs), np.linalg.solve(a, rhs), atol=1e-10
        )

    def test_gmres_matches_direct(self, rng):
        a = rng.normal(size=(30, 30)) + 10 * np.eye(30)
        rhs = rng.normal(size=30)
        gmres = GmresLinearSolver(rtol=1e-12)
        np.testing.assert_allclose(
            gmres(sp.csr_matrix(a), rhs), np.linalg.solve(a, rhs), atol=1e-6
        )

    def test_gmres_without_ilu(self, rng):
        a = rng.normal(size=(10, 10)) + 8 * np.eye(10)
        rhs = rng.normal(size=10)
        gmres = GmresLinearSolver(rtol=1e-12, use_ilu=False)
        np.testing.assert_allclose(
            gmres(sp.csr_matrix(a), rhs), np.linalg.solve(a, rhs), atol=1e-6
        )

    def test_gmres_raises_on_stagnation(self):
        # Extremely ill-conditioned without preconditioner and 1 iteration.
        a = sp.diags(np.geomspace(1e-12, 1.0, 40)).tocsr()
        gmres = GmresLinearSolver(rtol=1e-14, maxiter=1, restart=2, use_ilu=False)
        with pytest.raises(ConvergenceError):
            gmres(a, np.ones(40))


class TestJacobianCheck:
    def test_finite_difference_matches_analytic(self):
        def func(x):
            return np.array([x[0] ** 2 + x[1], np.sin(x[1])])

        x = np.array([1.2, 0.7])
        numeric = finite_difference_jacobian(func, x)
        analytic = np.array([[2 * 1.2, 1.0], [0.0, np.cos(0.7)]])
        assert jacobian_error(analytic, numeric) < 1e-6

    def test_jacobian_error_zero_for_equal(self):
        a = np.eye(3)
        assert jacobian_error(a, a.copy()) == 0.0

    def test_jacobian_error_accepts_sparse(self):
        a = np.eye(3)
        assert jacobian_error(sp.csr_matrix(a), a) == 0.0

    def test_jacobian_error_shape_mismatch(self):
        with pytest.raises(ValueError):
            jacobian_error(np.eye(2), np.eye(3))

    @given(st.integers(min_value=1, max_value=5))
    def test_linear_function_exact(self, n):
        rng = np.random.default_rng(n)
        a = rng.normal(size=(n, n))
        numeric = finite_difference_jacobian(lambda x: a @ x, np.zeros(n))
        assert jacobian_error(a, numeric) < 1e-7
