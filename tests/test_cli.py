"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_vco_defaults(self):
        args = build_parser().parse_args(["vco"])
        assert args.variant == "vacuum"
        assert args.num_t1 == 25

    def test_vco_rejects_unknown_variant(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["vco", "--variant", "plasma"])

    def test_phase_error_horizon(self):
        args = build_parser().parse_args(
            ["phase-error", "--horizon", "1e-4"]
        )
        assert args.horizon == "1e-4"

    def test_solver_knobs_parsed(self):
        args = build_parser().parse_args(
            ["vco", "--newton", "full", "--linear-solver", "gmres",
             "--threads", "4"]
        )
        assert args.newton == "full"
        assert args.linear_solver == "gmres"
        assert args.threads == 4

    def test_chord_plus_gmres_rejected(self):
        from repro.cli import _envelope_options

        args = build_parser().parse_args(
            ["vco", "--newton", "chord", "--linear-solver", "gmres"]
        )
        with pytest.raises(SystemExit, match="chord"):
            _envelope_options(args)

    def test_gmres_alone_implies_full_mode(self):
        from repro.cli import _envelope_options

        args = build_parser().parse_args(
            ["vco", "--linear-solver", "gmres"]
        )
        options = _envelope_options(args)
        assert options.newton_mode == "full"
        assert options.linear_solver == "gmres"


class TestCommands:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "vacuum calibration" in out
        assert "air calibration" in out
        assert "0.750" in out  # nominal MHz

    def test_fm_runs(self, capsys):
        assert main(["fm"]) == 0
        out = capsys.readouterr().out
        assert "750" in out  # Fig 1 sample count
        assert "225" in out  # Fig 2 sample count

    def test_vco_short_run(self, capsys, tmp_path):
        code = main([
            "vco", "--variant", "vacuum",
            "--horizon", "5e-6", "--steps", "50",
            "--csv", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "free-running: 0.75" in out
        assert (tmp_path / "vco_vacuum_frequency.csv").exists()
