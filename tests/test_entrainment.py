"""Tests for mode-locking / period-multiplication detection (paper §4.1)."""

import numpy as np
import pytest

from repro.constants import TWO_PI
from repro.dae import VanDerPolDae
from repro.steadystate import find_locked_orbit, stretch_cycle


class InjectedVdp(VanDerPolDae):
    def __init__(self, mu, amplitude, frequency):
        super().__init__(mu)
        self.amplitude = float(amplitude)
        self.frequency = float(frequency)

    def b(self, t):
        return np.array(
            [self.amplitude * np.sin(TWO_PI * self.frequency * t), 0.0]
        )

    def b_batch(self, times):
        times = np.asarray(times, dtype=float).ravel()
        out = np.zeros((times.size, 2))
        out[:, 0] = self.amplitude * np.sin(TWO_PI * self.frequency * times)
        return out


class TestStretchCycle:
    def test_preserves_endpoints_shape(self, vdp_limit_cycle):
        _dae, hb = vdp_limit_cycle
        stretched = stretch_cycle(hb.samples, 49)
        assert stretched.shape == (49, 2)
        np.testing.assert_allclose(stretched[0], hb.samples[0])

    def test_identity_when_same_size(self, vdp_limit_cycle):
        _dae, hb = vdp_limit_cycle
        np.testing.assert_allclose(
            stretch_cycle(hb.samples, 25), hb.samples
        )


class TestFundamentalLocking:
    """1:1 entrainment of the mu=0.2 oscillator (Arnold tongue center)."""

    def test_locks_inside_tongue(self, vdp_limit_cycle):
        _dae, hb = vdp_limit_cycle
        f_inj = hb.frequency * 1.01
        dae = InjectedVdp(0.2, 0.15, f_inj)
        solution = find_locked_orbit(dae, 1.0 / f_inj, hb.samples)
        assert solution is not None
        peak = solution.samples[:, 0].max() - solution.samples[:, 0].min()
        assert peak > 3.0  # full-swing oscillation at the forcing period

    def test_not_locked_far_outside_tongue(self, vdp_limit_cycle):
        _dae, hb = vdp_limit_cycle
        f_inj = hb.frequency * 1.25  # far beyond any tongue at this drive
        dae = InjectedVdp(0.2, 0.05, f_inj)
        solution = find_locked_orbit(
            dae, 1.0 / f_inj, hb.samples, phase_step=5
        )
        assert solution is None

    def test_rejects_nonpositive_period(self, vdp_limit_cycle):
        _dae, hb = vdp_limit_cycle
        dae = InjectedVdp(0.2, 0.1, hb.frequency)
        with pytest.raises(Exception):
            find_locked_orbit(dae, -1.0, hb.samples)


class TestPeriodMultiplication:
    """Divide-by-3 superharmonic entrainment (mu = 1)."""

    @pytest.fixture(scope="class")
    def strong_cycle(self):
        from repro.steadystate import (
            estimate_period_from_transient,
            harmonic_balance_autonomous,
        )
        from repro.transient import TransientOptions, simulate_transient

        dae = VanDerPolDae(1.0)
        settle = simulate_transient(
            dae, [2.0, 0.0], 0.0, 120.0,
            TransientOptions(integrator="trap", dt=0.02),
        )
        period = estimate_period_from_transient(settle, key=0)
        tail = settle.t[-1] - period
        orbit = settle.sample(tail + period * np.arange(25) / 25)
        return harmonic_balance_autonomous(
            dae, 1.0 / period, orbit, num_samples=25
        )

    def test_divide_by_three(self, strong_cycle):
        from repro.analysis import dominant_frequency

        f0 = strong_cycle.frequency
        f_inj = 3.0 * f0
        dae = InjectedVdp(1.0, 0.5, f_inj)
        solution = find_locked_orbit(
            dae, 3.0 / f_inj, strong_cycle.samples,
            min_peak_to_peak=2.5, phase_step=4, num_samples=49,
            stability_tolerance=0.2,
        )
        assert solution is not None
        times = np.linspace(0.0, 6 * solution.period, 4096, endpoint=False)
        f_out = dominant_frequency(times, solution.evaluate(times)[:, 0])
        # The response fundamental is exactly one third of the injection.
        assert abs(3.0 * f_out - f_inj) < 0.02 * f_inj
