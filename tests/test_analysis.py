"""Tests for frequency estimation, phase error, spectra, comparisons."""

import numpy as np
import pytest

from repro.analysis import (
    amplitude_spectrum,
    cycles_to_radians,
    dominant_frequency,
    frequency_from_crossings,
    instantaneous_frequency_hilbert,
    max_error,
    phase_error_vs_reference,
    phase_from_crossings,
    relative_rms_error,
    rms_error,
)


class TestFrequencyFromCrossings:
    def test_constant_tone(self):
        t = np.linspace(0, 1, 5000)
        _mid, freq = frequency_from_crossings(t, np.sin(2 * np.pi * 50 * t))
        np.testing.assert_allclose(freq, 50.0, rtol=1e-4)

    def test_chirp_tracks_frequency(self):
        t = np.linspace(0, 1, 50000)
        phase = 2 * np.pi * (10 * t + 10 * t**2)  # f(t) = 10 + 20 t
        mid, freq = frequency_from_crossings(t, np.sin(phase))
        expected = 10 + 20 * mid
        np.testing.assert_allclose(freq, expected, rtol=0.05)

    def test_custom_level(self):
        t = np.linspace(0, 1, 5000)
        y = 2.0 + np.sin(2 * np.pi * 20 * t)
        _mid, freq = frequency_from_crossings(t, y, level=2.0)
        np.testing.assert_allclose(freq, 20.0, rtol=1e-3)

    def test_empty_for_flat_signal(self):
        mid, freq = frequency_from_crossings([0, 1], [1.0, 1.0])
        assert mid.size == 0 and freq.size == 0


class TestHilbertEstimator:
    def test_constant_tone(self):
        t = np.linspace(0, 1, 4096)
        _mid, freq = instantaneous_frequency_hilbert(
            t, np.sin(2 * np.pi * 64 * t)
        )
        interior = freq[400:-400]
        np.testing.assert_allclose(interior, 64.0, rtol=1e-2)

    def test_fm_signal_tracks(self):
        from repro.signals import fm_instantaneous_frequency, fm_signal

        t = np.linspace(0, 5e-5, 8192)
        _mid, freq = instantaneous_frequency_hilbert(
            t, fm_signal(t), smooth_window=9
        )
        expected = fm_instantaneous_frequency(t[:-1])
        interior = slice(500, -500)
        assert np.max(
            np.abs(freq[interior] - expected[interior])
        ) < 0.1 * 1e6

    def test_requires_uniform_grid(self):
        with pytest.raises(ValueError, match="uniform"):
            instantaneous_frequency_hilbert(
                [0.0, 0.1, 0.3, 0.7], [0.0, 1.0, 0.0, -1.0]
            )


class TestPhaseError:
    def test_zero_for_identical(self):
        t = np.linspace(0, 2, 20000)
        y = np.sin(2 * np.pi * 30 * t)
        times, error = phase_error_vs_reference(t, y, t, y.copy())
        np.testing.assert_allclose(error, 0.0, atol=1e-9)

    def test_linear_drift_detected(self):
        """1% frequency offset accumulates ~0.01 cycles per cycle."""
        t = np.linspace(0, 2, 40000)
        ref = np.sin(2 * np.pi * 30.0 * t)
        test = np.sin(2 * np.pi * 30.3 * t)
        times, error = phase_error_vs_reference(t, test, t, ref)
        total_expected = 0.3 * (times[-1] - times[0])
        np.testing.assert_allclose(error[-1], total_expected, rtol=0.05)

    def test_anchored_at_zero(self):
        t = np.linspace(0, 1, 10000)
        ref = np.sin(2 * np.pi * 40 * t)
        test = np.sin(2 * np.pi * 41 * t)
        _times, error = phase_error_vs_reference(t, test, t, ref)
        assert error[0] == 0.0

    def test_phase_from_crossings_monotone(self):
        t = np.linspace(0, 1, 10000)
        crossings, cycles = phase_from_crossings(t, np.sin(2 * np.pi * 25 * t))
        assert np.all(np.diff(crossings) > 0)
        np.testing.assert_allclose(np.diff(cycles), 1.0)

    def test_requires_two_crossings(self):
        with pytest.raises(ValueError):
            phase_from_crossings([0, 1], [1.0, 2.0])

    def test_cycles_to_radians(self):
        np.testing.assert_allclose(cycles_to_radians(1.0), 2 * np.pi)


class TestSpectrum:
    def test_single_tone_peak(self):
        t = np.linspace(0, 1, 2048, endpoint=False)
        freqs, amps = amplitude_spectrum(t, 3.0 * np.sin(2 * np.pi * 100 * t))
        peak = freqs[np.argmax(amps[1:]) + 1]
        assert np.isclose(peak, 100.0, atol=1.5)
        assert np.isclose(np.max(amps), 3.0, rtol=0.05)

    def test_dominant_frequency(self):
        t = np.linspace(0, 1, 4096, endpoint=False)
        y = np.sin(2 * np.pi * 50 * t) + 0.2 * np.sin(2 * np.pi * 300 * t)
        assert np.isclose(dominant_frequency(t, y), 50.0, atol=1.5)

    def test_rect_window(self):
        t = np.linspace(0, 1, 1024, endpoint=False)
        freqs, amps = amplitude_spectrum(
            t, np.sin(2 * np.pi * 128 * t), window="rect"
        )
        assert np.isclose(np.max(amps), 1.0, rtol=1e-6)

    def test_rejects_unknown_window(self):
        t = np.linspace(0, 1, 64, endpoint=False)
        with pytest.raises(ValueError, match="window"):
            amplitude_spectrum(t, np.sin(t), window="kaiser")

    def test_requires_uniform_grid(self):
        with pytest.raises(ValueError, match="uniform"):
            amplitude_spectrum([0, 0.1, 0.5, 0.6, 0.7], np.zeros(5))


class TestComparisons:
    def test_rms_error(self):
        np.testing.assert_allclose(
            rms_error([1.0, 2.0], [1.0, 4.0]), np.sqrt(2.0)
        )

    def test_max_error(self):
        assert max_error([0.0, 1.0], [0.5, 3.0]) == 2.0

    def test_relative_rms(self):
        assert np.isclose(
            relative_rms_error([1.1, 1.1], [1.0, 1.0]), 0.1, atol=1e-12
        )

    def test_relative_rejects_zero_reference(self):
        with pytest.raises(ValueError):
            relative_rms_error([1.0], [0.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            rms_error([1.0], [1.0, 2.0])
