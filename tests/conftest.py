"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep hypothesis fast and deterministic in CI-like runs.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng():
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(20260612)


@pytest.fixture
def vdp():
    """Weakly nonlinear van der Pol oscillator."""
    from repro.dae import VanDerPolDae

    return VanDerPolDae(mu=0.2)


@pytest.fixture
def lc():
    """Unit harmonic (LC) oscillator."""
    from repro.dae import HarmonicOscillatorDae

    return HarmonicOscillatorDae()


@pytest.fixture(scope="session")
def vdp_limit_cycle():
    """Converged limit cycle of the mu=0.2 van der Pol oscillator.

    Session-scoped: shooting + HB are reused by many tests.
    Returns ``(dae, hb_result)`` with 25 t1 samples.
    """
    import numpy as np

    from repro.dae import VanDerPolDae
    from repro.steadystate import (
        estimate_period_from_transient,
        harmonic_balance_autonomous,
    )
    from repro.transient import TransientOptions, simulate_transient

    dae = VanDerPolDae(mu=0.2)
    settle = simulate_transient(
        dae, [2.0, 0.0], 0.0, 80.0,
        TransientOptions(integrator="trap", dt=0.02),
    )
    period = estimate_period_from_transient(settle, key=0)
    tail = settle.t[-1] - period
    orbit = settle.sample(tail + period * np.arange(25) / 25)
    hb = harmonic_balance_autonomous(
        dae, 1.0 / period, orbit, num_samples=25
    )
    return dae, hb


@pytest.fixture(scope="session")
def vco_initial_condition():
    """Initial condition of the paper's VCO (vacuum), session-cached."""
    from repro.circuits.library import MemsVcoDae, T_NOMINAL, VcoParams
    from repro.wampde import oscillator_initial_condition

    params = VcoParams.vacuum()
    unforced = MemsVcoDae(params, constant_control=True)
    samples, f0 = oscillator_initial_condition(
        unforced, num_t1=25, period_guess=T_NOMINAL
    )
    return params, samples, f0
