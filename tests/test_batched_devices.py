"""Batched-vs-loop equivalence of the vectorised device and DAE fast paths.

Every device's ``*_local_batch`` must agree with its per-point ``*_local``
on randomised states (including regime boundaries like the diode's limiting
region), and ``CircuitDAE``'s vectorised batch assembly must agree with the
generic loop fallbacks of :class:`repro.dae.base.SemiExplicitDAE`.
"""

import numpy as np
import pytest

from repro.circuits.devices import (
    VCCS,
    VCVS,
    Capacitor,
    CubicConductance,
    CurrentSource,
    Diode,
    Inductor,
    MemsVaractor,
    Resistor,
    TanhNegativeConductance,
    TanhTransconductance,
    VoltageSource,
)
from repro.circuits.netlist import Circuit
from repro.circuits.waveforms import Sine
from repro.dae.base import SemiExplicitDAE
from repro.dae.scaled import ScaledDAE


def make_devices():
    """One instance of every device class."""
    return [
        Resistor("R1", "a", "b", 220.0),
        Capacitor("C1", "a", "b", 2.2e-9),
        Inductor("L1", "a", "b", 1e-6),
        Diode("D1", "a", "b"),
        CubicConductance("G1", "a", "b", 1e-3, 4e-4),
        TanhNegativeConductance("G2", "a", "b", 2e-3, 1e-3, 5e-3),
        MemsVaractor(
            "M1", "a", "b", Sine(amplitude=1.0, frequency=1e3, offset=1.5),
            c0=100e-12, z_scale=1e-6, mass=1e-9, damping=1e-4,
            stiffness=221.0, force_gain=2e-4,
        ),
        VCCS("U1", "a", "b", "c", "d", 3e-3),
        VCVS("U2", "a", "b", "c", "d", 5.0),
        TanhTransconductance("U3", "a", "b", "c", "d", 4e-3, 1e-3),
        CurrentSource("I1", "a", "b", Sine(amplitude=1e-3, frequency=2e3)),
        VoltageSource("V1", "a", "b", Sine(amplitude=2.0, frequency=5e3)),
    ]


@pytest.mark.parametrize(
    "device", make_devices(), ids=lambda d: type(d).__name__
)
def test_local_batch_matches_loop(device):
    rng = np.random.default_rng(hash(device.name) % 2**32)
    U = rng.normal(scale=1.2, size=(9, device.n_local))
    times = rng.uniform(0.0, 1e-3, size=9)

    q_loop = np.stack([device.q_local(u) for u in U])
    f_loop = np.stack([device.f_local(u) for u in U])
    b_loop = np.stack([device.b_local(t) for t in times])
    dq_loop = np.stack([device.dq_local(u) for u in U])
    df_loop = np.stack([device.df_local(u) for u in U])

    np.testing.assert_allclose(device.q_local_batch(U), q_loop, rtol=0, atol=1e-12)
    np.testing.assert_allclose(device.f_local_batch(U), f_loop, rtol=0, atol=1e-12)
    np.testing.assert_allclose(device.b_local_batch(times), b_loop, rtol=0, atol=1e-12)
    np.testing.assert_allclose(device.dq_local_batch(U), dq_loop, rtol=0, atol=1e-12)
    np.testing.assert_allclose(device.df_local_batch(U), df_loop, rtol=0, atol=1e-12)


def test_diode_batch_spans_limiting_region():
    """The vectorised diode must agree across the exp/linear boundary."""
    diode = Diode("D1", "a", "b")
    v_limit = 40.0 * diode.thermal_voltage
    v = np.array([-2.0, 0.0, 0.5 * v_limit, v_limit, v_limit * 1.0001, 3.0])
    U = np.stack([v, np.zeros_like(v)], axis=1)
    f_loop = np.stack([diode.f_local(u) for u in U])
    df_loop = np.stack([diode.df_local(u) for u in U])
    np.testing.assert_array_equal(diode.f_local_batch(U), f_loop)
    np.testing.assert_array_equal(diode.df_local_batch(U), df_loop)
    # Scalar calls still return plain floats.
    assert isinstance(diode.current(0.3), float)
    assert isinstance(diode.conductance(2.0), float)


def varied_circuit():
    """A circuit touching every stamp shape: shared nodes, grounds,
    internal unknowns, multi-port controlled sources."""
    c = Circuit("batch-equivalence test vehicle")
    c.add(Resistor("R1", "n1", "n2", 100.0))
    c.add(Resistor("R2", "n2", "0", 470.0))
    c.add(Capacitor("C1", "n1", "0", 1e-9))
    c.add(Inductor("L1", "n2", "n3", 1e-6))
    c.add(Diode("D1", "n3", "0"))
    c.add(CubicConductance("G1", "n1", "0", 1e-3, 4e-4))
    c.add(
        MemsVaractor(
            "M1", "n3", "0", Sine(amplitude=0.5, frequency=1e3, offset=1.5),
            c0=100e-12, z_scale=1e-6, mass=1e-9, damping=1e-4,
            stiffness=221.0, force_gain=2e-4,
        )
    )
    c.add(VCCS("U1", "n1", "0", "n2", "n3", 2e-3))
    c.add(VCVS("U2", "n4", "0", "n1", "0", 2.0))
    c.add(TanhTransconductance("U3", "n2", "0", "n4", "0", 3e-3, 1e-3))
    c.add(CurrentSource("I1", "n1", "0", Sine(amplitude=1e-3, frequency=2e3)))
    c.add(VoltageSource("V1", "n4", "0", Sine(amplitude=1.0, frequency=5e3)))
    return c


class TestCircuitDaeBatch:
    @pytest.fixture(scope="class")
    def dae(self):
        return varied_circuit().to_dae()

    @pytest.fixture(scope="class")
    def states(self, dae):
        rng = np.random.default_rng(7)
        return rng.normal(scale=0.8, size=(6, dae.n))

    @pytest.mark.parametrize(
        "method", ["q_batch", "f_batch", "dq_dx_batch", "df_dx_batch"]
    )
    def test_state_batches_match_loop(self, dae, states, method):
        fast = getattr(dae, method)(states)
        slow = getattr(SemiExplicitDAE, method)(dae, states)
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-12)

    def test_b_batch_matches_loop(self, dae):
        times = np.linspace(0.0, 1e-3, 7)
        np.testing.assert_allclose(
            dae.b_batch(times),
            SemiExplicitDAE.b_batch(dae, times),
            rtol=0,
            atol=1e-12,
        )

    def test_batch_consistent_with_single_point(self, dae, states):
        for x in states:
            np.testing.assert_allclose(
                dae.q_batch(x[None, :])[0], dae.q(x), rtol=0, atol=1e-12
            )
            np.testing.assert_allclose(
                dae.dq_dx_batch(x[None, :])[0], dae.dq_dx(x), rtol=0, atol=1e-12
            )

    def test_structure_masks_cover_jacobians(self, dae, states):
        dq_mask = dae.dq_structure()
        df_mask = dae.df_structure()
        for x in states:
            assert not np.any(dae.dq_dx(x)[~dq_mask])
            assert not np.any(dae.df_dx(x)[~df_mask])


def test_scaled_dae_batch_matches_loop():
    dae = varied_circuit().to_dae()
    scaled = ScaledDAE(
        dae,
        variable_scale=np.linspace(0.5, 2.0, dae.n),
        time_scale=2.5,
        equation_scale=np.linspace(0.1, 1.0, dae.n),
    )
    rng = np.random.default_rng(11)
    states = rng.normal(size=(5, dae.n))
    times = rng.uniform(0.0, 1e-3, size=5)
    for method in ("q_batch", "f_batch", "dq_dx_batch", "df_dx_batch"):
        np.testing.assert_allclose(
            getattr(scaled, method)(states),
            getattr(SemiExplicitDAE, method)(scaled, states),
            rtol=1e-13,
            atol=1e-15,
        )
    np.testing.assert_allclose(
        scaled.b_batch(times),
        SemiExplicitDAE.b_batch(scaled, times),
        rtol=1e-13,
        atol=1e-15,
    )
    assert np.array_equal(scaled.dq_structure(), dae.dq_structure())
